file(REMOVE_RECURSE
  "../bench/ablation_transform"
  "../bench/ablation_transform.pdb"
  "CMakeFiles/ablation_transform.dir/ablation_transform.cpp.o"
  "CMakeFiles/ablation_transform.dir/ablation_transform.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
