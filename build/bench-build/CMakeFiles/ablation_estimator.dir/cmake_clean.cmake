file(REMOVE_RECURSE
  "../bench/ablation_estimator"
  "../bench/ablation_estimator.pdb"
  "CMakeFiles/ablation_estimator.dir/ablation_estimator.cpp.o"
  "CMakeFiles/ablation_estimator.dir/ablation_estimator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
