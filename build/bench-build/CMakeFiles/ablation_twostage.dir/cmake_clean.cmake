file(REMOVE_RECURSE
  "../bench/ablation_twostage"
  "../bench/ablation_twostage.pdb"
  "CMakeFiles/ablation_twostage.dir/ablation_twostage.cpp.o"
  "CMakeFiles/ablation_twostage.dir/ablation_twostage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_twostage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
