file(REMOVE_RECURSE
  "../bench/fig6_diffraction_embedding"
  "../bench/fig6_diffraction_embedding.pdb"
  "CMakeFiles/fig6_diffraction_embedding.dir/fig6_diffraction_embedding.cpp.o"
  "CMakeFiles/fig6_diffraction_embedding.dir/fig6_diffraction_embedding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_diffraction_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
