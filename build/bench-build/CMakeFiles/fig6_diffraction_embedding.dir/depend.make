# Empty dependencies file for fig6_diffraction_embedding.
# This may be replaced when dependencies are built.
