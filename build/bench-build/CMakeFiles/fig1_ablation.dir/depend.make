# Empty dependencies file for fig1_ablation.
# This may be replaced when dependencies are built.
