file(REMOVE_RECURSE
  "../bench/fig1_ablation"
  "../bench/fig1_ablation.pdb"
  "CMakeFiles/fig1_ablation.dir/fig1_ablation.cpp.o"
  "CMakeFiles/fig1_ablation.dir/fig1_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
