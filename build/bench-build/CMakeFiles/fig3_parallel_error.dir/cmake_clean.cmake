file(REMOVE_RECURSE
  "../bench/fig3_parallel_error"
  "../bench/fig3_parallel_error.pdb"
  "CMakeFiles/fig3_parallel_error.dir/fig3_parallel_error.cpp.o"
  "CMakeFiles/fig3_parallel_error.dir/fig3_parallel_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_parallel_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
