# Empty dependencies file for fig3_parallel_error.
# This may be replaced when dependencies are built.
