file(REMOVE_RECURSE
  "../bench/fig5_beam_embedding"
  "../bench/fig5_beam_embedding.pdb"
  "CMakeFiles/fig5_beam_embedding.dir/fig5_beam_embedding.cpp.o"
  "CMakeFiles/fig5_beam_embedding.dir/fig5_beam_embedding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_beam_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
