# Empty dependencies file for fig5_beam_embedding.
# This may be replaced when dependencies are built.
