file(REMOVE_RECURSE
  "../bench/fig4_pipeline_stages"
  "../bench/fig4_pipeline_stages.pdb"
  "CMakeFiles/fig4_pipeline_stages.dir/fig4_pipeline_stages.cpp.o"
  "CMakeFiles/fig4_pipeline_stages.dir/fig4_pipeline_stages.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pipeline_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
