file(REMOVE_RECURSE
  "CMakeFiles/test_radial.dir/test_radial.cpp.o"
  "CMakeFiles/test_radial.dir/test_radial.cpp.o.d"
  "test_radial"
  "test_radial.pdb"
  "test_radial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_radial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
