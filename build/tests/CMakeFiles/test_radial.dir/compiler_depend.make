# Empty compiler generated dependencies file for test_radial.
# This may be replaced when dependencies are built.
