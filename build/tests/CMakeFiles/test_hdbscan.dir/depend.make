# Empty dependencies file for test_hdbscan.
# This may be replaced when dependencies are built.
