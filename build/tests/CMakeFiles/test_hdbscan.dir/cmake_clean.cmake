file(REMOVE_RECURSE
  "CMakeFiles/test_hdbscan.dir/test_hdbscan.cpp.o"
  "CMakeFiles/test_hdbscan.dir/test_hdbscan.cpp.o.d"
  "test_hdbscan"
  "test_hdbscan.pdb"
  "test_hdbscan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
