
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_speckle.cpp" "tests/CMakeFiles/test_speckle.dir/test_speckle.cpp.o" "gcc" "tests/CMakeFiles/test_speckle.dir/test_speckle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/arams_io.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/arams_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/arams_data.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/arams_image.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/arams_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/arams_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/arams_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/arams_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/arams_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/arams_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/arams_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/arams_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/arams_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
