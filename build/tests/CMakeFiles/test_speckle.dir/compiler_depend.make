# Empty compiler generated dependencies file for test_speckle.
# This may be replaced when dependencies are built.
