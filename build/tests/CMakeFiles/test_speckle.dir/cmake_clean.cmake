file(REMOVE_RECURSE
  "CMakeFiles/test_speckle.dir/test_speckle.cpp.o"
  "CMakeFiles/test_speckle.dir/test_speckle.cpp.o.d"
  "test_speckle"
  "test_speckle.pdb"
  "test_speckle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speckle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
