file(REMOVE_RECURSE
  "CMakeFiles/test_umap.dir/test_umap.cpp.o"
  "CMakeFiles/test_umap.dir/test_umap.cpp.o.d"
  "test_umap"
  "test_umap.pdb"
  "test_umap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_umap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
