# Empty compiler generated dependencies file for test_umap.
# This may be replaced when dependencies are built.
