file(REMOVE_RECURSE
  "CMakeFiles/test_abod.dir/test_abod.cpp.o"
  "CMakeFiles/test_abod.dir/test_abod.cpp.o.d"
  "test_abod"
  "test_abod.pdb"
  "test_abod[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
