# Empty compiler generated dependencies file for test_abod.
# This may be replaced when dependencies are built.
