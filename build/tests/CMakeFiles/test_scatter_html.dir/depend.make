# Empty dependencies file for test_scatter_html.
# This may be replaced when dependencies are built.
