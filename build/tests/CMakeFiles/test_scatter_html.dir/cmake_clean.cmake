file(REMOVE_RECURSE
  "CMakeFiles/test_scatter_html.dir/test_scatter_html.cpp.o"
  "CMakeFiles/test_scatter_html.dir/test_scatter_html.cpp.o.d"
  "test_scatter_html"
  "test_scatter_html.pdb"
  "test_scatter_html[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scatter_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
