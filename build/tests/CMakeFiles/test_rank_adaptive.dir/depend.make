# Empty dependencies file for test_rank_adaptive.
# This may be replaced when dependencies are built.
