file(REMOVE_RECURSE
  "CMakeFiles/test_rank_adaptive.dir/test_rank_adaptive.cpp.o"
  "CMakeFiles/test_rank_adaptive.dir/test_rank_adaptive.cpp.o.d"
  "test_rank_adaptive"
  "test_rank_adaptive.pdb"
  "test_rank_adaptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rank_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
