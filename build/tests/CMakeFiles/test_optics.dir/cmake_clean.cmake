file(REMOVE_RECURSE
  "CMakeFiles/test_optics.dir/test_optics.cpp.o"
  "CMakeFiles/test_optics.dir/test_optics.cpp.o.d"
  "test_optics"
  "test_optics.pdb"
  "test_optics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
