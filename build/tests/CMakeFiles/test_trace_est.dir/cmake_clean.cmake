file(REMOVE_RECURSE
  "CMakeFiles/test_trace_est.dir/test_trace_est.cpp.o"
  "CMakeFiles/test_trace_est.dir/test_trace_est.cpp.o.d"
  "test_trace_est"
  "test_trace_est.pdb"
  "test_trace_est[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_est.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
