# Empty compiler generated dependencies file for test_trace_est.
# This may be replaced when dependencies are built.
