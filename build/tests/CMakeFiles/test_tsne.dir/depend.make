# Empty dependencies file for test_tsne.
# This may be replaced when dependencies are built.
