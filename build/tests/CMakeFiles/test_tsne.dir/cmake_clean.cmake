file(REMOVE_RECURSE
  "CMakeFiles/test_tsne.dir/test_tsne.cpp.o"
  "CMakeFiles/test_tsne.dir/test_tsne.cpp.o.d"
  "test_tsne"
  "test_tsne.pdb"
  "test_tsne[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
