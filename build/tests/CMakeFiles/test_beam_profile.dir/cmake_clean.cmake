file(REMOVE_RECURSE
  "CMakeFiles/test_beam_profile.dir/test_beam_profile.cpp.o"
  "CMakeFiles/test_beam_profile.dir/test_beam_profile.cpp.o.d"
  "test_beam_profile"
  "test_beam_profile.pdb"
  "test_beam_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beam_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
