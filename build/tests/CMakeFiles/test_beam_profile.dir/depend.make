# Empty dependencies file for test_beam_profile.
# This may be replaced when dependencies are built.
