# Empty compiler generated dependencies file for test_arams.
# This may be replaced when dependencies are built.
