file(REMOVE_RECURSE
  "CMakeFiles/test_arams.dir/test_arams.cpp.o"
  "CMakeFiles/test_arams.dir/test_arams.cpp.o.d"
  "test_arams"
  "test_arams.pdb"
  "test_arams[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
