file(REMOVE_RECURSE
  "CMakeFiles/test_diffraction.dir/test_diffraction.cpp.o"
  "CMakeFiles/test_diffraction.dir/test_diffraction.cpp.o.d"
  "test_diffraction"
  "test_diffraction.pdb"
  "test_diffraction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_diffraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
