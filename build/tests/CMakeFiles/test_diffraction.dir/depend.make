# Empty dependencies file for test_diffraction.
# This may be replaced when dependencies are built.
