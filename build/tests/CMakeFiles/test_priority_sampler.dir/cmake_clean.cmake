file(REMOVE_RECURSE
  "CMakeFiles/test_priority_sampler.dir/test_priority_sampler.cpp.o"
  "CMakeFiles/test_priority_sampler.dir/test_priority_sampler.cpp.o.d"
  "test_priority_sampler"
  "test_priority_sampler.pdb"
  "test_priority_sampler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_priority_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
