# Empty dependencies file for test_priority_sampler.
# This may be replaced when dependencies are built.
