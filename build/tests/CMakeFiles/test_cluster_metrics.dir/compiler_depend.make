# Empty compiler generated dependencies file for test_cluster_metrics.
# This may be replaced when dependencies are built.
