file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_metrics.dir/test_cluster_metrics.cpp.o"
  "CMakeFiles/test_cluster_metrics.dir/test_cluster_metrics.cpp.o.d"
  "test_cluster_metrics"
  "test_cluster_metrics.pdb"
  "test_cluster_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
