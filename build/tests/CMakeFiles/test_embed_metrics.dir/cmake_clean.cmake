file(REMOVE_RECURSE
  "CMakeFiles/test_embed_metrics.dir/test_embed_metrics.cpp.o"
  "CMakeFiles/test_embed_metrics.dir/test_embed_metrics.cpp.o.d"
  "test_embed_metrics"
  "test_embed_metrics.pdb"
  "test_embed_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embed_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
