# Empty dependencies file for test_embed_metrics.
# This may be replaced when dependencies are built.
