file(REMOVE_RECURSE
  "CMakeFiles/test_event_builder.dir/test_event_builder.cpp.o"
  "CMakeFiles/test_event_builder.dir/test_event_builder.cpp.o.d"
  "test_event_builder"
  "test_event_builder.pdb"
  "test_event_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
