# Empty dependencies file for test_event_builder.
# This may be replaced when dependencies are built.
