file(REMOVE_RECURSE
  "CMakeFiles/test_error_tracker.dir/test_error_tracker.cpp.o"
  "CMakeFiles/test_error_tracker.dir/test_error_tracker.cpp.o.d"
  "test_error_tracker"
  "test_error_tracker.pdb"
  "test_error_tracker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
