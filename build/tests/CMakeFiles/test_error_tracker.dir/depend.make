# Empty dependencies file for test_error_tracker.
# This may be replaced when dependencies are built.
