file(REMOVE_RECURSE
  "CMakeFiles/arams_cluster.dir/abod.cpp.o"
  "CMakeFiles/arams_cluster.dir/abod.cpp.o.d"
  "CMakeFiles/arams_cluster.dir/hdbscan.cpp.o"
  "CMakeFiles/arams_cluster.dir/hdbscan.cpp.o.d"
  "CMakeFiles/arams_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/arams_cluster.dir/kmeans.cpp.o.d"
  "CMakeFiles/arams_cluster.dir/metrics.cpp.o"
  "CMakeFiles/arams_cluster.dir/metrics.cpp.o.d"
  "CMakeFiles/arams_cluster.dir/optics.cpp.o"
  "CMakeFiles/arams_cluster.dir/optics.cpp.o.d"
  "libarams_cluster.a"
  "libarams_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
