file(REMOVE_RECURSE
  "libarams_cluster.a"
)
