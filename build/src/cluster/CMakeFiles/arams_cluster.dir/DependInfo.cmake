
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/abod.cpp" "src/cluster/CMakeFiles/arams_cluster.dir/abod.cpp.o" "gcc" "src/cluster/CMakeFiles/arams_cluster.dir/abod.cpp.o.d"
  "/root/repo/src/cluster/hdbscan.cpp" "src/cluster/CMakeFiles/arams_cluster.dir/hdbscan.cpp.o" "gcc" "src/cluster/CMakeFiles/arams_cluster.dir/hdbscan.cpp.o.d"
  "/root/repo/src/cluster/kmeans.cpp" "src/cluster/CMakeFiles/arams_cluster.dir/kmeans.cpp.o" "gcc" "src/cluster/CMakeFiles/arams_cluster.dir/kmeans.cpp.o.d"
  "/root/repo/src/cluster/metrics.cpp" "src/cluster/CMakeFiles/arams_cluster.dir/metrics.cpp.o" "gcc" "src/cluster/CMakeFiles/arams_cluster.dir/metrics.cpp.o.d"
  "/root/repo/src/cluster/optics.cpp" "src/cluster/CMakeFiles/arams_cluster.dir/optics.cpp.o" "gcc" "src/cluster/CMakeFiles/arams_cluster.dir/optics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/arams_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/arams_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/arams_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/arams_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/arams_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/arams_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
