# Empty dependencies file for arams_cluster.
# This may be replaced when dependencies are built.
