file(REMOVE_RECURSE
  "libarams_embed.a"
)
