# Empty compiler generated dependencies file for arams_embed.
# This may be replaced when dependencies are built.
