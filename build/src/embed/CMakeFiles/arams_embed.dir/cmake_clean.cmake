file(REMOVE_RECURSE
  "CMakeFiles/arams_embed.dir/knn.cpp.o"
  "CMakeFiles/arams_embed.dir/knn.cpp.o.d"
  "CMakeFiles/arams_embed.dir/metrics.cpp.o"
  "CMakeFiles/arams_embed.dir/metrics.cpp.o.d"
  "CMakeFiles/arams_embed.dir/pca.cpp.o"
  "CMakeFiles/arams_embed.dir/pca.cpp.o.d"
  "CMakeFiles/arams_embed.dir/scatter_html.cpp.o"
  "CMakeFiles/arams_embed.dir/scatter_html.cpp.o.d"
  "CMakeFiles/arams_embed.dir/tsne.cpp.o"
  "CMakeFiles/arams_embed.dir/tsne.cpp.o.d"
  "CMakeFiles/arams_embed.dir/umap.cpp.o"
  "CMakeFiles/arams_embed.dir/umap.cpp.o.d"
  "libarams_embed.a"
  "libarams_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
