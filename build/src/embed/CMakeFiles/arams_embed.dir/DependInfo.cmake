
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/knn.cpp" "src/embed/CMakeFiles/arams_embed.dir/knn.cpp.o" "gcc" "src/embed/CMakeFiles/arams_embed.dir/knn.cpp.o.d"
  "/root/repo/src/embed/metrics.cpp" "src/embed/CMakeFiles/arams_embed.dir/metrics.cpp.o" "gcc" "src/embed/CMakeFiles/arams_embed.dir/metrics.cpp.o.d"
  "/root/repo/src/embed/pca.cpp" "src/embed/CMakeFiles/arams_embed.dir/pca.cpp.o" "gcc" "src/embed/CMakeFiles/arams_embed.dir/pca.cpp.o.d"
  "/root/repo/src/embed/scatter_html.cpp" "src/embed/CMakeFiles/arams_embed.dir/scatter_html.cpp.o" "gcc" "src/embed/CMakeFiles/arams_embed.dir/scatter_html.cpp.o.d"
  "/root/repo/src/embed/tsne.cpp" "src/embed/CMakeFiles/arams_embed.dir/tsne.cpp.o" "gcc" "src/embed/CMakeFiles/arams_embed.dir/tsne.cpp.o.d"
  "/root/repo/src/embed/umap.cpp" "src/embed/CMakeFiles/arams_embed.dir/umap.cpp.o" "gcc" "src/embed/CMakeFiles/arams_embed.dir/umap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/arams_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/arams_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/arams_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/arams_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/arams_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
