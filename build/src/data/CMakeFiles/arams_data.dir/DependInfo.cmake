
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/beam_profile.cpp" "src/data/CMakeFiles/arams_data.dir/beam_profile.cpp.o" "gcc" "src/data/CMakeFiles/arams_data.dir/beam_profile.cpp.o.d"
  "/root/repo/src/data/diffraction.cpp" "src/data/CMakeFiles/arams_data.dir/diffraction.cpp.o" "gcc" "src/data/CMakeFiles/arams_data.dir/diffraction.cpp.o.d"
  "/root/repo/src/data/speckle.cpp" "src/data/CMakeFiles/arams_data.dir/speckle.cpp.o" "gcc" "src/data/CMakeFiles/arams_data.dir/speckle.cpp.o.d"
  "/root/repo/src/data/spectrum.cpp" "src/data/CMakeFiles/arams_data.dir/spectrum.cpp.o" "gcc" "src/data/CMakeFiles/arams_data.dir/spectrum.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/data/CMakeFiles/arams_data.dir/synthetic.cpp.o" "gcc" "src/data/CMakeFiles/arams_data.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/arams_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/arams_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/arams_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/arams_image.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/arams_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/arams_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
