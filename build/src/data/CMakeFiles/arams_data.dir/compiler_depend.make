# Empty compiler generated dependencies file for arams_data.
# This may be replaced when dependencies are built.
