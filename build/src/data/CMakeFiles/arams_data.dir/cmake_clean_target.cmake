file(REMOVE_RECURSE
  "libarams_data.a"
)
