file(REMOVE_RECURSE
  "CMakeFiles/arams_data.dir/beam_profile.cpp.o"
  "CMakeFiles/arams_data.dir/beam_profile.cpp.o.d"
  "CMakeFiles/arams_data.dir/diffraction.cpp.o"
  "CMakeFiles/arams_data.dir/diffraction.cpp.o.d"
  "CMakeFiles/arams_data.dir/speckle.cpp.o"
  "CMakeFiles/arams_data.dir/speckle.cpp.o.d"
  "CMakeFiles/arams_data.dir/spectrum.cpp.o"
  "CMakeFiles/arams_data.dir/spectrum.cpp.o.d"
  "CMakeFiles/arams_data.dir/synthetic.cpp.o"
  "CMakeFiles/arams_data.dir/synthetic.cpp.o.d"
  "libarams_data.a"
  "libarams_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
