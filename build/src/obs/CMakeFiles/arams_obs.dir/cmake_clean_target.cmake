file(REMOVE_RECURSE
  "libarams_obs.a"
)
