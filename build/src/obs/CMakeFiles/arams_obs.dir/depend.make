# Empty dependencies file for arams_obs.
# This may be replaced when dependencies are built.
