file(REMOVE_RECURSE
  "CMakeFiles/arams_obs.dir/metrics.cpp.o"
  "CMakeFiles/arams_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/arams_obs.dir/stage_report.cpp.o"
  "CMakeFiles/arams_obs.dir/stage_report.cpp.o.d"
  "CMakeFiles/arams_obs.dir/trace.cpp.o"
  "CMakeFiles/arams_obs.dir/trace.cpp.o.d"
  "libarams_obs.a"
  "libarams_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
