file(REMOVE_RECURSE
  "CMakeFiles/arams_rng.dir/rng.cpp.o"
  "CMakeFiles/arams_rng.dir/rng.cpp.o.d"
  "libarams_rng.a"
  "libarams_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
