file(REMOVE_RECURSE
  "libarams_rng.a"
)
