# Empty dependencies file for arams_rng.
# This may be replaced when dependencies are built.
