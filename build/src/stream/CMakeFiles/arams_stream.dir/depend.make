# Empty dependencies file for arams_stream.
# This may be replaced when dependencies are built.
