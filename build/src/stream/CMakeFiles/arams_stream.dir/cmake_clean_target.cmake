file(REMOVE_RECURSE
  "libarams_stream.a"
)
