file(REMOVE_RECURSE
  "CMakeFiles/arams_stream.dir/diagnostics.cpp.o"
  "CMakeFiles/arams_stream.dir/diagnostics.cpp.o.d"
  "CMakeFiles/arams_stream.dir/event_builder.cpp.o"
  "CMakeFiles/arams_stream.dir/event_builder.cpp.o.d"
  "CMakeFiles/arams_stream.dir/monitor.cpp.o"
  "CMakeFiles/arams_stream.dir/monitor.cpp.o.d"
  "CMakeFiles/arams_stream.dir/pipeline.cpp.o"
  "CMakeFiles/arams_stream.dir/pipeline.cpp.o.d"
  "CMakeFiles/arams_stream.dir/source.cpp.o"
  "CMakeFiles/arams_stream.dir/source.cpp.o.d"
  "libarams_stream.a"
  "libarams_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
