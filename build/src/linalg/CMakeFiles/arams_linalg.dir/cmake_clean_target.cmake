file(REMOVE_RECURSE
  "libarams_linalg.a"
)
