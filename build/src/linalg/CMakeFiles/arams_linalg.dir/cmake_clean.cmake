file(REMOVE_RECURSE
  "CMakeFiles/arams_linalg.dir/blas.cpp.o"
  "CMakeFiles/arams_linalg.dir/blas.cpp.o.d"
  "CMakeFiles/arams_linalg.dir/eigen_sym.cpp.o"
  "CMakeFiles/arams_linalg.dir/eigen_sym.cpp.o.d"
  "CMakeFiles/arams_linalg.dir/matrix.cpp.o"
  "CMakeFiles/arams_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/arams_linalg.dir/norms.cpp.o"
  "CMakeFiles/arams_linalg.dir/norms.cpp.o.d"
  "CMakeFiles/arams_linalg.dir/qr.cpp.o"
  "CMakeFiles/arams_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/arams_linalg.dir/svd.cpp.o"
  "CMakeFiles/arams_linalg.dir/svd.cpp.o.d"
  "CMakeFiles/arams_linalg.dir/trace_est.cpp.o"
  "CMakeFiles/arams_linalg.dir/trace_est.cpp.o.d"
  "CMakeFiles/arams_linalg.dir/workspace.cpp.o"
  "CMakeFiles/arams_linalg.dir/workspace.cpp.o.d"
  "libarams_linalg.a"
  "libarams_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
