# Empty compiler generated dependencies file for arams_linalg.
# This may be replaced when dependencies are built.
