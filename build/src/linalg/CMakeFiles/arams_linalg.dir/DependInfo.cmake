
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/blas.cpp" "src/linalg/CMakeFiles/arams_linalg.dir/blas.cpp.o" "gcc" "src/linalg/CMakeFiles/arams_linalg.dir/blas.cpp.o.d"
  "/root/repo/src/linalg/eigen_sym.cpp" "src/linalg/CMakeFiles/arams_linalg.dir/eigen_sym.cpp.o" "gcc" "src/linalg/CMakeFiles/arams_linalg.dir/eigen_sym.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/linalg/CMakeFiles/arams_linalg.dir/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/arams_linalg.dir/matrix.cpp.o.d"
  "/root/repo/src/linalg/norms.cpp" "src/linalg/CMakeFiles/arams_linalg.dir/norms.cpp.o" "gcc" "src/linalg/CMakeFiles/arams_linalg.dir/norms.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/linalg/CMakeFiles/arams_linalg.dir/qr.cpp.o" "gcc" "src/linalg/CMakeFiles/arams_linalg.dir/qr.cpp.o.d"
  "/root/repo/src/linalg/svd.cpp" "src/linalg/CMakeFiles/arams_linalg.dir/svd.cpp.o" "gcc" "src/linalg/CMakeFiles/arams_linalg.dir/svd.cpp.o.d"
  "/root/repo/src/linalg/trace_est.cpp" "src/linalg/CMakeFiles/arams_linalg.dir/trace_est.cpp.o" "gcc" "src/linalg/CMakeFiles/arams_linalg.dir/trace_est.cpp.o.d"
  "/root/repo/src/linalg/workspace.cpp" "src/linalg/CMakeFiles/arams_linalg.dir/workspace.cpp.o" "gcc" "src/linalg/CMakeFiles/arams_linalg.dir/workspace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/arams_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/arams_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/arams_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/arams_pool.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
