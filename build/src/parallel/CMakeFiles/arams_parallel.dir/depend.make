# Empty dependencies file for arams_parallel.
# This may be replaced when dependencies are built.
