file(REMOVE_RECURSE
  "CMakeFiles/arams_parallel.dir/virtual_cores.cpp.o"
  "CMakeFiles/arams_parallel.dir/virtual_cores.cpp.o.d"
  "libarams_parallel.a"
  "libarams_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
