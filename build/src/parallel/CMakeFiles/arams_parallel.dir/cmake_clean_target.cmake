file(REMOVE_RECURSE
  "libarams_parallel.a"
)
