# Empty dependencies file for arams_pool.
# This may be replaced when dependencies are built.
