file(REMOVE_RECURSE
  "libarams_pool.a"
)
