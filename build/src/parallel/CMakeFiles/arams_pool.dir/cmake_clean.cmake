file(REMOVE_RECURSE
  "CMakeFiles/arams_pool.dir/thread_pool.cpp.o"
  "CMakeFiles/arams_pool.dir/thread_pool.cpp.o.d"
  "libarams_pool.a"
  "libarams_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
