file(REMOVE_RECURSE
  "libarams_io.a"
)
