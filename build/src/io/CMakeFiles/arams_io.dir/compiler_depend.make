# Empty compiler generated dependencies file for arams_io.
# This may be replaced when dependencies are built.
