file(REMOVE_RECURSE
  "CMakeFiles/arams_io.dir/frames.cpp.o"
  "CMakeFiles/arams_io.dir/frames.cpp.o.d"
  "CMakeFiles/arams_io.dir/npy.cpp.o"
  "CMakeFiles/arams_io.dir/npy.cpp.o.d"
  "libarams_io.a"
  "libarams_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
