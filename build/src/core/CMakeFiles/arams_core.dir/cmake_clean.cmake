file(REMOVE_RECURSE
  "CMakeFiles/arams_core.dir/arams_sketch.cpp.o"
  "CMakeFiles/arams_core.dir/arams_sketch.cpp.o.d"
  "CMakeFiles/arams_core.dir/baselines.cpp.o"
  "CMakeFiles/arams_core.dir/baselines.cpp.o.d"
  "CMakeFiles/arams_core.dir/error_tracker.cpp.o"
  "CMakeFiles/arams_core.dir/error_tracker.cpp.o.d"
  "CMakeFiles/arams_core.dir/fd.cpp.o"
  "CMakeFiles/arams_core.dir/fd.cpp.o.d"
  "CMakeFiles/arams_core.dir/merge.cpp.o"
  "CMakeFiles/arams_core.dir/merge.cpp.o.d"
  "CMakeFiles/arams_core.dir/priority_sampler.cpp.o"
  "CMakeFiles/arams_core.dir/priority_sampler.cpp.o.d"
  "CMakeFiles/arams_core.dir/rank_adaptive.cpp.o"
  "CMakeFiles/arams_core.dir/rank_adaptive.cpp.o.d"
  "libarams_core.a"
  "libarams_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
