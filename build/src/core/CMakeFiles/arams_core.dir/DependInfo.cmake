
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arams_sketch.cpp" "src/core/CMakeFiles/arams_core.dir/arams_sketch.cpp.o" "gcc" "src/core/CMakeFiles/arams_core.dir/arams_sketch.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/arams_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/arams_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/error_tracker.cpp" "src/core/CMakeFiles/arams_core.dir/error_tracker.cpp.o" "gcc" "src/core/CMakeFiles/arams_core.dir/error_tracker.cpp.o.d"
  "/root/repo/src/core/fd.cpp" "src/core/CMakeFiles/arams_core.dir/fd.cpp.o" "gcc" "src/core/CMakeFiles/arams_core.dir/fd.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/core/CMakeFiles/arams_core.dir/merge.cpp.o" "gcc" "src/core/CMakeFiles/arams_core.dir/merge.cpp.o.d"
  "/root/repo/src/core/priority_sampler.cpp" "src/core/CMakeFiles/arams_core.dir/priority_sampler.cpp.o" "gcc" "src/core/CMakeFiles/arams_core.dir/priority_sampler.cpp.o.d"
  "/root/repo/src/core/rank_adaptive.cpp" "src/core/CMakeFiles/arams_core.dir/rank_adaptive.cpp.o" "gcc" "src/core/CMakeFiles/arams_core.dir/rank_adaptive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/arams_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/arams_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/arams_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/arams_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/arams_pool.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
