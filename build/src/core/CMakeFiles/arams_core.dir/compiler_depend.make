# Empty compiler generated dependencies file for arams_core.
# This may be replaced when dependencies are built.
