file(REMOVE_RECURSE
  "libarams_core.a"
)
