# Empty compiler generated dependencies file for arams_image.
# This may be replaced when dependencies are built.
