file(REMOVE_RECURSE
  "libarams_image.a"
)
