file(REMOVE_RECURSE
  "CMakeFiles/arams_image.dir/calibration.cpp.o"
  "CMakeFiles/arams_image.dir/calibration.cpp.o.d"
  "CMakeFiles/arams_image.dir/frame_stats.cpp.o"
  "CMakeFiles/arams_image.dir/frame_stats.cpp.o.d"
  "CMakeFiles/arams_image.dir/image.cpp.o"
  "CMakeFiles/arams_image.dir/image.cpp.o.d"
  "CMakeFiles/arams_image.dir/preprocess.cpp.o"
  "CMakeFiles/arams_image.dir/preprocess.cpp.o.d"
  "CMakeFiles/arams_image.dir/radial.cpp.o"
  "CMakeFiles/arams_image.dir/radial.cpp.o.d"
  "libarams_image.a"
  "libarams_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
