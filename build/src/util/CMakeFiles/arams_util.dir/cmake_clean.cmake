file(REMOVE_RECURSE
  "CMakeFiles/arams_util.dir/check.cpp.o"
  "CMakeFiles/arams_util.dir/check.cpp.o.d"
  "CMakeFiles/arams_util.dir/cli.cpp.o"
  "CMakeFiles/arams_util.dir/cli.cpp.o.d"
  "CMakeFiles/arams_util.dir/csv.cpp.o"
  "CMakeFiles/arams_util.dir/csv.cpp.o.d"
  "CMakeFiles/arams_util.dir/log.cpp.o"
  "CMakeFiles/arams_util.dir/log.cpp.o.d"
  "CMakeFiles/arams_util.dir/stopwatch.cpp.o"
  "CMakeFiles/arams_util.dir/stopwatch.cpp.o.d"
  "libarams_util.a"
  "libarams_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
