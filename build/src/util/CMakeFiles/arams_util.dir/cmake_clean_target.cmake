file(REMOVE_RECURSE
  "libarams_util.a"
)
