# Empty dependencies file for arams_util.
# This may be replaced when dependencies are built.
