# Empty compiler generated dependencies file for daq_event_builder.
# This may be replaced when dependencies are built.
