file(REMOVE_RECURSE
  "CMakeFiles/daq_event_builder.dir/daq_event_builder.cpp.o"
  "CMakeFiles/daq_event_builder.dir/daq_event_builder.cpp.o.d"
  "daq_event_builder"
  "daq_event_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daq_event_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
