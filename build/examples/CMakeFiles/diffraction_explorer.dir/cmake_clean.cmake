file(REMOVE_RECURSE
  "CMakeFiles/diffraction_explorer.dir/diffraction_explorer.cpp.o"
  "CMakeFiles/diffraction_explorer.dir/diffraction_explorer.cpp.o.d"
  "diffraction_explorer"
  "diffraction_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffraction_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
