# Empty dependencies file for diffraction_explorer.
# This may be replaced when dependencies are built.
