file(REMOVE_RECURSE
  "CMakeFiles/streaming_daq.dir/streaming_daq.cpp.o"
  "CMakeFiles/streaming_daq.dir/streaming_daq.cpp.o.d"
  "streaming_daq"
  "streaming_daq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_daq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
