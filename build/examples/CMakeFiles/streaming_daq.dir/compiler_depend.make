# Empty compiler generated dependencies file for streaming_daq.
# This may be replaced when dependencies are built.
