# Empty dependencies file for xpcs_contrast_monitor.
# This may be replaced when dependencies are built.
