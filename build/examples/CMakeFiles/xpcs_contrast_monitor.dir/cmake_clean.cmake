file(REMOVE_RECURSE
  "CMakeFiles/xpcs_contrast_monitor.dir/xpcs_contrast_monitor.cpp.o"
  "CMakeFiles/xpcs_contrast_monitor.dir/xpcs_contrast_monitor.cpp.o.d"
  "xpcs_contrast_monitor"
  "xpcs_contrast_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpcs_contrast_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
