file(REMOVE_RECURSE
  "CMakeFiles/beam_monitor.dir/beam_monitor.cpp.o"
  "CMakeFiles/beam_monitor.dir/beam_monitor.cpp.o.d"
  "beam_monitor"
  "beam_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
