# Empty dependencies file for beam_monitor.
# This may be replaced when dependencies are built.
