file(REMOVE_RECURSE
  "CMakeFiles/arams_cli.dir/arams_cli.cpp.o"
  "CMakeFiles/arams_cli.dir/arams_cli.cpp.o.d"
  "arams"
  "arams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arams_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
