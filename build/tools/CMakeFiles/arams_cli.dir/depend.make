# Empty dependencies file for arams_cli.
# This may be replaced when dependencies are built.
