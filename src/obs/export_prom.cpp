#include "obs/export_prom.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/build_info.hpp"
#include "obs/health.hpp"
#include "obs/window.hpp"
#include "util/check.hpp"

namespace arams::obs {

std::string prometheus_name(std::string_view name) {
  std::string out = "arams_";
  out.reserve(name.size() + out.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prometheus_counter_name(std::string_view name) {
  std::string prom = prometheus_name(name);
  if (!prom.ends_with("_total")) {
    prom += "_total";
  }
  return prom;
}

std::string prometheus_escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string prometheus_escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

void header(std::ostream& out, const std::string& prom,
            std::string_view raw, const char* type) {
  out << "# HELP " << prom << " arams metric "
      << prometheus_escape_help(raw) << "\n"
      << "# TYPE " << prom << " " << type << "\n";
}

void render_histogram(std::ostream& out, const std::string& prom,
                      std::string_view raw,
                      const std::vector<double>& bounds,
                      const std::vector<long>& buckets, long count,
                      double sum) {
  header(out, prom, raw, "histogram");
  long cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += buckets[i];
    out << prom << "_bucket{le=\"" << bounds[i] << "\"} " << cumulative
        << "\n";
  }
  out << prom << "_bucket{le=\"+Inf\"} " << count << "\n"
      << prom << "_sum " << sum << "\n"
      << prom << "_count " << count << "\n";
}

}  // namespace

void write_prometheus(std::ostream& out, const MetricsRegistry& registry,
                      const HealthMonitor* health) {
  write_build_info_prometheus(out);
  MetricsRegistry::Visitor visitor;
  visitor.on_counter = [&out](const std::string& name, const Counter& c) {
    const std::string prom = prometheus_counter_name(name);
    header(out, prom, name, "counter");
    out << prom << " " << c.value() << "\n";
  };
  visitor.on_gauge = [&out](const std::string& name, const Gauge& g) {
    const std::string prom = prometheus_name(name);
    header(out, prom, name, "gauge");
    out << prom << " " << g.value() << "\n";
  };
  visitor.on_histogram = [&out](const std::string& name,
                                const Histogram& h) {
    render_histogram(out, prometheus_name(name), name, h.upper_bounds(),
                     h.bucket_counts(), h.count(), h.sum());
  };
  visitor.on_ewma = [&out](const std::string& name, const EwmaRate& e) {
    const std::string prom = prometheus_name(name);
    header(out, prom, name, "gauge");
    out << prom << " " << e.rate() << "\n";
    header(out, prom + "_total", name, "counter");
    out << prom << "_total " << e.total() << "\n";
  };
  visitor.on_sliding = [&out](const std::string& name,
                              const SlidingHistogram& s) {
    const std::string prom = prometheus_name(name);
    const WindowStats stats = s.stats();
    header(out, prom, name, "summary");
    out << prom << "{quantile=\"0.5\"} " << stats.p50 << "\n"
        << prom << "{quantile=\"0.95\"} " << stats.p95 << "\n"
        << prom << "{quantile=\"0.99\"} " << stats.p99 << "\n"
        << prom << "_sum " << stats.sum << "\n"
        << prom << "_count " << stats.count << "\n";
    header(out, prom + "_window_rate", name, "gauge");
    out << prom << "_window_rate " << stats.rate << "\n";
  };
  registry.visit(visitor);

  if (health != nullptr) {
    header(out, "arams_health_observed_state",
           "health watchdog state (0 ok, 1 degraded, 2 critical)", "gauge");
    out << "arams_health_observed_state "
        << static_cast<int>(health->state()) << "\n";
    header(out, "arams_health_incidents",
           "state transitions retained in the incident log", "gauge");
    out << "arams_health_incidents " << health->incidents().size() << "\n";
    header(out, "arams_health_transitions_total",
           "health state transitions since start", "counter");
    out << "arams_health_transitions_total " << health->transitions()
        << "\n";
  }
}

PeriodicPublisher::PeriodicPublisher(Config config,
                                     const MetricsRegistry& registry,
                                     const HealthMonitor* health)
    : config_(std::move(config)), registry_(registry), health_(health) {
  ARAMS_CHECK(!config_.path.empty(), "publisher needs an output path");
  ARAMS_CHECK(config_.every >= 1, "publish interval must be >= 1 tick");
}

bool PeriodicPublisher::tick() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++ticks_;
    if (++since_publish_ < config_.every) {
      return false;
    }
    since_publish_ = 0;
  }
  return publish_now();
}

bool PeriodicPublisher::publish_now() {
  // Render outside the lock (visit takes the registry mutex), then swap
  // the snapshot in atomically: a scrape sees the old file or the new one,
  // never a torn write.
  std::ostringstream text;
  write_prometheus(text, registry_, health_);
  const std::string tmp = config_.path + ".tmp";
  bool ok = false;
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << text.str();
    ok = out.good();
  }
  ok = ok && std::rename(tmp.c_str(), config_.path.c_str()) == 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ok) {
    ++publishes_;
  } else {
    ++failures_;
  }
  return ok;
}

long PeriodicPublisher::ticks() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ticks_;
}

long PeriodicPublisher::publishes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return publishes_;
}

long PeriodicPublisher::failures() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return failures_;
}

}  // namespace arams::obs
