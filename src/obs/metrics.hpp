#pragma once
// obs::MetricsRegistry — named counters, gauges and fixed-bucket latency
// histograms for live telemetry.
//
// Concurrency contract: looking a metric up by name takes the registry
// mutex once; the returned reference stays valid for the registry's
// lifetime, so hot paths resolve their metric once (e.g. a function-local
// static) and then record with relaxed atomics only. ThreadPool workers and
// virtual-core shards record concurrently without contending on anything
// but the cache line of the metric itself.

#include <atomic>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace arams::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(long delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] long value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, occupancy, rate).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Default histogram bucket upper bounds for latencies: log-spaced from
/// 1 µs to 10 s (1, 10, 100 µs, 1, 10, 100 ms, 1, 10 s).
std::span<const double> default_latency_bounds();

/// Fixed-bucket histogram. A value lands in the first bucket whose upper
/// bound is >= value; values above every bound land in the overflow bucket.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double value);

  [[nodiscard]] long count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Bucket a value would land in (== upper_bounds().size() → overflow).
  [[nodiscard]] std::size_t bucket_index(double value) const;
  /// Per-bucket counts; one extra trailing entry for overflow.
  [[nodiscard]] std::vector<long> bucket_counts() const;
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<long>[]> buckets_;  // bounds_.size() + 1
  std::atomic<long> count_{0};
  std::atomic<double> sum_{0.0};
};

class EwmaRate;
class SlidingHistogram;

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  /// Finds or creates the named metric. References remain valid for the
  /// registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is consulted only when the name is first registered;
  /// empty → default_latency_bounds().
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds = {});
  /// Windowed metrics (obs/window.hpp). As with histogram(), the shape
  /// parameters are consulted only at first registration.
  EwmaRate& ewma(std::string_view name, double tau_seconds = 10.0);
  SlidingHistogram& sliding_histogram(
      std::string_view name, double window_seconds = 30.0,
      std::size_t epochs = 6, std::span<const double> upper_bounds = {});

  /// Plain-text dump of every metric, sorted by name.
  [[nodiscard]] std::string summary() const;

  /// One JSON object per line:
  ///   {"type":"counter","name":...,"value":...}
  ///   {"type":"gauge","name":...,"value":...}
  ///   {"type":"histogram","name":...,"count":...,"sum":...,
  ///    "bounds":[...],"buckets":[...]}
  ///   {"type":"ewma","name":...,"rate":...,"total":...}
  ///   {"type":"sliding","name":...,"window":...,"count":...,
  ///    "rate":...,"p50":...,"p95":...,"p99":...}
  void write_json_lines(std::ostream& out) const;

  /// Visits every registered metric in name order under the registry
  /// mutex — the enumeration surface the Prometheus exporter renders
  /// from. Callbacks may be empty.
  struct Visitor {
    std::function<void(const std::string&, const Counter&)> on_counter;
    std::function<void(const std::string&, const Gauge&)> on_gauge;
    std::function<void(const std::string&, const Histogram&)> on_histogram;
    std::function<void(const std::string&, const EwmaRate&)> on_ewma;
    std::function<void(const std::string&, const SlidingHistogram&)>
        on_sliding;
  };
  void visit(const Visitor& visitor) const;

  /// Zeroes every metric (keeps registrations) — test isolation.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<EwmaRate>, std::less<>> ewmas_;
  std::map<std::string, std::unique_ptr<SlidingHistogram>, std::less<>>
      slidings_;
};

/// Process-global registry the built-in instrumentation records into.
MetricsRegistry& metrics();

}  // namespace arams::obs
