#include "obs/health.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace arams::obs {

namespace {

/// Escalates `state` to at least `level` and appends the reason.
void raise(HealthState& state, std::string& reason, HealthState level,
           const std::string& why) {
  if (static_cast<int>(level) > static_cast<int>(state)) state = level;
  if (!reason.empty()) reason += "; ";
  reason += why;
}

std::string fmt(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

/// Two-sided threshold check on an instantaneous reading (NaN = skip).
void check_level(HealthState& state, std::string& reason, double value,
                 double degraded, double critical, const char* what) {
  if (std::isnan(value)) return;
  if (!std::isfinite(value) || value >= critical) {
    raise(state, reason, HealthState::kCritical,
          std::string(what) + " " + fmt(value) + " ≥ " + fmt(critical));
  } else if (value >= degraded) {
    raise(state, reason, HealthState::kDegraded,
          std::string(what) + " " + fmt(value) + " ≥ " + fmt(degraded));
  }
}

}  // namespace

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kCritical:
      return "critical";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(const HealthThresholds& thresholds,
                             MetricsRegistry* registry)
    : thresholds_(thresholds) {
  if (registry != nullptr) {
    state_gauge_ = &registry->gauge("health.state");
    transition_counter_ = &registry->counter("health.transitions");
  }
}

HealthState HealthMonitor::classify(std::string& reason) const {
  HealthState state = HealthState::kOk;
  const HealthSample& latest = window_.back();
  const HealthSample& oldest = window_.front();

  check_level(state, reason, latest.sketch_error,
              thresholds_.error_degraded, thresholds_.error_critical,
              "sketch error");
  check_level(state, reason, latest.orthogonality,
              thresholds_.ortho_degraded, thresholds_.ortho_critical,
              "basis orthogonality residual");
  check_level(state, reason, latest.queue_saturation,
              thresholds_.queue_degraded, thresholds_.queue_critical,
              "queue saturation");

  const long frames = latest.frames_seen - oldest.frames_seen;
  if (frames > 0) {
    const double nonfinite_fraction =
        static_cast<double>(latest.frames_nonfinite -
                            oldest.frames_nonfinite) /
        static_cast<double>(frames);
    check_level(state, reason, nonfinite_fraction,
                thresholds_.nonfinite_degraded,
                thresholds_.nonfinite_critical, "non-finite frame fraction");
  }

  const long growths = latest.rank_increases - oldest.rank_increases;
  if (window_.size() > 1 && growths >= thresholds_.rank_growth_degraded) {
    raise(state, reason, HealthState::kDegraded,
          "rank adaptation thrash: " + fmt(static_cast<double>(growths)) +
              " increases in window (ℓ now " +
              fmt(static_cast<double>(latest.rank)) + ")");
  }
  if (reason.empty()) reason = "ok";
  return state;
}

HealthState HealthMonitor::observe(const HealthSample& sample) {
  HealthIncident incident;
  bool transitioned = false;
  HealthState state;
  std::vector<std::function<void(const HealthIncident&)>> callbacks;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    window_.push_back(sample);
    while (window_.size() > std::max<std::size_t>(thresholds_.window, 2)) {
      window_.pop_front();
    }
    std::string reason;
    state = classify(reason);
    if (state != state_) {
      transitioned = true;
      incident = HealthIncident{sample.wall_seconds, state_, state, reason};
      incidents_.push_back(incident);
      while (incidents_.size() > thresholds_.max_incidents) {
        incidents_.pop_front();
      }
      ++transitions_;
      state_ = state;
      callbacks = callbacks_;  // fire outside the lock
    }
    reason_ = std::move(reason);
  }
  if (state_gauge_ != nullptr) {
    state_gauge_->set(static_cast<double>(static_cast<int>(state)));
  }
  if (transitioned) {
    if (transition_counter_ != nullptr) transition_counter_->add(1);
    for (const auto& callback : callbacks) callback(incident);
  }
  return state;
}

HealthState HealthMonitor::state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

std::string HealthMonitor::state_reason() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return reason_;
}

long HealthMonitor::transitions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return transitions_;
}

std::vector<HealthIncident> HealthMonitor::incidents() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {incidents_.begin(), incidents_.end()};
}

void HealthMonitor::on_transition(
    std::function<void(const HealthIncident&)> callback) {
  const std::lock_guard<std::mutex> lock(mutex_);
  callbacks_.push_back(std::move(callback));
}

void HealthMonitor::write_incidents_json(std::ostream& out) const {
  for (const HealthIncident& incident : incidents()) {
    std::string reason = incident.reason;
    for (char& c : reason) {
      if (c == '"') c = '\'';
    }
    out << "{\"t\":" << incident.wall_seconds << ",\"from\":\""
        << to_string(incident.from) << "\",\"to\":\""
        << to_string(incident.to) << "\",\"reason\":\"" << reason
        << "\"}\n";
  }
}

}  // namespace arams::obs
