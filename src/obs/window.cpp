#include "obs/window.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/check.hpp"

namespace arams::obs {

double steady_seconds() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

// ---------------------------------------------------------------- EwmaRate

EwmaRate::EwmaRate(double tau_seconds)
    : EwmaRate(tau_seconds, steady_seconds()) {}

EwmaRate::EwmaRate(double tau_seconds, double start_seconds)
    : tau_(tau_seconds), start_(start_seconds) {
  ARAMS_CHECK(tau_seconds > 0.0, "EWMA time constant must be > 0");
  last_fold_ = start_seconds;
}

double EwmaRate::rate(double now_seconds) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const double elapsed = now_seconds - last_fold_;
  if (elapsed < 1e-3) {
    return ewma_;  // denominator too small for a meaningful quotient
  }
  const long pending = pending_.exchange(0, std::memory_order_relaxed);
  folded_total_ += pending;
  const double instantaneous = static_cast<double>(pending) / elapsed;
  if (!primed_) {
    ewma_ = instantaneous;
    primed_ = true;
  } else {
    const double alpha = 1.0 - std::exp(-elapsed / tau_);
    ewma_ += alpha * (instantaneous - ewma_);
  }
  last_fold_ = now_seconds;
  return ewma_;
}

long EwmaRate::total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return folded_total_ + pending_.load(std::memory_order_relaxed);
}

void EwmaRate::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  pending_.store(0, std::memory_order_relaxed);
  ewma_ = 0.0;
  folded_total_ = 0;
  primed_ = false;
  last_fold_ = start_;
}

// -------------------------------------------------------- SlidingHistogram

SlidingHistogram::SlidingHistogram(double window_seconds, std::size_t epochs,
                                   std::span<const double> upper_bounds)
    : SlidingHistogram(window_seconds, epochs, upper_bounds,
                       steady_seconds()) {}

SlidingHistogram::SlidingHistogram(double window_seconds, std::size_t epochs,
                                   std::span<const double> upper_bounds,
                                   double start_seconds)
    : epoch_seconds_(window_seconds / static_cast<double>(
                                          epochs == 0 ? 1 : epochs)),
      current_start_(start_seconds) {
  ARAMS_CHECK(window_seconds > 0.0, "sliding window must be > 0 seconds");
  ARAMS_CHECK(epochs >= 2, "sliding window needs at least 2 epochs");
  if (upper_bounds.empty()) upper_bounds = default_latency_bounds();
  epochs_.reserve(epochs);
  for (std::size_t i = 0; i < epochs; ++i) {
    epochs_.push_back(std::make_unique<Histogram>(upper_bounds));
  }
}

const std::vector<double>& SlidingHistogram::upper_bounds() const {
  return epochs_.front()->upper_bounds();
}

void SlidingHistogram::advance(double now_seconds) const {
  const std::lock_guard<std::mutex> lock(rotate_mutex_);
  if (now_seconds - current_start_ < epoch_seconds_) {
    return;
  }
  // A gap longer than the whole window means every epoch expired.
  if (now_seconds - current_start_ >=
      epoch_seconds_ * static_cast<double>(epochs_.size())) {
    for (const auto& e : epochs_) e->reset();
    current_start_ = now_seconds;
    return;
  }
  while (now_seconds - current_start_ >= epoch_seconds_) {
    const std::size_t next =
        (current_.load(std::memory_order_relaxed) + 1) % epochs_.size();
    epochs_[next]->reset();  // retire the oldest slice before reuse
    current_.store(next, std::memory_order_relaxed);
    current_start_ += epoch_seconds_;
  }
}

double SlidingHistogram::merged(double now_seconds,
                                std::vector<long>& buckets_out,
                                long& count_out, double& sum_out) const {
  advance(now_seconds);
  const std::lock_guard<std::mutex> lock(rotate_mutex_);
  buckets_out.assign(upper_bounds().size() + 1, 0);
  count_out = 0;
  sum_out = 0.0;
  for (const auto& e : epochs_) {
    const std::vector<long> counts = e->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      buckets_out[i] += counts[i];
    }
    count_out += e->count();
    sum_out += e->sum();
  }
  return epoch_seconds_ * static_cast<double>(epochs_.size());
}

std::vector<long> SlidingHistogram::window_buckets(
    double now_seconds) const {
  std::vector<long> buckets;
  long count = 0;
  double sum = 0.0;
  merged(now_seconds, buckets, count, sum);
  return buckets;
}

double bucket_quantile(double q, std::span<const double> upper_bounds,
                       std::span<const long> buckets) {
  long total = 0;
  for (const long c : buckets) total += c;
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  long cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const long in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (i >= upper_bounds.size()) {
        return upper_bounds.empty() ? 0.0 : upper_bounds.back();  // overflow
      }
      const double lo = i == 0 ? 0.0 : upper_bounds[i - 1];
      const double hi = upper_bounds[i];
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + std::clamp(fraction, 0.0, 1.0) * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

double SlidingHistogram::quantile(double q, double now_seconds) const {
  std::vector<long> buckets;
  long count = 0;
  double sum = 0.0;
  merged(now_seconds, buckets, count, sum);
  return bucket_quantile(q, upper_bounds(), buckets);
}

WindowStats SlidingHistogram::stats(double now_seconds) const {
  std::vector<long> buckets;
  WindowStats out;
  double span = merged(now_seconds, buckets, out.count, out.sum);
  out.rate = span > 0.0 ? static_cast<double>(out.count) / span : 0.0;
  out.p50 = bucket_quantile(0.50, upper_bounds(), buckets);
  out.p95 = bucket_quantile(0.95, upper_bounds(), buckets);
  out.p99 = bucket_quantile(0.99, upper_bounds(), buckets);
  return out;
}

void SlidingHistogram::reset() {
  const std::lock_guard<std::mutex> lock(rotate_mutex_);
  for (const auto& e : epochs_) e->reset();
}

}  // namespace arams::obs
