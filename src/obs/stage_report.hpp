#pragma once
// obs::StageReport — the one timing/counter surface every result struct
// embeds. Replaces the ad-hoc `*_seconds` fields plus the
// SketchStats/MergeStats counter bags that used to be scattered across
// AramsResult, PipelineResult and SnapshotResult: stage wall-clock entries
// and named operation counters live side by side, merge additively across
// shards, and export uniformly (text summary or JSON).
//
// Entries keep insertion order so summaries read in pipeline order
// (preprocess → sketch → project → embed → cluster).

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace arams::obs {

struct StageTiming {
  std::string stage;
  double seconds = 0.0;
};

struct StageCounter {
  std::string name;
  long value = 0;
};

class StageReport {
 public:
  /// Overwrites (or creates) a stage's wall-clock entry.
  void set_seconds(std::string_view stage, double seconds);
  /// Accumulates into a stage's wall-clock entry (creates at 0 first).
  void add_seconds(std::string_view stage, double seconds);
  /// Seconds recorded for a stage; 0.0 when the stage never ran.
  [[nodiscard]] double seconds(std::string_view stage) const;
  [[nodiscard]] bool has_stage(std::string_view stage) const;

  void set_counter(std::string_view name, long value);
  void add_counter(std::string_view name, long delta);
  /// Counter value; 0 when never recorded.
  [[nodiscard]] long counter(std::string_view name) const;

  [[nodiscard]] const std::vector<StageTiming>& stages() const {
    return stages_;
  }
  [[nodiscard]] const std::vector<StageCounter>& counters() const {
    return counters_;
  }

  /// Sum of every stage's seconds.
  [[nodiscard]] double total_seconds() const;

  /// Accumulates another report: matching stages/counters add, new ones
  /// append. This is how per-shard reports fold into a pipeline report.
  StageReport& operator+=(const StageReport& other);

  /// Human-readable multi-line dump (stages first, then counters).
  [[nodiscard]] std::string summary() const;

  /// One JSON object: {"stages":{...},"counters":{...}}.
  void write_json(std::ostream& out) const;

 private:
  StageTiming& stage_entry(std::string_view stage);
  StageCounter& counter_entry(std::string_view name);

  std::vector<StageTiming> stages_;
  std::vector<StageCounter> counters_;
};

}  // namespace arams::obs
