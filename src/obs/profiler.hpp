#pragma once
// obs::SamplingProfiler — wall-clock sampling profiler over the span
// stacks every ScopedSpan maintains (obs/trace.hpp).
//
// The tracer answers "how long did this span take"; the profiler answers
// "where does the wall-clock actually go" without requiring every code
// path to be spanned. A background thread wakes every `interval_ms`,
// walks the SpanStackRegistry, and attributes one sample per registered
// thread to that thread's current span chain ("pipeline;sketch"), or to
// "(idle)" when the thread has no span open. Sampling is lock-free on
// the sampled threads — they never know it happened — so the profiler
// can stay on in production.
//
// Output: folded-stack lines ("pipeline;sketch 42") consumable by
// flamegraph.pl / speedscope, and `profile.stage_cpu_fraction.<root>`
// gauges in the metrics registry (published by stop(), or on demand)
// giving the fraction of samples rooted in each top-level span.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace arams::obs {

class MetricsRegistry;

class SamplingProfiler {
 public:
  struct Config {
    double interval_ms = 5.0;  ///< sampling period (>= 0.1 enforced)
  };

  SamplingProfiler();
  explicit SamplingProfiler(Config config);
  ~SamplingProfiler();  ///< stops the sampler thread if still running

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Launches the sampler thread. No-op when already running.
  void start();

  /// Stops and joins the sampler thread, then publishes the
  /// `profile.stage_cpu_fraction.*` gauges. No-op when not running.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Takes one sample of every registered span stack right now. The
  /// sampler thread calls this on its timer; tests and the overhead
  /// benchmark call it directly for determinism.
  void sample_once();

  /// Number of sampling sweeps taken so far.
  [[nodiscard]] std::uint64_t sweeps() const {
    return sweeps_.load(std::memory_order_relaxed);
  }

  /// Total per-thread samples attributed (>= sweeps(); one per
  /// registered thread per sweep), including "(idle)".
  [[nodiscard]] std::uint64_t samples() const;

  /// Folded-stack lines ("a;b;c 42"), sorted by stack, one per line —
  /// flamegraph.pl-compatible.
  void write_folded(std::ostream& out) const;

  /// Fraction of samples whose root frame is `root` (0 when no samples).
  [[nodiscard]] double root_fraction(std::string_view root) const;

  /// Writes `profile.stage_cpu_fraction.<root>` gauges (plus the
  /// `profile.samples` counter delta) into `registry` for every root
  /// frame observed, "(idle)" included as `profile.stage_cpu_fraction.idle`.
  void publish_gauges(MetricsRegistry& registry) const;
  void publish_gauges() const;  ///< into the global obs::metrics()

 private:
  void sampler_loop();

  Config config_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> sweeps_{0};
  std::thread thread_;
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> folded_;  ///< "a;b;c" → samples
  mutable std::uint64_t published_samples_ = 0;  ///< counter delta basis
};

}  // namespace arams::obs
