#pragma once
// obs::FlightRecorder — the black-box journal for unattended streaming
// runs.
//
// The detector stream is non-replayable: when a run crashes or degrades,
// the only record of the seconds *before* the incident is whatever the
// process journaled as it went. This is the write side of that black box:
// an always-on, per-thread, fixed-size-record ring. Each thread owns its
// ring exclusively for writes (no CAS, no lock, no false sharing between
// producers), so record() is a handful of relaxed atomic stores —
// benchmarked in bench/micro_obs.cpp at well under the 50 ns budget that
// lets it sit on the ingest hot path next to the metrics counters.
//
// The read side (drain / tail / dump) merges every thread's ring by
// timestamp. Readers run concurrently with writers: each slot carries a
// sequence number written *last* with release ordering, so a reader that
// observes a slot mid-overwrite detects the torn read and drops that one
// record — telemetry-grade accuracy, never corruption, and clean under
// TSan because every shared field is an atomic.
//
// The post-mortem writer (obs/postmortem.hpp) reads the same rings from a
// signal handler, which is why the global journal registry is a fixed
// array appended with an atomic counter instead of a mutex-guarded map:
// the crash path takes no locks and allocates nothing.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace arams::obs {

/// What happened — the fixed vocabulary of the journal. Codes are stable
/// small integers (they appear in post-mortem files); names come from
/// flight_code_name(). Documented in docs/TELEMETRY.md (lint-enforced by
/// tools/check_metrics_doc.sh).
enum class FlightCode : std::uint32_t {
  kFrameIngested = 1,     ///< shot accepted into the batch/reservoir
  kFrameRejected = 2,     ///< shot dropped (non-finite pixels); value = total rejected
  kBatchSketched = 3,     ///< sketch update ran; value = batch seconds
  kRankChange = 4,        ///< adaptive rank moved; value = new ell
  kQueueSaturation = 5,   ///< DAQ queue crossed the watch level; value = fraction
  kHealthTransition = 6,  ///< watchdog state changed; value = new state (0/1/2)
  kSnapshot = 7,          ///< embedding snapshot produced; value = seconds
  kStageComplete = 8,     ///< pipeline stage finished; detail = stage, value = seconds
  kCrash = 9,             ///< post-mortem dump started; value = signal number
  kCustom = 10,           ///< caller-defined (tests, examples)
};

/// Stable lowercase name for a code ("frame_rejected", ...); "unknown"
/// for values outside the vocabulary. Async-signal-safe (returns string
/// literals).
const char* flight_code_name(FlightCode code);

/// Pipeline stage indices for kStageComplete's detail field.
enum class FlightStage : std::uint32_t {
  kPreprocess = 1,
  kSketch = 2,
  kProject = 3,
  kEmbed = 4,
  kCluster = 5,
};

const char* flight_stage_name(FlightStage stage);

/// One drained journal entry (the reader-side view of a ring slot).
struct FlightEvent {
  double t_seconds = 0.0;       ///< steady_seconds() timestamp
  std::uint64_t shot_id = 0;
  FlightCode code = FlightCode::kCustom;
  std::uint32_t detail = 0;     ///< code-specific (stage index, state, ...)
  double value = 0.0;           ///< code-specific scalar
  std::uint64_t thread = 0;     ///< journal (thread) ordinal, not a TID
};

namespace detail {

/// One ring slot. Fields are individually-atomic (relaxed) so concurrent
/// reader/writer access is defined behaviour; `seq` is stored last with
/// release ordering and holds 1 + the global record ordinal, so a reader
/// can tell whether the payload it copied belongs to the sequence number
/// it sampled.
struct FlightSlot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> t_bits{0};      ///< bit_cast of t_seconds
  std::atomic<std::uint64_t> shot{0};
  std::atomic<std::uint64_t> code_detail{0}; ///< code << 32 | detail
  std::atomic<std::uint64_t> value_bits{0};  ///< bit_cast of value
};

/// A thread's private ring. Writes come only from the owning thread;
/// reads may come from any thread (drain, crash dump).
class FlightJournal {
 public:
  explicit FlightJournal(std::size_t capacity_pow2, std::uint64_t ordinal);

  void record(double t, FlightCode code, std::uint64_t shot,
              std::uint32_t detail_arg, double value);

  /// Copies the valid slots into `out` (appends). Torn slots are skipped.
  void read_into(std::vector<FlightEvent>& out) const;

  [[nodiscard]] std::uint64_t records_written() const {
    return next_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::uint64_t ordinal() const { return ordinal_; }

  /// Signal-safe raw access for the post-mortem writer: slot i of the
  /// ring, and the next write position. No allocation, no locks.
  [[nodiscard]] const FlightSlot& slot(std::size_t i) const {
    return slots_[i];
  }

 private:
  std::vector<FlightSlot> slots_;  // allocated once at registration
  std::atomic<std::uint64_t> next_{0};
  std::uint64_t ordinal_ = 0;
};

}  // namespace detail

/// Process-global black box. Threads register lazily on first record();
/// journals live until process exit (a finished thread's tail remains
/// readable — that is the point of a flight recorder).
class FlightRecorder {
 public:
  static constexpr std::size_t kMaxJournals = 256;
  static constexpr std::size_t kDefaultCapacity = 4096;  ///< per thread

  /// Journals the event into the calling thread's ring. Always on by
  /// default; disable() turns the call into one relaxed load (tests,
  /// overhead experiments).
  void record(FlightCode code, std::uint64_t shot_id = 0,
              std::uint32_t detail = 0, double value = 0.0);

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Per-thread ring capacity for journals registered *after* this call
  /// (rounded up to a power of two; existing rings keep their size).
  void set_thread_capacity(std::size_t records);

  /// Merge-on-drain: every journal's valid slots, sorted by timestamp.
  /// Concurrent-safe; racing writers may make the newest few events
  /// appear or not.
  [[nodiscard]] std::vector<FlightEvent> drain() const;

  /// The trailing `max_events` of drain() — the black-box tail a
  /// post-mortem embeds.
  [[nodiscard]] std::vector<FlightEvent> tail(std::size_t max_events) const;

  /// Lifetime records across all journals (including overwritten ones).
  [[nodiscard]] std::uint64_t total_recorded() const;
  [[nodiscard]] std::size_t journal_count() const {
    return journal_count_.load(std::memory_order_acquire);
  }

  /// One JSON object per event per line:
  ///   {"t":1.25,"code":"frame_rejected","shot":412,"detail":0,
  ///    "value":3,"thread":0}
  void write_json_lines(std::ostream& out) const;

  /// Signal-safe section writer: formats the tail directly to a file
  /// descriptor with no allocation or locking (used by the crash
  /// handler). Returns the number of events written.
  std::size_t write_tail_fd(int fd, std::size_t max_events) const;

  /// Registry access for the post-mortem writer.
  [[nodiscard]] const detail::FlightJournal* journal(std::size_t i) const;

 private:
  friend FlightRecorder& flight_recorder();
  FlightRecorder() = default;

  detail::FlightJournal& journal_for_this_thread();

  std::atomic<bool> enabled_{true};
  std::atomic<std::size_t> capacity_{kDefaultCapacity};
  std::array<std::atomic<detail::FlightJournal*>, kMaxJournals> journals_{};
  std::atomic<std::size_t> journal_count_{0};
};

/// The process-global recorder every instrumentation point records into.
FlightRecorder& flight_recorder();

}  // namespace arams::obs
