#include "obs/stage_report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace arams::obs {

namespace {

/// JSON string escape for stage/counter names (they are plain identifiers
/// in practice, but exporters must never emit invalid JSON).
void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

StageTiming& StageReport::stage_entry(std::string_view stage) {
  const auto it = std::find_if(
      stages_.begin(), stages_.end(),
      [stage](const StageTiming& t) { return t.stage == stage; });
  if (it != stages_.end()) return *it;
  stages_.push_back(StageTiming{std::string(stage), 0.0});
  return stages_.back();
}

StageCounter& StageReport::counter_entry(std::string_view name) {
  const auto it = std::find_if(
      counters_.begin(), counters_.end(),
      [name](const StageCounter& c) { return c.name == name; });
  if (it != counters_.end()) return *it;
  counters_.push_back(StageCounter{std::string(name), 0});
  return counters_.back();
}

void StageReport::set_seconds(std::string_view stage, double seconds) {
  stage_entry(stage).seconds = seconds;
}

void StageReport::add_seconds(std::string_view stage, double seconds) {
  stage_entry(stage).seconds += seconds;
}

double StageReport::seconds(std::string_view stage) const {
  for (const auto& t : stages_) {
    if (t.stage == stage) return t.seconds;
  }
  return 0.0;
}

bool StageReport::has_stage(std::string_view stage) const {
  return std::any_of(
      stages_.begin(), stages_.end(),
      [stage](const StageTiming& t) { return t.stage == stage; });
}

void StageReport::set_counter(std::string_view name, long value) {
  counter_entry(name).value = value;
}

void StageReport::add_counter(std::string_view name, long delta) {
  counter_entry(name).value += delta;
}

long StageReport::counter(std::string_view name) const {
  for (const auto& c : counters_) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double StageReport::total_seconds() const {
  double total = 0.0;
  for (const auto& t : stages_) total += t.seconds;
  return total;
}

StageReport& StageReport::operator+=(const StageReport& other) {
  for (const auto& t : other.stages_) {
    add_seconds(t.stage, t.seconds);
  }
  for (const auto& c : other.counters_) {
    add_counter(c.name, c.value);
  }
  return *this;
}

std::string StageReport::summary() const {
  std::ostringstream out;
  out << "stages:\n";
  for (const auto& t : stages_) {
    out << "  " << t.stage << ": " << t.seconds << " s\n";
  }
  out << "counters:\n";
  for (const auto& c : counters_) {
    out << "  " << c.name << ": " << c.value << "\n";
  }
  return out.str();
}

void StageReport::write_json(std::ostream& out) const {
  out << "{\"stages\":{";
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i != 0) out << ",";
    write_json_string(out, stages_[i].stage);
    out << ":" << stages_[i].seconds;
  }
  out << "},\"counters\":{";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i != 0) out << ",";
    write_json_string(out, counters_[i].name);
    out << ":" << counters_[i].value;
  }
  out << "}}";
}

}  // namespace arams::obs
