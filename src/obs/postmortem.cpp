#include "obs/postmortem.hpp"

#include <execinfo.h>
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <istream>
#include <sstream>
#include <string>

#include "obs/build_info.hpp"
#include "obs/export_prom.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/signal_safe.hpp"
#include "obs/window.hpp"

namespace arams::obs {
namespace {

constexpr std::size_t kDirCapacity = 512;
constexpr std::size_t kPathCapacity = kDirCapacity + 128;
constexpr std::size_t kSnapshotCapacity = 48 * 1024;

char g_dir[kDirCapacity] = ".";
std::atomic<const MetricsRegistry*> g_registry{nullptr};
std::atomic<const HealthMonitor*> g_health{nullptr};

// Double-buffered pre-rendered snapshot text. refresh() renders into the
// inactive buffer and publishes the index; the signal path only ever
// copies whichever buffer the index names. A refresh racing a crash can
// at worst hand the handler the previous (complete) snapshot.
struct SnapshotBuffers {
  char metrics[kSnapshotCapacity];
  char health[kSnapshotCapacity];
};
SnapshotBuffers g_snapshots[2];
std::atomic<int> g_snapshot_index{-1};  // -1 → never refreshed

char g_last_path[kPathCapacity] = "";
std::atomic<int> g_dump_seq{0};      // filename sequence (attempts)
std::atomic<int> g_dumps_written{0};
std::atomic<bool> g_crash_dumped{false};
std::atomic<bool> g_installed{false};
std::atomic<bool> g_autodump{false};
std::terminate_handler g_prev_terminate = nullptr;

void copy_block(char* dst, std::size_t cap, const std::string& src) {
  static constexpr char kMark[] = "\n...(truncated)\n";
  const std::size_t take = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), take);
  if (take < src.size()) {
    constexpr std::size_t mark_len = sizeof(kMark) - 1;
    std::memcpy(dst + take - mark_len, kMark, mark_len);
  }
  dst[take] = '\0';
}

/// Writes a pre-rendered block, guaranteeing a trailing newline so the
/// next section marker starts a fresh line.
void write_block(int fd, const char* text) {
  const std::size_t len = std::strlen(text);
  if (len == 0) {
    sigsafe::write_str(fd, "(empty)\n");
    return;
  }
  sigsafe::write_all(fd, text, len);
  if (text[len - 1] != '\n') {
    sigsafe::write_str(fd, "\n");
  }
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
    case SIGBUS: return "SIGBUS";
  }
  return "signal";
}

void crash_handler(int sig) {
  // First crasher dumps; everyone (including re-entry) re-raises with the
  // default disposition so the process still dies with the right status.
  if (!g_crash_dumped.exchange(true, std::memory_order_acq_rel)) {
    dump_postmortem_now(signal_name(sig));
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

[[noreturn]] void terminate_hook() {
  // Runs in ordinary (non-signal) context, so the dump it takes still
  // benefits from whatever the last refresh rendered. The abort below
  // raises SIGABRT; crash_handler sees the dumped flag and just re-raises.
  if (!g_crash_dumped.exchange(true, std::memory_order_acq_rel)) {
    dump_postmortem_now("terminate");
  }
  if (g_prev_terminate != nullptr && g_prev_terminate != terminate_hook) {
    g_prev_terminate();
  }
  std::abort();
}

}  // namespace

void configure_postmortem(const PostmortemConfig& config) {
  if (config.dir.empty()) {
    g_dir[0] = '.';
    g_dir[1] = '\0';
  } else {
    const std::size_t take = std::min(config.dir.size(), kDirCapacity - 1);
    std::memcpy(g_dir, config.dir.data(), take);
    g_dir[take] = '\0';
  }
  g_registry.store(config.registry, std::memory_order_release);
  g_health.store(config.health, std::memory_order_release);
  g_autodump.store(config.autodump_on_critical, std::memory_order_release);
}

bool postmortem_autodump_enabled() {
  return g_autodump.load(std::memory_order_acquire);
}

void install_postmortem_handlers() {
  if (g_installed.exchange(true, std::memory_order_acq_rel)) return;

  // backtrace() lazily loads libgcc on first use; take that allocation
  // now, while the heap is still trustworthy.
  void* warm[4];
  ::backtrace(warm, 4);

  // A SIGSEGV from stack exhaustion cannot run its handler on the dead
  // stack; give the handlers their own.
  static char alt_stack[64 * 1024];
  stack_t ss{};
  ss.ss_sp = alt_stack;
  ss.ss_size = sizeof alt_stack;
  ss.ss_flags = 0;
  ::sigaltstack(&ss, nullptr);

  struct sigaction sa{};
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_ONSTACK | SA_RESETHAND;
  for (const int sig : {SIGSEGV, SIGABRT, SIGFPE, SIGBUS}) {
    ::sigaction(sig, &sa, nullptr);
  }

  g_prev_terminate = std::set_terminate(terminate_hook);
}

void refresh_postmortem_snapshot() {
  const MetricsRegistry* registry =
      g_registry.load(std::memory_order_acquire);
  const HealthMonitor* health = g_health.load(std::memory_order_acquire);

  std::ostringstream prom;
  write_prometheus(prom, registry != nullptr ? *registry : metrics(),
                   health);
  std::ostringstream incidents;
  if (health != nullptr) {
    health->write_incidents_json(incidents);
  } else {
    incidents << "(no health monitor attached)\n";
  }

  const int next =
      1 - std::max(g_snapshot_index.load(std::memory_order_acquire), 0);
  copy_block(g_snapshots[next].metrics, kSnapshotCapacity, prom.str());
  copy_block(g_snapshots[next].health, kSnapshotCapacity, incidents.str());
  g_snapshot_index.store(next, std::memory_order_release);
}

bool dump_postmortem_now(const char* reason) {
  using sigsafe::append;
  using sigsafe::format_fixed6;
  using sigsafe::format_u64;
  using sigsafe::write_all;
  using sigsafe::write_str;

  const int seq = g_dump_seq.fetch_add(1, std::memory_order_acq_rel);

  char path[kPathCapacity];
  std::size_t n = 0;
  n = append(path, n, sizeof path - 1, g_dir);
  n = append(path, n, sizeof path - 1, "/postmortem-");
  n += format_u64(path + n, static_cast<std::uint64_t>(::getpid()));
  n = append(path, n, sizeof path - 1, "-");
  n += format_u64(path + n, static_cast<std::uint64_t>(seq));
  n = append(path, n, sizeof path - 1, ".txt");
  path[n] = '\0';

  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  write_str(fd, "ARAMS-POSTMORTEM v1\n");
  write_str(fd, "reason=");
  write_str(fd, reason != nullptr ? reason : "unknown");

  char num[32];
  write_str(fd, "\npid=");
  write_all(fd, num, format_u64(num, static_cast<std::uint64_t>(::getpid())));
  write_str(fd, "\nuptime=");
  write_all(fd, num, format_fixed6(num, steady_seconds()));

  const BuildInfo& info = build_info();
  write_str(fd, "\nbuild=version=");
  write_str(fd, info.version);
  write_str(fd, " git=");
  write_str(fd, info.git);
  write_str(fd, " compiler=");
  write_str(fd, info.compiler);
  write_str(fd, " march=");
  write_str(fd, info.march);
  write_str(fd, " sanitize=");
  write_str(fd, info.sanitize);
  write_str(fd, " build=");
  write_str(fd, info.build_type);

  write_str(fd, "\n[backtrace]\n");
  void* frames[64];
  const int depth = ::backtrace(frames, 64);
  if (depth > 0) {
    ::backtrace_symbols_fd(frames, depth, fd);
  } else {
    write_str(fd, "(backtrace unavailable)\n");
  }

  write_str(fd, "[flight-recorder]\n");
  flight_recorder().write_tail_fd(fd, 64);

  const int idx = g_snapshot_index.load(std::memory_order_acquire);
  write_str(fd, "[metrics]\n");
  write_block(fd, idx >= 0 ? g_snapshots[idx].metrics
                           : "(no snapshot refreshed)");
  write_str(fd, "[health]\n");
  write_block(fd, idx >= 0 ? g_snapshots[idx].health
                           : "(no snapshot refreshed)");

  write_str(fd, "[end]\n");
  ::close(fd);

  std::memcpy(g_last_path, path, n + 1);
  g_dumps_written.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

const char* last_postmortem_path() { return g_last_path; }

int postmortem_dump_count() {
  return g_dumps_written.load(std::memory_order_acquire);
}

bool parse_postmortem(std::istream& in, PostmortemReport& report,
                      std::string* error) {
  const auto fail = [error](const char* message) {
    if (error != nullptr) *error = message;
    return false;
  };
  std::string line;
  if (!std::getline(in, line)) return fail("empty file");
  if (line != "ARAMS-POSTMORTEM v1") return fail("bad magic line");
  report.version = 1;

  std::vector<std::string>* section = nullptr;
  while (std::getline(in, line)) {
    if (line == "[backtrace]") { section = &report.backtrace; continue; }
    if (line == "[flight-recorder]") {
      section = &report.flight_lines;
      continue;
    }
    if (line == "[metrics]") { section = &report.metrics_lines; continue; }
    if (line == "[health]") { section = &report.health_lines; continue; }
    if (line == "[end]") {
      report.complete = true;
      section = nullptr;
      continue;
    }
    if (section != nullptr) {
      section->push_back(line);
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;  // tolerate future headers
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "reason") {
      report.reason = value;
    } else if (key == "pid") {
      report.pid = value;
    } else if (key == "uptime") {
      report.uptime = value;
    } else if (key == "build") {
      report.build = value;
    }
  }
  return true;
}

bool validate_postmortem(const PostmortemReport& report,
                         std::string* error) {
  const auto fail = [error](const char* message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (report.version != 1) return fail("unsupported format version");
  if (report.reason.empty()) return fail("missing reason header");
  if (report.build.empty()) return fail("missing build header");
  if (report.backtrace.empty()) return fail("empty [backtrace] section");
  if (report.flight_lines.empty()) {
    return fail("empty [flight-recorder] section");
  }
  if (report.metrics_lines.empty()) return fail("empty [metrics] section");
  if (report.health_lines.empty()) return fail("empty [health] section");
  if (!report.complete) return fail("missing [end] marker (truncated dump)");
  return true;
}

}  // namespace arams::obs
