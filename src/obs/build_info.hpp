#pragma once
// obs::build_info — the provenance stamp of the running binary.
//
// A post-mortem file or a Prometheus scrape is only interpretable when it
// says *which* build produced it: version, git describe, compiler, the
// hot-kernel ISA the configure probe selected, and whether a sanitizer
// lane was active (sanitized timings are not comparable to release
// timings). The values are baked in at configure time by
// src/obs/CMakeLists.txt; everything here is static data, so the crash
// path can print it without allocation.

#include <iosfwd>
#include <string>

namespace arams::obs {

struct BuildInfo {
  const char* version;    ///< project version (CMake)
  const char* git;        ///< `git describe --always --dirty` at configure
  const char* compiler;   ///< compiler id + version
  const char* march;      ///< hot-kernel ISA flags ("baseline" when none)
  const char* sanitize;   ///< ARAMS_SANITIZE list ("none" when empty)
  const char* build_type; ///< CMAKE_BUILD_TYPE
};

/// The stamp for this binary. All fields are string literals baked at
/// compile time (async-signal-safe to read and print).
const BuildInfo& build_info();

/// "version=… git=… compiler=… march=… sanitize=… build=…" on one line.
std::string build_info_line();

/// The `arams_build_info` gauge in Prometheus text exposition: a constant
/// `1` gauge whose labels carry the stamp, label values escaped per the
/// exposition format.
void write_build_info_prometheus(std::ostream& out);

}  // namespace arams::obs
