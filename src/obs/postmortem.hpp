#pragma once
// obs::postmortem — crash forensics for an unattended beamline process.
//
// When the pipeline dies mid-run (SIGSEGV/SIGABRT/SIGFPE/SIGBUS or an
// uncaught exception reaching std::terminate), the on-call shifter gets a
// single self-describing text file instead of a silent core: the flight
// recorder tail (what the process was *doing*), a metrics snapshot (what
// it was *measuring*), the health incident log (what the watchdog already
// *suspected*) and a backtrace (where it *stopped*). The same dump can be
// taken voluntarily — dump_now() — which the streaming monitor wires to
// the watchdog's CRITICAL transition so degradation is snapshotted even
// when the process survives.
//
// Signal-path discipline: the handler only calls the sigsafe helpers and
// write(2)/open(2)/backtrace_symbols_fd. Anything that would need a lock
// or the heap (rendering the metrics registry, the incident log) is
// pre-rendered by refresh_postmortem_snapshot() into static
// double-buffered text blocks that the handler copies verbatim; the
// streaming monitor refreshes them once per sketch batch, so the crash
// file shows state at most one batch stale.
//
// File format (versioned, line-oriented — `arams doctor` parses it):
//
//   ARAMS-POSTMORTEM v1
//   reason=<signal name | terminate | manual reason>
//   pid=<pid>
//   uptime=<seconds since process start, fixed 6>
//   build=<obs::build_info_line()>
//   [backtrace]   ...one frame per line...
//   [flight-recorder]   ...newest-first tail, `t= code= shot= d= v= tid=`...
//   [metrics]   ...Prometheus text exposition at last refresh...
//   [health]    ...incident log JSON at last refresh...
//   [end]
//
// A file without the trailing `[end]` was truncated by the crash itself.

#include <iosfwd>
#include <string>
#include <vector>

namespace arams::obs {

class HealthMonitor;
class MetricsRegistry;

struct PostmortemConfig {
  std::string dir = ".";  ///< where dump files land
  const MetricsRegistry* registry = nullptr;  ///< null → obs::metrics()
  const HealthMonitor* health = nullptr;      ///< optional incident source
  /// Arms the watchdog hook: when true, the streaming monitor dumps a
  /// post-mortem on every transition *into* CRITICAL. Off by default so
  /// library users (and tests) never find surprise files in their cwd.
  bool autodump_on_critical = false;
};

/// Sets the output directory and snapshot sources. Safe to call again to
/// re-point; takes an internal copy of the dir (the signal path never
/// touches std::string).
void configure_postmortem(const PostmortemConfig& config);

/// Installs the SIGSEGV/SIGABRT/SIGFPE/SIGBUS handlers (on an alternate
/// stack) and the std::terminate hook. Idempotent. Also warms the
/// backtrace machinery so the first crash-time call cannot allocate.
void install_postmortem_handlers();

/// Re-renders the metrics + health snapshot blocks the signal handler
/// dumps. Ordinary (locking, allocating) code — call it from the
/// processing loop, never from a handler.
void refresh_postmortem_snapshot();

/// Writes one post-mortem file now and returns true on success.
/// Async-signal-safe: the handlers call this, and so may ordinary code
/// (the watchdog CRITICAL hook). Each call gets a fresh
/// `postmortem-<pid>-<seq>.txt` in the configured dir.
bool dump_postmortem_now(const char* reason);

/// Whether configure_postmortem() armed the CRITICAL autodump.
bool postmortem_autodump_enabled();

/// Path of the most recently written dump ("" before the first one).
/// Points into static storage.
const char* last_postmortem_path();

/// Number of dumps written since process start.
int postmortem_dump_count();

/// Parsed form of a post-mortem file.
struct PostmortemReport {
  int version = 0;
  std::string reason;
  std::string pid;
  std::string uptime;
  std::string build;
  std::vector<std::string> backtrace;
  std::vector<std::string> flight_lines;
  std::vector<std::string> metrics_lines;
  std::vector<std::string> health_lines;
  bool complete = false;  ///< saw the trailing [end] marker
};

/// Parses the v1 format. Returns false (with a message in `error` when
/// given) on malformed input; a missing [end] still parses, with
/// `complete == false`, so doctors can inspect truncated dumps.
bool parse_postmortem(std::istream& in, PostmortemReport& report,
                      std::string* error = nullptr);

/// Checks a parsed report for forensic usability: version 1, a reason, a
/// build stamp, all four sections non-empty, and the [end] marker.
bool validate_postmortem(const PostmortemReport& report,
                         std::string* error = nullptr);

}  // namespace arams::obs
