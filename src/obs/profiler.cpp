#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace arams::obs {

namespace {

/// Root frame of a folded stack ("a;b;c" → "a").
std::string_view root_of(std::string_view stack) {
  const std::size_t semi = stack.find(';');
  return semi == std::string_view::npos ? stack : stack.substr(0, semi);
}

/// "(idle)" → "idle"; other roots pass through (the Prometheus name
/// sanitizer handles any remaining odd bytes).
std::string root_metric_suffix(std::string_view root) {
  if (root == "(idle)") return "idle";
  return std::string(root);
}

}  // namespace

SamplingProfiler::SamplingProfiler() : SamplingProfiler(Config{}) {}

SamplingProfiler::SamplingProfiler(Config config) : config_(config) {
  config_.interval_ms = std::max(config_.interval_ms, 0.1);
}

SamplingProfiler::~SamplingProfiler() {
  if (running()) stop();
}

void SamplingProfiler::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  thread_ = std::thread([this] { sampler_loop(); });
}

void SamplingProfiler::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
  publish_gauges();
}

void SamplingProfiler::sampler_loop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(config_.interval_ms));
  while (running_.load(std::memory_order_acquire)) {
    sample_once();
    std::this_thread::sleep_for(interval);
  }
}

void SamplingProfiler::sample_once() {
  // Walk every registered thread's span stack without touching the
  // sampled threads: read the release-published depth, then the frames
  // below it. A racing push/pop can hand us a one-frame-stale chain —
  // telemetry-grade attribution, by design (see trace.hpp).
  const SpanStackRegistry& registry = span_stacks();
  const std::size_t count = registry.size();
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const SpanStack* stack = registry.stack(i);
    if (stack == nullptr) continue;
    int depth = stack->depth.load(std::memory_order_acquire);
    depth = std::clamp(depth, 0, SpanStack::kMaxDepth);
    std::string key;
    for (int d = 0; d < depth; ++d) {
      const char* frame =
          stack->frames[static_cast<std::size_t>(d)].load(
              std::memory_order_relaxed);
      if (frame == nullptr) break;  // torn read below a racing pop
      if (!key.empty()) key.push_back(';');
      key += frame;
    }
    if (key.empty()) key = "(idle)";
    keys.push_back(std::move(key));
  }
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::string& key : keys) {
    ++folded_[std::move(key)];
  }
}

std::uint64_t SamplingProfiler::samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [stack, count] : folded_) total += count;
  return total;
}

void SamplingProfiler::write_folded(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [stack, count] : folded_) {
    out << stack << " " << count << "\n";
  }
}

double SamplingProfiler::root_fraction(std::string_view root) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  std::uint64_t matched = 0;
  for (const auto& [stack, count] : folded_) {
    total += count;
    if (root_of(stack) == root) matched += count;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(matched) /
                          static_cast<double>(total);
}

void SamplingProfiler::publish_gauges(MetricsRegistry& registry) const {
  std::map<std::string, std::uint64_t> by_root;
  std::uint64_t total = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [stack, count] : folded_) {
      by_root[root_metric_suffix(root_of(stack))] += count;
      total += count;
    }
  }
  if (total == 0) return;
  for (const auto& [root, count] : by_root) {
    registry.gauge("profile.stage_cpu_fraction." + root)
        .set(static_cast<double>(count) / static_cast<double>(total));
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (total > published_samples_) {
    registry.counter("profile.samples")
        .add(static_cast<long>(total - published_samples_));
    published_samples_ = total;
  }
}

void SamplingProfiler::publish_gauges() const { publish_gauges(metrics()); }

}  // namespace arams::obs
