#pragma once
// Prometheus text-exposition rendering of the metrics registry, plus a
// textfile-collector-style periodic publisher.
//
// There is no HTTP server here on purpose: beamline nodes already run the
// Prometheus node_exporter, whose textfile collector scrapes *.prom files
// from a spool directory. PeriodicPublisher atomically rewrites such a
// snapshot every K batches (write to `<path>.tmp`, then rename), so a
// scrape never observes a torn file.
//
// Name mapping: registry names are dotted ("fd.shrink_count"); exposition
// names are `arams_` + the dotted name with every non-[a-zA-Z0-9_:] byte
// replaced by '_' ("arams_fd_shrink_count"). Histograms render in the
// native histogram exposition (cumulative `_bucket{le=...}` + `_sum` +
// `_count`), sliding histograms as summaries (quantile-labelled samples
// over the trailing window) plus a `_window_rate` gauge, EWMA rates as
// gauges plus a `_total` counter.

#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace arams::obs {

class HealthMonitor;

/// "fd.shrink_count" → "arams_fd_shrink_count".
std::string prometheus_name(std::string_view name);

/// Renders every registered metric (and, when given, the health state as
/// `arams_health_observed_state` / `arams_health_incidents`) in the
/// Prometheus text exposition format, `# HELP` / `# TYPE` included.
void write_prometheus(std::ostream& out, const MetricsRegistry& registry,
                      const HealthMonitor* health = nullptr);

/// Atomically rewrites a Prometheus snapshot file every `every` ticks
/// (tick = whatever cadence the caller drives it at — the streaming
/// monitor ticks once per sketch batch).
class PeriodicPublisher {
 public:
  struct Config {
    std::string path;   ///< snapshot file, e.g. "arams.prom"
    long every = 32;    ///< ticks between rewrites (>= 1)
  };

  explicit PeriodicPublisher(Config config,
                             const MetricsRegistry& registry = metrics(),
                             const HealthMonitor* health = nullptr);

  /// Counts one tick; publishes when `every` ticks accumulated since the
  /// last publish. Returns true when a snapshot was written.
  bool tick();

  /// Unconditional atomic rewrite. Returns false (and counts a failure)
  /// when the file cannot be written; a flaky filesystem must not take
  /// down the DAQ loop.
  bool publish_now();

  [[nodiscard]] long ticks() const;
  [[nodiscard]] long publishes() const;
  [[nodiscard]] long failures() const;
  [[nodiscard]] const std::string& path() const { return config_.path; }

 private:
  Config config_;
  const MetricsRegistry& registry_;
  const HealthMonitor* health_;
  mutable std::mutex mutex_;
  long ticks_ = 0;
  long since_publish_ = 0;
  long publishes_ = 0;
  long failures_ = 0;
};

}  // namespace arams::obs
