#pragma once
// Prometheus text-exposition rendering of the metrics registry, plus a
// textfile-collector-style periodic publisher.
//
// There is no HTTP server here on purpose: beamline nodes already run the
// Prometheus node_exporter, whose textfile collector scrapes *.prom files
// from a spool directory. PeriodicPublisher atomically rewrites such a
// snapshot every K batches (write to `<path>.tmp`, then rename), so a
// scrape never observes a torn file.
//
// Name mapping: registry names are dotted ("fd.shrink_count"); exposition
// names are `arams_` + the dotted name with every non-[a-zA-Z0-9_:] byte
// replaced by '_' ("arams_fd_shrink_count"). Counters additionally carry
// the spec-mandated `_total` suffix ("arams_fd_shrink_count_total").
// Histograms render in the native histogram exposition (cumulative
// `_bucket{le=...}` + `_sum` + `_count`), sliding histograms as summaries
// (quantile-labelled samples over the trailing window) plus a
// `_window_rate` gauge, EWMA rates as gauges plus a `_total` counter.
// Every series opens with `# HELP` then `# TYPE` (in that order), HELP
// text and label values escaped per the text exposition format. The
// export always leads with the `arams_build_info` provenance gauge
// (obs/build_info.hpp).

#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace arams::obs {

class HealthMonitor;

/// "fd.shrink_count" → "arams_fd_shrink_count".
std::string prometheus_name(std::string_view name);

/// Counter exposition name: prometheus_name() plus the spec-mandated
/// `_total` suffix ("fd.shrink_count" → "arams_fd_shrink_count_total");
/// names already ending in `_total` are left alone.
std::string prometheus_counter_name(std::string_view name);

/// Escapes a label value for the text exposition format: backslash,
/// double quote and newline become `\\`, `\"` and `\n`.
std::string prometheus_escape_label_value(std::string_view value);

/// Escapes `# HELP` text: backslash and newline become `\\` and `\n`
/// (quotes are legal in HELP text and stay as-is).
std::string prometheus_escape_help(std::string_view text);

/// Renders every registered metric (and, when given, the health state as
/// `arams_health_observed_state` / `arams_health_incidents`) in the
/// Prometheus text exposition format, `# HELP` / `# TYPE` included.
void write_prometheus(std::ostream& out, const MetricsRegistry& registry,
                      const HealthMonitor* health = nullptr);

/// Atomically rewrites a Prometheus snapshot file every `every` ticks
/// (tick = whatever cadence the caller drives it at — the streaming
/// monitor ticks once per sketch batch).
class PeriodicPublisher {
 public:
  struct Config {
    std::string path;   ///< snapshot file, e.g. "arams.prom"
    long every = 32;    ///< ticks between rewrites (>= 1)
  };

  explicit PeriodicPublisher(Config config,
                             const MetricsRegistry& registry = metrics(),
                             const HealthMonitor* health = nullptr);

  /// Counts one tick; publishes when `every` ticks accumulated since the
  /// last publish. Returns true when a snapshot was written.
  bool tick();

  /// Unconditional atomic rewrite. Returns false (and counts a failure)
  /// when the file cannot be written; a flaky filesystem must not take
  /// down the DAQ loop.
  bool publish_now();

  [[nodiscard]] long ticks() const;
  [[nodiscard]] long publishes() const;
  [[nodiscard]] long failures() const;
  [[nodiscard]] const std::string& path() const { return config_.path; }

 private:
  Config config_;
  const MetricsRegistry& registry_;
  const HealthMonitor* health_;
  mutable std::mutex mutex_;
  long ticks_ = 0;
  long since_publish_ = 0;
  long publishes_ = 0;
  long failures_ = 0;
};

}  // namespace arams::obs
