#pragma once
// Async-signal-safe formatting and fd output shared by the flight
// recorder's tail writer and the post-mortem crash handler. Everything
// here is allocation-free, locale-free and lock-free: the only syscall is
// write(2), which POSIX lists as async-signal-safe.

#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace arams::obs::sigsafe {

/// Decimal u64 into `buf` (no terminator); returns chars written.
/// `buf` must hold at least 20 chars.
inline std::size_t format_u64(char* buf, std::uint64_t v) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

/// Non-negative double with 6 fixed decimals (no terminator); negatives
/// and non-finites clamp to 0 — the crash path must not branch into
/// printf. `buf` must hold at least 28 chars.
inline std::size_t format_fixed6(char* buf, double v) {
  if (!(v > 0.0)) {
    std::memcpy(buf, "0.000000", 8);
    return 8;
  }
  const double clamped = std::min(v, 1e15);
  const auto micros = static_cast<std::uint64_t>(clamped * 1e6 + 0.5);
  std::size_t n = format_u64(buf, micros / 1000000);
  buf[n++] = '.';
  std::uint64_t frac = micros % 1000000;
  for (std::size_t i = 0; i < 6; ++i) {
    buf[n + 5 - i] = static_cast<char>('0' + frac % 10);
    frac /= 10;
  }
  return n + 6;
}

/// write(2) until everything landed or the fd went bad (best effort — a
/// crash handler has nowhere to report errors).
inline void write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t w = ::write(fd, data + off, len - off);
    if (w <= 0) return;
    off += static_cast<std::size_t>(w);
  }
}

inline void write_str(int fd, const char* s) {
  write_all(fd, s, std::strlen(s));
}

/// Appends `src` to `buf` at offset `n`, bounded by `cap`; returns the new
/// offset. For building file names and header lines on the stack.
inline std::size_t append(char* buf, std::size_t n, std::size_t cap,
                          const char* src) {
  const std::size_t len = std::strlen(src);
  const std::size_t take = std::min(len, cap - n);
  std::memcpy(buf + n, src, take);
  return n + take;
}

}  // namespace arams::obs::sigsafe
