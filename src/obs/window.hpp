#pragma once
// Windowed aggregation over the live metrics: rates and latency quantiles
// computed over a *trailing* wall-clock window instead of the process
// lifetime. A one-shot StageReport (or a lifetime-average gauge) hides a
// mid-run slowdown during the paper's operational mode — hours of 136 Hz
// streaming — so operators need "what happened over the last N seconds".
//
// Two primitives:
//  * EwmaRate — exponentially-weighted moving-average event rate. Hot-path
//    record() is one relaxed fetch_add; the decay fold runs on the *reader*
//    side under a small mutex.
//  * SlidingHistogram — a ring of fixed-bucket Histogram epochs rotated by
//    wall time. record() is exactly a Histogram::observe() into the current
//    epoch (relaxed atomics, no lock); readers rotate expired epochs and
//    merge the live ones into window quantiles (p50/p95/p99) and rates.
//
// Both take explicit `now` timestamps (seconds on an arbitrary monotonic
// axis) so tests drive time deterministically; the zero-argument overloads
// use steady_seconds(). Rotation racing a concurrent record() can misfile
// (or drop) that one event into a neighbouring epoch — telemetry-grade
// accuracy, never corruption.

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "obs/metrics.hpp"

namespace arams::obs {

/// Seconds since an arbitrary process-local epoch, from the steady clock.
/// The shared monotonic time axis for every windowed metric.
double steady_seconds();

/// Exponentially-weighted moving-average rate (events per second).
///
/// record() only accumulates a pending event count (one relaxed atomic
/// add). rate(now) folds the pending count into the EWMA with weight
/// 1 − exp(−elapsed/tau): a burst decays with time constant `tau` instead
/// of being diluted by the whole run history.
class EwmaRate {
 public:
  explicit EwmaRate(double tau_seconds = 10.0);
  EwmaRate(double tau_seconds, double start_seconds);

  void record(long events = 1) {
    pending_.fetch_add(events, std::memory_order_relaxed);
  }

  /// Current smoothed rate, folding events recorded since the last call.
  /// Calls closer together than ~1 ms reuse the previous fold (the
  /// instantaneous quotient is meaningless over a tiny denominator).
  [[nodiscard]] double rate(double now_seconds) const;
  [[nodiscard]] double rate() const { return rate(steady_seconds()); }

  /// Lifetime event count (pending + folded).
  [[nodiscard]] long total() const;

  [[nodiscard]] double tau_seconds() const { return tau_; }
  void reset();

 private:
  double tau_;
  mutable std::atomic<long> pending_{0};  // drained by const reads
  mutable std::mutex mutex_;      // guards the fold state below
  mutable double ewma_ = 0.0;
  mutable double last_fold_ = 0.0;
  mutable long folded_total_ = 0;
  mutable bool primed_ = false;
  double start_ = 0.0;
};

/// Aggregate view of a SlidingHistogram's trailing window.
struct WindowStats {
  long count = 0;        ///< events inside the window
  double sum = 0.0;      ///< sum of recorded values inside the window
  double rate = 0.0;     ///< events per second of window span
  double p50 = 0.0;      ///< interpolated quantiles (0 when count == 0)
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Ring of fixed-bucket Histogram epochs rotated by wall time.
///
/// The window is divided into `epochs` equal slices; record() lands in the
/// current slice via one relaxed index load plus Histogram::observe().
/// Readers call advance() (directly or through stats()/quantile()) to
/// retire slices older than the window; the merged live slices yield
/// quantiles accurate to one bucket width over roughly the last
/// `window_seconds` (quantized to one epoch).
class SlidingHistogram {
 public:
  /// `upper_bounds` empty → default_latency_bounds().
  explicit SlidingHistogram(double window_seconds = 30.0,
                            std::size_t epochs = 6,
                            std::span<const double> upper_bounds = {});
  SlidingHistogram(double window_seconds, std::size_t epochs,
                   std::span<const double> upper_bounds,
                   double start_seconds);

  void record(double value) {
    epochs_[current_.load(std::memory_order_relaxed)]->observe(value);
  }

  /// Retires epochs whose slice of the time axis has slid out of the
  /// window. Cheap no-op when the current epoch is still live.
  void advance(double now_seconds) const;

  /// Merged per-bucket counts over the live window (trailing entry =
  /// overflow), after advancing to `now_seconds`.
  [[nodiscard]] std::vector<long> window_buckets(double now_seconds) const;

  /// Interpolated quantile (q in [0,1]) over the window; 0.0 when empty.
  [[nodiscard]] double quantile(double q, double now_seconds) const;
  [[nodiscard]] double quantile(double q) const {
    return quantile(q, steady_seconds());
  }

  [[nodiscard]] WindowStats stats(double now_seconds) const;
  [[nodiscard]] WindowStats stats() const { return stats(steady_seconds()); }

  [[nodiscard]] double window_seconds() const {
    return epoch_seconds_ * static_cast<double>(epochs_.size());
  }
  [[nodiscard]] std::size_t epoch_count() const { return epochs_.size(); }
  [[nodiscard]] const std::vector<double>& upper_bounds() const;

  void reset();

 private:
  /// Returns the window span in seconds.
  double merged(double now_seconds, std::vector<long>& buckets_out,
                long& count_out, double& sum_out) const;

  double epoch_seconds_;
  // Epoch histograms are logically value state even for const readers:
  // advance() retires expired slices in place.
  mutable std::vector<std::unique_ptr<Histogram>> epochs_;
  mutable std::atomic<std::size_t> current_{0};
  mutable std::mutex rotate_mutex_;   // serializes advance()/reset()
  mutable double current_start_ = 0.0;  // time axis start of current epoch
};

/// Interpolated quantile over one merged bucket array (upper bounds +
/// trailing overflow bucket). Shared by SlidingHistogram and the
/// Prometheus exporter's plain-histogram quantile hints.
double bucket_quantile(double q, std::span<const double> upper_bounds,
                       std::span<const long> buckets);

}  // namespace arams::obs
