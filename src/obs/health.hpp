#pragma once
// Numerical-health watchdog for long streaming runs.
//
// The sketch itself can degrade while throughput looks perfectly healthy:
// the FD error bound ‖AᵀA−BᵀB‖₂ ≤ ‖A‖²_F/ℓ only caps the error *if* the
// arithmetic stays sane — basis orthogonality loss (‖VᵀV−I‖ growth),
// rank-adaptation thrash (ℓ climbing every window), and NaN/Inf detector
// frames are exactly the failure modes Liberty's bound and the streaming
// approximation analyses assume away. HealthMonitor turns the scalars the
// sketching layer already knows (the SketchErrorTracker estimate, the
// adaptive-rank trajectory, orthogonality residuals, non-finite frame
// counts, queue saturation) into an OK / DEGRADED / CRITICAL state machine
// with a bounded incident log and transition callbacks.
//
// Deliberately scalar-only: obs sits below linalg in the link graph, so
// matrix-valued checks (e.g. the orthogonality residual) are computed by
// the feeder (StreamingMonitor) and arrive here as doubles.

#include <cstddef>
#include <deque>
#include <functional>
#include <iosfwd>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace arams::obs {

enum class HealthState { kOk = 0, kDegraded = 1, kCritical = 2 };

/// "ok" / "degraded" / "critical".
const char* to_string(HealthState state);

struct HealthThresholds {
  /// Relative sketch reconstruction error (SketchErrorTracker estimate).
  double error_degraded = 0.15;
  double error_critical = 0.40;
  /// Basis orthogonality residual ‖VᵀV−I‖_F of the sketch basis.
  double ortho_degraded = 1e-6;
  double ortho_critical = 1e-3;
  /// Fraction of non-finite (NaN/Inf) frames over the sample window.
  double nonfinite_degraded = 0.005;
  double nonfinite_critical = 0.05;
  /// Rank-adaptation events within the sample window ("thrash"): the RA
  /// heuristic growing ℓ this often means ε is unreachable for the stream.
  long rank_growth_degraded = 4;
  /// Queue occupancy fraction (0..1) — sustained saturation means the
  /// analysis side is about to exert back-pressure on the detector.
  double queue_degraded = 0.85;
  double queue_critical = 0.98;
  /// Trailing samples the windowed checks (non-finite fraction, rank
  /// thrash) evaluate over.
  std::size_t window = 16;
  /// Incident log bound; older incidents are dropped.
  std::size_t max_incidents = 64;
};

/// One per-batch reading from the sketching layer. Cumulative fields are
/// monotone run totals (the monitor differences them over its window);
/// instantaneous fields use NaN for "not measured this batch" and are then
/// skipped by the corresponding check.
struct HealthSample {
  double wall_seconds = 0.0;  ///< monotonic timestamp (steady_seconds())
  double sketch_error =
      std::numeric_limits<double>::quiet_NaN();  ///< relative, latest
  double orthogonality =
      std::numeric_limits<double>::quiet_NaN();  ///< ‖VᵀV−I‖_F, latest
  double queue_saturation =
      std::numeric_limits<double>::quiet_NaN();  ///< occupancy/capacity
  long rank = 0;             ///< current sketch ℓ
  long rank_increases = 0;   ///< cumulative rank-adaptation events
  long frames_seen = 0;      ///< cumulative frames offered
  long frames_nonfinite = 0; ///< cumulative frames rejected as NaN/Inf
};

/// A state transition, as logged and as delivered to callbacks.
struct HealthIncident {
  double wall_seconds = 0.0;
  HealthState from = HealthState::kOk;
  HealthState to = HealthState::kOk;
  std::string reason;  ///< the failed checks, "; "-joined
};

/// Classifies each sample against the thresholds, keeps a bounded incident
/// log, and fires registered callbacks on every state transition.
/// Thread-safe; callbacks run outside the internal lock (re-entrant calls
/// back into the monitor are allowed) on the observe() caller's thread.
class HealthMonitor {
 public:
  /// `registry` receives the live gauges "health.state" (0/1/2) and the
  /// counter "health.transitions"; pass nullptr to keep a monitor out of
  /// the process-global metrics (isolated tests).
  explicit HealthMonitor(const HealthThresholds& thresholds = {},
                         MetricsRegistry* registry = &metrics());

  /// Feeds one sample; returns the (possibly new) state.
  HealthState observe(const HealthSample& sample);

  [[nodiscard]] HealthState state() const;
  /// The failed checks behind the current state ("ok" when healthy).
  [[nodiscard]] std::string state_reason() const;
  [[nodiscard]] long transitions() const;
  /// Copy of the bounded incident log, oldest first.
  [[nodiscard]] std::vector<HealthIncident> incidents() const;

  void on_transition(std::function<void(const HealthIncident&)> callback);

  [[nodiscard]] const HealthThresholds& thresholds() const {
    return thresholds_;
  }

  /// Incident log as JSON lines:
  ///   {"t":12.5,"from":"ok","to":"degraded","reason":"..."}
  void write_incidents_json(std::ostream& out) const;

 private:
  [[nodiscard]] HealthState classify(std::string& reason) const;

  HealthThresholds thresholds_;
  Gauge* state_gauge_ = nullptr;
  Counter* transition_counter_ = nullptr;

  mutable std::mutex mutex_;
  std::deque<HealthSample> window_;
  HealthState state_ = HealthState::kOk;
  std::string reason_ = "ok";
  long transitions_ = 0;
  std::deque<HealthIncident> incidents_;
  std::vector<std::function<void(const HealthIncident&)>> callbacks_;
};

}  // namespace arams::obs
