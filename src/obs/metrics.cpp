#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <ostream>
#include <sstream>

#include "obs/window.hpp"
#include "util/check.hpp"

namespace arams::obs {

namespace {

constexpr std::array<double, 8> kLatencyBounds = {
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};

}  // namespace

std::span<const double> default_latency_bounds() { return kLatencyBounds; }

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()) {
  ARAMS_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  ARAMS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "histogram bounds must be strictly ascending");
  buckets_ = std::make_unique<std::atomic<long>[]>(bounds_.size() + 1);
}

std::size_t Histogram::bucket_index(double value) const {
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::observe(double value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop: atomic<double>::fetch_add is C++20 but a plain loop keeps the
  // memory-order story identical on every toolchain.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<long> Histogram::bucket_counts() const {
  std::vector<long> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// Out of line because EwmaRate/SlidingHistogram are incomplete in the
// header (obs/window.hpp includes obs/metrics.hpp, not the reverse).
MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) upper_bounds = default_latency_bounds();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
  }
  return *it->second;
}

EwmaRate& MetricsRegistry::ewma(std::string_view name, double tau_seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = ewmas_.find(name);
  if (it == ewmas_.end()) {
    it = ewmas_
             .emplace(std::string(name),
                      std::make_unique<EwmaRate>(tau_seconds))
             .first;
  }
  return *it->second;
}

SlidingHistogram& MetricsRegistry::sliding_histogram(
    std::string_view name, double window_seconds, std::size_t epochs,
    std::span<const double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = slidings_.find(name);
  if (it == slidings_.end()) {
    it = slidings_
             .emplace(std::string(name),
                      std::make_unique<SlidingHistogram>(
                          window_seconds, epochs, upper_bounds))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::visit(const Visitor& visitor) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (visitor.on_counter) {
    for (const auto& [name, c] : counters_) visitor.on_counter(name, *c);
  }
  if (visitor.on_gauge) {
    for (const auto& [name, g] : gauges_) visitor.on_gauge(name, *g);
  }
  if (visitor.on_histogram) {
    for (const auto& [name, h] : histograms_) visitor.on_histogram(name, *h);
  }
  if (visitor.on_ewma) {
    for (const auto& [name, e] : ewmas_) visitor.on_ewma(name, *e);
  }
  if (visitor.on_sliding) {
    for (const auto& [name, s] : slidings_) visitor.on_sliding(name, *s);
  }
}

std::string MetricsRegistry::summary() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << "counter " << name << " = " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "gauge " << name << " = " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "histogram " << name << ": count " << h->count() << ", sum "
        << h->sum() << " s";
    if (h->count() > 0) {
      out << ", mean " << h->sum() / static_cast<double>(h->count()) << " s";
    }
    out << "\n";
  }
  for (const auto& [name, e] : ewmas_) {
    out << "ewma " << name << " = " << e->rate() << " /s (total "
        << e->total() << ")\n";
  }
  for (const auto& [name, s] : slidings_) {
    const WindowStats stats = s->stats();
    out << "sliding " << name << " [" << s->window_seconds()
        << " s]: count " << stats.count << ", rate " << stats.rate
        << " /s, p50 " << stats.p50 << ", p95 " << stats.p95 << ", p99 "
        << stats.p99 << "\n";
  }
  return out.str();
}

void MetricsRegistry::write_json_lines(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) {
    out << "{\"type\":\"counter\",\"name\":\"" << name << "\",\"value\":"
        << c->value() << "}\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "{\"type\":\"gauge\",\"name\":\"" << name << "\",\"value\":"
        << g->value() << "}\n";
  }
  for (const auto& [name, h] : histograms_) {
    out << "{\"type\":\"histogram\",\"name\":\"" << name << "\",\"count\":"
        << h->count() << ",\"sum\":" << h->sum() << ",\"bounds\":[";
    const auto& bounds = h->upper_bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i != 0) out << ",";
      out << bounds[i];
    }
    out << "],\"buckets\":[";
    const std::vector<long> buckets = h->bucket_counts();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (i != 0) out << ",";
      out << buckets[i];
    }
    out << "]}\n";
  }
  for (const auto& [name, e] : ewmas_) {
    out << "{\"type\":\"ewma\",\"name\":\"" << name << "\",\"rate\":"
        << e->rate() << ",\"total\":" << e->total() << "}\n";
  }
  for (const auto& [name, s] : slidings_) {
    const WindowStats stats = s->stats();
    out << "{\"type\":\"sliding\",\"name\":\"" << name << "\",\"window\":"
        << s->window_seconds() << ",\"count\":" << stats.count
        << ",\"rate\":" << stats.rate << ",\"p50\":" << stats.p50
        << ",\"p95\":" << stats.p95 << ",\"p99\":" << stats.p99 << "}\n";
  }
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, e] : ewmas_) e->reset();
  for (auto& [name, s] : slidings_) s->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace arams::obs
