#include "obs/trace.hpp"

#include <functional>
#include <map>
#include <ostream>
#include <thread>

namespace arams::obs {

namespace {

thread_local int t_open_spans = 0;

std::uint64_t this_thread_id() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

TraceRecorder::TraceRecorder()
    : epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::record(SpanRecord span) {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
}

std::vector<SpanRecord> TraceRecorder::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::uint64_t, int> tids;  // first appearance → small integer
  for (const auto& s : spans_) {
    tids.emplace(s.thread_id, static_cast<int>(tids.size() + 1));
  }
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const auto& s = spans_[i];
    if (i != 0) out << ",";
    out << "{\"name\":";
    write_json_string(out, s.name);
    out << ",\"cat\":\"arams\",\"ph\":\"X\",\"ts\":" << s.start_us
        << ",\"dur\":" << s.duration_us << ",\"pid\":1,\"tid\":"
        << tids[s.thread_id] << ",\"args\":{\"depth\":" << s.depth << "}}";
  }
  out << "]}\n";
}

void TraceRecorder::write_json_lines(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& s : spans_) {
    out << "{\"type\":\"span\",\"name\":";
    write_json_string(out, s.name);
    out << ",\"thread\":" << s.thread_id << ",\"start_us\":" << s.start_us
        << ",\"duration_us\":" << s.duration_us << ",\"depth\":" << s.depth
        << "}\n";
  }
}

TraceRecorder& tracer() {
  static TraceRecorder recorder;
  return recorder;
}

ScopedSpan::ScopedSpan(std::string_view name, TraceRecorder& recorder) {
  if (!recorder.enabled()) return;
  recorder_ = &recorder;
  name_ = name;
  depth_ = t_open_spans++;
  start_us_ = recorder.now_us();
}

ScopedSpan::~ScopedSpan() {
  if (recorder_ == nullptr) return;
  const double end_us = recorder_->now_us();
  --t_open_spans;
  recorder_->record(SpanRecord{std::move(name_), this_thread_id(),
                               start_us_, end_us - start_us_, depth_});
}

int ScopedSpan::current_depth() { return t_open_spans; }

}  // namespace arams::obs
