#include "obs/trace.hpp"

#include <functional>
#include <map>
#include <ostream>
#include <set>
#include <thread>

namespace arams::obs {

namespace {

std::uint64_t this_thread_id() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

const char* intern_span_name(std::string_view name) {
  // std::set node addresses are stable, so the returned c_str pointers
  // survive for the process lifetime — the invariant the cross-thread
  // SpanStack readers rely on. A per-thread cache keeps the global mutex
  // off the steady-state path: span vocabularies are tiny, so each thread
  // pays the lock once per distinct name.
  static std::mutex mutex;
  static std::set<std::string, std::less<>>& names =
      *new std::set<std::string, std::less<>>();  // never destroyed
  thread_local std::map<std::string_view, const char*> t_cache;
  if (const auto cached = t_cache.find(name); cached != t_cache.end()) {
    return cached->second;
  }
  const char* interned = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = names.find(name);
    interned = (it != names.end()) ? it->c_str()
                                   : names.emplace(name).first->c_str();
  }
  // Key the cache by the interned storage, not the caller's buffer.
  t_cache.emplace(std::string_view(interned), interned);
  return interned;
}

SpanStack& SpanStackRegistry::this_thread() {
  thread_local SpanStack* t_stack = nullptr;
  if (t_stack != nullptr) return *t_stack;
  const std::size_t index = count_.fetch_add(1, std::memory_order_acq_rel);
  if (index >= kMaxStacks) {
    // Overflow threads get a private, unregistered stack: spans still
    // nest correctly for the trace recorder, the profiler just cannot
    // sample them.
    count_.store(kMaxStacks, std::memory_order_release);
    t_stack = new SpanStack();
    return *t_stack;
  }
  auto* stack = new SpanStack();
  stack->thread_id.store(this_thread_id(), std::memory_order_relaxed);
  stacks_[index].store(stack, std::memory_order_release);
  t_stack = stack;
  return *stack;
}

const SpanStack* SpanStackRegistry::stack(std::size_t i) const {
  if (i >= size()) return nullptr;
  return stacks_[i].load(std::memory_order_acquire);
}

SpanStackRegistry& span_stacks() {
  static SpanStackRegistry registry;
  return registry;
}

TraceRecorder::TraceRecorder()
    : epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::record(SpanRecord span) {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
}

std::vector<SpanRecord> TraceRecorder::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::uint64_t, int> tids;  // first appearance → small integer
  for (const auto& s : spans_) {
    tids.emplace(s.thread_id, static_cast<int>(tids.size() + 1));
  }
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const auto& s = spans_[i];
    if (i != 0) out << ",";
    out << "{\"name\":";
    write_json_string(out, s.name);
    out << ",\"cat\":\"arams\",\"ph\":\"X\",\"ts\":" << s.start_us
        << ",\"dur\":" << s.duration_us << ",\"pid\":1,\"tid\":"
        << tids[s.thread_id] << ",\"args\":{\"depth\":" << s.depth << "}}";
  }
  out << "]}\n";
}

void TraceRecorder::write_json_lines(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& s : spans_) {
    out << "{\"type\":\"span\",\"name\":";
    write_json_string(out, s.name);
    out << ",\"thread\":" << s.thread_id << ",\"start_us\":" << s.start_us
        << ",\"duration_us\":" << s.duration_us << ",\"depth\":" << s.depth
        << "}\n";
  }
}

TraceRecorder& tracer() {
  static TraceRecorder recorder;
  return recorder;
}

ScopedSpan::ScopedSpan(std::string_view name, TraceRecorder& recorder) {
  // The span stack is maintained unconditionally: the sampling profiler
  // attributes wall-clock samples to it even when trace *recording* is
  // off. Push is one interned-pointer store plus a release depth store.
  stack_ = &span_stacks().this_thread();
  name_ = intern_span_name(name);
  depth_ = stack_->depth.load(std::memory_order_relaxed);
  if (depth_ < SpanStack::kMaxDepth) {
    stack_->frames[depth_].store(name_, std::memory_order_relaxed);
    stack_->depth.store(depth_ + 1, std::memory_order_release);
  }
  if (!recorder.enabled()) return;
  recorder_ = &recorder;
  start_us_ = recorder.now_us();
}

ScopedSpan::~ScopedSpan() {
  if (depth_ < SpanStack::kMaxDepth) {
    stack_->depth.store(depth_, std::memory_order_release);
  }
  if (recorder_ == nullptr) return;
  const double end_us = recorder_->now_us();
  recorder_->record(SpanRecord{name_, this_thread_id(), start_us_,
                               end_us - start_us_, depth_});
}

int ScopedSpan::current_depth() {
  return span_stacks().this_thread().depth.load(std::memory_order_relaxed);
}

}  // namespace arams::obs
