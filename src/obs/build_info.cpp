#include "obs/build_info.hpp"

#include <ostream>
#include <sstream>

#include "obs/export_prom.hpp"

// Fallbacks keep the translation unit compilable outside the CMake build
// (e.g. tooling that parses the tree); the real values arrive as
// target_compile_definitions on this one source file.
#ifndef ARAMS_BUILD_VERSION
#define ARAMS_BUILD_VERSION "unknown"
#endif
#ifndef ARAMS_BUILD_GIT
#define ARAMS_BUILD_GIT "unknown"
#endif
#ifndef ARAMS_BUILD_COMPILER
#define ARAMS_BUILD_COMPILER "unknown"
#endif
#ifndef ARAMS_BUILD_MARCH
#define ARAMS_BUILD_MARCH "baseline"
#endif
#ifndef ARAMS_BUILD_SANITIZE
#define ARAMS_BUILD_SANITIZE "none"
#endif
#ifndef ARAMS_BUILD_TYPE
#define ARAMS_BUILD_TYPE "unknown"
#endif

namespace arams::obs {

const BuildInfo& build_info() {
  static constexpr BuildInfo info{
      ARAMS_BUILD_VERSION, ARAMS_BUILD_GIT,      ARAMS_BUILD_COMPILER,
      ARAMS_BUILD_MARCH,   ARAMS_BUILD_SANITIZE, ARAMS_BUILD_TYPE,
  };
  return info;
}

std::string build_info_line() {
  const BuildInfo& info = build_info();
  std::ostringstream out;
  out << "version=" << info.version << " git=" << info.git
      << " compiler=" << info.compiler << " march=" << info.march
      << " sanitize=" << info.sanitize << " build=" << info.build_type;
  return out.str();
}

void write_build_info_prometheus(std::ostream& out) {
  const BuildInfo& info = build_info();
  out << "# HELP arams_build_info build provenance of the running binary "
         "(constant 1; labels carry the stamp)\n"
      << "# TYPE arams_build_info gauge\n"
      << "arams_build_info{version=\""
      << prometheus_escape_label_value(info.version) << "\",git=\""
      << prometheus_escape_label_value(info.git) << "\",compiler=\""
      << prometheus_escape_label_value(info.compiler) << "\",march=\""
      << prometheus_escape_label_value(info.march) << "\",sanitize=\""
      << prometheus_escape_label_value(info.sanitize) << "\",build_type=\""
      << prometheus_escape_label_value(info.build_type) << "\"} 1\n";
}

}  // namespace arams::obs
