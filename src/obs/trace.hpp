#pragma once
// obs::TraceRecorder + obs::ScopedSpan — RAII wall-clock trace spans with
// parent/child nesting.
//
// Each thread keeps a span stack; a ScopedSpan opened while another is
// alive on the same thread records one level deeper, which is exactly the
// containment chrome://tracing/Perfetto reconstruct from the Chrome
// trace_event export ("ph":"X" complete events sharing a tid). The stack
// itself (interned frame names, readable cross-thread) is maintained
// unconditionally so the sampling profiler (obs/profiler.hpp) can
// attribute wall-clock samples to it; trace *recording* stays off by
// default — a disabled recorder makes ScopedSpan construction one
// interned-name cache lookup (a small mutex only on a name's first
// appearance on each thread) plus two atomic stores — and is switched on
// by `arams_cli --trace-out` or a test.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace arams::obs {

/// Interns a span name, returning a pointer that stays valid for the
/// process lifetime. ScopedSpan interns every name it pushes so the
/// sampling profiler (obs/profiler.hpp) can read frames from other
/// threads' stacks without ever touching freed memory. Takes a small
/// mutex; span granularity (per stage / per batch) keeps this cold.
const char* intern_span_name(std::string_view name);

/// Per-thread stack of active span names, readable cross-thread: frames
/// are atomic interned-name pointers and `depth` is published with
/// release ordering, so a sampler thread sees a consistent prefix (a
/// racing push/pop can momentarily attribute one sample to the old
/// frame — telemetry-grade by design). Maintained by every ScopedSpan
/// whether or not trace *recording* is enabled.
struct SpanStack {
  static constexpr int kMaxDepth = 64;
  std::array<std::atomic<const char*>, kMaxDepth> frames{};
  std::atomic<int> depth{0};
  std::atomic<std::uint64_t> thread_id{0};  ///< hashed std::thread::id
};

/// Fixed-slot registry of every thread's span stack (same lock-free
/// append pattern as the flight-recorder journals: signal-safe readers,
/// no mutex).
class SpanStackRegistry {
 public:
  static constexpr std::size_t kMaxStacks = 256;

  /// The calling thread's stack, registering it on first use. Stacks are
  /// never freed; a finished thread's (empty) stack stays readable.
  SpanStack& this_thread();

  [[nodiscard]] std::size_t size() const {
    return count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const SpanStack* stack(std::size_t i) const;

 private:
  friend SpanStackRegistry& span_stacks();
  SpanStackRegistry() = default;

  std::array<std::atomic<SpanStack*>, kMaxStacks> stacks_{};
  std::atomic<std::size_t> count_{0};
};

SpanStackRegistry& span_stacks();

/// One completed span, in microseconds since the recorder's epoch.
struct SpanRecord {
  std::string name;
  std::uint64_t thread_id = 0;  ///< hashed std::thread::id
  double start_us = 0.0;
  double duration_us = 0.0;
  int depth = 0;  ///< nesting depth on its thread (0 = root)
};

class TraceRecorder {
 public:
  TraceRecorder();

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since this recorder's construction.
  [[nodiscard]] double now_us() const;

  /// Appends a completed span (ScopedSpan calls this; tests may inject
  /// deterministic records directly).
  void record(SpanRecord span);

  [[nodiscard]] std::vector<SpanRecord> spans() const;
  void clear();

  /// Chrome trace_event JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing and Perfetto. Thread ids are remapped to small
  /// integers in order of first appearance so the export is deterministic
  /// for a fixed span sequence.
  void write_chrome_trace(std::ostream& out) const;

  /// One JSON object per span per line.
  void write_json_lines(std::ostream& out) const;

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

/// Process-global recorder the built-in instrumentation records into.
TraceRecorder& tracer();

/// RAII span: pushes its (interned) name onto the thread's SpanStack for
/// the sampling profiler, and — when the recorder is enabled at
/// construction time — measures construction → destruction and records a
/// SpanRecord with the thread's nesting depth.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name,
                      TraceRecorder& recorder = tracer());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Number of spans currently open on this thread.
  [[nodiscard]] static int current_depth();

 private:
  TraceRecorder* recorder_ = nullptr;  ///< null → not recording a trace
  const char* name_ = nullptr;         ///< interned
  SpanStack* stack_ = nullptr;
  double start_us_ = 0.0;
  int depth_ = 0;
};

}  // namespace arams::obs
