#pragma once
// obs::TraceRecorder + obs::ScopedSpan — RAII wall-clock trace spans with
// parent/child nesting.
//
// Each thread keeps a span stack (a thread-local depth counter); a
// ScopedSpan opened while another is alive on the same thread records one
// level deeper, which is exactly the containment chrome://tracing/Perfetto
// reconstruct from the Chrome trace_event export ("ph":"X" complete events
// sharing a tid). Recording is off by default — a disabled recorder makes
// ScopedSpan construction two relaxed atomic loads and nothing else — and
// is switched on by `arams_cli --trace-out` or a test.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace arams::obs {

/// One completed span, in microseconds since the recorder's epoch.
struct SpanRecord {
  std::string name;
  std::uint64_t thread_id = 0;  ///< hashed std::thread::id
  double start_us = 0.0;
  double duration_us = 0.0;
  int depth = 0;  ///< nesting depth on its thread (0 = root)
};

class TraceRecorder {
 public:
  TraceRecorder();

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since this recorder's construction.
  [[nodiscard]] double now_us() const;

  /// Appends a completed span (ScopedSpan calls this; tests may inject
  /// deterministic records directly).
  void record(SpanRecord span);

  [[nodiscard]] std::vector<SpanRecord> spans() const;
  void clear();

  /// Chrome trace_event JSON ({"traceEvents":[...]}), loadable in
  /// chrome://tracing and Perfetto. Thread ids are remapped to small
  /// integers in order of first appearance so the export is deterministic
  /// for a fixed span sequence.
  void write_chrome_trace(std::ostream& out) const;

  /// One JSON object per span per line.
  void write_json_lines(std::ostream& out) const;

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

/// Process-global recorder the built-in instrumentation records into.
TraceRecorder& tracer();

/// RAII span: measures construction → destruction and records it with the
/// current thread's nesting depth. No-op when the recorder is disabled at
/// construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name,
                      TraceRecorder& recorder = tracer());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Number of spans currently open on this thread.
  [[nodiscard]] static int current_depth();

 private:
  TraceRecorder* recorder_ = nullptr;  ///< null → disabled, record nothing
  std::string name_;
  double start_us_ = 0.0;
  int depth_ = 0;
};

}  // namespace arams::obs
