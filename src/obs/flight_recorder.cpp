#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <ostream>

#include "obs/signal_safe.hpp"
#include "obs/window.hpp"

namespace arams::obs {

const char* flight_code_name(FlightCode code) {
  switch (code) {
    case FlightCode::kFrameIngested: return "frame_ingested";
    case FlightCode::kFrameRejected: return "frame_rejected";
    case FlightCode::kBatchSketched: return "batch_sketched";
    case FlightCode::kRankChange: return "rank_change";
    case FlightCode::kQueueSaturation: return "queue_saturation";
    case FlightCode::kHealthTransition: return "health_transition";
    case FlightCode::kSnapshot: return "snapshot";
    case FlightCode::kStageComplete: return "stage_complete";
    case FlightCode::kCrash: return "crash";
    case FlightCode::kCustom: return "custom";
  }
  return "unknown";
}

const char* flight_stage_name(FlightStage stage) {
  switch (stage) {
    case FlightStage::kPreprocess: return "preprocess";
    case FlightStage::kSketch: return "sketch";
    case FlightStage::kProject: return "project";
    case FlightStage::kEmbed: return "embed";
    case FlightStage::kCluster: return "cluster";
  }
  return "unknown";
}

namespace detail {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Reads one slot; returns false when the slot is empty or was torn by a
/// concurrent overwrite (seq changed while the payload was being copied).
bool read_slot(const FlightSlot& slot, FlightEvent& out,
               std::uint64_t ordinal) {
  const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
  if (seq_before == 0) return false;
  out.t_seconds =
      std::bit_cast<double>(slot.t_bits.load(std::memory_order_relaxed));
  out.shot_id = slot.shot.load(std::memory_order_relaxed);
  const std::uint64_t cd = slot.code_detail.load(std::memory_order_relaxed);
  out.code = static_cast<FlightCode>(cd >> 32);
  out.detail = static_cast<std::uint32_t>(cd);
  out.value =
      std::bit_cast<double>(slot.value_bits.load(std::memory_order_relaxed));
  out.thread = ordinal;
  std::atomic_thread_fence(std::memory_order_acquire);
  return slot.seq.load(std::memory_order_relaxed) == seq_before;
}

}  // namespace

FlightJournal::FlightJournal(std::size_t capacity_pow2,
                             std::uint64_t ordinal)
    : slots_(round_up_pow2(std::max<std::size_t>(capacity_pow2, 2))),
      ordinal_(ordinal) {}

void FlightJournal::record(double t, FlightCode code, std::uint64_t shot,
                           std::uint32_t detail_arg, double value) {
  // Single-writer: `next_` is only advanced by the owning thread, so the
  // load/store pair needs no RMW. The payload goes in relaxed; the slot's
  // seq is published last with release so readers can detect tearing.
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  FlightSlot& slot = slots_[n & (slots_.size() - 1)];
  slot.seq.store(0, std::memory_order_release);  // invalidate while writing
  slot.t_bits.store(std::bit_cast<std::uint64_t>(t),
                    std::memory_order_relaxed);
  slot.shot.store(shot, std::memory_order_relaxed);
  slot.code_detail.store(
      (static_cast<std::uint64_t>(code) << 32) | detail_arg,
      std::memory_order_relaxed);
  slot.value_bits.store(std::bit_cast<std::uint64_t>(value),
                        std::memory_order_relaxed);
  slot.seq.store(n + 1, std::memory_order_release);
  next_.store(n + 1, std::memory_order_release);
}

void FlightJournal::read_into(std::vector<FlightEvent>& out) const {
  for (const FlightSlot& slot : slots_) {
    FlightEvent event;
    if (read_slot(slot, event, ordinal_)) {
      out.push_back(event);
    }
  }
}

}  // namespace detail

void FlightRecorder::set_thread_capacity(std::size_t records) {
  capacity_.store(std::max<std::size_t>(records, 2),
                  std::memory_order_relaxed);
}

detail::FlightJournal& FlightRecorder::journal_for_this_thread() {
  // One journal per thread per recorder lifetime. The registry is a fixed
  // array appended with fetch_add so the crash-path reader never needs a
  // lock; when the (generous) slot budget is exhausted, overflow threads
  // share the last journal — multi-writer on one ring only tears
  // individual records, never memory.
  thread_local detail::FlightJournal* t_journal = nullptr;
  if (t_journal != nullptr) return *t_journal;
  const std::size_t index =
      journal_count_.fetch_add(1, std::memory_order_acq_rel);
  if (index >= kMaxJournals) {
    journal_count_.store(kMaxJournals, std::memory_order_release);
    t_journal = journals_[kMaxJournals - 1].load(std::memory_order_acquire);
    return *t_journal;
  }
  auto* journal = new detail::FlightJournal(
      capacity_.load(std::memory_order_relaxed), index);
  journals_[index].store(journal, std::memory_order_release);
  t_journal = journal;
  return *journal;
}

void FlightRecorder::record(FlightCode code, std::uint64_t shot_id,
                            std::uint32_t detail, double value) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  journal_for_this_thread().record(steady_seconds(), code, shot_id, detail,
                                   value);
}

const detail::FlightJournal* FlightRecorder::journal(std::size_t i) const {
  if (i >= journal_count()) return nullptr;
  return journals_[i].load(std::memory_order_acquire);
}

std::vector<FlightEvent> FlightRecorder::drain() const {
  std::vector<FlightEvent> events;
  const std::size_t count = journal_count();
  for (std::size_t i = 0; i < count; ++i) {
    if (const detail::FlightJournal* j = journal(i)) {
      j->read_into(events);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     return a.t_seconds < b.t_seconds;
                   });
  return events;
}

std::vector<FlightEvent> FlightRecorder::tail(std::size_t max_events) const {
  std::vector<FlightEvent> events = drain();
  if (events.size() > max_events) {
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(max_events));
  }
  return events;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::uint64_t total = 0;
  const std::size_t count = journal_count();
  for (std::size_t i = 0; i < count; ++i) {
    if (const detail::FlightJournal* j = journal(i)) {
      total += j->records_written();
    }
  }
  return total;
}

void FlightRecorder::write_json_lines(std::ostream& out) const {
  for (const FlightEvent& e : drain()) {
    out << "{\"t\":" << e.t_seconds << ",\"code\":\""
        << flight_code_name(e.code) << "\",\"shot\":" << e.shot_id
        << ",\"detail\":" << e.detail << ",\"value\":" << e.value
        << ",\"thread\":" << e.thread << "}\n";
  }
}

std::size_t FlightRecorder::write_tail_fd(int fd,
                                          std::size_t max_events) const {
  using sigsafe::format_fixed6;
  using sigsafe::format_u64;
  using sigsafe::write_all;
  using sigsafe::write_str;
  // Collect candidate events into a fixed on-stack window of the newest
  // records per journal, then emit oldest-first. No heap, no locks: safe
  // from a signal handler. Ordering across journals is approximate (per
  // journal it is exact); the timestamps printed with each line let the
  // reader re-sort.
  constexpr std::size_t kMaxTail = 128;
  if (max_events > kMaxTail) max_events = kMaxTail;
  const std::size_t count = journal_count();
  std::size_t written = 0;
  for (std::size_t i = 0; i < count && written < max_events; ++i) {
    const detail::FlightJournal* j = journal(i);
    if (j == nullptr) continue;
    const std::uint64_t next = j->records_written();
    const std::uint64_t cap = j->capacity();
    const std::uint64_t available = std::min<std::uint64_t>(next, cap);
    const std::uint64_t per_journal =
        std::min<std::uint64_t>(available, max_events - written);
    for (std::uint64_t k = next - per_journal; k < next; ++k) {
      FlightEvent event;
      if (!detail::read_slot(j->slot(k & (cap - 1)), event, j->ordinal())) {
        continue;
      }
      char line[192];
      std::size_t n = 0;
      n = sigsafe::append(line, n, sizeof line, "t=");
      n += format_fixed6(line + n, event.t_seconds);
      n = sigsafe::append(line, n, sizeof line, " code=");
      n = sigsafe::append(line, n, sizeof line, flight_code_name(event.code));
      n = sigsafe::append(line, n, sizeof line, " shot=");
      n += format_u64(line + n, event.shot_id);
      n = sigsafe::append(line, n, sizeof line, " d=");
      n += format_u64(line + n, event.detail);
      n = sigsafe::append(line, n, sizeof line, " v=");
      n += format_fixed6(line + n, event.value);
      n = sigsafe::append(line, n, sizeof line, " tid=");
      n += format_u64(line + n, event.thread);
      line[n++] = '\n';
      write_all(fd, line, n);
      ++written;
    }
  }
  if (written == 0) {
    write_str(fd, "(no flight events recorded)\n");
  }
  return written;
}

FlightRecorder& flight_recorder() {
  static FlightRecorder recorder;
  return recorder;
}

}  // namespace arams::obs
