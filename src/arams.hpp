#pragma once
// arams.hpp — umbrella header for the stable public surface of the ARAMS
// library. Examples and tools include this one header instead of reaching
// into per-subsystem internals; anything not exported here is an
// implementation detail whose layout may change between releases.
//
// Exported surface:
//   core      Arams / AramsConfig / AramsResult, the pluggable Sketcher
//             interface + make_sketcher factory, sketch merging
//   stream    MonitoringPipeline, StreamingMonitor, sources, diagnostics,
//             DAQ event building
//   parallel  ThreadPool, virtual-core scaling driver
//   obs       MetricsRegistry, ScopedSpan traces, StageReport
//   data      synthetic LCLS workload generators
//   embed     embedding quality metrics + HTML scatter export
//   image     frame type, preprocessing, calibration
//   io        .frames bundles and .npy matrices
//   linalg    user-facing error estimators (covariance error, trace est.)
//   util      CLI flags, CSV tables, stopwatch, checks

#include "cluster/metrics.hpp"
#include "core/arams_sketch.hpp"
#include "core/merge.hpp"
#include "core/sketcher.hpp"
#include "data/beam_profile.hpp"
#include "data/diffraction.hpp"
#include "data/speckle.hpp"
#include "data/synthetic.hpp"
#include "embed/metrics.hpp"
#include "embed/scatter_html.hpp"
#include "image/calibration.hpp"
#include "image/image.hpp"
#include "image/preprocess.hpp"
#include "io/frames.hpp"
#include "io/npy.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/trace_est.hpp"
#include "obs/build_info.hpp"
#include "obs/export_prom.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/profiler.hpp"
#include "obs/stage_report.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/virtual_cores.hpp"
#include "stream/bounded_queue.hpp"
#include "stream/diagnostics.hpp"
#include "stream/event_builder.hpp"
#include "stream/monitor.hpp"
#include "stream/pipeline.hpp"
#include "stream/source.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
