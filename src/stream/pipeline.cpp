#include "stream/pipeline.hpp"

#include <algorithm>
#include <array>
#include <span>
#include <sstream>

#include "embed/pca.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::stream {

using linalg::Matrix;

namespace {

/// Trailing-window latency per pipeline stage: repeated analyze() calls
/// (the snapshot cadence of a long run) land each stage's wall time here,
/// so an operator sees "embed p95 over the last few minutes", not the
/// lifetime mean. Stage seconds live well above the default 10 s latency
/// ceiling for big inputs, so the bounds extend into minutes.
obs::SlidingHistogram& stage_window(const char* metric) {
  static constexpr std::array<double, 10> kBounds = {
      1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0};
  return obs::metrics().sliding_histogram(
      metric, /*window_seconds=*/300.0, /*epochs=*/6,
      std::span<const double>(kBounds));
}

/// Journals one stage_complete flight event (stage id in `detail`, wall
/// seconds in `value`) — the per-stage breadcrumb a post-mortem tail
/// shows for the run's final moments.
void record_stage(obs::FlightStage stage, double seconds) {
  obs::flight_recorder().record(obs::FlightCode::kStageComplete, 0,
                                static_cast<std::uint32_t>(stage), seconds);
}

/// Publishes which ingest lane this run used (32 or 64) so dashboards can
/// correlate throughput shifts with the precision switch.
void publish_ingest_precision(int bits) {
  static obs::Gauge& gauge = obs::metrics().gauge("ingest.precision");
  gauge.set(static_cast<double>(bits));
}

}  // namespace

std::vector<std::string> PipelineConfig::validate() const {
  std::vector<std::string> errors = sketch.validate();
  const auto fmt = [](const auto& value) {
    std::ostringstream out;
    out << value;
    return out.str();
  };
  if (!core::sketcher_registered(sketcher)) {
    std::string registered;
    for (const auto& name : core::registered_sketchers()) {
      if (!registered.empty()) registered += ", ";
      registered += name;
    }
    errors.push_back("unknown sketcher backend '" + sketcher +
                     "' (registered: " + registered + ")");
  }
  if (num_cores < 1) {
    errors.push_back("num_cores must be >= 1, got " + fmt(num_cores));
  }
  if (shards < 1) {
    errors.push_back("shards must be >= 1, got " + fmt(shards));
  }
  if (pca_components == 0) {
    errors.push_back("pca_components must be >= 1");
  }
  if (umap.n_neighbors < 2) {
    errors.push_back("umap.n_neighbors must be >= 2, got " +
                     fmt(umap.n_neighbors));
  }
  for (const std::string& e : umap.knn.validate()) {
    errors.push_back("umap.knn: " + e);
  }
  if (!(cluster_quantile > 0.0 && cluster_quantile <= 1.0)) {
    errors.push_back("cluster_quantile must be in (0, 1], got " +
                     fmt(cluster_quantile));
  }
  if (abod_k == 1) {
    errors.push_back("abod_k must be 0 (disabled) or >= 2");
  }
  return errors;
}

core::SketcherConfig PipelineConfig::sketcher_config() const {
  core::SketcherConfig out;
  out.backend = sketcher;
  out.shards = shards;
  out.arams = sketch;
  out.ell = sketch.ell;
  out.seed = sketch.seed;
  return out;
}

MonitoringPipeline::MonitoringPipeline(const PipelineConfig& config)
    : config_(config) {
  const std::vector<std::string> errors = config.validate();
  if (!errors.empty()) {
    std::string joined;
    for (const auto& e : errors) {
      if (!joined.empty()) joined += "; ";
      joined += e;
    }
    ARAMS_CHECK(false, "invalid PipelineConfig: " + joined);
  }
}

PipelineResult MonitoringPipeline::analyze(
    const std::vector<image::ImageF>& frames) const {
  return analyze_frames(frames, {});
}

PipelineResult MonitoringPipeline::analyze(
    const std::vector<image::ImageF32>& frames) const {
  return analyze_frames_f32(frames, {});
}

PipelineResult MonitoringPipeline::analyze_events(
    const std::vector<ShotEvent>& events) const {
  std::vector<image::ImageF> frames;
  std::vector<std::uint64_t> shot_ids;
  frames.reserve(events.size());
  shot_ids.reserve(events.size());
  for (const auto& e : events) {
    frames.push_back(e.frame);
    shot_ids.push_back(e.shot_id);
  }
  return analyze_frames(frames, std::move(shot_ids));
}

PipelineResult MonitoringPipeline::analyze_matrix(const Matrix& rows) const {
  const obs::ScopedSpan span("pipeline.analyze");
  return run_stages(rows, {});
}

PipelineResult MonitoringPipeline::analyze_matrix(
    linalg::MatrixViewF rows) const {
  const obs::ScopedSpan span("pipeline.analyze");
  return run_stages_f32(rows, {});
}

PipelineResult MonitoringPipeline::analyze_frames(
    const std::vector<image::ImageF>& frames,
    std::vector<std::uint64_t> shot_ids) const {
  ARAMS_CHECK(!frames.empty(), "no frames to analyze");
  if (config_.ingest_precision == PipelineConfig::IngestPrecision::kF32) {
    // Narrow at the door: one cast pass over the raw pixels, then every
    // downstream ingest step moves half the bytes.
    std::vector<image::ImageF32> narrowed;
    narrowed.reserve(frames.size());
    for (const auto& frame : frames) {
      narrowed.push_back(image::narrow(frame));
    }
    return analyze_frames_f32(narrowed, std::move(shot_ids));
  }
  const obs::ScopedSpan span("pipeline.analyze");
  Stopwatch timer;
  Matrix rows;
  {
    // --- stage 1: per-frame preprocessing ---
    const obs::ScopedSpan stage_span("pipeline.preprocess");
    const std::vector<image::ImageF> processed =
        image::preprocess_batch(frames, config_.preprocess);
    rows = image::images_to_matrix(processed);
  }
  const double pre = timer.seconds();
  stage_window("pipeline.preprocess_seconds_window").record(pre);
  record_stage(obs::FlightStage::kPreprocess, pre);
  PipelineResult result = run_stages(rows, std::move(shot_ids));
  result.report.set_seconds("preprocess", pre);
  return result;
}

PipelineResult MonitoringPipeline::analyze_frames_f32(
    const std::vector<image::ImageF32>& frames,
    std::vector<std::uint64_t> shot_ids) const {
  ARAMS_CHECK(!frames.empty(), "no frames to analyze");
  const obs::ScopedSpan span("pipeline.analyze");
  Stopwatch timer;
  linalg::MatrixF rows;
  {
    // --- stage 1: per-frame preprocessing, fp32 kernels (reductions in
    // double, NaN guards identical to the fp64 lane) ---
    const obs::ScopedSpan stage_span("pipeline.preprocess");
    const std::vector<image::ImageF32> processed =
        image::preprocess_batch(frames, config_.preprocess);
    rows = image::images_to_matrix(processed);
  }
  const double pre = timer.seconds();
  stage_window("pipeline.preprocess_seconds_window").record(pre);
  record_stage(obs::FlightStage::kPreprocess, pre);
  PipelineResult result = run_stages_f32(rows, std::move(shot_ids));
  result.report.set_seconds("preprocess", pre);
  return result;
}

PipelineResult MonitoringPipeline::run_stages(
    const Matrix& rows, std::vector<std::uint64_t> shot_ids) const {
  ARAMS_CHECK(rows.rows() >= 2, "need at least two rows");
  ARAMS_CHECK(shot_ids.empty() || shot_ids.size() == rows.rows(),
              "shot id count does not match row count");
  PipelineResult result;
  result.shot_ids = std::move(shot_ids);
  publish_ingest_precision(64);
  Stopwatch timer;

  // --- stage 2: sharded ARAMS sketch, tree-merged; or any other
  // factory-registered backend as a single streaming instance ---
  if (config_.sketcher != "arams" || config_.shards > 1) {
    // Non-ARAMS backends run one streaming instance over all rows; with
    // shards > 1 the factory wraps any backend (arams included) in a
    // ShardedSketcher — concurrent round-robin ingest on the shared pool,
    // pool-executed tree merge at sketch time.
    const obs::ScopedSpan stage_span("pipeline.sketch");
    const std::unique_ptr<core::Sketcher> sketcher =
        core::make_sketcher(config_.sketcher_config());
    sketcher->push_batch(rows);
    result.sketch = sketcher->sketch();
    result.final_ell = sketcher->current_ell();
    sketcher->report(result.report);
  } else {
    const obs::ScopedSpan stage_span("pipeline.sketch");
    const std::size_t n = rows.rows();
    const std::size_t cores = std::min<std::size_t>(config_.num_cores, n);
    std::vector<core::AramsResult> shards(cores);
    const auto run_shard = [&](std::size_t c) {
      const std::size_t r0 = c * n / cores;
      const std::size_t r1 = (c + 1) * n / cores;
      if (r1 <= r0) return;
      core::AramsConfig shard_config = config_.sketch;
      shard_config.seed = config_.sketch.seed + c;
      core::Arams sketcher(shard_config);
      shards[c] = sketcher.sketch_matrix(rows.slice_rows(r0, r1));
    };
    if (config_.use_threads && cores > 1) {
      parallel::ThreadPool pool(std::min<std::size_t>(cores, 8));
      pool.parallel_for(cores, run_shard);
    } else {
      for (std::size_t c = 0; c < cores; ++c) {
        run_shard(c);
      }
    }
    std::vector<Matrix> sketches;
    sketches.reserve(cores);
    std::size_t final_ell = config_.sketch.ell;
    core::SketchStats sketch_stats;
    for (auto& shard : shards) {
      if (shard.sketch.empty()) continue;
      sketch_stats += core::sketch_stats_from_report(shard.report);
      final_ell = std::max(final_ell, shard.final_ell);
      sketches.push_back(std::move(shard.sketch));
    }
    core::append_to_report(sketch_stats, result.report);
    result.final_ell = final_ell;
    core::MergeStats merge_stats;
    result.sketch = (sketches.size() == 1)
                        ? std::move(sketches.front())
                        : core::tree_merge(std::move(sketches), final_ell, 2,
                                           &merge_stats);
    core::append_to_report(merge_stats, result.report);
  }
  {
    const double sketch_seconds = timer.lap();
    stage_window("pipeline.sketch_seconds_window").record(sketch_seconds);
    result.report.set_seconds("sketch", sketch_seconds);
    record_stage(obs::FlightStage::kSketch, sketch_seconds);
  }

  run_tail_stages(rows, result, timer);
  return result;
}

PipelineResult MonitoringPipeline::run_stages_f32(
    linalg::MatrixViewF rows, std::vector<std::uint64_t> shot_ids) const {
  ARAMS_CHECK(rows.rows() >= 2, "need at least two rows");
  ARAMS_CHECK(shot_ids.empty() || shot_ids.size() == rows.rows(),
              "shot id count does not match row count");
  PipelineResult result;
  result.shot_ids = std::move(shot_ids);
  publish_ingest_precision(32);
  Stopwatch timer;

  // --- stage 2: one streaming sketcher over the float rows. Every
  // backend accepts them through the Sketcher fp32 seam (arams, fd,
  // gaussian and countsketch natively; the rest via the widening shim).
  // The fp64 lane's sharded tree-merge is not replicated here — the whole
  // point of this lane is to keep the frames narrow until the sketch core.
  {
    const obs::ScopedSpan stage_span("pipeline.sketch");
    const std::unique_ptr<core::Sketcher> sketcher =
        core::make_sketcher(config_.sketcher_config());
    sketcher->push_batch(rows);
    result.sketch = sketcher->sketch();
    result.final_ell = sketcher->current_ell();
    sketcher->report(result.report);
  }
  {
    const double sketch_seconds = timer.lap();
    stage_window("pipeline.sketch_seconds_window").record(sketch_seconds);
    result.report.set_seconds("sketch", sketch_seconds);
    record_stage(obs::FlightStage::kSketch, sketch_seconds);
  }

  // The analysis tail (PCA projection of the raw rows, UMAP, clustering)
  // is fp64; widen the rows exactly once, charging it to the report so
  // the lane's conversion cost stays visible.
  Matrix wide;
  linalg::widen(rows, wide);
  result.report.add_seconds("ingest_widen", timer.lap());
  run_tail_stages(wide, result, timer);
  return result;
}

void MonitoringPipeline::run_tail_stages(const Matrix& rows,
                                         PipelineResult& result,
                                         Stopwatch& timer) const {
  // --- stage 3: PCA latent projection of the *original* rows ---
  {
    const obs::ScopedSpan stage_span("pipeline.project");
    const embed::PcaProjector pca(result.sketch, config_.pca_components);
    result.latent = pca.project(rows);
  }
  {
    const double project_seconds = timer.lap();
    stage_window("pipeline.project_seconds_window").record(project_seconds);
    result.report.set_seconds("project", project_seconds);
    record_stage(obs::FlightStage::kProject, project_seconds);
  }

  // --- stage 4: UMAP to 2-D ---
  {
    const obs::ScopedSpan stage_span("pipeline.embed");
    embed::UmapConfig umap_config = config_.umap;
    umap_config.n_neighbors =
        std::min(umap_config.n_neighbors, result.latent.rows() - 1);
    result.embedding = embed::umap_embed(result.latent, umap_config);
  }
  {
    const double embed_seconds = timer.lap();
    stage_window("pipeline.embed_seconds_window").record(embed_seconds);
    result.report.set_seconds("embed", embed_seconds);
    record_stage(obs::FlightStage::kEmbed, embed_seconds);
  }

  // --- stage 5: density clustering + ABOD outlier scores ---
  {
    const obs::ScopedSpan stage_span("pipeline.cluster");
    const std::size_t scaled_min_pts =
        config_.scale_min_pts
            ? std::min<std::size_t>(result.embedding.rows() / 10, 30)
            : 0;
    if (config_.cluster_method == PipelineConfig::ClusterMethod::kKmeans) {
      cluster::KmeansConfig kmeans_config = config_.kmeans;
      kmeans_config.k =
          std::min<std::size_t>(kmeans_config.k, result.embedding.rows());
      result.labels =
          cluster::kmeans(result.embedding, kmeans_config).labels;
    } else if (config_.cluster_method ==
               PipelineConfig::ClusterMethod::kHdbscan) {
      cluster::HdbscanConfig hdbscan_config = config_.hdbscan;
      hdbscan_config.min_samples = std::min<std::size_t>(
          std::max(hdbscan_config.min_samples, scaled_min_pts),
          result.embedding.rows() - 1);
      hdbscan_config.min_cluster_size =
          std::max(hdbscan_config.min_cluster_size, scaled_min_pts);
      result.labels =
          cluster::hdbscan(result.embedding, hdbscan_config).labels;
    } else {
      cluster::OpticsConfig optics_config = config_.optics;
      optics_config.min_pts =
          std::max(optics_config.min_pts, scaled_min_pts);
      optics_config.min_pts = std::min<std::size_t>(
          optics_config.min_pts, result.embedding.rows());
      result.optics = cluster::optics(result.embedding, optics_config);
      result.labels = cluster::extract_auto(result.optics,
                                            config_.cluster_quantile);
    }
    if (config_.abod_k >= 2 && result.embedding.rows() > config_.abod_k) {
      result.outlier_scores = cluster::fast_abod(
          result.embedding, cluster::AbodConfig{config_.abod_k});
    }
  }
  {
    const double cluster_seconds = timer.lap();
    stage_window("pipeline.cluster_seconds_window").record(cluster_seconds);
    result.report.set_seconds("cluster", cluster_seconds);
    record_stage(obs::FlightStage::kCluster, cluster_seconds);
  }
}

}  // namespace arams::stream
