#include "stream/pipeline.hpp"

#include <algorithm>

#include "embed/pca.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::stream {

using linalg::Matrix;

MonitoringPipeline::MonitoringPipeline(const PipelineConfig& config)
    : config_(config) {
  ARAMS_CHECK(config.num_cores >= 1, "need at least one core");
  ARAMS_CHECK(config.pca_components >= 1, "need at least one PCA component");
}

PipelineResult MonitoringPipeline::analyze(
    const std::vector<image::ImageF>& frames) const {
  ARAMS_CHECK(!frames.empty(), "no frames to analyze");
  Stopwatch timer;
  const std::vector<image::ImageF> processed =
      image::preprocess_batch(frames, config_.preprocess);
  Matrix rows = image::images_to_matrix(processed);
  const double pre = timer.seconds();
  PipelineResult result = analyze_matrix(rows);
  result.preprocess_seconds = pre;
  return result;
}

PipelineResult MonitoringPipeline::analyze_events(
    const std::vector<ShotEvent>& events) const {
  std::vector<image::ImageF> frames;
  frames.reserve(events.size());
  for (const auto& e : events) {
    frames.push_back(e.frame);
  }
  return analyze(frames);
}

PipelineResult MonitoringPipeline::analyze_matrix(const Matrix& rows) const {
  ARAMS_CHECK(rows.rows() >= 2, "need at least two rows");
  PipelineResult result;
  Stopwatch timer;

  // --- stage 2: sharded ARAMS sketch, tree-merged ---
  const std::size_t n = rows.rows();
  const std::size_t cores = std::min<std::size_t>(config_.num_cores, n);
  std::vector<core::AramsResult> shards(cores);
  const auto run_shard = [&](std::size_t c) {
    const std::size_t r0 = c * n / cores;
    const std::size_t r1 = (c + 1) * n / cores;
    if (r1 <= r0) return;
    core::AramsConfig shard_config = config_.sketch;
    shard_config.seed = config_.sketch.seed + c;
    core::Arams sketcher(shard_config);
    shards[c] = sketcher.sketch_matrix(rows.slice_rows(r0, r1));
  };
  if (config_.use_threads && cores > 1) {
    parallel::ThreadPool pool(std::min<std::size_t>(cores, 8));
    pool.parallel_for(cores, run_shard);
  } else {
    for (std::size_t c = 0; c < cores; ++c) {
      run_shard(c);
    }
  }
  std::vector<Matrix> sketches;
  sketches.reserve(cores);
  std::size_t final_ell = config_.sketch.ell;
  for (auto& shard : shards) {
    if (shard.sketch.empty()) continue;
    result.sketch_stats += shard.stats;
    final_ell = std::max(final_ell, shard.final_ell);
    sketches.push_back(std::move(shard.sketch));
  }
  result.final_ell = final_ell;
  result.sketch = (sketches.size() == 1)
                      ? std::move(sketches.front())
                      : core::tree_merge(std::move(sketches), final_ell, 2,
                                         &result.merge_stats);
  result.sketch_seconds = timer.lap();

  // --- stage 3: PCA latent projection of the *original* rows ---
  const embed::PcaProjector pca(result.sketch, config_.pca_components);
  result.latent = pca.project(rows);
  result.project_seconds = timer.lap();

  // --- stage 4: UMAP to 2-D ---
  embed::UmapConfig umap_config = config_.umap;
  umap_config.n_neighbors =
      std::min(umap_config.n_neighbors, result.latent.rows() - 1);
  result.embedding = embed::umap_embed(result.latent, umap_config);
  result.embed_seconds = timer.lap();

  // --- stage 5: density clustering + ABOD outlier scores ---
  const std::size_t scaled_min_pts =
      config_.scale_min_pts
          ? std::min<std::size_t>(result.embedding.rows() / 10, 30)
          : 0;
  if (config_.cluster_method == PipelineConfig::ClusterMethod::kKmeans) {
    cluster::KmeansConfig kmeans_config = config_.kmeans;
    kmeans_config.k =
        std::min<std::size_t>(kmeans_config.k, result.embedding.rows());
    result.labels =
        cluster::kmeans(result.embedding, kmeans_config).labels;
  } else if (config_.cluster_method ==
             PipelineConfig::ClusterMethod::kHdbscan) {
    cluster::HdbscanConfig hdbscan_config = config_.hdbscan;
    hdbscan_config.min_samples = std::min<std::size_t>(
        std::max(hdbscan_config.min_samples, scaled_min_pts),
        result.embedding.rows() - 1);
    hdbscan_config.min_cluster_size =
        std::max(hdbscan_config.min_cluster_size, scaled_min_pts);
    result.labels =
        cluster::hdbscan(result.embedding, hdbscan_config).labels;
  } else {
    cluster::OpticsConfig optics_config = config_.optics;
    optics_config.min_pts =
        std::max(optics_config.min_pts, scaled_min_pts);
    optics_config.min_pts = std::min<std::size_t>(
        optics_config.min_pts, result.embedding.rows());
    result.optics = cluster::optics(result.embedding, optics_config);
    result.labels = cluster::extract_auto(result.optics,
                                          config_.cluster_quantile);
  }
  if (config_.abod_k >= 2 && result.embedding.rows() > config_.abod_k) {
    result.outlier_scores = cluster::fast_abod(
        result.embedding, cluster::AbodConfig{config_.abod_k});
  }
  result.cluster_seconds = timer.lap();
  return result;
}

}  // namespace arams::stream
