#pragma once
// Bounded blocking queue — the hand-off between a DAQ ingestion thread and
// the analysis thread(s). Push blocks when full (back-pressure toward the
// detector buffer, never unbounded memory), pop blocks when empty, and
// close() drains cleanly at end of run.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace arams::stream {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    ARAMS_CHECK(capacity >= 1, "queue capacity must be >= 1");
  }

  /// Registers live telemetry for this queue under `prefix` in
  /// obs::metrics(): gauges `<prefix>.occupancy` (items queued) and
  /// `<prefix>.saturation` (occupancy / capacity, the back-pressure
  /// early-warning the health watchdog consumes), counters
  /// `<prefix>.enqueued`, `<prefix>.dequeued`, `<prefix>.rejected`
  /// (try_push on a full queue) and `<prefix>.push_waits` (blocking
  /// pushes that found the queue full — each one stalled the producer).
  /// All updates happen under the queue mutex the operation already holds.
  void enable_metrics(std::string_view prefix) {
    const std::lock_guard<std::mutex> lock(mutex_);
    obs::MetricsRegistry& registry = obs::metrics();
    const std::string p(prefix);
    occupancy_gauge_ = &registry.gauge(p + ".occupancy");
    saturation_gauge_ = &registry.gauge(p + ".saturation");
    enqueued_counter_ = &registry.counter(p + ".enqueued");
    dequeued_counter_ = &registry.counter(p + ".dequeued");
    rejected_counter_ = &registry.counter(p + ".rejected");
    push_waits_counter_ = &registry.counter(p + ".push_waits");
    publish_occupancy_locked();
  }

  /// Blocks until space is available. Returns false if the queue was
  /// closed (the item is dropped — the run is over).
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!closed_ && items_.size() >= capacity_ &&
        push_waits_counter_ != nullptr) {
      push_waits_counter_->add(1);
    }
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (enqueued_counter_ != nullptr) enqueued_counter_->add(1);
    publish_occupancy_locked();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) {
        if (!closed_ && rejected_counter_ != nullptr) {
          rejected_counter_->add(1);
        }
        return false;
      }
      items_.push_back(std::move(item));
      if (enqueued_counter_ != nullptr) enqueued_counter_->add(1);
      publish_occupancy_locked();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives; std::nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    if (dequeued_counter_ != nullptr) dequeued_counter_->add(1);
    publish_occupancy_locked();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Ends the stream: pending items remain poppable, pushes fail.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Occupancy as a fraction of capacity, 0..1.
  [[nodiscard]] double saturation() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<double>(items_.size()) /
           static_cast<double>(capacity_);
  }
  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  void publish_occupancy_locked() {
    if (occupancy_gauge_ == nullptr) return;
    occupancy_gauge_->set(static_cast<double>(items_.size()));
    saturation_gauge_->set(static_cast<double>(items_.size()) /
                           static_cast<double>(capacity_));
  }

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  // Telemetry (null until enable_metrics); registry references are stable
  // for the process lifetime.
  obs::Gauge* occupancy_gauge_ = nullptr;
  obs::Gauge* saturation_gauge_ = nullptr;
  obs::Counter* enqueued_counter_ = nullptr;
  obs::Counter* dequeued_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* push_waits_counter_ = nullptr;
};

}  // namespace arams::stream
