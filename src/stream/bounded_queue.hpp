#pragma once
// Bounded blocking queue — the hand-off between a DAQ ingestion thread and
// the analysis thread(s). Push blocks when full (back-pressure toward the
// detector buffer, never unbounded memory), pop blocks when empty, and
// close() drains cleanly at end of run.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "util/check.hpp"

namespace arams::stream {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    ARAMS_CHECK(capacity >= 1, "queue capacity must be >= 1");
  }

  /// Blocks until space is available. Returns false if the queue was
  /// closed (the item is dropped — the run is over).
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives; std::nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Ends the stream: pending items remain poppable, pushes fail.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace arams::stream
