#pragma once
// Frame sources: rate-controlled synthetic detectors standing in for the
// LCLS data acquisition stream (120 Hz today, toward 1 MHz with LCLS-II).

#include <memory>
#include <optional>

#include "data/beam_profile.hpp"
#include "data/diffraction.hpp"
#include "data/speckle.hpp"
#include "stream/event.hpp"

namespace arams::stream {

/// Pull-based frame source. next() returns std::nullopt when exhausted.
class FrameSource {
 public:
  virtual ~FrameSource() = default;
  virtual std::optional<ShotEvent> next() = 0;
};

/// Beam-profile detector: emits `total` frames at `rate_hz` logical rate
/// (timestamps advance by 1/rate; no wall-clock sleeping — the throughput
/// bench measures how much faster than real time the pipeline runs).
class BeamProfileSource : public FrameSource {
 public:
  BeamProfileSource(const data::BeamProfileConfig& config, std::size_t total,
                    double rate_hz, std::uint64_t seed);
  std::optional<ShotEvent> next() override;

 private:
  data::BeamProfileConfig config_;
  std::size_t total_;
  double rate_hz_;
  Rng rng_;
  std::uint64_t emitted_ = 0;
};

/// Large-area diffraction detector.
class DiffractionSource : public FrameSource {
 public:
  DiffractionSource(const data::DiffractionConfig& config, std::size_t total,
                    double rate_hz, std::uint64_t seed);
  std::optional<ShotEvent> next() override;

 private:
  data::DiffractionGenerator generator_;
  std::size_t total_;
  double rate_hz_;
  Rng rng_;
  std::uint64_t emitted_ = 0;
};

/// XPCS speckle detector (the §VI-B workload: correlated speckle series).
class SpeckleSource : public FrameSource {
 public:
  SpeckleSource(const data::SpeckleConfig& config, std::size_t total,
                double rate_hz, std::uint64_t seed);
  std::optional<ShotEvent> next() override;

 private:
  data::SpeckleGenerator generator_;
  std::size_t total_;
  double rate_hz_;
  std::uint64_t emitted_ = 0;
};

/// Drains up to `count` events from a source.
std::vector<ShotEvent> drain(FrameSource& source, std::size_t count);

}  // namespace arams::stream
