#pragma once
// Online monitoring driver: consumes a frame stream batch by batch,
// maintains a persistent ARAMS sketch, and produces embedding snapshots on
// demand — the operational mode Section VI-B times (12,000 2-MP frames at
// 136 Hz on 64 cores, UMAP/OPTICS in under a minute).

#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "core/error_tracker.hpp"
#include "core/sketcher.hpp"
#include "embed/ann/searcher.hpp"
#include "linalg/workspace.hpp"
#include "obs/health.hpp"
#include "obs/stage_report.hpp"
#include "stream/pipeline.hpp"
#include "stream/source.hpp"

namespace arams::stream {

/// Rolling throughput measurement: lifetime totals plus a trailing window
/// of the most recent records, so a mid-run slowdown is visible instead of
/// being averaged away by hours of healthy history.
class ThroughputMeter {
 public:
  /// `window_records` — record() calls the recent-rate ring retains.
  explicit ThroughputMeter(std::size_t window_records = 128);

  void record(std::size_t frames, double seconds);

  /// Lifetime frames per accumulated second; 0.0 before the first
  /// record() (or when only zero-duration records arrived) rather than
  /// inf/NaN.
  [[nodiscard]] double frames_per_second() const;
  /// Same quotient over only the trailing `window_records` records.
  [[nodiscard]] double recent_frames_per_second() const;

  [[nodiscard]] std::size_t total_frames() const { return frames_; }
  [[nodiscard]] double total_seconds() const { return seconds_; }
  [[nodiscard]] std::size_t window_records() const { return ring_.size(); }

 private:
  std::size_t frames_ = 0;
  double seconds_ = 0.0;
  std::vector<std::pair<std::size_t, double>> ring_;  // (frames, seconds)
  std::size_t ring_next_ = 0;
  std::size_t ring_count_ = 0;
  std::size_t window_frames_ = 0;
  double window_seconds_ = 0.0;
};

struct MonitorConfig {
  PipelineConfig pipeline;
  std::size_t batch_size = 256;      ///< frames per sketch update
  std::size_t reservoir_size = 2048; ///< frames retained for snapshots

  /// Numerical-health watchdog thresholds (obs::HealthMonitor).
  obs::HealthThresholds health;
  /// Sketch-update batches between the *expensive* health checks (error
  /// estimate + basis orthogonality, which cost a basis extraction and a
  /// reservoir projection); the cheap checks (NaN frames, rank thrash)
  /// run on every sample.
  std::size_t health_check_every = 1;
};

struct SnapshotResult {
  linalg::Matrix latent;
  linalg::Matrix embedding;
  std::vector<int> labels;
  std::vector<std::uint64_t> shot_ids;  ///< rows ↔ shots

  /// Stage timings for this snapshot ("snapshot" = end-to-end).
  obs::StageReport report;

  // Legacy accessor (kept for one release; prefer `report`).
  [[nodiscard]] double snapshot_seconds() const {
    return report.seconds("snapshot");
  }
};

/// Streaming monitor with a persistent sketch and a frame reservoir. The
/// sketch backend is whatever `config.pipeline.sketcher` names in the
/// core::make_sketcher registry — ARAMS by default, but any registered
/// backend (fd/isvd/gaussian/countsketch/normsample/rangefinder) drives the
/// same snapshot, watchdog and error-tracker plumbing. With
/// `config.pipeline.shards > 1` (or a "sharded:<inner>" backend name) the
/// batches drained from the bounded ingest queue fan out to per-shard
/// consumers on the shared pool: each sketch update round-robins its rows
/// across N concurrent shard sketchers (core::ShardedSketcher), which
/// tree-merge on demand at snapshot/error-check time.
class StreamingMonitor {
 public:
  explicit StreamingMonitor(const MonitorConfig& config);

  /// Preprocesses and absorbs one event into the current batch; when the
  /// batch fills, updates the sketch. Returns true if a sketch update ran.
  /// A frame whose preprocessed row contains NaN/Inf is *rejected* (it
  /// would poison the sketch's SVD path): counted, reported to the health
  /// watchdog, never added to the batch or reservoir.
  bool ingest(const ShotEvent& event);

  /// Flushes any partial batch into the sketch.
  void flush();

  /// Projects the reservoir through the current sketch, embeds and
  /// clusters it — the operator-facing picture of the run so far.
  /// (Non-const: compresses the sketch buffer before projecting.)
  SnapshotResult snapshot();

  /// Cheaper refresh between full snapshots: shots already present in the
  /// previous snapshot keep their embedding coordinates; new shots are
  /// placed with the out-of-sample UMAP transform against that frozen
  /// reference, and only the clustering is recomputed. Falls back to a
  /// full snapshot when no reference exists yet.
  SnapshotResult snapshot_incremental();

  [[nodiscard]] const ThroughputMeter& throughput() const { return meter_; }
  [[nodiscard]] std::size_t current_ell() const;
  [[nodiscard]] core::SketchStats sketch_stats() const;

  /// Operator gauge: relative reconstruction error of a uniform sample of
  /// *everything seen so far* against the current sketch basis (the
  /// SketchErrorTracker estimate). Non-const: compresses the sketch.
  [[nodiscard]] double sketch_error_estimate();

  /// The numerical-health watchdog, fed after every sketch batch (and on
  /// every rejected non-finite frame). Register transition callbacks and
  /// read the incident log here.
  [[nodiscard]] obs::HealthMonitor& health() { return health_; }
  [[nodiscard]] const obs::HealthMonitor& health() const { return health_; }

  /// Frames rejected because their preprocessed row was not finite.
  [[nodiscard]] long nonfinite_frames() const { return frames_nonfinite_; }

  /// The warm reference kNN index incremental snapshots query and grow
  /// (null until the first full snapshot). Exposed so callers/tests can
  /// observe stats(): builds stays at 1 across incremental refreshes while
  /// inserted_rows grows — the no-rebuild contract.
  [[nodiscard]] const embed::NeighborSearcher* reference_index() const {
    return ann_index_.get();
  }

  /// Attaches the upstream queue's occupancy fraction (0..1) to the next
  /// health sample — the DAQ driver owns the queue, the monitor owns the
  /// watchdog. NaN (the default) skips the queue-saturation check. The
  /// first crossing of 0.9 also journals a flight-recorder
  /// queue_saturation event (edge-triggered, so a stuck-full queue does
  /// not flood the ring).
  void note_queue_saturation(double fraction);

 private:
  void update_sketch();
  /// Non-const: OPTICS draws its distance rows from snapshot_ws_.
  void cluster_snapshot(SnapshotResult& out);
  /// Feeds one HealthSample; `with_numerics` additionally runs the
  /// basis-dependent checks (error estimate, orthogonality residual)
  /// every `health_check_every` batches.
  void feed_health(bool with_numerics);

  MonitorConfig config_;
  std::unique_ptr<core::Sketcher> sketcher_;
  core::SketchErrorTracker error_tracker_;
  ThroughputMeter meter_;
  obs::HealthMonitor health_;
  long frames_seen_ = 0;
  long frames_nonfinite_ = 0;
  long batches_ = 0;
  std::size_t last_ell_ = 0;       ///< for rank-change flight events
  bool queue_saturated_ = false;   ///< edge trigger for saturation events
  double queue_saturation_ = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::vector<double>> batch_rows_;
  /// fp32 ingest lane's pending batch (used instead of batch_rows_ when
  /// pipeline.ingest_precision is kF32). The reservoir and error tracker
  /// stay fp64 either way — they feed the fp64 snapshot tail.
  std::vector<std::vector<float>> batch_rows_f32_;
  std::deque<std::pair<std::uint64_t, std::vector<double>>> reservoir_;
  std::size_t dim_ = 0;
  /// Scratch for the whole snapshot path — the PCA rebuild (Gram,
  /// eigensolver, SVD factors) and the downstream distance engine (kNN
  /// blocks, UMAP transform, OPTICS range queries) share one arena via
  /// disjoint slot ranges. Persists across snapshots so refreshes stop
  /// allocating.
  linalg::Workspace snapshot_ws_;

  /// Reference from the last full snapshot (for incremental mode). Grows:
  /// each incremental refresh appends its freshly placed shots, so later
  /// refreshes keep those coordinates and query a richer neighbourhood.
  linalg::Matrix reference_latent_;
  linalg::Matrix reference_embedding_;
  std::vector<std::uint64_t> reference_shots_;
  /// Warm kNN index over reference_latent_: rebuilt on full snapshots,
  /// grown with insert() on incremental ones (never rebuilt between them).
  std::unique_ptr<embed::NeighborSearcher> ann_index_;
};

}  // namespace arams::stream
