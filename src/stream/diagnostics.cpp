#include "stream/diagnostics.hpp"

#include <cmath>
#include <string>

#include "util/check.hpp"

namespace arams::stream {

CusumDetector::CusumDetector(std::size_t warmup, double slack,
                             double threshold)
    : warmup_(warmup), slack_(slack), threshold_(threshold) {
  ARAMS_CHECK(warmup >= 2, "warmup must cover at least two samples");
  ARAMS_CHECK(slack >= 0.0 && threshold > 0.0, "bad CUSUM parameters");
}

double CusumDetector::reference_sigma() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

bool CusumDetector::update(double value) {
  if (count_ < warmup_) {
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    return false;
  }
  const double sigma = std::max(reference_sigma(), 1e-12);
  const double z = (value - mean_) / sigma;
  pos_ = std::max(0.0, pos_ + z - slack_);
  neg_ = std::max(0.0, neg_ - z - slack_);
  if (pos_ > threshold_ || neg_ > threshold_) {
    pos_ = 0.0;
    neg_ = 0.0;
    ++alarms_;
    return true;
  }
  return false;
}

ShotDiagnostics analyze_shot(const image::ImageF& frame) {
  ShotDiagnostics out;
  out.total_intensity = frame.total_intensity();
  const image::CenterOfMass com = image::center_of_mass(frame);
  out.com_x = com.x;
  out.com_y = com.y;
  if (com.mass > 0.0) {
    double sxx = 0.0, syy = 0.0;
    for (std::size_t y = 0; y < frame.height(); ++y) {
      const double dy = static_cast<double>(y) - com.y;
      for (std::size_t x = 0; x < frame.width(); ++x) {
        const double v = frame.at(y, x);
        if (v <= 0.0) continue;
        const double dx = static_cast<double>(x) - com.x;
        sxx += v * dx * dx;
        syy += v * dy * dy;
      }
    }
    out.second_moment = (sxx + syy) / com.mass;
  }
  return out;
}

BeamDiagnostics::BeamDiagnostics(std::size_t warmup)
    : intensity_(warmup), com_x_(warmup), com_y_(warmup), size_(warmup) {}

std::vector<std::string> BeamDiagnostics::update(const ShotEvent& event) {
  ++shots_;
  frames_.update(event.frame);
  const ShotDiagnostics d = analyze_shot(event.frame);
  std::vector<std::string> alarms;
  if (intensity_.update(d.total_intensity)) {
    alarms.push_back("intensity drift");
  }
  if (com_x_.update(d.com_x)) {
    alarms.push_back("horizontal pointing drift");
  }
  if (com_y_.update(d.com_y)) {
    alarms.push_back("vertical pointing drift");
  }
  if (size_.update(d.second_moment)) {
    alarms.push_back("beam size drift");
  }
  total_alarms_ += static_cast<long>(alarms.size());
  return alarms;
}

}  // namespace arams::stream
