#include "stream/event_builder.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace arams::stream {

EventBuilder::EventBuilder(std::vector<std::string> detectors,
                           std::size_t window)
    : detectors_(std::move(detectors)), window_(window) {
  ARAMS_CHECK(!detectors_.empty(), "need at least one detector");
  ARAMS_CHECK(window_ >= 1, "window must be >= 1");
  std::sort(detectors_.begin(), detectors_.end());
  ARAMS_CHECK(std::adjacent_find(detectors_.begin(), detectors_.end()) ==
                  detectors_.end(),
              "duplicate detector names");
}

std::vector<FusedEvent> EventBuilder::emit_ready() {
  // Strict shot order: the oldest pending shot leaves first, either
  // because it is complete or because the window slid past it.
  std::vector<FusedEvent> out;
  while (!pending_.empty()) {
    auto first = pending_.begin();
    const bool forced = pending_.size() > window_;
    if (!first->second.complete && !forced) break;
    if (first->second.complete) {
      ++stats_.complete_events;
    } else {
      ++stats_.incomplete_events;
    }
    emitted_watermark_ = first->first + 1;
    any_emitted_ = true;
    out.push_back(std::move(first->second));
    pending_.erase(first);
  }
  return out;
}

std::vector<FusedEvent> EventBuilder::push(const std::string& detector,
                                           std::uint64_t shot_id,
                                           double timestamp_seconds,
                                           image::ImageF frame) {
  ARAMS_CHECK(std::binary_search(detectors_.begin(), detectors_.end(),
                                 detector),
              "unknown detector: " + detector);
  ++stats_.readouts_seen;
  if (any_emitted_ && shot_id < emitted_watermark_) {
    ++stats_.stale_readouts;  // the shot already left the builder
    return {};
  }
  FusedEvent& event = pending_[shot_id];
  event.shot_id = shot_id;
  event.timestamp_seconds = timestamp_seconds;
  if (!event.readouts.emplace(detector, std::move(frame)).second) {
    ++stats_.duplicate_readouts;
    return emit_ready();  // window may still need to slide
  }
  event.complete = event.readouts.size() == detectors_.size();
  return emit_ready();
}

std::vector<FusedEvent> EventBuilder::flush() {
  std::vector<FusedEvent> out;
  out.reserve(pending_.size());
  for (auto& [shot, event] : pending_) {
    if (event.complete) {
      ++stats_.complete_events;
    } else {
      ++stats_.incomplete_events;
    }
    emitted_watermark_ = shot + 1;
    any_emitted_ = true;
    out.push_back(std::move(event));
  }
  pending_.clear();
  return out;
}

}  // namespace arams::stream
