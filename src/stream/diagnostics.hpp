#pragma once
// Shot-to-shot beam diagnostics.
//
// The paper's introduction motivates two uses of the event stream:
// scientific analysis (the sketching pipeline) and *instrument
// diagnostics* — "beam profiling can also be used directly as a diagnostic
// that helps operators improve the instrument's performance". This module
// provides the diagnostic half: running mean/variance frames (Welford),
// beam-position and intensity time series, and CUSUM drift alarms that
// flag when the beam wanders off its historical behaviour.

#include <cstddef>
#include <optional>
#include <vector>

#include "image/frame_stats.hpp"
#include "image/image.hpp"
#include "image/preprocess.hpp"
#include "stream/event.hpp"

namespace arams::stream {

/// Welford running frame statistics (lives in image/, re-exported here for
/// the diagnostics API).
using RunningFrameStats = image::RunningFrameStats;

/// Two-sided CUSUM drift detector on a scalar stream. Calibrates its
/// reference mean/sigma on the first `warmup` samples, then accumulates
/// standardized excursions beyond `slack` sigmas; alarms when either side
/// exceeds `threshold`.
class CusumDetector {
 public:
  CusumDetector(std::size_t warmup = 120, double slack = 0.5,
                double threshold = 8.0);

  /// Feeds one observation; returns true when the alarm fires (the
  /// detector then resets its accumulators but keeps the calibration).
  bool update(double value);

  [[nodiscard]] bool calibrated() const { return count_ >= warmup_; }
  [[nodiscard]] double reference_mean() const { return mean_; }
  [[nodiscard]] double reference_sigma() const;
  [[nodiscard]] double positive_sum() const { return pos_; }
  [[nodiscard]] double negative_sum() const { return neg_; }
  [[nodiscard]] long alarm_count() const { return alarms_; }

 private:
  std::size_t warmup_;
  double slack_;
  double threshold_;
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double pos_ = 0.0;
  double neg_ = 0.0;
  long alarms_ = 0;
};

/// Per-shot scalar diagnostics extracted from a frame.
struct ShotDiagnostics {
  double total_intensity = 0.0;
  double com_x = 0.0;        ///< pixels
  double com_y = 0.0;
  double second_moment = 0.0;  ///< trace of the intensity covariance
};

/// Computes the scalar diagnostics of one frame.
ShotDiagnostics analyze_shot(const image::ImageF& frame);

/// Aggregated beam monitor: running frame stats plus CUSUM alarms on
/// pointing (x, y), intensity, and beam size.
class BeamDiagnostics {
 public:
  explicit BeamDiagnostics(std::size_t warmup = 120);

  /// Absorbs a shot; returns the set of alarms it raised (empty = nominal).
  std::vector<std::string> update(const ShotEvent& event);

  [[nodiscard]] const RunningFrameStats& frame_stats() const {
    return frames_;
  }
  [[nodiscard]] long total_alarms() const { return total_alarms_; }
  [[nodiscard]] std::size_t shots_seen() const { return shots_; }

 private:
  RunningFrameStats frames_;
  CusumDetector intensity_;
  CusumDetector com_x_;
  CusumDetector com_y_;
  CusumDetector size_;
  std::size_t shots_ = 0;
  long total_alarms_ = 0;
};

}  // namespace arams::stream
