#pragma once
// Event building: "images from multiple detectors synchronized by a timing
// system that timestamps images and other readouts across the instrument
// and pools them all into event objects corresponding to individual shots"
// (paper, §I). The builder fuses per-detector readouts by shot id, emits
// complete events as soon as every expected detector reported, and evicts
// stragglers once the pending window slides past them — the standard LCLS
// event-building contract (bounded memory, bounded latency, explicit
// incompleteness instead of silent stalls).

#include <map>
#include <string>
#include <vector>

#include "image/image.hpp"

namespace arams::stream {

/// One fused shot: the readouts that arrived for it, keyed by detector.
struct FusedEvent {
  std::uint64_t shot_id = 0;
  double timestamp_seconds = 0.0;
  std::map<std::string, image::ImageF> readouts;
  bool complete = false;  ///< every expected detector reported
};

struct EventBuilderStats {
  long readouts_seen = 0;
  long complete_events = 0;
  long incomplete_events = 0;  ///< evicted with missing detectors
  long duplicate_readouts = 0; ///< same (shot, detector) twice — dropped
  long stale_readouts = 0;     ///< arrived after the shot was emitted
};

/// Timestamp-ordered event builder over a fixed detector set.
class EventBuilder {
 public:
  /// `detectors` — the full set expected per shot. `window` — maximum
  /// number of in-flight shots before the oldest is force-emitted.
  EventBuilder(std::vector<std::string> detectors, std::size_t window = 64);

  /// Offers one readout. Returns the events this readout completed or
  /// forced out of the window, in shot order (usually 0 or 1).
  std::vector<FusedEvent> push(const std::string& detector,
                               std::uint64_t shot_id,
                               double timestamp_seconds,
                               image::ImageF frame);

  /// Emits everything still pending (end of run), in shot order.
  std::vector<FusedEvent> flush();

  [[nodiscard]] const EventBuilderStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

 private:
  std::vector<FusedEvent> emit_ready();

  std::vector<std::string> detectors_;
  std::size_t window_;
  std::map<std::uint64_t, FusedEvent> pending_;  // ordered by shot id
  std::uint64_t emitted_watermark_ = 0;  ///< shots below this are gone
  bool any_emitted_ = false;
  EventBuilderStats stats_;
};

}  // namespace arams::stream
