#pragma once
// MonitoringPipeline — the Fig. 4 schematic as one public API.
//
// Stage 1  preprocess   threshold / center / normalize each frame
// Stage 2  sketch       ARAMS across virtual cores, tree-merged
// Stage 3  project      PCA latent projection from the global sketch
// Stage 4  visualize    UMAP to 2-D
// Stage 5  analyze      OPTICS clustering + FastABOD outlier scores

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/abod.hpp"
#include "cluster/hdbscan.hpp"
#include "cluster/kmeans.hpp"
#include "cluster/optics.hpp"
#include "core/arams_sketch.hpp"
#include "core/merge.hpp"
#include "core/sketcher.hpp"
#include "embed/umap.hpp"
#include "image/preprocess.hpp"
#include "obs/stage_report.hpp"
#include "stream/event.hpp"
#include "util/stopwatch.hpp"

namespace arams::stream {

struct PipelineConfig {
  image::PreprocessConfig preprocess;
  core::AramsConfig sketch;
  /// Sketching backend by factory name (core::make_sketcher). "arams" (the
  /// default) runs the paper's sharded + tree-merged path and consumes the
  /// full `sketch` config; every other registered backend ("fd", "isvd",
  /// "gaussian", "countsketch", "normsample", "rangefinder") runs a single
  /// streaming instance over all rows, taking ell/seed from `sketch`.
  std::string sketcher = "arams";
  /// Concurrent in-process ingest shards for the factory sketcher path
  /// (core::ShardedSketcher on the shared pool, pool-executed tree merge
  /// at sketch time). 1 (default) keeps the classic single-instance /
  /// virtual-core behavior bitwise unchanged; > 1 routes stage 2 through
  /// "sharded:<sketcher>". Orthogonal to `num_cores`, which drives the
  /// legacy arams-only range-partitioned shard path.
  std::size_t shards = 1;
  /// Ingest lane precision. kF64 (default) is the bitwise-unchanged
  /// classic path. kF32 narrows frames at the door, preprocesses at fp32,
  /// and feeds the sketcher through its fp32 entry point (native
  /// mixed-precision for arams/fd/gaussian/countsketch, widening shim for
  /// the rest) — halving ingest memory traffic while every accumulation
  /// stays fp64. The fp32 lane runs one streaming sketcher instance
  /// (`num_cores` is ignored; the legacy arams tree-merge is an fp64-batch
  /// construct), but `shards` still applies: the sharded wrapper gathers
  /// and fans out fp32 rows natively.
  enum class IngestPrecision { kF64, kF32 };
  IngestPrecision ingest_precision = IngestPrecision::kF64;
  std::size_t num_cores = 4;         ///< virtual cores for sketching
  bool use_threads = false;          ///< run shard sketches on a pool
  std::size_t pca_components = 15;   ///< latent dimension fed to UMAP
  embed::UmapConfig umap;
  /// Which clusterer labels the embedding. OPTICS is the paper's choice;
  /// HDBSCAN is the robust alternative when cluster densities differ (its
  /// package ships in the paper's artifact env); k-means is for operators
  /// who know the class count.
  enum class ClusterMethod { kOptics, kHdbscan, kKmeans };
  ClusterMethod cluster_method = ClusterMethod::kOptics;
  cluster::OpticsConfig optics;
  cluster::HdbscanConfig hdbscan;
  cluster::KmeansConfig kmeans;
  /// Scale optics.min_pts / hdbscan sizes up to ~n/10 (capped at 30) so
  /// density estimates smooth over UMAP's local clumping on larger
  /// embeddings.
  bool scale_min_pts = true;
  double cluster_quantile = 0.9;     ///< extract_auto reachability quantile
  std::size_t abod_k = 10;           ///< 0 disables outlier scoring

  /// Human-readable configuration errors (including the nested sketch
  /// config's), empty when usable. Called at MonitoringPipeline
  /// construction so a bad config fails at the API boundary.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// The core::SketcherConfig this pipeline config selects: `sketcher` as
  /// the backend, the nested AramsConfig carried whole, and its ell/seed
  /// mirrored into the scalar knobs the simple backends read.
  [[nodiscard]] core::SketcherConfig sketcher_config() const;
};

struct PipelineResult {
  linalg::Matrix sketch;          ///< global merged sketch (≤ ℓ × d)
  linalg::Matrix latent;          ///< n × pca_components
  linalg::Matrix embedding;       ///< n × 2
  std::vector<int> labels;        ///< OPTICS cluster labels (−1 = noise)
  std::vector<double> outlier_scores;  ///< ABOF per point (low = outlier)
  /// Row ↔ shot mapping; filled by analyze_events, empty otherwise.
  std::vector<std::uint64_t> shot_ids;
  cluster::OpticsResult optics;
  std::size_t final_ell = 0;

  /// Per-stage timings ("preprocess", "sketch", "project", "embed",
  /// "cluster", "merge") plus the sketch/merge operation counters.
  obs::StageReport report;

  // Legacy accessors (kept for one release; prefer `report`).
  [[nodiscard]] core::SketchStats sketch_stats() const {
    return core::sketch_stats_from_report(report);
  }
  [[nodiscard]] core::MergeStats merge_stats() const {
    return core::merge_stats_from_report(report);
  }
  [[nodiscard]] double preprocess_seconds() const {
    return report.seconds("preprocess");
  }
  [[nodiscard]] double sketch_seconds() const {
    return report.seconds("sketch");
  }
  [[nodiscard]] double project_seconds() const {
    return report.seconds("project");
  }
  [[nodiscard]] double embed_seconds() const {
    return report.seconds("embed");
  }
  [[nodiscard]] double cluster_seconds() const {
    return report.seconds("cluster");
  }
};

/// Batch analysis facade over the whole pipeline. All public entry points
/// are thin adapters over one internal stage runner, so every caller gets
/// identical plumbing, telemetry and reporting.
class MonitoringPipeline {
 public:
  explicit MonitoringPipeline(const PipelineConfig& config);

  /// Full pipeline over raw detector frames. With
  /// IngestPrecision::kF32 the frames are narrowed at the door and the
  /// fp32 lane runs end-to-end.
  PipelineResult analyze(const std::vector<image::ImageF>& frames) const;

  /// Full pipeline over fp32 detector frames — the mixed-precision ingest
  /// lane, regardless of `ingest_precision` (the frames are already fp32;
  /// widening them first would only add traffic).
  PipelineResult analyze(const std::vector<image::ImageF32>& frames) const;

  /// Full pipeline over shot events (uses their frames; result rows carry
  /// the events' shot ids).
  PipelineResult analyze_events(const std::vector<ShotEvent>& events) const;

  /// Pipeline over already-flattened rows (skips stage 1). Always the
  /// fp64 lane: the rows are fp64 already.
  PipelineResult analyze_matrix(const linalg::Matrix& rows) const;

  /// Pipeline over already-flattened fp32 rows (skips stage 1); the
  /// sketch stage consumes the float rows directly, the tail stages see
  /// them widened once.
  PipelineResult analyze_matrix(linalg::MatrixViewF rows) const;

  [[nodiscard]] const PipelineConfig& config() const { return config_; }

 private:
  /// The fp64 entry point: stages 2–5 over pre-flattened rows, tagging the
  /// result with the optional shot ids.
  PipelineResult run_stages(const linalg::Matrix& rows,
                            std::vector<std::uint64_t> shot_ids) const;

  /// The fp32 lane twin: stage 2 consumes the float rows through
  /// Sketcher's fp32 seam, then the rows are widened once for the shared
  /// fp64 tail (PCA reads the raw rows).
  PipelineResult run_stages_f32(linalg::MatrixViewF rows,
                                std::vector<std::uint64_t> shot_ids) const;

  /// Stages 3–5 (project / embed / cluster), shared by both lanes.
  void run_tail_stages(const linalg::Matrix& rows, PipelineResult& result,
                       Stopwatch& timer) const;

  /// Stage 1 + run_stages — shared by the two frame-based adapters.
  PipelineResult analyze_frames(const std::vector<image::ImageF>& frames,
                                std::vector<std::uint64_t> shot_ids) const;

  /// fp32 stage 1 + run_stages_f32.
  PipelineResult analyze_frames_f32(
      const std::vector<image::ImageF32>& frames,
      std::vector<std::uint64_t> shot_ids) const;

  PipelineConfig config_;
};

}  // namespace arams::stream
