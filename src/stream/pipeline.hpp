#pragma once
// MonitoringPipeline — the Fig. 4 schematic as one public API.
//
// Stage 1  preprocess   threshold / center / normalize each frame
// Stage 2  sketch       ARAMS across virtual cores, tree-merged
// Stage 3  project      PCA latent projection from the global sketch
// Stage 4  visualize    UMAP to 2-D
// Stage 5  analyze      OPTICS clustering + FastABOD outlier scores

#include <vector>

#include "cluster/abod.hpp"
#include "cluster/hdbscan.hpp"
#include "cluster/kmeans.hpp"
#include "cluster/optics.hpp"
#include "core/arams_sketch.hpp"
#include "core/merge.hpp"
#include "embed/umap.hpp"
#include "image/preprocess.hpp"
#include "stream/event.hpp"

namespace arams::stream {

struct PipelineConfig {
  image::PreprocessConfig preprocess;
  core::AramsConfig sketch;
  std::size_t num_cores = 4;         ///< virtual cores for sketching
  bool use_threads = false;          ///< run shard sketches on a pool
  std::size_t pca_components = 15;   ///< latent dimension fed to UMAP
  embed::UmapConfig umap;
  /// Which clusterer labels the embedding. OPTICS is the paper's choice;
  /// HDBSCAN is the robust alternative when cluster densities differ (its
  /// package ships in the paper's artifact env); k-means is for operators
  /// who know the class count.
  enum class ClusterMethod { kOptics, kHdbscan, kKmeans };
  ClusterMethod cluster_method = ClusterMethod::kOptics;
  cluster::OpticsConfig optics;
  cluster::HdbscanConfig hdbscan;
  cluster::KmeansConfig kmeans;
  /// Scale optics.min_pts / hdbscan sizes up to ~n/10 (capped at 30) so
  /// density estimates smooth over UMAP's local clumping on larger
  /// embeddings.
  bool scale_min_pts = true;
  double cluster_quantile = 0.9;     ///< extract_auto reachability quantile
  std::size_t abod_k = 10;           ///< 0 disables outlier scoring
};

struct PipelineResult {
  linalg::Matrix sketch;          ///< global merged sketch (≤ ℓ × d)
  linalg::Matrix latent;          ///< n × pca_components
  linalg::Matrix embedding;       ///< n × 2
  std::vector<int> labels;        ///< OPTICS cluster labels (−1 = noise)
  std::vector<double> outlier_scores;  ///< ABOF per point (low = outlier)
  cluster::OpticsResult optics;
  core::SketchStats sketch_stats;
  core::MergeStats merge_stats;
  std::size_t final_ell = 0;
  double preprocess_seconds = 0.0;
  double sketch_seconds = 0.0;
  double project_seconds = 0.0;
  double embed_seconds = 0.0;
  double cluster_seconds = 0.0;
};

/// Batch analysis facade over the whole pipeline.
class MonitoringPipeline {
 public:
  explicit MonitoringPipeline(const PipelineConfig& config);

  /// Full pipeline over raw detector frames.
  PipelineResult analyze(const std::vector<image::ImageF>& frames) const;

  /// Full pipeline over shot events (uses their frames).
  PipelineResult analyze_events(const std::vector<ShotEvent>& events) const;

  /// Pipeline over already-flattened rows (skips stage 1).
  PipelineResult analyze_matrix(const linalg::Matrix& rows) const;

  [[nodiscard]] const PipelineConfig& config() const { return config_; }

 private:
  PipelineConfig config_;
};

}  // namespace arams::stream
