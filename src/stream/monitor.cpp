#include "stream/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "embed/pca.hpp"
#include "embed/umap.hpp"
#include "linalg/blas.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::stream {

using linalg::Matrix;

namespace {

/// ‖BBᵀ − I‖_F for a row-orthonormal basis B — the orthogonality loss the
/// health watchdog tracks (exactly 0 for a perfectly orthonormal basis,
/// grows as repeated rotations accumulate rounding error).
double orthogonality_residual(const Matrix& basis) {
  const Matrix gram = linalg::gram_rows(basis);
  double residual_sq = 0.0;
  for (std::size_t i = 0; i < gram.rows(); ++i) {
    for (std::size_t j = 0; j < gram.cols(); ++j) {
      const double g = gram(i, j) - (i == j ? 1.0 : 0.0);
      residual_sq += g * g;
    }
  }
  return std::sqrt(residual_sq);
}

}  // namespace

ThroughputMeter::ThroughputMeter(std::size_t window_records)
    : ring_(std::max<std::size_t>(window_records, 1)) {}

void ThroughputMeter::record(std::size_t frames, double seconds) {
  frames_ += frames;
  seconds_ += seconds;
  if (ring_count_ == ring_.size()) {
    // Evict the oldest record from the window sums.
    const auto& [old_frames, old_seconds] = ring_[ring_next_];
    window_frames_ -= old_frames;
    window_seconds_ -= old_seconds;
  } else {
    ++ring_count_;
  }
  ring_[ring_next_] = {frames, seconds};
  ring_next_ = (ring_next_ + 1) % ring_.size();
  window_frames_ += frames;
  window_seconds_ += seconds;
}

double ThroughputMeter::frames_per_second() const {
  // Guard the divide: before the first record() the accumulated time is
  // zero and the rate is defined as 0.0, never inf/NaN.
  return seconds_ > 0.0 ? static_cast<double>(frames_) / seconds_ : 0.0;
}

double ThroughputMeter::recent_frames_per_second() const {
  return window_seconds_ > 0.0
             ? static_cast<double>(window_frames_) / window_seconds_
             : 0.0;
}

StreamingMonitor::StreamingMonitor(const MonitorConfig& config)
    : config_(config),
      sketcher_(core::make_sketcher(config.pipeline.sketcher_config())),
      error_tracker_(core::ErrorTrackerConfig{}),
      health_(config.health) {
  ARAMS_CHECK(config.batch_size >= 1, "batch size must be >= 1");
  ARAMS_CHECK(config.reservoir_size >= 2, "reservoir too small");
  ARAMS_CHECK(config.health_check_every >= 1,
              "health_check_every must be >= 1");
  const bool f32 = config.pipeline.ingest_precision ==
                   PipelineConfig::IngestPrecision::kF32;
  if (f32) {
    batch_rows_f32_.reserve(config.batch_size);
  } else {
    batch_rows_.reserve(config.batch_size);
  }
  static obs::Gauge& precision_gauge =
      obs::metrics().gauge("ingest.precision");
  precision_gauge.set(f32 ? 32.0 : 64.0);

  // Every watchdog transition lands in the flight journal (new state in
  // `detail`, old state in `value`), and a transition *into* CRITICAL
  // snapshots a post-mortem — when armed via configure_postmortem — so
  // the forensics exist even if the process limps on instead of dying.
  health_.on_transition([](const obs::HealthIncident& incident) {
    obs::flight_recorder().record(
        obs::FlightCode::kHealthTransition, 0,
        static_cast<std::uint32_t>(incident.to),
        static_cast<double>(static_cast<int>(incident.from)));
    if (incident.to == obs::HealthState::kCritical &&
        obs::postmortem_autodump_enabled()) {
      obs::dump_postmortem_now("health_critical");
    }
  });
}

bool StreamingMonitor::ingest(const ShotEvent& event) {
  Stopwatch timer;
  ++frames_seen_;

  static obs::Gauge& ingest_fps =
      obs::metrics().gauge("monitor.ingest_fps");
  static obs::Gauge& occupancy =
      obs::metrics().gauge("monitor.reservoir_occupancy");
  static obs::EwmaRate& ingest_rate =
      obs::metrics().ewma("monitor.ingest_rate_window");
  ingest_rate.record(1);

  // A single NaN/Inf pixel would propagate through the sketch SVD and
  // silently corrupt every later snapshot — reject the frame instead,
  // count it, and let the watchdog decide when the reject *rate* is an
  // incident (a dropped shot is routine; a dropping detector is not).
  // The scan runs on the *raw* detector frame: CoM centering can shift a
  // bad pixel out of the preprocessed view, which would hide a failing
  // detector tile from the watchdog while still skewing the shift itself.
  bool finite = true;
  for (const double v : event.frame.pixels()) {
    if (!std::isfinite(v)) {
      finite = false;
      break;
    }
  }
  if (!finite) {
    ++frames_nonfinite_;
    static obs::Counter& nonfinite =
        obs::metrics().counter("monitor.nonfinite_frames");
    nonfinite.add(1);
    obs::flight_recorder().record(obs::FlightCode::kFrameRejected,
                                  event.shot_id, 1,
                                  static_cast<double>(frames_nonfinite_));
    feed_health(false);
    meter_.record(1, timer.seconds());
    ingest_fps.set(meter_.recent_frames_per_second());
    return false;
  }

  std::vector<double> row;
  if (config_.pipeline.ingest_precision ==
      PipelineConfig::IngestPrecision::kF32) {
    // fp32 lane: narrow once (the NaN scan above already ran on the raw
    // fp64 frame), preprocess at fp32, and queue the float row for the
    // sketcher. The fp64 `row` below is the reservoir/error-tracker copy —
    // those feed the fp64 snapshot tail.
    const image::ImageF32 processed = image::preprocess(
        image::narrow(event.frame), config_.pipeline.preprocess);
    if (dim_ == 0) {
      dim_ = processed.pixel_count();
    }
    ARAMS_CHECK(processed.pixel_count() == dim_,
                "frame shape changed mid-stream");
    std::vector<float> row32(dim_);
    processed.to_row(std::span<float>(row32));
    row.resize(dim_);
    for (std::size_t i = 0; i < dim_; ++i) {
      row[i] = static_cast<double>(row32[i]);
    }
    batch_rows_f32_.push_back(std::move(row32));
  } else {
    const image::ImageF processed =
        image::preprocess(event.frame, config_.pipeline.preprocess);
    if (dim_ == 0) {
      dim_ = processed.pixel_count();
    }
    ARAMS_CHECK(processed.pixel_count() == dim_,
                "frame shape changed mid-stream");
    row.resize(dim_);
    processed.to_row(row);
  }

  obs::flight_recorder().record(obs::FlightCode::kFrameIngested,
                                event.shot_id);
  error_tracker_.observe(row);
  reservoir_.emplace_back(event.shot_id, std::move(row));
  if (reservoir_.size() > config_.reservoir_size) {
    reservoir_.pop_front();
  }
  if (config_.pipeline.ingest_precision !=
      PipelineConfig::IngestPrecision::kF32) {
    batch_rows_.push_back(reservoir_.back().second);
  }

  bool updated = false;
  if (std::max(batch_rows_.size(), batch_rows_f32_.size()) >=
      config_.batch_size) {
    update_sketch();
    updated = true;
  }
  meter_.record(1, timer.seconds());
  ingest_fps.set(meter_.recent_frames_per_second());
  occupancy.set(static_cast<double>(reservoir_.size()));
  return updated;
}

void StreamingMonitor::flush() {
  if (!batch_rows_.empty() || !batch_rows_f32_.empty()) {
    Stopwatch timer;
    update_sketch();
    meter_.record(0, timer.seconds());
  }
}

void StreamingMonitor::update_sketch() {
  const obs::ScopedSpan span("monitor.update_sketch");
  Stopwatch timer;
  std::size_t batch_count = 0;
  if (!batch_rows_f32_.empty()) {
    // fp32 lane: the batch reaches the sketcher as float rows; widening
    // (if the backend needs it) happens inside the Sketcher seam.
    linalg::MatrixF batch(batch_rows_f32_.size(), dim_);
    for (std::size_t i = 0; i < batch_rows_f32_.size(); ++i) {
      batch.set_row(i, batch_rows_f32_[i]);
    }
    batch_count = batch.rows();
    batch_rows_f32_.clear();
    sketcher_->push_batch(linalg::MatrixViewF(batch));
  } else {
    Matrix batch(batch_rows_.size(), dim_);
    for (std::size_t i = 0; i < batch_rows_.size(); ++i) {
      batch.set_row(i, batch_rows_[i]);
    }
    batch_count = batch.rows();
    batch_rows_.clear();
    sketcher_->push_batch(batch);
  }
  ++batches_;
  const double seconds = timer.seconds();
  static obs::Histogram& batch_latency =
      obs::metrics().histogram("monitor.batch_seconds");
  static obs::SlidingHistogram& batch_window =
      obs::metrics().sliding_histogram("monitor.batch_seconds_window");
  batch_latency.observe(seconds);
  batch_window.record(seconds);

  obs::flight_recorder().record(obs::FlightCode::kBatchSketched,
                                static_cast<std::uint64_t>(batches_),
                                static_cast<std::uint32_t>(batch_count),
                                seconds);
  const std::size_t ell = sketcher_->current_ell();
  if (ell != last_ell_) {
    obs::flight_recorder().record(obs::FlightCode::kRankChange,
                                  static_cast<std::uint64_t>(batches_),
                                  static_cast<std::uint32_t>(ell),
                                  static_cast<double>(last_ell_));
    last_ell_ = ell;
  }
  feed_health(true);
  // Keep the crash handler's pre-rendered snapshot at most one batch
  // stale (the handler itself can only copy, never render).
  obs::refresh_postmortem_snapshot();
}

void StreamingMonitor::feed_health(bool with_numerics) {
  obs::HealthSample sample;
  sample.wall_seconds = obs::steady_seconds();
  sample.frames_seen = frames_seen_;
  sample.frames_nonfinite = frames_nonfinite_;
  sample.rank = static_cast<long>(sketcher_->current_ell());
  sample.rank_increases = sketcher_->stats().rank_increases;
  sample.queue_saturation = queue_saturation_;
  if (with_numerics &&
      batches_ % static_cast<long>(config_.health_check_every) == 0 &&
      error_tracker_.reservoir_count() > 0 && sketcher_->dim() > 0) {
    const Matrix basis = sketcher_->basis(sketcher_->current_ell());
    if (!basis.empty()) {
      sample.sketch_error = error_tracker_.relative_error(basis);
      sample.orthogonality = orthogonality_residual(basis);
      static obs::Gauge& error_gauge =
          obs::metrics().gauge("monitor.sketch_error");
      static obs::Gauge& ortho_gauge =
          obs::metrics().gauge("monitor.basis_orthogonality");
      error_gauge.set(sample.sketch_error);
      ortho_gauge.set(sample.orthogonality);
    }
  }
  health_.observe(sample);
}

SnapshotResult StreamingMonitor::snapshot() {
  ARAMS_CHECK(!reservoir_.empty(), "snapshot before any frames arrived");
  const obs::ScopedSpan span("monitor.snapshot");
  Stopwatch timer;
  SnapshotResult out;

  Matrix rows(reservoir_.size(), dim_);
  out.shot_ids.reserve(reservoir_.size());
  std::size_t r = 0;
  for (const auto& [shot, row] : reservoir_) {
    rows.set_row(r++, row);
    out.shot_ids.push_back(shot);
  }

  const Matrix sketch = sketcher_->sketch();
  ARAMS_CHECK(sketch.rows() > 0, "sketch is empty — ingest more frames");

  const embed::PcaProjector pca(sketch, config_.pipeline.pca_components,
                                snapshot_ws_);
  out.latent = pca.project(rows);

  embed::UmapConfig umap_config = config_.pipeline.umap;
  umap_config.n_neighbors =
      std::min(umap_config.n_neighbors, out.latent.rows() - 1);
  out.embedding = embed::umap_embed(out.latent, umap_config, snapshot_ws_);

  cluster_snapshot(out);
  out.report.set_seconds("snapshot", timer.seconds());
  obs::flight_recorder().record(obs::FlightCode::kSnapshot, 0,
                                static_cast<std::uint32_t>(rows.rows()),
                                out.report.seconds("snapshot"));

  // Keep this snapshot as the reference for incremental refreshes, and
  // (re)build the warm index over it — the only full index build until the
  // next full snapshot; incremental refreshes grow it with insert().
  reference_latent_ = out.latent;
  reference_embedding_ = out.embedding;
  reference_shots_ = out.shot_ids;
  if (!ann_index_) {
    ann_index_ =
        embed::make_searcher(embed::umap_knn_config(config_.pipeline.umap));
  }
  ann_index_->build(reference_latent_, snapshot_ws_);
  return out;
}

void StreamingMonitor::cluster_snapshot(SnapshotResult& out) {
  cluster::OpticsConfig optics_config = config_.pipeline.optics;
  if (config_.pipeline.scale_min_pts) {
    optics_config.min_pts = std::max<std::size_t>(
        optics_config.min_pts,
        std::min<std::size_t>(out.embedding.rows() / 10, 30));
  }
  optics_config.min_pts =
      std::min<std::size_t>(optics_config.min_pts, out.embedding.rows());
  const cluster::OpticsResult optics_result =
      cluster::optics(out.embedding, optics_config, snapshot_ws_);
  out.labels = cluster::extract_auto(optics_result,
                                     config_.pipeline.cluster_quantile);
}

SnapshotResult StreamingMonitor::snapshot_incremental() {
  if (reference_embedding_.empty()) {
    return snapshot();
  }
  ARAMS_CHECK(!reservoir_.empty(), "snapshot before any frames arrived");
  const obs::ScopedSpan span("monitor.snapshot_incremental");
  Stopwatch timer;
  SnapshotResult out;

  // Project the whole reservoir through the *current* sketch.
  Matrix rows(reservoir_.size(), dim_);
  out.shot_ids.reserve(reservoir_.size());
  std::size_t r = 0;
  for (const auto& [shot, row] : reservoir_) {
    rows.set_row(r++, row);
    out.shot_ids.push_back(shot);
  }
  const Matrix sketch = sketcher_->sketch();
  const embed::PcaProjector pca(sketch, config_.pipeline.pca_components,
                                snapshot_ws_);
  out.latent = pca.project(rows);
  ARAMS_CHECK(out.latent.cols() == reference_latent_.cols(),
              "latent dimension changed — take a full snapshot");

  // Shots present in the reference keep their coordinates; the rest are
  // transformed against the frozen reference embedding.
  std::map<std::uint64_t, std::size_t> reference_index;
  for (std::size_t i = 0; i < reference_shots_.size(); ++i) {
    reference_index[reference_shots_[i]] = i;
  }
  std::vector<std::size_t> fresh_rows;
  out.embedding = Matrix(out.latent.rows(),
                         reference_embedding_.cols());
  for (std::size_t i = 0; i < out.shot_ids.size(); ++i) {
    const auto it = reference_index.find(out.shot_ids[i]);
    if (it != reference_index.end()) {
      out.embedding.set_row(i, reference_embedding_.row(it->second));
    } else {
      fresh_rows.push_back(i);
    }
  }
  if (!fresh_rows.empty()) {
    Matrix fresh(fresh_rows.size(), out.latent.cols());
    for (std::size_t i = 0; i < fresh_rows.size(); ++i) {
      fresh.set_row(i, out.latent.row(fresh_rows[i]));
    }
    // Recovery path only (e.g. state restored without a full snapshot):
    // the normal flow keeps the index in lock-step with the reference.
    if (!ann_index_ || ann_index_->size() != reference_latent_.rows()) {
      if (!ann_index_) {
        ann_index_ = embed::make_searcher(
            embed::umap_knn_config(config_.pipeline.umap));
      }
      ann_index_->build(reference_latent_, snapshot_ws_);
    }
    embed::UmapConfig umap_config = config_.pipeline.umap;
    umap_config.n_neighbors =
        std::min(umap_config.n_neighbors, ann_index_->size() - 1);
    const Matrix placed = embed::umap_transform(
        *ann_index_, reference_embedding_, fresh, umap_config, snapshot_ws_);
    for (std::size_t i = 0; i < fresh_rows.size(); ++i) {
      out.embedding.set_row(fresh_rows[i], placed.row(i));
    }
    // Grow the warm reference instead of rebuilding it: the new shots join
    // the index via insert() and extend the frozen reference, so the next
    // refresh keeps their coordinates and queries a richer neighbourhood.
    ann_index_->insert(fresh, snapshot_ws_);
    const std::size_t old_ref = reference_embedding_.rows();
    reference_latent_.reshape(old_ref + fresh.rows(),
                              reference_latent_.cols());
    reference_embedding_.reshape(old_ref + fresh.rows(),
                                 reference_embedding_.cols());
    for (std::size_t i = 0; i < fresh_rows.size(); ++i) {
      reference_latent_.set_row(old_ref + i, fresh.row(i));
      reference_embedding_.set_row(old_ref + i, placed.row(i));
      reference_shots_.push_back(out.shot_ids[fresh_rows[i]]);
    }
  }
  cluster_snapshot(out);
  out.report.set_seconds("snapshot", timer.seconds());
  obs::flight_recorder().record(obs::FlightCode::kSnapshot, 0,
                                static_cast<std::uint32_t>(rows.rows()),
                                out.report.seconds("snapshot"));
  return out;
}

void StreamingMonitor::note_queue_saturation(double fraction) {
  queue_saturation_ = fraction;
  const bool saturated = fraction >= 0.9;
  if (saturated && !queue_saturated_) {
    obs::flight_recorder().record(obs::FlightCode::kQueueSaturation, 0, 0,
                                  fraction);
  }
  queue_saturated_ = saturated;
}

std::size_t StreamingMonitor::current_ell() const {
  return sketcher_->current_ell();
}

double StreamingMonitor::sketch_error_estimate() {
  return error_tracker_.relative_error(
      sketcher_->basis(sketcher_->current_ell()));
}

core::SketchStats StreamingMonitor::sketch_stats() const {
  return sketcher_->stats();
}

}  // namespace arams::stream
