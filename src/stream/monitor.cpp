#include "stream/monitor.hpp"

#include <map>

#include "embed/pca.hpp"
#include "embed/umap.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::stream {

using linalg::Matrix;

void ThroughputMeter::record(std::size_t frames, double seconds) {
  frames_ += frames;
  seconds_ += seconds;
}

double ThroughputMeter::frames_per_second() const {
  // Guard the divide: before the first record() the accumulated time is
  // zero and the rate is defined as 0.0, never inf/NaN.
  return seconds_ > 0.0 ? static_cast<double>(frames_) / seconds_ : 0.0;
}

StreamingMonitor::StreamingMonitor(const MonitorConfig& config)
    : config_(config),
      sketcher_(config.pipeline.sketch),
      error_tracker_(core::ErrorTrackerConfig{}) {
  ARAMS_CHECK(config.batch_size >= 1, "batch size must be >= 1");
  ARAMS_CHECK(config.reservoir_size >= 2, "reservoir too small");
  batch_rows_.reserve(config.batch_size);
}

bool StreamingMonitor::ingest(const ShotEvent& event) {
  Stopwatch timer;
  const image::ImageF processed =
      image::preprocess(event.frame, config_.pipeline.preprocess);
  if (dim_ == 0) {
    dim_ = processed.pixel_count();
  }
  ARAMS_CHECK(processed.pixel_count() == dim_,
              "frame shape changed mid-stream");
  std::vector<double> row(dim_);
  processed.to_row(row);

  error_tracker_.observe(row);
  reservoir_.emplace_back(event.shot_id, row);
  if (reservoir_.size() > config_.reservoir_size) {
    reservoir_.pop_front();
  }
  batch_rows_.push_back(std::move(row));

  bool updated = false;
  if (batch_rows_.size() >= config_.batch_size) {
    update_sketch();
    updated = true;
  }
  meter_.record(1, timer.seconds());
  static obs::Gauge& ingest_fps =
      obs::metrics().gauge("monitor.ingest_fps");
  static obs::Gauge& occupancy =
      obs::metrics().gauge("monitor.reservoir_occupancy");
  ingest_fps.set(meter_.frames_per_second());
  occupancy.set(static_cast<double>(reservoir_.size()));
  return updated;
}

void StreamingMonitor::flush() {
  if (!batch_rows_.empty()) {
    Stopwatch timer;
    update_sketch();
    meter_.record(0, timer.seconds());
  }
}

void StreamingMonitor::update_sketch() {
  const obs::ScopedSpan span("monitor.update_sketch");
  Stopwatch timer;
  Matrix batch(batch_rows_.size(), dim_);
  for (std::size_t i = 0; i < batch_rows_.size(); ++i) {
    batch.set_row(i, batch_rows_[i]);
  }
  batch_rows_.clear();
  sketcher_.push_batch(batch);
  static obs::Histogram& batch_latency =
      obs::metrics().histogram("monitor.batch_seconds");
  batch_latency.observe(timer.seconds());
}

SnapshotResult StreamingMonitor::snapshot() {
  ARAMS_CHECK(!reservoir_.empty(), "snapshot before any frames arrived");
  const obs::ScopedSpan span("monitor.snapshot");
  Stopwatch timer;
  SnapshotResult out;

  Matrix rows(reservoir_.size(), dim_);
  out.shot_ids.reserve(reservoir_.size());
  std::size_t r = 0;
  for (const auto& [shot, row] : reservoir_) {
    rows.set_row(r++, row);
    out.shot_ids.push_back(shot);
  }

  const Matrix sketch = sketcher_.sketch();
  ARAMS_CHECK(sketch.rows() > 0, "sketch is empty — ingest more frames");

  const embed::PcaProjector pca(
      sketch, config_.pipeline.pca_components);
  out.latent = pca.project(rows);

  embed::UmapConfig umap_config = config_.pipeline.umap;
  umap_config.n_neighbors =
      std::min(umap_config.n_neighbors, out.latent.rows() - 1);
  out.embedding = embed::umap_embed(out.latent, umap_config);

  cluster_snapshot(out);
  out.report.set_seconds("snapshot", timer.seconds());

  // Keep this snapshot as the reference for incremental refreshes.
  reference_latent_ = out.latent;
  reference_embedding_ = out.embedding;
  reference_shots_ = out.shot_ids;
  return out;
}

void StreamingMonitor::cluster_snapshot(SnapshotResult& out) const {
  cluster::OpticsConfig optics_config = config_.pipeline.optics;
  if (config_.pipeline.scale_min_pts) {
    optics_config.min_pts = std::max<std::size_t>(
        optics_config.min_pts,
        std::min<std::size_t>(out.embedding.rows() / 10, 30));
  }
  optics_config.min_pts =
      std::min<std::size_t>(optics_config.min_pts, out.embedding.rows());
  const cluster::OpticsResult optics_result =
      cluster::optics(out.embedding, optics_config);
  out.labels = cluster::extract_auto(optics_result,
                                     config_.pipeline.cluster_quantile);
}

SnapshotResult StreamingMonitor::snapshot_incremental() {
  if (reference_embedding_.empty()) {
    return snapshot();
  }
  ARAMS_CHECK(!reservoir_.empty(), "snapshot before any frames arrived");
  const obs::ScopedSpan span("monitor.snapshot_incremental");
  Stopwatch timer;
  SnapshotResult out;

  // Project the whole reservoir through the *current* sketch.
  Matrix rows(reservoir_.size(), dim_);
  out.shot_ids.reserve(reservoir_.size());
  std::size_t r = 0;
  for (const auto& [shot, row] : reservoir_) {
    rows.set_row(r++, row);
    out.shot_ids.push_back(shot);
  }
  const Matrix sketch = sketcher_.sketch();
  const embed::PcaProjector pca(sketch, config_.pipeline.pca_components);
  out.latent = pca.project(rows);
  ARAMS_CHECK(out.latent.cols() == reference_latent_.cols(),
              "latent dimension changed — take a full snapshot");

  // Shots present in the reference keep their coordinates; the rest are
  // transformed against the frozen reference embedding.
  std::map<std::uint64_t, std::size_t> reference_index;
  for (std::size_t i = 0; i < reference_shots_.size(); ++i) {
    reference_index[reference_shots_[i]] = i;
  }
  std::vector<std::size_t> fresh_rows;
  out.embedding = Matrix(out.latent.rows(),
                         reference_embedding_.cols());
  for (std::size_t i = 0; i < out.shot_ids.size(); ++i) {
    const auto it = reference_index.find(out.shot_ids[i]);
    if (it != reference_index.end()) {
      out.embedding.set_row(i, reference_embedding_.row(it->second));
    } else {
      fresh_rows.push_back(i);
    }
  }
  if (!fresh_rows.empty()) {
    Matrix fresh(fresh_rows.size(), out.latent.cols());
    for (std::size_t i = 0; i < fresh_rows.size(); ++i) {
      fresh.set_row(i, out.latent.row(fresh_rows[i]));
    }
    embed::UmapConfig umap_config = config_.pipeline.umap;
    umap_config.n_neighbors = std::min(umap_config.n_neighbors,
                                       reference_latent_.rows() - 1);
    const Matrix placed = embed::umap_transform(
        reference_latent_, reference_embedding_, fresh, umap_config);
    for (std::size_t i = 0; i < fresh_rows.size(); ++i) {
      out.embedding.set_row(fresh_rows[i], placed.row(i));
    }
  }
  cluster_snapshot(out);
  out.report.set_seconds("snapshot", timer.seconds());
  return out;
}

std::size_t StreamingMonitor::current_ell() const {
  return sketcher_.current_ell();
}

double StreamingMonitor::sketch_error_estimate() {
  return error_tracker_.relative_error(
      sketcher_.basis(sketcher_.current_ell()));
}

core::SketchStats StreamingMonitor::sketch_stats() const {
  return sketcher_.stats();
}

}  // namespace arams::stream
