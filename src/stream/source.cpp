#include "stream/source.hpp"

#include "util/check.hpp"

namespace arams::stream {

BeamProfileSource::BeamProfileSource(const data::BeamProfileConfig& config,
                                     std::size_t total, double rate_hz,
                                     std::uint64_t seed)
    : config_(config), total_(total), rate_hz_(rate_hz), rng_(seed) {
  ARAMS_CHECK(rate_hz > 0.0, "rate must be positive");
}

std::optional<ShotEvent> BeamProfileSource::next() {
  if (emitted_ >= total_) return std::nullopt;
  data::BeamProfileSample sample = data::generate_beam_profile(config_, rng_);
  ShotEvent event;
  event.shot_id = emitted_;
  event.timestamp_seconds = static_cast<double>(emitted_) / rate_hz_;
  event.frame = std::move(sample.frame);
  event.truth_exotic = sample.truth.exotic;
  event.truth_label = sample.truth.lobes;
  ++emitted_;
  return event;
}

DiffractionSource::DiffractionSource(const data::DiffractionConfig& config,
                                     std::size_t total, double rate_hz,
                                     std::uint64_t seed)
    : generator_(config), total_(total), rate_hz_(rate_hz), rng_(seed) {
  ARAMS_CHECK(rate_hz > 0.0, "rate must be positive");
}

std::optional<ShotEvent> DiffractionSource::next() {
  if (emitted_ >= total_) return std::nullopt;
  data::DiffractionSample sample = generator_.generate(rng_);
  ShotEvent event;
  event.shot_id = emitted_;
  event.timestamp_seconds = static_cast<double>(emitted_) / rate_hz_;
  event.frame = std::move(sample.frame);
  event.truth_label = sample.truth.class_label;
  ++emitted_;
  return event;
}

SpeckleSource::SpeckleSource(const data::SpeckleConfig& config,
                             std::size_t total, double rate_hz,
                             std::uint64_t seed)
    : generator_(config, seed), total_(total), rate_hz_(rate_hz) {
  ARAMS_CHECK(rate_hz > 0.0, "rate must be positive");
}

std::optional<ShotEvent> SpeckleSource::next() {
  if (emitted_ >= total_) return std::nullopt;
  data::SpeckleSample sample = generator_.next();
  ShotEvent event;
  event.shot_id = emitted_;
  event.timestamp_seconds = static_cast<double>(emitted_) / rate_hz_;
  event.frame = std::move(sample.frame);
  ++emitted_;
  return event;
}

std::vector<ShotEvent> drain(FrameSource& source, std::size_t count) {
  std::vector<ShotEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto event = source.next();
    if (!event.has_value()) break;
    events.push_back(std::move(*event));
  }
  return events;
}

}  // namespace arams::stream
