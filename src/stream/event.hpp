#pragma once
// Shot events: the unit the LCLS timing system pools detector readouts
// into. Every frame flowing through the monitoring pipeline carries its
// shot id and timestamp so downstream labels can be joined back to
// upstream diagnostics.

#include <cstdint>
#include <vector>

#include "image/image.hpp"

namespace arams::stream {

struct ShotEvent {
  std::uint64_t shot_id = 0;
  double timestamp_seconds = 0.0;  ///< beam time of the shot
  image::ImageF frame;
  int truth_label = -1;   ///< generator ground truth (−1 when unknown)
  bool truth_exotic = false;
};

}  // namespace arams::stream
