#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace arams::parallel {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& gauge = obs::metrics().gauge("pool.queue_depth");
  return gauge;
}

/// The pool whose worker_loop the current thread is inside, if any — the
/// re-entrancy signal parallel_for uses to run nested work inline instead
/// of deadlocking on its own queue.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  t_worker_pool = this;
  static obs::Histogram& wait_latency =
      obs::metrics().histogram("pool.task_wait_seconds");
  static obs::Histogram& run_latency =
      obs::metrics().histogram("pool.task_run_seconds");
  static obs::Gauge& busy_gauge = obs::metrics().gauge("pool.workers_busy");
  // Per-worker name, so this resolves once per worker thread, not once per
  // process (a function-local static would pin every pool's workers to
  // worker 0's gauge).
  obs::Gauge& utilization = obs::metrics().gauge(
      "pool.worker." + std::to_string(index) + ".utilization");
  const auto loop_started = std::chrono::steady_clock::now();
  double busy_seconds = 0.0;
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      pending = std::move(queue_.front());
      queue_.pop();
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
    }
    wait_latency.observe(seconds_since(pending.enqueued));
    busy_gauge.set(static_cast<double>(
        busy_workers_.fetch_add(1, std::memory_order_relaxed) + 1));
    const auto started = std::chrono::steady_clock::now();
    {
      // Span the task so the sampling profiler attributes worker wall
      // time to "pool.task" instead of leaving these threads "(idle)".
      const obs::ScopedSpan task_span("pool.task");
      pending.task();
    }
    const double ran = seconds_since(started);
    run_latency.observe(ran);
    busy_gauge.set(static_cast<double>(
        busy_workers_.fetch_sub(1, std::memory_order_relaxed) - 1));
    busy_seconds += ran;
    const double alive = seconds_since(loop_started);
    utilization.set(alive > 0.0 ? busy_seconds / alive : 0.0);
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(Pending{std::move(packaged),
                        std::chrono::steady_clock::now()});
    queue_depth_gauge().set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

ThreadPool& shared_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("ARAMS_POOL_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    return std::size_t{0};  // 0 → hardware_concurrency
  }());
  return pool;
}

bool ThreadPool::on_worker_thread() const {
  return t_worker_pool == this;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (on_worker_thread()) {
    // Nested dispatch from one of our own workers: run inline. Waiting on
    // futures here would park this worker while the subtasks sit behind it
    // in the same queue — a guaranteed deadlock once every worker does it.
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) {
    f.get();  // propagates the first exception
  }
}

}  // namespace arams::parallel
