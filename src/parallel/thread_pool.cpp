#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace arams::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) {
    f.get();  // propagates the first exception
  }
}

}  // namespace arams::parallel
