#include "parallel/virtual_cores.hpp"

#include <algorithm>
#include <cmath>

#include "core/fd.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::parallel {

using core::FdConfig;
using core::FrequentDirections;
using linalg::Matrix;

ScalingResult run_sharded_sketch(
    const ScalingConfig& config,
    const std::function<Matrix(std::size_t)>& shard_provider) {
  ARAMS_CHECK(config.num_cores >= 1, "need at least one core");
  const obs::ScopedSpan span("scaling.run");
  const std::size_t p = config.num_cores;

  ScalingResult result;
  result.cores.resize(p);
  std::vector<Matrix> sketches(p);

  const auto run_core = [&](std::size_t core) {
    const obs::ScopedSpan core_span("scaling.shard" + std::to_string(core));
    const Matrix shard = shard_provider(core);
    Stopwatch timer;
    FrequentDirections fd(FdConfig{config.ell, /*fast=*/true});
    fd.append_batch(shard);
    fd.compress();
    sketches[core] = fd.sketch();
    result.cores[core].sketch_seconds = timer.seconds();
    result.cores[core].stats = fd.stats();
  };

  if (config.use_threads && p > 1) {
    ThreadPool pool(std::min<std::size_t>(p, 8));
    pool.parallel_for(p, run_core);
  } else {
    for (std::size_t core = 0; core < p; ++core) {
      run_core(core);
    }
  }

  for (const auto& c : result.cores) {
    result.local_phase_seconds =
        std::max(result.local_phase_seconds, c.sketch_seconds);
    result.total_work_seconds += c.sketch_seconds;
    result.total_svds += c.stats.svd_count;
  }

  // --- merge phase ---
  const obs::ScopedSpan merge_span("scaling.merge");
  double message_bytes = 0.0;
  if (!sketches.empty() && sketches[0].rows() > 0) {
    message_bytes = static_cast<double>(config.ell) *
                    static_cast<double>(sketches[0].cols()) * 8.0;
  }
  if (p == 1) {
    result.sketch = std::move(sketches[0]);
  } else if (config.strategy == MergeStrategy::kSerial) {
    result.sketch =
        core::serial_merge(std::move(sketches), config.ell,
                           &result.merge_stats);
    // Every incoming sketch is one message into the root core.
    result.merge_phase_seconds =
        result.merge_stats.critical_path_seconds +
        static_cast<double>(p - 1) * config.comm.cost(message_bytes);
  } else if (config.strategy == MergeStrategy::kTreePool) {
    result.sketch = core::parallel_tree_merge(
        std::move(sketches), config.ell, config.tree_arity,
        &result.merge_stats, &shared_pool());
    // Executed in-process: the measured reduction wall *is* the merge
    // phase, and no messages cross cores.
    result.merge_phase_seconds =
        result.merge_stats.critical_path_seconds_measured;
  } else {
    result.sketch = core::tree_merge(std::move(sketches), config.ell,
                                     config.tree_arity, &result.merge_stats);
    // One message per level per receiving core; levels are sequential.
    result.merge_phase_seconds =
        result.merge_stats.critical_path_seconds +
        static_cast<double>(result.merge_stats.levels) *
            static_cast<double>(config.tree_arity - 1) *
            config.comm.cost(message_bytes);
  }
  result.merge_phase_measured_seconds =
      result.merge_stats.critical_path_seconds_measured;
  result.total_work_seconds += result.merge_stats.total_seconds;
  result.total_svds += result.merge_stats.merge_ops;
  result.critical_path_svds = result.merge_stats.critical_path_ops;
  result.makespan_seconds =
      result.local_phase_seconds + result.merge_phase_seconds;
  return result;
}

}  // namespace arams::parallel
