#pragma once
// Fixed-size worker pool. The sketching shards are coarse-grained (one task
// per virtual core), so a simple mutex-guarded queue is plenty; no
// work-stealing needed.
//
// Telemetry: every pool reports "pool.queue_depth" (gauge), per-task
// "pool.task_wait_seconds" / "pool.task_run_seconds" latency histograms,
// a "pool.workers_busy" gauge (workers currently inside a task), and one
// "pool.worker.<i>.utilization" gauge per worker (busy seconds / alive
// seconds since the pool started, refreshed after every task) to
// obs::metrics(), so queueing delay is separable from compute time and a
// cold shard (one worker pinned, the rest idle) is visible at a glance.
// Pools share these names; in practice the long-lived recorder is
// shared_pool().

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace arams::parallel {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 → hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it finishes (or rethrows).
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  /// Exceptions from tasks are rethrown (first one wins).
  ///
  /// Re-entrancy: when called from one of this pool's own workers (a shard
  /// task whose inner GEMM dispatches row bands back onto the same pool),
  /// the loop runs inline on the calling worker instead of enqueueing.
  /// Blocking a worker on futures served by the same queue can deadlock a
  /// saturated pool; inline execution is safe because the parallel and
  /// serial kernel paths are bitwise identical.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  struct Pending {
    std::packaged_task<void()> task;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::queue<Pending> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<long> busy_workers_{0};
  bool stopping_ = false;
};

/// Process-wide shared pool, created lazily on first use and joined at
/// process exit. This is the executor the blocked linalg kernels dispatch
/// row bands onto; sharing one pool keeps the thread count bounded no
/// matter how many sketches are live. Size comes from the
/// ARAMS_POOL_THREADS environment variable when set (tests use it to force
/// a multi-threaded pool on single-core machines), otherwise
/// hardware_concurrency.
ThreadPool& shared_pool();

}  // namespace arams::parallel
