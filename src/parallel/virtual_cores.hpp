#pragma once
// Virtual-core strong-scaling driver for the Figs. 2–3 studies.
//
// The paper measures MPI strong scaling on the SLAC S3DF cluster. This
// container has one physical core, so the driver *simulates* a P-core run
// faithfully enough to preserve the paper's claims (see DESIGN.md):
//  * each virtual core sketches its own shard and is timed individually;
//  * sketches are merged with the selected strategy (tree vs serial),
//    timing each shrink;
//  * the parallel makespan is reconstructed as
//      max(core-local time) + Σ over merge levels of
//        (slowest shrink in the level + modeled message cost),
//    which is exactly the critical path an MPI reduction executes.
// The SVD/rotation counts on the critical path — the quantity the paper's
// argument actually rests on — are reported exactly, with no modeling.

#include <functional>
#include <vector>

#include "core/merge.hpp"
#include "core/sketch_stats.hpp"
#include "linalg/matrix.hpp"
#include "parallel/thread_pool.hpp"

namespace arams::parallel {

/// Simple linear latency/bandwidth model for one inter-core message.
struct CommModel {
  double latency_seconds = 2e-5;       ///< per-message latency
  double bytes_per_second = 1.0e10;    ///< link bandwidth
  [[nodiscard]] double cost(double bytes) const {
    return latency_seconds + bytes / bytes_per_second;
  }
};

/// kTree and kSerial time a *simulated* reduction (the modeled critical
/// path plus the comm model). kTreePool executes the reduction for real:
/// every level's merge groups run concurrently on the shared pool
/// (core::parallel_tree_merge), and the merge phase is the measured wall
/// time — no comm model, since nothing leaves the process.
enum class MergeStrategy { kTree, kSerial, kTreePool };

struct ScalingConfig {
  std::size_t num_cores = 4;
  std::size_t ell = 64;             ///< sketch rows per core
  MergeStrategy strategy = MergeStrategy::kTree;
  std::size_t tree_arity = 2;
  CommModel comm;
  /// Run core shards on a thread pool (exercises thread safety; on a
  /// single-CPU host the timing model is what carries the scaling signal).
  bool use_threads = false;
};

struct CoreReport {
  double sketch_seconds = 0.0;
  core::SketchStats stats;
};

struct ScalingResult {
  linalg::Matrix sketch;                 ///< merged global sketch
  std::vector<CoreReport> cores;
  core::MergeStats merge_stats;
  double local_phase_seconds = 0.0;      ///< max core-local sketch time
  /// kTree/kSerial: modeled merge critical path + comm model.
  /// kTreePool: measured wall time of the pool-executed reduction.
  double merge_phase_seconds = 0.0;
  /// Real wall time of the merge as executed, whatever the strategy
  /// (== merge_stats.critical_path_seconds_measured; 0 when p == 1).
  double merge_phase_measured_seconds = 0.0;
  double makespan_seconds = 0.0;         ///< local + merge phases
  double total_work_seconds = 0.0;       ///< Σ all core + merge work
  long critical_path_svds = 0;           ///< shrinks a rank would wait on
  long total_svds = 0;
};

/// Runs the sharded sketch-and-merge experiment. `shard_provider(core)`
/// returns core's data shard; it is called once per core (lazily, so a
/// paper-scale dataset never has to exist in memory all at once).
ScalingResult run_sharded_sketch(
    const ScalingConfig& config,
    const std::function<linalg::Matrix(std::size_t)>& shard_provider);

}  // namespace arams::parallel
