#include "core/priority_sampler.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "util/check.hpp"

namespace arams::core {

using linalg::Matrix;

PrioritySampler::PrioritySampler(const PrioritySamplerConfig& config)
    : config_(config), rng_(config.seed) {
  ARAMS_CHECK(config.capacity >= 1, "sampler capacity must be >= 1");
  heap_.reserve(config.capacity + 2);
}

template <typename T>
void PrioritySampler::push_any(std::span<const T> row) {
  if (dim_ == 0) {
    dim_ = row.size();
    ARAMS_CHECK(dim_ > 0, "zero-dimensional rows");
  } else {
    ARAMS_CHECK(row.size() == dim_, "row dimension changed mid-stream");
  }

  // norm2_squared accumulates in double for both element types. The fp32
  // overload reduces in a faster (multi-accumulator) order, so its weight
  // may differ from the widened stream's in the last ulp — far below
  // anything that flips a keep/evict decision against the continuous
  // priority draw, but enough that rescaled rows are only
  // equal-to-rounding (not bitwise) across lanes.
  double w = linalg::norm2_squared(row);
  if (config_.weight == SamplingWeight::kRowNorm) {
    w = std::sqrt(w);
  }
  ++rows_seen_;
  if (w <= 0.0) {
    return;  // zero rows carry no covariance mass; never sampled
  }
  double u = 0.0;
  do {
    u = rng_.uniform();
  } while (u <= 0.0);
  const double priority = w / u;

  // Keep the top (capacity + 1) priorities: the extra element is τ.
  if (heap_.size() < config_.capacity + 1) {
    heap_.push_back(Entry{priority, w, rows_seen_ - 1,
                          std::vector<double>(row.begin(), row.end())});
    std::push_heap(heap_.begin(), heap_.end(), MinPriority{});
    return;
  }
  if (priority <= heap_.front().priority) {
    evicted_priority_ = std::max(evicted_priority_, priority);
    return;
  }
  std::pop_heap(heap_.begin(), heap_.end(), MinPriority{});
  evicted_priority_ = std::max(evicted_priority_, heap_.back().priority);
  heap_.back() =
      Entry{priority, w, rows_seen_ - 1,
            std::vector<double>(row.begin(), row.end())};
  std::push_heap(heap_.begin(), heap_.end(), MinPriority{});
}

void PrioritySampler::push(std::span<const double> row) { push_any(row); }

void PrioritySampler::push(std::span<const float> row) { push_any(row); }

void PrioritySampler::push_batch(const Matrix& rows) {
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    push(rows.row(r));
  }
}

void PrioritySampler::push_batch(linalg::MatrixViewF rows) {
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    push(rows.row(r));
  }
}

Matrix PrioritySampler::take() {
  ARAMS_CHECK(dim_ > 0, "take() before any rows were pushed");

  double tau = 0.0;
  std::vector<Entry> kept;
  if (heap_.size() > config_.capacity) {
    // The smallest of the m+1 retained priorities is exactly τ; it is
    // dropped from the sample.
    std::pop_heap(heap_.begin(), heap_.end(), MinPriority{});
    tau = heap_.back().priority;
    heap_.pop_back();
  } else {
    // Stream never overflowed: every row is kept exactly, no rescaling.
    tau = 0.0;
  }
  kept = std::move(heap_);
  heap_.clear();
  last_threshold_ = tau;

  std::sort(kept.begin(), kept.end(),
            [](const Entry& a, const Entry& b) { return a.order < b.order; });

  Matrix out(kept.size(), dim_);
  for (std::size_t i = 0; i < kept.size(); ++i) {
    auto dst = out.row(i);
    std::copy(kept[i].row.begin(), kept[i].row.end(), dst.begin());
    if (config_.rescale && tau > 0.0 && kept[i].weight < tau) {
      // Inclusion probability qᵢ = wᵢ/τ < 1; dividing the squared mass by
      // qᵢ keeps E[B̃ᵀB̃] = AᵀA.
      linalg::scale(dst, std::sqrt(tau / kept[i].weight));
    }
  }

  rows_seen_ = 0;
  evicted_priority_ = 0.0;
  dim_ = 0;
  return out;
}

Matrix priority_sample(const Matrix& a, double fraction,
                       const PrioritySamplerConfig& base_config) {
  ARAMS_CHECK(fraction > 0.0 && fraction <= 1.0,
              "sampling fraction must be in (0, 1]");
  if (fraction >= 1.0) return a;
  PrioritySamplerConfig config = base_config;
  config.capacity = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(a.rows())));
  config.capacity = std::max<std::size_t>(config.capacity, 1);
  PrioritySampler sampler(config);
  sampler.push_batch(a);
  return sampler.take();
}

Matrix priority_sample(linalg::MatrixViewF a, double fraction,
                       const PrioritySamplerConfig& base_config) {
  ARAMS_CHECK(fraction > 0.0 && fraction <= 1.0,
              "sampling fraction must be in (0, 1]");
  if (fraction >= 1.0) return a.to_matrix();
  PrioritySamplerConfig config = base_config;
  config.capacity = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(a.rows())));
  config.capacity = std::max<std::size_t>(config.capacity, 1);
  PrioritySampler sampler(config);
  sampler.push_batch(a);
  return sampler.take();
}

}  // namespace arams::core
