#include "core/rank_adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

namespace arams::core {

using linalg::Matrix;

RankAdaptiveFd::RankAdaptiveFd(const RankAdaptiveConfig& config)
    : FrequentDirections(FdConfig{config.initial_ell, /*fast=*/true}),
      config_(config),
      rng_(config.seed) {
  ARAMS_CHECK(config.nu > 0, "need at least one probe");
  ARAMS_CHECK(config.epsilon >= 0.0, "negative error threshold");
  if (config_.rank_step == 0) {
    config_.rank_step = static_cast<std::size_t>(config_.nu);
  }
}

bool RankAdaptiveFd::can_rank_adapt() const {
  if (config_.max_ell != 0 && ell_ >= config_.max_ell) return false;
  if (rows_remaining_ <= 0) return true;  // open-ended stream
  // Algorithm 2 line 8: enough rows must remain to refill the grown buffer,
  // otherwise the final sketch would carry interior zero rows into merges.
  return rows_remaining_ >
         static_cast<long>(ell_ + static_cast<std::size_t>(config_.nu));
}

void RankAdaptiveFd::append(std::span<const double> row) {
  Stopwatch timer;
  if (dim_ == 0) {
    // First row fixes d; size the recent-rows window to ℓ.
    window_.assign(ell_, {});
  }

  if (buffer_full()) {
    const bool adapt_ok = can_rank_adapt();
    if (increase_ell_ && adapt_ok) {
      std::size_t step = config_.rank_step;
      if (config_.max_ell != 0) {
        step = std::min(step, config_.max_ell - ell_);
      }
      grow_ell(step);
      increase_ell_ = false;
      ++stats_.rank_increases;
      static obs::Counter& rank_increases =
          obs::metrics().counter("fd.rank_increases");
      rank_increases.add(1);
      // Window tracks ℓ so the estimate always covers one buffer period.
      window_.resize(ell_);
    } else {
      shrink();
      if (adapt_ok) {
        update_adaptation_decision();
      }
    }
  }

  FrequentDirections::append(row);
  if (rows_remaining_ > 0) {
    --rows_remaining_;
  }

  // Record the row in the ring window.
  auto& slot = window_[window_next_];
  slot.assign(row.begin(), row.end());
  window_next_ = (window_next_ + 1) % window_.size();
  window_count_ = std::min(window_count_ + 1, window_.size());
  stats_.total_seconds += timer.seconds();
}

void RankAdaptiveFd::append_batch(const Matrix& rows) {
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    append(rows.row(r));
  }
}

Matrix RankAdaptiveFd::process(const Matrix& x) {
  set_rows_remaining(static_cast<long>(x.rows()));
  append_batch(x);
  compress();
  return sketch();
}

Matrix RankAdaptiveFd::post_shrink_basis() const {
  const std::size_t rows = next_zero_row_;
  Matrix basis(rows, dim_);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto src = buffer_.row(i);
    const double nrm = linalg::norm2(src);
    ARAMS_DCHECK(nrm > 0.0, "zero row survived shrink");
    auto dst = basis.row(i);
    for (std::size_t j = 0; j < dim_; ++j) {
      dst[j] = src[j] / nrm;
    }
  }
  return basis;
}

void RankAdaptiveFd::update_adaptation_decision() {
  if (window_count_ == 0 || next_zero_row_ == 0) return;

  // Assemble the recent-rows batch X from the filled ring slots (slots
  // added by a recent rank growth may still be empty).
  std::vector<const std::vector<double>*> filled;
  filled.reserve(window_.size());
  for (const auto& slot : window_) {
    if (!slot.empty()) filled.push_back(&slot);
  }
  if (filled.empty()) return;
  Matrix x(filled.size(), dim_);
  for (std::size_t i = 0; i < filled.size(); ++i) {
    x.set_row(i, *filled[i]);
  }

  const Matrix v = post_shrink_basis();
  double estimate =
      linalg::estimate_residual(x, v, config_.estimator, config_.nu, rng_);
  stats_.probe_count += config_.nu;
  static obs::Counter& probe_count =
      obs::metrics().counter("fd.probe_count");
  probe_count.add(config_.nu);
  if (config_.relative_error) {
    const double denom = linalg::frobenius_norm_squared(x);
    if (denom <= 0.0) return;  // an all-zero batch carries no signal
    estimate /= denom;
  }
  last_estimate_ = estimate;
  if (estimate > config_.epsilon) {
    increase_ell_ = true;
  }
}

}  // namespace arams::core
