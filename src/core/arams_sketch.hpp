#pragma once
// ARAMS — Accelerated Rank-Adaptive Matrix Sketching (Algorithm 3).
//
// Chains the two stages: priority sampling first brings the row count down
// by a large fraction β (e.g. keep 80%) *without* dropping to a tiny latent
// dimension, then (rank-adaptive) Frequent Directions sketches the sampled
// rows. The four Fig. 1 variants are the cross product of the two toggles:
//   use_sampling × rank_adaptive  ("user-specified error" vs "rank").

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fd.hpp"
#include "core/priority_sampler.hpp"
#include "core/rank_adaptive.hpp"
#include "core/sketch_stats.hpp"
#include "obs/stage_report.hpp"

namespace arams::core {

struct AramsConfig {
  // --- stage 1: priority sampling ---
  bool use_sampling = true;
  double beta = 0.8;  ///< fraction of rows the sampler keeps
  SamplingWeight weight = SamplingWeight::kRowNormSquared;

  // --- stage 2: frequent directions ---
  bool rank_adaptive = true;
  std::size_t ell = 32;       ///< initial (RA) or fixed (non-RA) rank
  int nu = 10;                ///< probes per error estimate (RA)
  double epsilon = 0.05;      ///< error threshold (RA)
  bool relative_error = true;
  std::size_t rank_step = 0;  ///< 0 → ν
  std::size_t max_ell = 4096;
  linalg::ResidualEstimator estimator =
      linalg::ResidualEstimator::kGaussianProbes;

  std::uint64_t seed = 2024;

  /// Human-readable configuration errors, empty when the config is usable.
  /// Called at Arams construction so a bad config fails at the API
  /// boundary instead of deep inside the math.
  [[nodiscard]] std::vector<std::string> validate() const;
};

struct AramsResult {
  linalg::Matrix sketch;       ///< ≤ ℓ_final rows × d
  std::size_t final_ell = 0;   ///< rank after adaptation
  std::size_t rows_sampled = 0;  ///< rows that survived stage 1

  /// Stage timings ("sample", "sketch", "shrink", "fd") and operation
  /// counters ("svd_count", "probe_count", …) for this run. The legacy
  /// `stats()`/`sample_seconds()`/`sketch_seconds()` accessors are gone;
  /// read `report.counter(...)` / `report.seconds(...)` directly, or
  /// convert with core::sketch_stats_from_report.
  obs::StageReport report;
};

/// The ARAMS sketching engine. Batch API (`sketch_matrix`) is Algorithm 3
/// verbatim; the streaming API applies the sampler per pushed batch so a
/// detector stream never has to be materialized.
///
/// Scratch-memory ownership: every Arams owns exactly one FD instance
/// (fixed-ℓ or rank-adaptive), and that FD owns the linalg::Workspace the
/// shrink cycle runs in — so a long-lived Arams performs no steady-state
/// heap allocation in its SVD path, and two Arams instances never share
/// scratch (safe to run on separate threads). See docs/PERFORMANCE.md.
class Arams {
 public:
  explicit Arams(const AramsConfig& config);

  /// Algorithm 3: priority-sample the whole matrix to ⌈βn⌉ rows, then run
  /// (rank-adaptive) FD over the sample.
  AramsResult sketch_matrix(const linalg::Matrix& x);

  /// Streaming: sample within this batch, then feed the survivors to the
  /// persistent FD state.
  void push_batch(const linalg::Matrix& batch);

  /// fp32 streaming ingest. When sampling is on, the fp32 priority-sampler
  /// overload consumes the float rows directly (weights accumulate in
  /// double, same RNG stream) and emits fp64 survivors; when sampling is
  /// off the batch feeds fixed FD's float path, or is widened once into
  /// grow-only scratch for the rank-adaptive FD (whose recent-row window
  /// is fp64). Bitwise identical to widening the batch up front.
  void push_batch(linalg::MatrixViewF batch);

  /// Current sketch (compressed to ≤ ℓ rows).
  linalg::Matrix sketch();

  /// Orthonormal top-k principal directions of the current sketch (k×d).
  /// Precondition: dim() > 0 — throws CheckError on an empty sketch (the
  /// uniform Sketcher empty-state contract); callers gate on dim() first.
  linalg::Matrix basis(std::size_t k);

  [[nodiscard]] std::size_t current_ell() const;
  /// Column count of the sketch; 0 until the first row actually lands in
  /// the FD buffer (priority sampling can drop an entire batch, so a
  /// push_batch call alone is no guarantee). basis() on an empty sketch
  /// throws — check this first.
  [[nodiscard]] std::size_t dim() const;
  [[nodiscard]] SketchStats stats() const;
  [[nodiscard]] const AramsConfig& config() const { return config_; }

 private:
  FrequentDirections& fd();

  AramsConfig config_;
  std::unique_ptr<RankAdaptiveFd> ra_fd_;        // set when rank_adaptive
  std::unique_ptr<FrequentDirections> fixed_fd_; // set otherwise
  double sample_seconds_ = 0.0;
  std::size_t rows_sampled_total_ = 0;
  linalg::Matrix f32_widen_;  ///< grow-only fp32-lane widen scratch
};

}  // namespace arams::core
