#pragma once
// Competitor matrix-sketching baselines.
//
// The paper positions FD against the sampling and random-projection
// families benchmarked by Desai, Ghashami & Phillips (2016) ("Improved
// practical matrix sketching with guarantees", cited as [5]): FD has the
// best error but "lags behind in run-time performance", which is the whole
// motivation for ARAMS's priority-sampling acceleration. These baselines
// make that comparison reproducible:
//  * GaussianProjectionSketch — B += S·A per batch (dense JL projection)
//  * CountSketch             — B[h(i)] += s(i)·aᵢ (sparse embedding)
//  * NormSamplingSketch      — iid length-squared row sampling (w/ repl.)
//  * TruncatedSvdSketch      — iSVD: stack batch, SVD, truncate to ℓ
//                              (no FD shrinkage — the classic heuristic)
//
// All implement the first-class core::Sketcher interface (sketcher.hpp), so
// the streaming monitor, the stage runner, the CLI and the
// ablation_baselines bench sweep them interchangeably with ARAMS/FD. The
// ingest primitive is the batch (`push_batch` — one GEMM or scatter pass
// per batch); `append` stays overridden where a genuine row primitive
// exists so batch-vs-row parity is testable.

#include <span>
#include <string>
#include <vector>

#include "core/sketcher.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"
#include "linalg/workspace.hpp"
#include "rng/rng.hpp"

namespace arams::core {

/// Dense Gaussian (Johnson–Lindenstrauss) projection: B = S·A with S an
/// ℓ×n iid N(0, 1/ℓ) matrix. push_batch draws the b×ℓ coefficient block
/// and accumulates B += Sᵀ_batch·A_batch with one packed GEMM; append is
/// the per-row reference path (same RNG draw order, so the two agree up to
/// floating-point summation order).
class GaussianProjectionSketch : public Sketcher {
 public:
  GaussianProjectionSketch(std::size_t ell, std::uint64_t seed);
  void push_batch(const linalg::Matrix& batch) override;
  /// fp32 lane: same coefficient draw order, mixed-precision GEMM (float
  /// panels widened at pack time) — bitwise identical to widening first.
  void push_batch(linalg::MatrixViewF batch) override;
  void append(std::span<const double> row) override;
  linalg::Matrix sketch() override { return sketch_; }
  [[nodiscard]] std::size_t current_ell() const override { return ell_; }
  [[nodiscard]] std::size_t dim() const override { return sketch_.cols(); }
  [[nodiscard]] SketchStats stats() const override { return stats_; }
  [[nodiscard]] std::string name() const override { return "gaussian"; }

 private:
  void ensure_dim(std::size_t d);

  std::size_t ell_;
  Rng rng_;
  linalg::Matrix sketch_;
  std::vector<double> coeffs_;
  SketchStats stats_;
  // Grow-only batch scratch — steady-state push_batch is allocation-free.
  linalg::Matrix coeff_block_;  ///< b×ℓ Gaussian coefficients
  linalg::Matrix update_;       ///< Sᵀ_batch·A_batch (ℓ×d)
};

/// CountSketch / sparse subspace embedding: each input row lands in one
/// bucket with a random sign. push_batch is a single scatter pass (the hash
/// stream is identical to the row loop, so batch and row ingest are
/// bitwise-equal).
class CountSketch : public Sketcher {
 public:
  CountSketch(std::size_t ell, std::uint64_t seed);
  void push_batch(const linalg::Matrix& batch) override;
  /// fp32 lane: identical hash stream, float-axpy scatter (terms widen
  /// before the add) — bitwise identical to widening first.
  void push_batch(linalg::MatrixViewF batch) override;
  void append(std::span<const double> row) override;
  linalg::Matrix sketch() override { return sketch_; }
  [[nodiscard]] std::size_t current_ell() const override { return ell_; }
  [[nodiscard]] std::size_t dim() const override { return sketch_.cols(); }
  [[nodiscard]] SketchStats stats() const override { return stats_; }
  [[nodiscard]] std::string name() const override { return "countsketch"; }

 private:
  void ensure_dim(std::size_t d);
  void scatter(std::span<const double> row);
  void scatter(std::span<const float> row);

  std::size_t ell_;
  Rng rng_;
  linalg::Matrix sketch_;
  SketchStats stats_;
};

/// Length-squared (norm²) iid row sampling with replacement, via ℓ
/// independent A-Res-style reservoir slots. Rows rescaled by
/// 1/√(ℓ·pᵢ) so E[BᵀB] = AᵀA.
class NormSamplingSketch : public Sketcher {
 public:
  NormSamplingSketch(std::size_t ell, std::uint64_t seed);
  void push_batch(const linalg::Matrix& batch) override;
  void append(std::span<const double> row) override;
  linalg::Matrix sketch() override;
  [[nodiscard]] std::size_t current_ell() const override { return ell_; }
  [[nodiscard]] std::size_t dim() const override { return dim_; }
  [[nodiscard]] SketchStats stats() const override { return stats_; }
  [[nodiscard]] std::string name() const override { return "normsample"; }

 private:
  struct Slot {
    double key = -1.0;  ///< max of u^(1/w) seen; winner kept
    std::vector<double> row;
    double weight = 0.0;
  };
  std::size_t ell_;
  Rng rng_;
  std::vector<Slot> slots_;
  double total_weight_ = 0.0;
  std::size_t dim_ = 0;
  SketchStats stats_;
};

/// Incremental truncated SVD ("iSVD"): buffer 2ℓ rows, on overflow keep the
/// top-ℓ of Σ·Vᵀ with *no* shrinkage. Fast and often accurate, but with no
/// worst-case guarantee — FD pays a deliberate deflation of every retained
/// direction to buy its bound, iSVD does not (see tests).
class TruncatedSvdSketch : public Sketcher {
 public:
  explicit TruncatedSvdSketch(std::size_t ell);
  void push_batch(const linalg::Matrix& batch) override;
  void append(std::span<const double> row) override;
  linalg::Matrix sketch() override;
  [[nodiscard]] std::size_t current_ell() const override { return ell_; }
  [[nodiscard]] std::size_t dim() const override { return dim_; }
  [[nodiscard]] SketchStats stats() const override { return stats_; }
  [[nodiscard]] std::string name() const override { return "isvd"; }

 private:
  void truncate();

  std::size_t ell_;
  std::size_t dim_ = 0;
  linalg::Matrix buffer_;
  std::size_t next_row_ = 0;
  SketchStats stats_;
  // Reused across truncations — steady-state truncate() is allocation-free.
  linalg::Workspace ws_;
  linalg::SigmaVt svd_;
};

}  // namespace arams::core
