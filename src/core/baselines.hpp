#pragma once
// Competitor matrix-sketching baselines.
//
// The paper positions FD against the sampling and random-projection
// families benchmarked by Desai, Ghashami & Phillips (2016) ("Improved
// practical matrix sketching with guarantees", cited as [5]): FD has the
// best error but "lags behind in run-time performance", which is the whole
// motivation for ARAMS's priority-sampling acceleration. These baselines
// make that comparison reproducible:
//  * GaussianProjectionSketch — B += gᵢ·aᵢᵀ/√ℓ (dense JL projection)
//  * CountSketch             — B[h(i)] += s(i)·aᵢ (sparse embedding)
//  * NormSamplingSketch      — iid length-squared row sampling (w/ repl.)
//  * TruncatedSvdSketch      — iSVD: stack batch, SVD, truncate to ℓ
//                              (no FD shrinkage — the classic heuristic)
//
// All are streaming row sketchers behind one interface so the
// ablation_baselines bench sweeps them uniformly.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/sketch_stats.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"
#include "linalg/workspace.hpp"
#include "rng/rng.hpp"

namespace arams::core {

/// Streaming row-sketcher interface shared by FD and the baselines.
class RowSketcher {
 public:
  virtual ~RowSketcher() = default;
  virtual void append(std::span<const double> row) = 0;
  virtual void append_batch(const linalg::Matrix& rows);
  /// Final sketch (≤ ℓ rows × d). May compress internal state.
  virtual linalg::Matrix sketch() = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Dense Gaussian (Johnson–Lindenstrauss) projection: B = S·A with S an
/// ℓ×n iid N(0, 1/ℓ) matrix, accumulated one row at a time.
class GaussianProjectionSketch : public RowSketcher {
 public:
  GaussianProjectionSketch(std::size_t ell, std::uint64_t seed);
  void append(std::span<const double> row) override;
  linalg::Matrix sketch() override { return sketch_; }
  [[nodiscard]] std::string name() const override {
    return "gaussian-projection";
  }

 private:
  std::size_t ell_;
  Rng rng_;
  linalg::Matrix sketch_;
  std::vector<double> coeffs_;
};

/// CountSketch / sparse subspace embedding: each input row lands in one
/// bucket with a random sign.
class CountSketch : public RowSketcher {
 public:
  CountSketch(std::size_t ell, std::uint64_t seed);
  void append(std::span<const double> row) override;
  linalg::Matrix sketch() override { return sketch_; }
  [[nodiscard]] std::string name() const override { return "count-sketch"; }

 private:
  std::size_t ell_;
  Rng rng_;
  linalg::Matrix sketch_;
};

/// Length-squared (norm²) iid row sampling with replacement, via ℓ
/// independent A-Res-style reservoir slots. Rows rescaled by
/// 1/√(ℓ·pᵢ) so E[BᵀB] = AᵀA.
class NormSamplingSketch : public RowSketcher {
 public:
  NormSamplingSketch(std::size_t ell, std::uint64_t seed);
  void append(std::span<const double> row) override;
  linalg::Matrix sketch() override;
  [[nodiscard]] std::string name() const override {
    return "norm-sampling";
  }

 private:
  struct Slot {
    double key = -1.0;  ///< max of u^(1/w) seen; winner kept
    std::vector<double> row;
    double weight = 0.0;
  };
  std::size_t ell_;
  Rng rng_;
  std::vector<Slot> slots_;
  double total_weight_ = 0.0;
  std::size_t dim_ = 0;
};

/// Incremental truncated SVD ("iSVD"): buffer 2ℓ rows, on overflow keep the
/// top-ℓ of Σ·Vᵀ with *no* shrinkage. Fast and often accurate, but with no
/// worst-case guarantee — FD pays a deliberate deflation of every retained
/// direction to buy its bound, iSVD does not (see tests).
class TruncatedSvdSketch : public RowSketcher {
 public:
  explicit TruncatedSvdSketch(std::size_t ell);
  void append(std::span<const double> row) override;
  linalg::Matrix sketch() override;
  [[nodiscard]] std::string name() const override { return "isvd"; }
  [[nodiscard]] const SketchStats& stats() const { return stats_; }

 private:
  void truncate();

  std::size_t ell_;
  std::size_t dim_ = 0;
  linalg::Matrix buffer_;
  std::size_t next_row_ = 0;
  SketchStats stats_;
  // Reused across truncations — steady-state truncate() is allocation-free.
  linalg::Workspace ws_;
  linalg::SigmaVt svd_;
};

/// Factory by name: "fd", "gaussian-projection", "count-sketch",
/// "norm-sampling", "isvd". Throws CheckError on unknown names.
std::unique_ptr<RowSketcher> make_sketcher(const std::string& name,
                                           std::size_t ell,
                                           std::uint64_t seed);

}  // namespace arams::core
