#include "core/fd.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/svd.hpp"
#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

namespace arams::core {

using linalg::Matrix;

FrequentDirections::FrequentDirections(const FdConfig& config)
    : ell_(config.sketch_rows), fast_(config.fast) {
  ARAMS_CHECK(ell_ >= 2, "sketch needs at least 2 rows");
}

void FrequentDirections::ensure_dim(std::size_t d) {
  if (dim_ == 0) {
    ARAMS_CHECK(d > 0, "zero-dimensional rows");
    dim_ = d;
    buffer_ = Matrix(buffer_capacity(), dim_);
    return;
  }
  ARAMS_CHECK(d == dim_, "row dimension changed mid-stream");
}

void FrequentDirections::append(std::span<const double> row) {
  ensure_dim(row.size());
  if (buffer_full()) {
    shrink();
  }
  buffer_.set_row(next_zero_row_, row);
  ++next_zero_row_;
  ++stats_.rows_processed;
}

void FrequentDirections::append(std::span<const float> row) {
  ensure_dim(row.size());
  if (buffer_full()) {
    shrink();
  }
  // Widen straight into the destination buffer row — the only fp32→fp64
  // conversion this row ever sees.
  auto dst = buffer_.row(next_zero_row_);
  for (std::size_t j = 0; j < row.size(); ++j) {
    dst[j] = static_cast<double>(row[j]);
  }
  ++next_zero_row_;
  ++stats_.rows_processed;
}

void FrequentDirections::append_batch(const Matrix& rows) {
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    append(rows.row(r));
  }
}

void FrequentDirections::append_batch(linalg::MatrixViewF rows) {
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    append(rows.row(r));
  }
}

void FrequentDirections::shrink() {
  ARAMS_DCHECK(next_zero_row_ > 0, "shrink of empty buffer");
  Stopwatch timer;
  // Zero-copy view of the occupied buffer prefix; the SVD reads it fully
  // before any buffer row is overwritten below.
  const linalg::MatrixView occupied =
      linalg::MatrixView::rows_of(buffer_, 0, next_zero_row_);
  // At most ℓ−1 directions survive the rescale (σ_ℓ² = δ kills row ℓ−1 and
  // everything after it), so cap the materialized right-vector rows at ℓ.
  linalg::sigma_vt_svd(occupied, ws_, svd_, ell_);

  // δ = σ_ℓ² (1-based) — the paper's Algorithm 2 line 16. When fewer than ℓ
  // directions exist there is nothing to shrink away (δ = 0) and the
  // rotation only re-orthogonalizes the buffer.
  const std::size_t m = svd_.sigma.size();
  const double delta =
      (m >= ell_) ? svd_.sigma[ell_ - 1] * svd_.sigma[ell_ - 1] : 0.0;

  last_spectrum_ = svd_.sigma;

  // Row i of svd_.w equals σᵢ·vᵢᵀ; rescale to √(σᵢ²−δ)·vᵢᵀ without ever
  // forming Vᵀ. Rows whose σᵢ² ≤ δ vanish, as do directions below the
  // Gram-trick noise floor (√ε·σ₀) — keeping those would inject garbage
  // directions into the sketch and its basis.
  const double sigma_floor =
      (m > 0 && svd_.sigma[0] > 0.0) ? 1e-7 * svd_.sigma[0] : 0.0;
  const std::size_t prev_occupied = next_zero_row_;
  std::size_t out = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const double s2 = svd_.sigma[i] * svd_.sigma[i];
    if (s2 <= delta || svd_.sigma[i] <= sigma_floor) break;  // descending
    const double scale = std::sqrt(s2 - delta) / svd_.sigma[i];
    const auto wi = svd_.w.row(i);
    auto dst = buffer_.row(out);
    for (std::size_t j = 0; j < dim_; ++j) {
      dst[j] = scale * wi[j];
    }
    ++out;
  }
  // Zero only [out, prev_occupied): the leading rows were just rewritten
  // and everything at or past prev_occupied is already zero by the buffer
  // invariant (rows >= next_zero_row_ are always zero).
  for (std::size_t r = out; r < prev_occupied; ++r) {
    buffer_.zero_row(r);
  }
  // The sketch is kept dense in its leading rows — no interior zero rows,
  // which Section IV-A3 warns would corrupt later merges.
  next_zero_row_ = out;
  ++stats_.svd_count;
  const double seconds = timer.seconds();
  stats_.shrink_seconds += seconds;
  // Resolved once: references into the global registry are stable, so the
  // per-shrink cost is two relaxed atomic ops next to an SVD.
  static obs::Counter& shrink_count =
      obs::metrics().counter("fd.shrink_count");
  static obs::Histogram& shrink_latency =
      obs::metrics().histogram("fd.shrink_seconds");
  shrink_count.add(1);
  shrink_latency.observe(seconds);
}

void FrequentDirections::compress() {
  if (next_zero_row_ > ell_) {
    shrink();
  }
}

Matrix FrequentDirections::sketch() const {
  if (dim_ == 0) return Matrix();
  return buffer_.slice_rows(0, next_zero_row_);
}

Matrix FrequentDirections::basis(std::size_t k) {
  ARAMS_CHECK(dim_ > 0, "basis of an empty sketch");
  compress();
  if (next_zero_row_ == 0) return Matrix(0, dim_);
  // Post-shrink sketch rows are already orthogonal scaled right vectors,
  // but mid-stream sketches may not be; re-orthogonalize via SVD (on a
  // view of the occupied rows — no buffer copy).
  const linalg::MatrixView b =
      linalg::MatrixView::rows_of(buffer_, 0, next_zero_row_);
  linalg::sigma_vt_svd(b, ws_, svd_, k);  // only the top-k rows are read
  k = std::min({k, b.rows(), svd_.sigma.size()});
  const double smax = svd_.sigma.empty() ? 0.0 : svd_.sigma[0];
  std::size_t kept = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (svd_.sigma[i] > 1e-7 * smax && svd_.sigma[i] > 0.0) ++kept;
  }
  Matrix out(kept, dim_);
  for (std::size_t i = 0; i < kept; ++i) {
    const auto wi = svd_.w.row(i);
    auto dst = out.row(i);
    const double inv = 1.0 / svd_.sigma[i];
    for (std::size_t j = 0; j < dim_; ++j) {
      dst[j] = wi[j] * inv;
    }
  }
  return out;
}

void FrequentDirections::grow_ell(std::size_t extra) {
  if (extra == 0) return;
  ell_ += extra;
  if (dim_ != 0) {
    buffer_.append_zero_rows(buffer_capacity() - buffer_.rows());
  }
}

}  // namespace arams::core
