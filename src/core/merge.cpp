#include "core/merge.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "linalg/svd.hpp"
#include "linalg/workspace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::core {

using linalg::Matrix;
using linalg::MatrixView;

namespace {

/// Per-merge scratch: one workspace + SVD output pair serves every shrink
/// in a merge call, so repeated reductions reuse the same arenas instead
/// of allocating Gram/eig buffers per level. parallel_tree_merge holds one
/// per concurrent group slot — workspaces are not thread-safe.
struct MergeScratch {
  linalg::Workspace ws;
  linalg::SigmaVt svd;
};

/// One FD shrink of `stacked` down to at most `ell` rows (the surviving
/// non-zero rows; at most ℓ−1 of them are non-zero, matching Algorithm 2).
Matrix shrink_to_ell(MatrixView stacked, std::size_t ell,
                     MergeScratch& scratch) {
  if (stacked.rows() <= ell) return stacked.to_matrix();
  linalg::sigma_vt_svd(stacked, scratch.ws, scratch.svd, ell);
  const linalg::SigmaVt& svd = scratch.svd;
  if (svd.sigma.size() < ell) {
    // Fewer directions than ℓ (d < ℓ): nothing needs shrinking; rebuild
    // the ≤ d non-trivial rows verbatim.
    Matrix out(svd.sigma.size(), stacked.cols());
    for (std::size_t i = 0; i < out.rows(); ++i) {
      std::copy(svd.w.row(i).begin(), svd.w.row(i).end(),
                out.row(i).begin());
    }
    return out;
  }
  const double delta = svd.sigma[ell - 1] * svd.sigma[ell - 1];
  const double sigma_floor =
      svd.sigma[0] > 0.0 ? 1e-7 * svd.sigma[0] : 0.0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < ell; ++i) {
    if (svd.sigma[i] * svd.sigma[i] <= delta ||
        svd.sigma[i] <= sigma_floor) {
      break;
    }
    ++keep;
  }
  Matrix out(keep, stacked.cols());
  for (std::size_t i = 0; i < keep; ++i) {
    const double s2 = svd.sigma[i] * svd.sigma[i];
    const double scale = std::sqrt(s2 - delta) / svd.sigma[i];
    const auto wi = svd.w.row(i);
    auto dst = out.row(i);
    for (std::size_t j = 0; j < out.cols(); ++j) {
      dst[j] = scale * wi[j];
    }
  }
  return out;
}

/// Stacks sketches [begin, end) into the workspace's merge-stack slot and
/// returns a view — the allocation-free replacement for chained vstack.
MatrixView stack_group(const std::vector<Matrix>& sketches, std::size_t begin,
                       std::size_t end, linalg::Workspace& ws) {
  const std::size_t cols = sketches[begin].cols();
  std::size_t rows = 0;
  for (std::size_t i = begin; i < end; ++i) {
    ARAMS_CHECK(sketches[i].cols() == cols || sketches[i].rows() == 0,
                "merge of sketches with mismatched widths");
    rows += sketches[i].rows();
  }
  Matrix& stacked = ws.mat(linalg::wslot::kMergeStack, rows, cols);
  std::size_t at = 0;
  for (std::size_t i = begin; i < end; ++i) {
    for (std::size_t r = 0; r < sketches[i].rows(); ++r) {
      stacked.set_row(at++, sketches[i].row(r));
    }
  }
  return MatrixView(stacked);
}

}  // namespace

Matrix merge_group(const std::vector<Matrix>& sketches, std::size_t ell) {
  ARAMS_CHECK(!sketches.empty(), "merge of zero sketches");
  Matrix stacked = sketches.front();
  for (std::size_t i = 1; i < sketches.size(); ++i) {
    stacked = Matrix::vstack(stacked, sketches[i]);
  }
  MergeScratch scratch;
  return shrink_to_ell(stacked, ell, scratch);
}

Matrix serial_merge(std::vector<Matrix> sketches, std::size_t ell,
                    MergeStats* stats) {
  ARAMS_CHECK(!sketches.empty(), "merge of zero sketches");
  const obs::ScopedSpan span("merge.serial");
  static obs::Counter& merge_ops = obs::metrics().counter("merge.ops");
  MergeStats local;
  MergeScratch scratch;
  Stopwatch wall;
  Matrix acc = std::move(sketches.front());
  for (std::size_t i = 1; i < sketches.size(); ++i) {
    Stopwatch timer;
    merge_ops.add(1);
    acc = shrink_to_ell(Matrix::vstack(acc, sketches[i]), ell, scratch);
    const double s = timer.seconds();
    ++local.merge_ops;
    ++local.levels;
    ++local.critical_path_ops;
    local.total_seconds += s;
    // Serial merging happens on one core: every shrink is on the critical
    // path, and the model equals the measurement.
    local.critical_path_seconds += s;
  }
  local.critical_path_seconds_modeled = local.critical_path_seconds;
  local.critical_path_seconds_measured = wall.seconds();
  if (stats != nullptr) *stats = local;
  return acc;
}

Matrix tree_merge(std::vector<Matrix> sketches, std::size_t ell,
                  std::size_t arity, MergeStats* stats) {
  ARAMS_CHECK(!sketches.empty(), "merge of zero sketches");
  ARAMS_CHECK(arity >= 2, "tree arity must be >= 2");
  const obs::ScopedSpan span("merge.tree");
  static obs::Counter& merge_ops = obs::metrics().counter("merge.ops");
  MergeStats local;
  MergeScratch scratch;
  Stopwatch wall;
  while (sketches.size() > 1) {
    // One span per reduction level — the unit the critical-path model in
    // parallel/virtual_cores charges for (slowest group per level).
    const obs::ScopedSpan level_span(
        "merge.level" + std::to_string(local.levels));
    std::vector<Matrix> next;
    next.reserve((sketches.size() + arity - 1) / arity);
    double slowest_in_level = 0.0;
    for (std::size_t g = 0; g < sketches.size(); g += arity) {
      merge_ops.add(1);
      const std::size_t end = std::min(g + arity, sketches.size());
      Matrix stacked = std::move(sketches[g]);
      for (std::size_t i = g + 1; i < end; ++i) {
        stacked = Matrix::vstack(stacked, sketches[i]);
      }
      Stopwatch timer;
      next.push_back(shrink_to_ell(stacked, ell, scratch));
      const double s = timer.seconds();
      ++local.merge_ops;
      local.total_seconds += s;
      slowest_in_level = std::max(slowest_in_level, s);
    }
    ++local.levels;
    // All groups of a level run concurrently on a cluster; the level costs
    // its slowest group. This loop executes serially — the measured
    // makespan is the serial wall, which is what parallel_tree_merge beats.
    ++local.critical_path_ops;
    local.critical_path_seconds += slowest_in_level;
    sketches = std::move(next);
  }
  local.critical_path_seconds_modeled = local.critical_path_seconds;
  local.critical_path_seconds_measured = wall.seconds();
  if (stats != nullptr) *stats = local;
  return std::move(sketches.front());
}

Matrix parallel_tree_merge(std::vector<Matrix> sketches, std::size_t ell,
                           std::size_t arity, MergeStats* stats,
                           parallel::ThreadPool* pool) {
  ARAMS_CHECK(!sketches.empty(), "merge of zero sketches");
  ARAMS_CHECK(arity >= 2, "tree arity must be >= 2");
  const obs::ScopedSpan span("merge.parallel_tree");
  static obs::Counter& merge_ops = obs::metrics().counter("merge.ops");
  static obs::Counter& groups_dispatched =
      obs::metrics().counter("merge.parallel_groups");
  MergeStats local;
  // One scratch arena per concurrent group slot, sized by the widest level
  // (the first) and reused down the tree. Group g always uses arena g, so
  // the arena→group mapping — and therefore every shrink input — is
  // independent of the pool schedule.
  const std::size_t max_groups = (sketches.size() + arity - 1) / arity;
  std::vector<std::unique_ptr<MergeScratch>> scratch;
  scratch.reserve(max_groups);
  for (std::size_t g = 0; g < max_groups; ++g) {
    scratch.push_back(std::make_unique<MergeScratch>());
  }
  std::vector<double> group_seconds(max_groups, 0.0);
  Stopwatch wall;
  while (sketches.size() > 1) {
    const obs::ScopedSpan level_span(
        "merge.level" + std::to_string(local.levels));
    const std::size_t groups = (sketches.size() + arity - 1) / arity;
    std::vector<Matrix> next(groups);
    Stopwatch level_timer;
    const auto run_group = [&](std::size_t g) {
      Stopwatch timer;
      MergeScratch& sc = *scratch[g];
      const std::size_t begin = g * arity;
      const std::size_t end = std::min(begin + arity, sketches.size());
      next[g] = shrink_to_ell(stack_group(sketches, begin, end, sc.ws), ell,
                              sc);
      group_seconds[g] = timer.seconds();
    };
    const bool pooled =
        pool != nullptr && pool->thread_count() > 1 && groups > 1;
    if (pooled) {
      pool->parallel_for(groups, run_group);
      local.parallel_groups += static_cast<long>(groups);
      groups_dispatched.add(static_cast<long>(groups));
    } else {
      for (std::size_t g = 0; g < groups; ++g) run_group(g);
    }
    merge_ops.add(static_cast<long>(groups));
    local.merge_ops += static_cast<long>(groups);
    double slowest_in_level = 0.0;
    for (std::size_t g = 0; g < groups; ++g) {
      local.total_seconds += group_seconds[g];
      slowest_in_level = std::max(slowest_in_level, group_seconds[g]);
    }
    ++local.levels;
    ++local.critical_path_ops;
    local.critical_path_seconds_modeled += slowest_in_level;
    local.critical_path_seconds_measured += level_timer.seconds();
    sketches = std::move(next);
  }
  local.critical_path_seconds = local.critical_path_seconds_modeled;
  if (stats != nullptr) *stats = local;
  return std::move(sketches.front());
}

}  // namespace arams::core
