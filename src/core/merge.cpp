#include "core/merge.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/svd.hpp"
#include "linalg/workspace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::core {

using linalg::Matrix;

namespace {

/// Per-merge scratch: one workspace + SVD output pair serves every shrink
/// in a merge call, so repeated reductions reuse the same arenas instead
/// of allocating Gram/eig buffers per level.
struct MergeScratch {
  linalg::Workspace ws;
  linalg::SigmaVt svd;
};

/// One FD shrink of `stacked` down to at most `ell` rows (the surviving
/// non-zero rows; at most ℓ−1 of them are non-zero, matching Algorithm 2).
Matrix shrink_to_ell(const Matrix& stacked, std::size_t ell,
                     MergeScratch& scratch) {
  if (stacked.rows() <= ell) return stacked;
  linalg::sigma_vt_svd(stacked, scratch.ws, scratch.svd, ell);
  const linalg::SigmaVt& svd = scratch.svd;
  if (svd.sigma.size() < ell) {
    // Fewer directions than ℓ (d < ℓ): nothing needs shrinking; rebuild
    // the ≤ d non-trivial rows verbatim.
    Matrix out(svd.sigma.size(), stacked.cols());
    for (std::size_t i = 0; i < out.rows(); ++i) {
      std::copy(svd.w.row(i).begin(), svd.w.row(i).end(),
                out.row(i).begin());
    }
    return out;
  }
  const double delta = svd.sigma[ell - 1] * svd.sigma[ell - 1];
  const double sigma_floor =
      svd.sigma[0] > 0.0 ? 1e-7 * svd.sigma[0] : 0.0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < ell; ++i) {
    if (svd.sigma[i] * svd.sigma[i] <= delta ||
        svd.sigma[i] <= sigma_floor) {
      break;
    }
    ++keep;
  }
  Matrix out(keep, stacked.cols());
  for (std::size_t i = 0; i < keep; ++i) {
    const double s2 = svd.sigma[i] * svd.sigma[i];
    const double scale = std::sqrt(s2 - delta) / svd.sigma[i];
    const auto wi = svd.w.row(i);
    auto dst = out.row(i);
    for (std::size_t j = 0; j < out.cols(); ++j) {
      dst[j] = scale * wi[j];
    }
  }
  return out;
}

}  // namespace

Matrix merge_group(const std::vector<Matrix>& sketches, std::size_t ell) {
  ARAMS_CHECK(!sketches.empty(), "merge of zero sketches");
  Matrix stacked = sketches.front();
  for (std::size_t i = 1; i < sketches.size(); ++i) {
    stacked = Matrix::vstack(stacked, sketches[i]);
  }
  MergeScratch scratch;
  return shrink_to_ell(stacked, ell, scratch);
}

Matrix serial_merge(std::vector<Matrix> sketches, std::size_t ell,
                    MergeStats* stats) {
  ARAMS_CHECK(!sketches.empty(), "merge of zero sketches");
  const obs::ScopedSpan span("merge.serial");
  static obs::Counter& merge_ops = obs::metrics().counter("merge.ops");
  MergeStats local;
  MergeScratch scratch;
  Matrix acc = std::move(sketches.front());
  for (std::size_t i = 1; i < sketches.size(); ++i) {
    Stopwatch timer;
    merge_ops.add(1);
    acc = shrink_to_ell(Matrix::vstack(acc, sketches[i]), ell, scratch);
    const double s = timer.seconds();
    ++local.merge_ops;
    ++local.levels;
    ++local.critical_path_ops;
    local.total_seconds += s;
    // Serial merging happens on one core: every shrink is on the critical
    // path.
    local.critical_path_seconds += s;
  }
  if (stats != nullptr) *stats = local;
  return acc;
}

Matrix tree_merge(std::vector<Matrix> sketches, std::size_t ell,
                  std::size_t arity, MergeStats* stats) {
  ARAMS_CHECK(!sketches.empty(), "merge of zero sketches");
  ARAMS_CHECK(arity >= 2, "tree arity must be >= 2");
  const obs::ScopedSpan span("merge.tree");
  static obs::Counter& merge_ops = obs::metrics().counter("merge.ops");
  MergeStats local;
  MergeScratch scratch;
  while (sketches.size() > 1) {
    // One span per reduction level — the unit the critical-path model in
    // parallel/virtual_cores charges for (slowest group per level).
    const obs::ScopedSpan level_span(
        "merge.level" + std::to_string(local.levels));
    std::vector<Matrix> next;
    next.reserve((sketches.size() + arity - 1) / arity);
    double slowest_in_level = 0.0;
    for (std::size_t g = 0; g < sketches.size(); g += arity) {
      merge_ops.add(1);
      const std::size_t end = std::min(g + arity, sketches.size());
      Matrix stacked = std::move(sketches[g]);
      for (std::size_t i = g + 1; i < end; ++i) {
        stacked = Matrix::vstack(stacked, sketches[i]);
      }
      Stopwatch timer;
      next.push_back(shrink_to_ell(stacked, ell, scratch));
      const double s = timer.seconds();
      ++local.merge_ops;
      local.total_seconds += s;
      slowest_in_level = std::max(slowest_in_level, s);
    }
    ++local.levels;
    // All groups of a level run concurrently on a cluster; the level costs
    // its slowest group.
    ++local.critical_path_ops;
    local.critical_path_seconds += slowest_in_level;
    sketches = std::move(next);
  }
  if (stats != nullptr) *stats = local;
  return std::move(sketches.front());
}

}  // namespace arams::core
