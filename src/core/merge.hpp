#pragma once
// Sketch merging (Section IV-C and the appendix).
//
// FD sketches are mergeable summaries: stacking two ℓ-row sketches and
// running one FD shrink yields an ℓ-row sketch of the union with the same
// space/error trade-off. serial_merge folds P sketches one at a time
// (P−1 shrinks on the critical path — the bottleneck the paper identifies);
// tree_merge reduces them level by level (⌈log_a P⌉ shrink *rounds* on the
// critical path), which is what makes the Fig. 2 scaling linear.

#include <vector>

#include "linalg/matrix.hpp"
#include "obs/stage_report.hpp"

namespace arams::parallel {
class ThreadPool;
}  // namespace arams::parallel

namespace arams::core {

struct MergeStats {
  long merge_ops = 0;           ///< total pairwise/group shrinks performed
  long levels = 0;              ///< reduction rounds (tree) / steps (serial)
  long critical_path_ops = 0;   ///< shrinks a real parallel run would wait on
  long parallel_groups = 0;     ///< merge groups actually dispatched to a pool
  double total_seconds = 0.0;   ///< wall time of all shrinks (work)
  /// Legacy accessor: the *modeled* makespan (slowest-group-per-level
  /// simulation). Always equals critical_path_seconds_modeled — kept so
  /// pre-existing consumers (virtual_cores, figure tests) read the model
  /// they were written against.
  double critical_path_seconds = 0.0;
  /// Modeled makespan: sum over levels of the slowest group's shrink time,
  /// i.e. what a cluster with one core per group would wait.
  double critical_path_seconds_modeled = 0.0;
  /// Measured makespan: real wall time of the reduction as executed (the
  /// sum of per-level wall times — for parallel_tree_merge this is the
  /// actual concurrent schedule, for serial_merge/tree_merge the serial
  /// execution wall).
  double critical_path_seconds_measured = 0.0;
};

/// Folds merge counters/timings into a StageReport (stages "merge",
/// "merge_critical_path" — the modeled makespan, legacy key — and
/// "merge_critical_path_measured").
inline void append_to_report(const MergeStats& stats,
                             obs::StageReport& report) {
  report.add_counter("merge_ops", stats.merge_ops);
  report.add_counter("merge_levels", stats.levels);
  report.add_counter("merge_critical_path_ops", stats.critical_path_ops);
  report.add_counter("merge_parallel_groups", stats.parallel_groups);
  report.add_seconds("merge", stats.total_seconds);
  report.add_seconds("merge_critical_path", stats.critical_path_seconds);
  report.add_seconds("merge_critical_path_measured",
                     stats.critical_path_seconds_measured);
}

/// Inverse of append_to_report — backs the legacy `merge_stats` accessor.
inline MergeStats merge_stats_from_report(const obs::StageReport& report) {
  MergeStats stats;
  stats.merge_ops = report.counter("merge_ops");
  stats.levels = report.counter("merge_levels");
  stats.critical_path_ops = report.counter("merge_critical_path_ops");
  stats.parallel_groups = report.counter("merge_parallel_groups");
  stats.total_seconds = report.seconds("merge");
  stats.critical_path_seconds = report.seconds("merge_critical_path");
  stats.critical_path_seconds_modeled = stats.critical_path_seconds;
  stats.critical_path_seconds_measured =
      report.seconds("merge_critical_path_measured");
  return stats;
}

/// Merges a group of sketches into one ℓ-row sketch with a single FD
/// shrink of their vertical stack. Column counts must match.
linalg::Matrix merge_group(const std::vector<linalg::Matrix>& sketches,
                           std::size_t ell);

/// Sequential fold: sketches arrive at one core and are merged one by one.
linalg::Matrix serial_merge(std::vector<linalg::Matrix> sketches,
                            std::size_t ell, MergeStats* stats = nullptr);

/// Branching reduction with the given arity (default binary). Each level
/// merges disjoint groups; a real cluster executes every group of a level
/// in parallel, so only the slowest group of each level hits the critical
/// path — that is what critical_path_ops/seconds record.
linalg::Matrix tree_merge(std::vector<linalg::Matrix> sketches,
                          std::size_t ell, std::size_t arity = 2,
                          MergeStats* stats = nullptr);

/// tree_merge executed for real: every level's disjoint groups run
/// concurrently on `pool` (nullptr → inline on the calling thread; the
/// factory and pipeline pass &parallel::shared_pool()). Group g of a
/// level owns scratch arena g and writes result slot g, so the reduction is
/// bitwise identical to tree_merge at any thread count — scheduling decides
/// only *when* a group runs, never what it computes. Groups stack into
/// workspace scratch (no per-step vstack allocations), so repeated merges
/// are allocation-free at steady state even single-threaded.
/// `stats->critical_path_seconds_measured` is the real wall time of the
/// reduction; the modeled makespan is still reported alongside.
linalg::Matrix parallel_tree_merge(std::vector<linalg::Matrix> sketches,
                                   std::size_t ell, std::size_t arity = 2,
                                   MergeStats* stats = nullptr,
                                   parallel::ThreadPool* pool = nullptr);

}  // namespace arams::core
