#pragma once
// Sketch merging (Section IV-C and the appendix).
//
// FD sketches are mergeable summaries: stacking two ℓ-row sketches and
// running one FD shrink yields an ℓ-row sketch of the union with the same
// space/error trade-off. serial_merge folds P sketches one at a time
// (P−1 shrinks on the critical path — the bottleneck the paper identifies);
// tree_merge reduces them level by level (⌈log_a P⌉ shrink *rounds* on the
// critical path), which is what makes the Fig. 2 scaling linear.

#include <vector>

#include "linalg/matrix.hpp"
#include "obs/stage_report.hpp"

namespace arams::core {

struct MergeStats {
  long merge_ops = 0;           ///< total pairwise/group shrinks performed
  long levels = 0;              ///< reduction rounds (tree) / steps (serial)
  long critical_path_ops = 0;   ///< shrinks a real parallel run would wait on
  double total_seconds = 0.0;   ///< wall time of all shrinks (work)
  double critical_path_seconds = 0.0;  ///< modeled makespan of the merges
};

/// Folds merge counters/timings into a StageReport (stages "merge" and
/// "merge_critical_path").
inline void append_to_report(const MergeStats& stats,
                             obs::StageReport& report) {
  report.add_counter("merge_ops", stats.merge_ops);
  report.add_counter("merge_levels", stats.levels);
  report.add_counter("merge_critical_path_ops", stats.critical_path_ops);
  report.add_seconds("merge", stats.total_seconds);
  report.add_seconds("merge_critical_path", stats.critical_path_seconds);
}

/// Inverse of append_to_report — backs the legacy `merge_stats` accessor.
inline MergeStats merge_stats_from_report(const obs::StageReport& report) {
  MergeStats stats;
  stats.merge_ops = report.counter("merge_ops");
  stats.levels = report.counter("merge_levels");
  stats.critical_path_ops = report.counter("merge_critical_path_ops");
  stats.total_seconds = report.seconds("merge");
  stats.critical_path_seconds = report.seconds("merge_critical_path");
  return stats;
}

/// Merges a group of sketches into one ℓ-row sketch with a single FD
/// shrink of their vertical stack. Column counts must match.
linalg::Matrix merge_group(const std::vector<linalg::Matrix>& sketches,
                           std::size_t ell);

/// Sequential fold: sketches arrive at one core and are merged one by one.
linalg::Matrix serial_merge(std::vector<linalg::Matrix> sketches,
                            std::size_t ell, MergeStats* stats = nullptr);

/// Branching reduction with the given arity (default binary). Each level
/// merges disjoint groups; a real cluster executes every group of a level
/// in parallel, so only the slowest group of each level hits the critical
/// path — that is what critical_path_ops/seconds record.
linalg::Matrix tree_merge(std::vector<linalg::Matrix> sketches,
                          std::size_t ell, std::size_t arity = 2,
                          MergeStats* stats = nullptr);

}  // namespace arams::core
