#pragma once
// Rank-Adaptive Frequent Directions — Algorithms 1 & 2 of the paper.
//
// Instead of fixing the sketch rank ℓ, the practitioner specifies a target
// reconstruction error ε. After each FD rotation the algorithm estimates,
// with ν Gaussian probes (Algorithm 1), the reconstruction error of the
// most recent ℓ rows against the sketch's current principal subspace; if it
// exceeds ε the next full-buffer event grows ℓ instead of shrinking.
//
// Deviations from the pseudocode, called out in DESIGN.md:
//  * the rank increment is a separate `rank_step` (the paper reuses ν);
//  * the threshold is relative (residual / ‖X_batch‖²_F) by default, with
//    an absolute mode for fidelity to the paper's sweeps;
//  * `max_ell` caps growth so a hostile stream cannot exhaust memory.

#include <limits>
#include <vector>

#include "core/fd.hpp"
#include "linalg/trace_est.hpp"
#include "rng/rng.hpp"

namespace arams::core {

struct RankAdaptiveConfig {
  std::size_t initial_ell = 16;  ///< starting sketch rank
  int nu = 10;                   ///< Gaussian probes per estimate (ν)
  std::size_t rank_step = 0;     ///< rows added per adaptation; 0 → ν
  double epsilon = 0.05;         ///< error threshold (relative by default)
  bool relative_error = true;    ///< divide the estimate by ‖X_batch‖²_F
  std::size_t max_ell = 4096;    ///< hard cap on ℓ (0 = unlimited)
  std::uint64_t seed = 1234;     ///< probe RNG seed
  /// Reconstruction-error estimator. The paper uses Gaussian probes and
  /// names stochastic trace estimation as the future-work upgrade; both
  /// Hutchinson and Hutch++ are available (see linalg/trace_est.hpp).
  linalg::ResidualEstimator estimator =
      linalg::ResidualEstimator::kGaussianProbes;
};

/// Streaming rank-adaptive FD sketch (Algorithm 2).
class RankAdaptiveFd : public FrequentDirections {
 public:
  explicit RankAdaptiveFd(const RankAdaptiveConfig& config);

  /// Appends one row, adapting the rank on buffer-full events.
  void append(std::span<const double> row);

  void append_batch(const linalg::Matrix& rows);

  /// Paper-faithful batch entry point: announces the total row count so
  /// the `rowsLeft > ℓ + ν` guard (Algorithm 2 line 8) is active, streams
  /// every row, compresses, and returns the sketch.
  linalg::Matrix process(const linalg::Matrix& x);

  /// Announces how many rows remain (enables the rowsLeft guard). Pass 0
  /// to return to open-ended streaming (guard always passes).
  void set_rows_remaining(long rows) { rows_remaining_ = rows; }

  [[nodiscard]] const RankAdaptiveConfig& config() const { return config_; }

  /// Most recent reconstruction-error estimate (NaN before the first one).
  [[nodiscard]] double last_error_estimate() const { return last_estimate_; }

 private:
  /// Algorithm 1: estimates the batch reconstruction error against the
  /// post-shrink sketch subspace and arms `increase_ell_` if it's above ε.
  void update_adaptation_decision();

  /// Orthonormal right-vector basis recovered from the just-shrunk buffer
  /// rows (they are orthogonal scaled vᵢᵀ — normalizing suffices).
  [[nodiscard]] linalg::Matrix post_shrink_basis() const;

  [[nodiscard]] bool can_rank_adapt() const;

  RankAdaptiveConfig config_;
  Rng rng_;
  bool increase_ell_ = false;
  long rows_remaining_ = 0;  ///< 0 = unknown (streaming)
  double last_estimate_ = std::numeric_limits<double>::quiet_NaN();

  /// Ring buffer of the most recent rows (window size tracks ℓ).
  std::vector<std::vector<double>> window_;
  std::size_t window_next_ = 0;
  std::size_t window_count_ = 0;
};

}  // namespace arams::core
