#pragma once
// Frequent Directions matrix sketching (Liberty 2013; Ghashami, Liberty,
// Phillips, Woodruff 2016), in the fast 2ℓ-buffer formulation the paper's
// Algorithm 2 builds on.
//
// Invariant maintained by every shrink: the sketch B satisfies
//   0 ⪯ AᵀA − BᵀB  and  ‖AᵀA − BᵀB‖₂ ≤ ‖A‖²_F / ℓ
// where A is everything appended so far. This bound is property-tested.

#include <optional>
#include <span>

#include "core/sketch_stats.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"
#include "linalg/workspace.hpp"

namespace arams::core {

struct FdConfig {
  std::size_t sketch_rows = 32;  ///< ℓ — rows retained by the sketch
  /// true: fast variant (2ℓ buffer, one SVD per ℓ appends).
  /// false: textbook variant (ℓ buffer, one SVD per append) — reference
  /// implementation for tests; ~ℓ× slower.
  bool fast = true;
};

/// Streaming Frequent Directions sketch.
class FrequentDirections {
 public:
  explicit FrequentDirections(const FdConfig& config);

  /// Appends one data row. The first append fixes the column dimension d;
  /// subsequent rows must match it.
  void append(std::span<const double> row);

  /// fp32 ingest lane: identical control flow, widening the row directly
  /// into the buffer slot it lands in — no intermediate fp64 copy. All
  /// downstream arithmetic (shrink SVD) is fp64, so the result is bitwise
  /// identical to appending the widened row.
  void append(std::span<const float> row);

  /// Appends every row of a matrix.
  void append_batch(const linalg::Matrix& rows);

  /// fp32 batch ingest (row loop over the float append).
  void append_batch(linalg::MatrixViewF rows);

  /// Current sketch: the occupied (non-zero) buffer rows. May hold up to
  /// 2ℓ−1 rows mid-stream in the fast variant; call compress() first for a
  /// guaranteed ≤ ℓ rows.
  [[nodiscard]] linalg::Matrix sketch() const;

  /// Forces a shrink so the sketch has at most ℓ rows (no-op if it already
  /// does). Mid-stream compression keeps the FD guarantee.
  void compress();

  /// Orthonormal basis (k×d, k ≤ ℓ) of the current top sketch directions —
  /// the projector used for PCA and the rank-adaptation heuristic. Triggers
  /// a compress() if the buffer has overfilled past ℓ rows.
  [[nodiscard]] linalg::Matrix basis(std::size_t k);

  [[nodiscard]] std::size_t ell() const { return ell_; }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t occupied_rows() const { return next_zero_row_; }
  [[nodiscard]] const SketchStats& stats() const { return stats_; }

  /// Singular values found by the most recent shrink (descending). Empty
  /// before the first shrink.
  [[nodiscard]] const std::vector<double>& last_spectrum() const {
    return last_spectrum_;
  }

 protected:
  /// Grows ℓ by `extra` rows (rank adaptation). The buffer gains 2·extra
  /// slots in the fast variant.
  void grow_ell(std::size_t extra);

  /// One FD rotation+shrink of the occupied buffer rows. After it,
  /// next_zero_row_ = number of surviving non-zero rows (< ℓ).
  void shrink();

  [[nodiscard]] std::size_t buffer_capacity() const {
    return fast_ ? 2 * ell_ : ell_;
  }
  [[nodiscard]] bool buffer_full() const {
    return next_zero_row_ == buffer_capacity();
  }

  std::size_t ell_;
  bool fast_;
  std::size_t dim_ = 0;  ///< 0 until the first row arrives
  linalg::Matrix buffer_;
  std::size_t next_zero_row_ = 0;
  SketchStats stats_;
  std::vector<double> last_spectrum_;
  // Scratch reused across shrinks: after the first few calls every buffer
  // has reached its steady-state shape and shrink() is allocation-free.
  linalg::Workspace ws_;
  linalg::SigmaVt svd_;

 private:
  void ensure_dim(std::size_t d);
};

}  // namespace arams::core
