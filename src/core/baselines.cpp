#include "core/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/svd.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::core {

using linalg::Matrix;

// ---------------------------------------------------------------- Gaussian

GaussianProjectionSketch::GaussianProjectionSketch(std::size_t ell,
                                                   std::uint64_t seed)
    : ell_(ell), rng_(seed), coeffs_(ell) {
  ARAMS_CHECK(ell >= 1, "sketch needs at least one row");
}

void GaussianProjectionSketch::ensure_dim(std::size_t d) {
  if (sketch_.empty()) {
    ARAMS_CHECK(d > 0, "zero-dimensional rows");
    sketch_ = Matrix(ell_, d);
  }
  ARAMS_CHECK(d == sketch_.cols(), "row dimension changed");
}

void GaussianProjectionSketch::push_batch(const Matrix& batch) {
  if (batch.rows() == 0) return;
  ensure_dim(batch.cols());
  // One b×ℓ coefficient block, same draw order as the row loop (ℓ normals
  // per input row), then a single packed GEMM: B += 1/√ℓ · Cᵀ·A.
  coeff_block_.reshape(batch.rows(), ell_);
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    rng_.fill_normal(coeff_block_.row(r));
  }
  linalg::matmul_tn(coeff_block_, batch, update_);
  const double scale = 1.0 / std::sqrt(static_cast<double>(ell_));
  for (std::size_t i = 0; i < ell_; ++i) {
    linalg::axpy(scale, update_.row(i), sketch_.row(i));
  }
  stats_.rows_processed += static_cast<long>(batch.rows());
}

void GaussianProjectionSketch::push_batch(linalg::MatrixViewF batch) {
  if (batch.rows() == 0) return;
  ensure_dim(batch.cols());
  // Same draw order as the fp64 batch path; the mixed GEMM widens the
  // float panel register-tile-wise inside the fp64 micro-kernel.
  coeff_block_.reshape(batch.rows(), ell_);
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    rng_.fill_normal(coeff_block_.row(r));
  }
  linalg::matmul_tn(linalg::MatrixView(coeff_block_), batch, update_);
  const double scale = 1.0 / std::sqrt(static_cast<double>(ell_));
  for (std::size_t i = 0; i < ell_; ++i) {
    linalg::axpy(scale, update_.row(i), sketch_.row(i));
  }
  stats_.rows_processed += static_cast<long>(batch.rows());
  note_f32_rows(batch.rows());
}

void GaussianProjectionSketch::append(std::span<const double> row) {
  ensure_dim(row.size());
  // B += s·rowᵀ where s ~ N(0, 1/ℓ)·e — one Gaussian per sketch row.
  const double scale = 1.0 / std::sqrt(static_cast<double>(ell_));
  rng_.fill_normal(coeffs_);
  for (std::size_t i = 0; i < ell_; ++i) {
    linalg::axpy(coeffs_[i] * scale, row, sketch_.row(i));
  }
  ++stats_.rows_processed;
}

// ------------------------------------------------------------- CountSketch

CountSketch::CountSketch(std::size_t ell, std::uint64_t seed)
    : ell_(ell), rng_(seed) {
  ARAMS_CHECK(ell >= 1, "sketch needs at least one row");
}

void CountSketch::ensure_dim(std::size_t d) {
  if (sketch_.empty()) {
    ARAMS_CHECK(d > 0, "zero-dimensional rows");
    sketch_ = Matrix(ell_, d);
  }
  ARAMS_CHECK(d == sketch_.cols(), "row dimension changed");
}

void CountSketch::scatter(std::span<const double> row) {
  const std::uint64_t h = rng_.next_u64();
  const std::size_t bucket = h % ell_;
  const double sign = (h >> 63) ? 1.0 : -1.0;
  linalg::axpy(sign, row, sketch_.row(bucket));
}

void CountSketch::scatter(std::span<const float> row) {
  const std::uint64_t h = rng_.next_u64();
  const std::size_t bucket = h % ell_;
  const double sign = (h >> 63) ? 1.0 : -1.0;
  linalg::axpy(sign, row, sketch_.row(bucket));
}

void CountSketch::push_batch(const Matrix& batch) {
  if (batch.rows() == 0) return;
  ensure_dim(batch.cols());
  // Single scatter pass; the hash stream matches the row loop exactly, so
  // batch and per-row ingest are bitwise-identical.
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    scatter(batch.row(r));
  }
  stats_.rows_processed += static_cast<long>(batch.rows());
}

void CountSketch::push_batch(linalg::MatrixViewF batch) {
  if (batch.rows() == 0) return;
  ensure_dim(batch.cols());
  // Same hash stream as the fp64 scatter; only the axpy reads floats.
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    scatter(batch.row(r));
  }
  stats_.rows_processed += static_cast<long>(batch.rows());
  note_f32_rows(batch.rows());
}

void CountSketch::append(std::span<const double> row) {
  ensure_dim(row.size());
  scatter(row);
  ++stats_.rows_processed;
}

// ----------------------------------------------------------- NormSampling

NormSamplingSketch::NormSamplingSketch(std::size_t ell, std::uint64_t seed)
    : ell_(ell), rng_(seed), slots_(ell) {
  ARAMS_CHECK(ell >= 1, "sketch needs at least one row");
}

void NormSamplingSketch::push_batch(const Matrix& batch) {
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    append(batch.row(r));
  }
}

void NormSamplingSketch::append(std::span<const double> row) {
  if (dim_ == 0) {
    dim_ = row.size();
    ARAMS_CHECK(dim_ > 0, "zero-dimensional rows");
  }
  ARAMS_CHECK(row.size() == dim_, "row dimension changed");
  ++stats_.rows_processed;
  const double w = linalg::norm2_squared(row);
  if (w <= 0.0) return;
  total_weight_ += w;
  // Each slot runs independent A-Res weighted reservoir sampling: keep the
  // row maximizing u^(1/w); the winner is distributed ∝ w.
  for (auto& slot : slots_) {
    double u = 0.0;
    do {
      u = rng_.uniform();
    } while (u <= 0.0);
    const double key = std::pow(u, 1.0 / w);
    if (key > slot.key) {
      slot.key = key;
      slot.weight = w;
      slot.row.assign(row.begin(), row.end());
    }
  }
}

Matrix NormSamplingSketch::sketch() {
  if (dim_ == 0) return Matrix();  // empty-state contract: never throws
  std::size_t filled = 0;
  for (const auto& slot : slots_) {
    if (!slot.row.empty()) ++filled;
  }
  Matrix out(filled, dim_);
  std::size_t r = 0;
  for (const auto& slot : slots_) {
    if (slot.row.empty()) continue;
    auto dst = out.row(r++);
    std::copy(slot.row.begin(), slot.row.end(), dst.begin());
    // pᵢ = wᵢ/W per draw; scaling by 1/√(ℓ·pᵢ) makes E[BᵀB] = AᵀA.
    const double p = slot.weight / total_weight_;
    linalg::scale(dst, 1.0 / std::sqrt(static_cast<double>(ell_) * p));
  }
  return out;
}

// ------------------------------------------------------------------- iSVD

TruncatedSvdSketch::TruncatedSvdSketch(std::size_t ell) : ell_(ell) {
  ARAMS_CHECK(ell >= 1, "sketch needs at least one row");
}

void TruncatedSvdSketch::push_batch(const Matrix& batch) {
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    append(batch.row(r));
  }
}

void TruncatedSvdSketch::append(std::span<const double> row) {
  if (dim_ == 0) {
    dim_ = row.size();
    ARAMS_CHECK(dim_ > 0, "zero-dimensional rows");
    buffer_ = Matrix(2 * ell_, dim_);
  }
  ARAMS_CHECK(row.size() == dim_, "row dimension changed");
  if (next_row_ == buffer_.rows()) {
    truncate();
  }
  buffer_.set_row(next_row_, row);
  ++next_row_;
  ++stats_.rows_processed;
}

void TruncatedSvdSketch::truncate() {
  Stopwatch timer;
  const linalg::MatrixView occupied =
      linalg::MatrixView::rows_of(buffer_, 0, next_row_);
  linalg::sigma_vt_svd(occupied, ws_, svd_, ell_);
  const std::size_t prev_occupied = next_row_;
  const std::size_t keep = std::min(ell_, svd_.sigma.size());
  std::size_t out = 0;
  for (std::size_t i = 0; i < keep; ++i) {
    if (svd_.sigma[i] <= 0.0) break;
    std::copy(svd_.w.row(i).begin(), svd_.w.row(i).end(),
              buffer_.row(out).begin());
    ++out;
  }
  // Rows >= prev_occupied are already zero; only the tail of the occupied
  // range needs clearing.
  for (std::size_t r = out; r < prev_occupied; ++r) {
    buffer_.zero_row(r);
  }
  next_row_ = out;
  ++stats_.svd_count;
  stats_.shrink_seconds += timer.seconds();
}

Matrix TruncatedSvdSketch::sketch() {
  if (dim_ == 0) return Matrix();
  if (next_row_ > ell_) {
    truncate();
  }
  return buffer_.slice_rows(0, next_row_);
}

}  // namespace arams::core
