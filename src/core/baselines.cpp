#include "core/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "core/fd.hpp"
#include "linalg/blas.hpp"
#include "linalg/svd.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::core {

using linalg::Matrix;

void RowSketcher::append_batch(const Matrix& rows) {
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    append(rows.row(r));
  }
}

// ---------------------------------------------------------------- Gaussian

GaussianProjectionSketch::GaussianProjectionSketch(std::size_t ell,
                                                   std::uint64_t seed)
    : ell_(ell), rng_(seed), coeffs_(ell) {
  ARAMS_CHECK(ell >= 1, "sketch needs at least one row");
}

void GaussianProjectionSketch::append(std::span<const double> row) {
  if (sketch_.empty()) {
    sketch_ = Matrix(ell_, row.size());
  }
  ARAMS_CHECK(row.size() == sketch_.cols(), "row dimension changed");
  // B += s·rowᵀ where s ~ N(0, 1/ℓ)·e — one Gaussian per sketch row.
  const double scale = 1.0 / std::sqrt(static_cast<double>(ell_));
  rng_.fill_normal(coeffs_);
  for (std::size_t i = 0; i < ell_; ++i) {
    linalg::axpy(coeffs_[i] * scale, row, sketch_.row(i));
  }
}

// ------------------------------------------------------------- CountSketch

CountSketch::CountSketch(std::size_t ell, std::uint64_t seed)
    : ell_(ell), rng_(seed) {
  ARAMS_CHECK(ell >= 1, "sketch needs at least one row");
}

void CountSketch::append(std::span<const double> row) {
  if (sketch_.empty()) {
    sketch_ = Matrix(ell_, row.size());
  }
  ARAMS_CHECK(row.size() == sketch_.cols(), "row dimension changed");
  const std::uint64_t h = rng_.next_u64();
  const std::size_t bucket = h % ell_;
  const double sign = (h >> 63) ? 1.0 : -1.0;
  linalg::axpy(sign, row, sketch_.row(bucket));
}

// ----------------------------------------------------------- NormSampling

NormSamplingSketch::NormSamplingSketch(std::size_t ell, std::uint64_t seed)
    : ell_(ell), rng_(seed), slots_(ell) {
  ARAMS_CHECK(ell >= 1, "sketch needs at least one row");
}

void NormSamplingSketch::append(std::span<const double> row) {
  if (dim_ == 0) {
    dim_ = row.size();
    ARAMS_CHECK(dim_ > 0, "zero-dimensional rows");
  }
  ARAMS_CHECK(row.size() == dim_, "row dimension changed");
  const double w = linalg::norm2_squared(row);
  if (w <= 0.0) return;
  total_weight_ += w;
  // Each slot runs independent A-Res weighted reservoir sampling: keep the
  // row maximizing u^(1/w); the winner is distributed ∝ w.
  for (auto& slot : slots_) {
    double u = 0.0;
    do {
      u = rng_.uniform();
    } while (u <= 0.0);
    const double key = std::pow(u, 1.0 / w);
    if (key > slot.key) {
      slot.key = key;
      slot.weight = w;
      slot.row.assign(row.begin(), row.end());
    }
  }
}

Matrix NormSamplingSketch::sketch() {
  ARAMS_CHECK(dim_ > 0, "sketch before any rows were appended");
  std::size_t filled = 0;
  for (const auto& slot : slots_) {
    if (!slot.row.empty()) ++filled;
  }
  Matrix out(filled, dim_);
  std::size_t r = 0;
  for (const auto& slot : slots_) {
    if (slot.row.empty()) continue;
    auto dst = out.row(r++);
    std::copy(slot.row.begin(), slot.row.end(), dst.begin());
    // pᵢ = wᵢ/W per draw; scaling by 1/√(ℓ·pᵢ) makes E[BᵀB] = AᵀA.
    const double p = slot.weight / total_weight_;
    linalg::scale(dst, 1.0 / std::sqrt(static_cast<double>(ell_) * p));
  }
  return out;
}

// ------------------------------------------------------------------- iSVD

TruncatedSvdSketch::TruncatedSvdSketch(std::size_t ell) : ell_(ell) {
  ARAMS_CHECK(ell >= 1, "sketch needs at least one row");
}

void TruncatedSvdSketch::append(std::span<const double> row) {
  if (dim_ == 0) {
    dim_ = row.size();
    ARAMS_CHECK(dim_ > 0, "zero-dimensional rows");
    buffer_ = Matrix(2 * ell_, dim_);
  }
  ARAMS_CHECK(row.size() == dim_, "row dimension changed");
  if (next_row_ == buffer_.rows()) {
    truncate();
  }
  buffer_.set_row(next_row_, row);
  ++next_row_;
  ++stats_.rows_processed;
}

void TruncatedSvdSketch::truncate() {
  Stopwatch timer;
  const linalg::MatrixView occupied =
      linalg::MatrixView::rows_of(buffer_, 0, next_row_);
  linalg::sigma_vt_svd(occupied, ws_, svd_, ell_);
  const std::size_t prev_occupied = next_row_;
  const std::size_t keep = std::min(ell_, svd_.sigma.size());
  std::size_t out = 0;
  for (std::size_t i = 0; i < keep; ++i) {
    if (svd_.sigma[i] <= 0.0) break;
    std::copy(svd_.w.row(i).begin(), svd_.w.row(i).end(),
              buffer_.row(out).begin());
    ++out;
  }
  // Rows >= prev_occupied are already zero; only the tail of the occupied
  // range needs clearing.
  for (std::size_t r = out; r < prev_occupied; ++r) {
    buffer_.zero_row(r);
  }
  next_row_ = out;
  ++stats_.svd_count;
  stats_.shrink_seconds += timer.seconds();
}

Matrix TruncatedSvdSketch::sketch() {
  if (dim_ == 0) return Matrix();
  if (next_row_ > ell_) {
    truncate();
  }
  return buffer_.slice_rows(0, next_row_);
}

// ---------------------------------------------------------------- factory

namespace {

/// Adapter presenting FrequentDirections through the RowSketcher interface.
class FdSketcher : public RowSketcher {
 public:
  explicit FdSketcher(std::size_t ell)
      : fd_(FdConfig{ell, /*fast=*/true}) {}
  void append(std::span<const double> row) override { fd_.append(row); }
  Matrix sketch() override {
    fd_.compress();
    return fd_.sketch();
  }
  [[nodiscard]] std::string name() const override { return "fd"; }

 private:
  FrequentDirections fd_;
};

}  // namespace

std::unique_ptr<RowSketcher> make_sketcher(const std::string& name,
                                           std::size_t ell,
                                           std::uint64_t seed) {
  if (name == "fd") return std::make_unique<FdSketcher>(ell);
  if (name == "gaussian-projection") {
    return std::make_unique<GaussianProjectionSketch>(ell, seed);
  }
  if (name == "count-sketch") {
    return std::make_unique<CountSketch>(ell, seed);
  }
  if (name == "norm-sampling") {
    return std::make_unique<NormSamplingSketch>(ell, seed);
  }
  if (name == "isvd") return std::make_unique<TruncatedSvdSketch>(ell);
  ARAMS_CHECK(false, "unknown sketcher: " + name);
  return nullptr;
}

}  // namespace arams::core
