#pragma once
// Operation counters shared by all sketching classes. The scaling study
// (Figs. 2–3) argues in terms of SVD/rotation counts on the critical path;
// these counters make that argument checkable exactly.
//
// Result structs no longer embed SketchStats directly: they carry an
// obs::StageReport and expose SketchStats through a legacy accessor, via
// the conversion helpers below.

#include "obs/stage_report.hpp"

namespace arams::core {

struct SketchStats {
  long rows_processed = 0;   ///< rows appended to the sketch
  long svd_count = 0;        ///< shrink (rotation) operations performed
  long rank_increases = 0;   ///< rank-adaptation events (RA variants)
  long probe_count = 0;      ///< Gaussian probes spent on error estimation
  double shrink_seconds = 0.0;  ///< wall time inside shrinks
  double total_seconds = 0.0;   ///< wall time inside append/process calls

  SketchStats& operator+=(const SketchStats& o) {
    rows_processed += o.rows_processed;
    svd_count += o.svd_count;
    rank_increases += o.rank_increases;
    probe_count += o.probe_count;
    shrink_seconds += o.shrink_seconds;
    total_seconds += o.total_seconds;
    return *this;
  }
};

/// Folds the counters into a StageReport (counters add; the two wall-clock
/// entries land under the "shrink" and "fd" stages).
inline void append_to_report(const SketchStats& stats,
                             obs::StageReport& report) {
  report.add_counter("rows_processed", stats.rows_processed);
  report.add_counter("svd_count", stats.svd_count);
  report.add_counter("rank_increases", stats.rank_increases);
  report.add_counter("probe_count", stats.probe_count);
  report.add_seconds("shrink", stats.shrink_seconds);
  report.add_seconds("fd", stats.total_seconds);
}

/// Inverse of append_to_report — backs the legacy `stats`/`sketch_stats`
/// accessors on result structs for one release.
inline SketchStats sketch_stats_from_report(const obs::StageReport& report) {
  SketchStats stats;
  stats.rows_processed = report.counter("rows_processed");
  stats.svd_count = report.counter("svd_count");
  stats.rank_increases = report.counter("rank_increases");
  stats.probe_count = report.counter("probe_count");
  stats.shrink_seconds = report.seconds("shrink");
  stats.total_seconds = report.seconds("fd");
  return stats;
}

}  // namespace arams::core
