#pragma once
// Operation counters shared by all sketching classes. The scaling study
// (Figs. 2–3) argues in terms of SVD/rotation counts on the critical path;
// these counters make that argument checkable exactly.

namespace arams::core {

struct SketchStats {
  long rows_processed = 0;   ///< rows appended to the sketch
  long svd_count = 0;        ///< shrink (rotation) operations performed
  long rank_increases = 0;   ///< rank-adaptation events (RA variants)
  long probe_count = 0;      ///< Gaussian probes spent on error estimation
  double shrink_seconds = 0.0;  ///< wall time inside shrinks
  double total_seconds = 0.0;   ///< wall time inside append/process calls

  SketchStats& operator+=(const SketchStats& o) {
    rows_processed += o.rows_processed;
    svd_count += o.svd_count;
    rank_increases += o.rank_increases;
    probe_count += o.probe_count;
    shrink_seconds += o.shrink_seconds;
    total_seconds += o.total_seconds;
    return *this;
  }
};

}  // namespace arams::core
