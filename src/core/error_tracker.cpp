#include "core/error_tracker.hpp"

#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "util/check.hpp"

namespace arams::core {

SketchErrorTracker::SketchErrorTracker(const ErrorTrackerConfig& config)
    : config_(config), rng_(config.seed) {
  ARAMS_CHECK(config.reservoir_size >= 1, "reservoir must hold >= 1 row");
  reservoir_.reserve(config.reservoir_size);
}

void SketchErrorTracker::observe(std::span<const double> row) {
  if (dim_ == 0) {
    dim_ = row.size();
    ARAMS_CHECK(dim_ > 0, "zero-dimensional rows");
  }
  ARAMS_CHECK(row.size() == dim_, "row dimension changed mid-stream");
  ++rows_seen_;
  if (reservoir_.size() < config_.reservoir_size) {
    reservoir_.emplace_back(row.begin(), row.end());
    return;
  }
  // Algorithm R: replace a random slot with probability size/seen.
  const auto slot = rng_.uniform_index(
      static_cast<std::uint64_t>(rows_seen_));
  if (slot < config_.reservoir_size) {
    reservoir_[slot].assign(row.begin(), row.end());
  }
}

void SketchErrorTracker::observe_batch(const linalg::Matrix& rows) {
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    observe(rows.row(r));
  }
}

std::size_t SketchErrorTracker::reservoir_count() const {
  return reservoir_.size();
}

linalg::Matrix SketchErrorTracker::reservoir_rows() const {
  ARAMS_CHECK(!reservoir_.empty(), "no rows observed yet");
  linalg::Matrix out(reservoir_.size(), dim_);
  for (std::size_t i = 0; i < reservoir_.size(); ++i) {
    out.set_row(i, reservoir_[i]);
  }
  return out;
}

double SketchErrorTracker::relative_error(
    const linalg::Matrix& basis) const {
  ARAMS_CHECK(!reservoir_.empty(), "no rows observed yet");
  ARAMS_CHECK(basis.cols() == dim_, "basis dimension mismatch");
  linalg::Matrix r(reservoir_.size(), dim_);
  for (std::size_t i = 0; i < reservoir_.size(); ++i) {
    r.set_row(i, reservoir_[i]);
  }
  const double total = linalg::frobenius_norm_squared(r);
  if (total <= 0.0) return 0.0;
  return linalg::projection_residual_exact(r, basis) / total;
}

}  // namespace arams::core
