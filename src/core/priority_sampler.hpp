#pragma once
// Priority sampling of matrix rows (Duffield, Lund, Thorup 2007), the
// acceleration stage of ARAMS. Each row gets weight wᵢ (squared row norm by
// default) and priority pᵢ = wᵢ/uᵢ with uᵢ ~ U(0,1); the m rows of highest
// priority form the sample. With τ = the (m+1)-th highest priority, the
// estimator ŵᵢ = max(wᵢ, τ) makes subset-sum estimates unbiased; for matrix
// sketching each kept row is rescaled by √(max(1, τ/wᵢ)) so that
// E[B̃ᵀB̃] = AᵀA (property-tested).

#include <queue>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace arams::core {

enum class SamplingWeight {
  kRowNormSquared,  ///< wᵢ = ‖Aᵢ‖² — unbiased covariance (default)
  kRowNorm,         ///< wᵢ = ‖Aᵢ‖ — the form stated in the paper's text
};

struct PrioritySamplerConfig {
  std::size_t capacity = 128;  ///< m — rows retained
  SamplingWeight weight = SamplingWeight::kRowNormSquared;
  bool rescale = true;         ///< apply the unbiasedness rescaling
  std::uint64_t seed = 99;
};

/// Bounded streaming priority sampler over matrix rows.
class PrioritySampler {
 public:
  explicit PrioritySampler(const PrioritySamplerConfig& config);

  /// Offers one row to the sampler.
  void push(std::span<const double> row);

  /// fp32 ingest lane: same weight arithmetic (the norm accumulates in
  /// double either way), same RNG stream, same decisions — the retained
  /// row is widened on entry, so the sample is bitwise identical to
  /// pushing the widened row.
  void push(std::span<const float> row);

  /// Offers every row of a matrix.
  void push_batch(const linalg::Matrix& rows);

  /// Offers every row of an fp32 view.
  void push_batch(linalg::MatrixViewF rows);

  /// Extracts the sampled (and rescaled) rows, in stream order, and resets
  /// the sampler for the next batch.
  linalg::Matrix take();

  [[nodiscard]] std::size_t capacity() const { return config_.capacity; }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] long rows_seen() const { return rows_seen_; }

  /// τ of the most recent take(): the (m+1)-th largest priority, 0 when the
  /// stream did not overflow the capacity.
  [[nodiscard]] double last_threshold() const { return last_threshold_; }

 private:
  /// Shared fp64/fp32 push body; the stored row widens element-wise at
  /// Entry construction.
  template <typename T>
  void push_any(std::span<const T> row);

  struct Entry {
    double priority;
    double weight;
    long order;  ///< arrival index, to restore stream order on take()
    std::vector<double> row;
  };
  struct MinPriority {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.priority > b.priority;  // min-heap on priority
    }
  };

  PrioritySamplerConfig config_;
  Rng rng_;
  std::vector<Entry> heap_;  ///< min-heap of the top-(m+1) priorities
  long rows_seen_ = 0;
  double evicted_priority_ = 0.0;  ///< max priority ever evicted
  double last_threshold_ = 0.0;
  std::size_t dim_ = 0;
};

/// One-shot convenience: priority-samples the rows of `a` down to
/// ⌈fraction·n⌉ rows. fraction in (0, 1]; 1 returns `a` unchanged.
linalg::Matrix priority_sample(const linalg::Matrix& a, double fraction,
                               const PrioritySamplerConfig& base_config);

/// fp32 one-shot: identical sampling decisions to the fp64 overload on the
/// widened input; only the survivors are widened (fraction ≥ 1 widens the
/// whole view).
linalg::Matrix priority_sample(linalg::MatrixViewF a, double fraction,
                               const PrioritySamplerConfig& base_config);

}  // namespace arams::core
