#include "core/sketcher.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "core/baselines.hpp"
#include "core/fd.hpp"
#include "core/sharded.hpp"
#include "linalg/blas.hpp"
#include "parallel/thread_pool.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::core {

using linalg::Matrix;

namespace {

/// Uniform empty-state message — every backend's basis() precondition
/// failure reads the same (see the contract in sketcher.hpp).
constexpr const char* kEmptyBasisMessage =
    "basis of an empty sketch: no rows ingested yet "
    "(check dim() != 0 before calling basis)";

struct BackendEntry {
  const char* name;
  const char* description;
};

/// Canonical registry, factory order. Aliases resolve below.
constexpr BackendEntry kBackends[] = {
    {"arams", "priority sampling + (rank-adaptive) FD — the paper's Alg. 3"},
    {"fd", "fixed-rank Frequent Directions, fast 2l-buffer variant"},
    {"isvd", "incremental truncated SVD (no shrinkage, no guarantee)"},
    {"gaussian", "dense Gaussian (JL) projection, one GEMM per batch"},
    {"countsketch", "sparse sign embedding, one scatter pass per batch"},
    {"normsample", "length-squared iid row sampling (A-Res reservoirs)"},
    {"rangefinder",
     "single-pass randomized range-finder / Nystrom sketch of A^T A"},
};

/// Resolves aliases (the pre-redesign RowSketcher factory names) to
/// canonical names; returns "" when unknown.
std::string canonical_name(const std::string& name) {
  if (name == "gaussian-projection") return "gaussian";
  if (name == "count-sketch") return "countsketch";
  if (name == "norm-sampling") return "normsample";
  for (const auto& entry : kBackends) {
    if (name == entry.name) return entry.name;
  }
  return "";
}

/// The sharded-wrapper spelling: "sharded:<inner>" wraps any plain backend
/// in SketcherConfig::shards concurrent ingest shards (core/sharded.hpp).
constexpr const char* kShardedPrefix = "sharded:";

bool is_sharded_name(const std::string& name) {
  return name.rfind(kShardedPrefix, 0) == 0;
}

std::string sharded_inner_name(const std::string& name) {
  return name.substr(std::string(kShardedPrefix).size());
}

std::string joined_backend_names() {
  std::ostringstream out;
  bool first = true;
  for (const auto& entry : kBackends) {
    if (!first) out << ", ";
    out << entry.name;
    first = false;
  }
  return out.str();
}

/// Adapter presenting the full ARAMS engine (priority sampling +
/// rank-adaptive FD) through the Sketcher seam. Owns a core::Arams built
/// from the exact AramsConfig handed in, so factory-built "arams" behaves
/// bitwise-identically to direct core::Arams use.
class AramsSketcher final : public Sketcher {
 public:
  explicit AramsSketcher(const AramsConfig& config) : arams_(config) {}

  void push_batch(const Matrix& batch) override { arams_.push_batch(batch); }
  void push_batch(linalg::MatrixViewF batch) override {
    arams_.push_batch(batch);
    note_f32_rows(batch.rows());
  }
  Matrix sketch() override { return arams_.sketch(); }
  Matrix basis(std::size_t k) override {
    ARAMS_CHECK(arams_.dim() > 0, kEmptyBasisMessage);
    return arams_.basis(k);
  }
  [[nodiscard]] std::size_t current_ell() const override {
    return arams_.current_ell();
  }
  [[nodiscard]] std::size_t dim() const override { return arams_.dim(); }
  [[nodiscard]] SketchStats stats() const override { return arams_.stats(); }
  [[nodiscard]] std::string name() const override { return "arams"; }

 private:
  Arams arams_;
};

/// Adapter presenting fixed-rank FrequentDirections (fast variant) through
/// the Sketcher seam.
class FdBackend final : public Sketcher {
 public:
  explicit FdBackend(std::size_t ell)
      : fd_(FdConfig{.sketch_rows = ell, .fast = true}) {}

  void push_batch(const Matrix& batch) override { fd_.append_batch(batch); }
  void push_batch(linalg::MatrixViewF batch) override {
    fd_.append_batch(batch);
    note_f32_rows(batch.rows());
  }
  void append(std::span<const double> row) override { fd_.append(row); }
  void append(std::span<const float> row) override {
    fd_.append(row);
    note_f32_rows(1);
  }
  Matrix sketch() override {
    fd_.compress();
    return fd_.sketch();
  }
  Matrix basis(std::size_t k) override {
    ARAMS_CHECK(fd_.dim() > 0, kEmptyBasisMessage);
    return fd_.basis(k);
  }
  [[nodiscard]] std::size_t current_ell() const override { return fd_.ell(); }
  [[nodiscard]] std::size_t dim() const override { return fd_.dim(); }
  [[nodiscard]] SketchStats stats() const override { return fd_.stats(); }
  [[nodiscard]] std::string name() const override { return "fd"; }

 private:
  FrequentDirections fd_;
};

}  // namespace

// ----------------------------------------------------- interface defaults

void Sketcher::append(std::span<const double> row) {
  Matrix one(1, row.size());
  one.set_row(0, row);
  push_batch(one);
}

const Matrix& Sketcher::widen_to_scratch(linalg::MatrixViewF batch) {
  // Resolved once; the per-batch cost is the cast loop plus one histogram
  // observation.
  static obs::Histogram& widen_hist =
      obs::metrics().histogram("ingest.widen_seconds");
  Stopwatch timer;
  Matrix& wide =
      ingest_ws_.mat(linalg::wslot::kIngestWiden, batch.rows(), batch.cols());
  linalg::widen(batch, wide);
  const double seconds = timer.seconds();
  widen_seconds_ += seconds;
  widen_hist.observe(seconds);
  note_f32_rows(batch.rows());
  return wide;
}

void Sketcher::push_batch(linalg::MatrixViewF batch) {
  if (batch.rows() == 0) return;
  push_batch(widen_to_scratch(batch));
}

void Sketcher::append(std::span<const float> row) {
  static obs::Histogram& widen_hist =
      obs::metrics().histogram("ingest.widen_seconds");
  Stopwatch timer;
  const std::span<double> wide =
      ingest_ws_.vec(linalg::wslot::kIngestRow, row.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    wide[i] = static_cast<double>(row[i]);
  }
  const double seconds = timer.seconds();
  widen_seconds_ += seconds;
  widen_hist.observe(seconds);
  note_f32_rows(1);
  append(std::span<const double>(wide.data(), wide.size()));
}

Matrix Sketcher::basis(std::size_t k) {
  ARAMS_CHECK(dim() > 0, kEmptyBasisMessage);
  const Matrix b = sketch();
  if (b.rows() == 0 || k == 0) return Matrix(0, dim());
  linalg::Workspace ws;
  linalg::SigmaVt svd;
  linalg::sigma_vt_svd(b, ws, svd, std::min(k, b.rows()));
  // Rows of w are σᵢ·vᵢᵀ; normalizing recovers the orthonormal directions.
  // Same 1e-7 relative rank floor as FD::basis / right_vectors.
  const std::size_t cap = std::min({k, svd.w.rows(), svd.sigma.size()});
  const double floor = svd.sigma.empty() ? 0.0 : 1e-7 * svd.sigma[0];
  std::size_t keep = 0;
  while (keep < cap && svd.sigma[keep] > floor) ++keep;
  Matrix out(keep, dim());
  for (std::size_t i = 0; i < keep; ++i) {
    out.set_row(i, svd.w.row(i));
    linalg::scale(out.row(i), 1.0 / svd.sigma[i]);
  }
  return out;
}

// ------------------------------------------------------- config + factory

std::vector<std::string> SketcherConfig::validate() const {
  std::vector<std::string> errors;
  if (shards < 1) {
    errors.push_back("shards must be >= 1, got " + std::to_string(shards));
    return errors;
  }
  if (is_sharded_name(backend)) {
    const std::string inner = sharded_inner_name(backend);
    if (is_sharded_name(inner)) {
      errors.push_back("nested sharded backends are not supported, got '" +
                       backend + "'");
      return errors;
    }
    if (canonical_name(inner).empty()) {
      errors.push_back("sharded: unknown inner backend '" + inner +
                       "' (registered: " + joined_backend_names() + ")");
      return errors;
    }
    SketcherConfig inner_config = *this;
    inner_config.backend = inner;
    inner_config.shards = 1;
    for (const auto& err : inner_config.validate()) {
      errors.push_back("sharded: " + err);
    }
    return errors;
  }
  const std::string canonical = canonical_name(backend);
  if (canonical.empty()) {
    errors.push_back("unknown sketcher backend '" + backend +
                     "' (registered: " + joined_backend_names() + ")");
    return errors;
  }
  if (canonical == "arams") {
    for (const auto& err : arams.validate()) {
      errors.push_back("arams: " + err);
    }
    return errors;
  }
  if (ell < 1) {
    errors.push_back("ell must be >= 1");
  }
  if (canonical == "rangefinder") {
    if (rf_oversample < 1) {
      errors.push_back("rangefinder oversample must be >= 1");
    }
    if (rf_reorth_every < 1) {
      errors.push_back("rangefinder reorth_every must be >= 1");
    }
  }
  return errors;
}

bool sketcher_registered(const std::string& name) {
  if (is_sharded_name(name)) {
    const std::string inner = sharded_inner_name(name);
    return !is_sharded_name(inner) && !canonical_name(inner).empty();
  }
  return !canonical_name(name).empty();
}

std::vector<std::string> registered_sketchers() {
  std::vector<std::string> names;
  names.reserve(std::size(kBackends));
  for (const auto& entry : kBackends) {
    names.emplace_back(entry.name);
  }
  return names;
}

std::string sketcher_description(const std::string& name) {
  if (is_sharded_name(name)) {
    const std::string inner = sharded_inner_name(name);
    ARAMS_CHECK(sketcher_registered(name), "unknown sketcher: " + name);
    return "concurrent sharded ingest over '" + canonical_name(inner) +
           "', pool tree-merged at sketch() (--shards=N)";
  }
  const std::string canonical = canonical_name(name);
  ARAMS_CHECK(!canonical.empty(), "unknown sketcher: " + name);
  for (const auto& entry : kBackends) {
    if (canonical == entry.name) return entry.description;
  }
  return "";
}

std::unique_ptr<Sketcher> make_sketcher(const SketcherConfig& config) {
  const auto errors = config.validate();
  if (!errors.empty()) {
    std::ostringstream msg;
    msg << "invalid sketcher config:";
    for (const auto& err : errors) msg << " " << err << ";";
    ARAMS_CHECK(false, msg.str());
  }
  if (is_sharded_name(config.backend) || config.shards > 1) {
    SketcherConfig inner = config;
    inner.backend = is_sharded_name(config.backend)
                        ? sharded_inner_name(config.backend)
                        : config.backend;
    inner.shards = 1;
    return std::make_unique<ShardedSketcher>(inner, config.shards,
                                             &parallel::shared_pool());
  }
  const std::string canonical = canonical_name(config.backend);
  if (canonical == "arams") {
    return std::make_unique<AramsSketcher>(config.arams);
  }
  if (canonical == "fd") {
    return std::make_unique<FdBackend>(config.ell);
  }
  if (canonical == "isvd") {
    return std::make_unique<TruncatedSvdSketch>(config.ell);
  }
  if (canonical == "gaussian") {
    return std::make_unique<GaussianProjectionSketch>(config.ell, config.seed);
  }
  if (canonical == "countsketch") {
    return std::make_unique<CountSketch>(config.ell, config.seed);
  }
  if (canonical == "normsample") {
    return std::make_unique<NormSamplingSketch>(config.ell, config.seed);
  }
  if (canonical == "rangefinder") {
    return std::make_unique<RangeFinderSketch>(
        config.ell, config.seed, config.rf_oversample, config.rf_reorth_every);
  }
  ARAMS_CHECK(false, "unknown sketcher: " + config.backend);
  return nullptr;
}

std::unique_ptr<Sketcher> make_sketcher(const std::string& name,
                                        std::size_t ell, std::uint64_t seed) {
  SketcherConfig config;
  config.backend = name;
  config.ell = ell;
  config.seed = seed;
  config.arams.ell = ell;
  config.arams.seed = seed;
  return make_sketcher(config);
}

// ------------------------------------------------------------ rangefinder

RangeFinderSketch::RangeFinderSketch(std::size_t ell, std::uint64_t seed,
                                     std::size_t oversample,
                                     std::size_t reorth_every)
    : ell_(ell),
      oversample_(oversample),
      reorth_every_(reorth_every),
      seed_(seed) {
  ARAMS_CHECK(ell >= 1, "sketch needs at least one row");
  ARAMS_CHECK(oversample >= 1, "rangefinder oversample must be >= 1");
  ARAMS_CHECK(reorth_every >= 1, "rangefinder reorth_every must be >= 1");
}

void RangeFinderSketch::ensure_dim(std::size_t d) {
  if (dim_ == 0) {
    ARAMS_CHECK(d > 0, "zero-dimensional rows");
    dim_ = d;
    k_ = std::min(ell_ + oversample_, d);
    omega_ = Matrix(d, k_);
    Rng rng(seed_);
    rng.fill_normal(std::span<double>(omega_.data(), d * k_));
    y_ = Matrix(d, k_);
  }
  ARAMS_CHECK(d == dim_, "row dimension changed");
}

void RangeFinderSketch::push_batch(const Matrix& batch) {
  if (batch.rows() == 0) return;
  ensure_dim(batch.cols());
  // Y += batchᵀ·(batch·Ω): two packed GEMMs keep the invariant Y = G·Ω.
  linalg::matmul(batch, omega_, proj_);
  linalg::matmul_tn(batch, proj_, update_);
  for (std::size_t r = 0; r < dim_; ++r) {
    linalg::axpy(1.0, update_.row(r), y_.row(r));
  }
  stats_.rows_processed += static_cast<long>(batch.rows());
  ++batches_;
  if (batches_ % reorth_every_ == 0) {
    reorthogonalize();
  }
}

void RangeFinderSketch::reorthogonalize() {
  // Thin QR of the drifting test matrix; rotating Y by R⁻¹ preserves
  // Y = G·Ω while Ω regains orthonormal columns.
  auto qr = linalg::householder_qr(omega_);
  double max_diag = 0.0;
  for (std::size_t j = 0; j < k_; ++j) {
    max_diag = std::max(max_diag, std::abs(qr.r(j, j)));
  }
  const double tiny = 1e-13 * max_diag;
  // Row-wise in-place back-substitution: X·R = Y. Processing columns in
  // ascending order, x[i<j] is already final when x[j] is formed.
  for (std::size_t row = 0; row < dim_; ++row) {
    auto y = y_.row(row);
    for (std::size_t j = 0; j < k_; ++j) {
      double s = y[j];
      for (std::size_t i = 0; i < j; ++i) {
        s -= y[i] * qr.r(i, j);
      }
      y[j] = (std::abs(qr.r(j, j)) > tiny) ? s / qr.r(j, j) : 0.0;
    }
  }
  omega_ = std::move(qr.q);
}

Matrix RangeFinderSketch::sketch() {
  if (dim_ == 0) return Matrix();
  Stopwatch timer;
  // Shifted Nyström factorization (Tropp et al. 2017, Alg. 3 adapted to
  // our eig core): Ys = Y + νΩ, M = sym(ΩᵀYs) = UΛUᵀ,
  // T = Λ^{-1/2}·Uᵀ·Ysᵀ so that TᵀT = Ys·M⁻¹·Ysᵀ ≈ G.
  const double shift = std::sqrt(static_cast<double>(dim_)) *
                       std::numeric_limits<double>::epsilon() *
                       linalg::frobenius_norm(y_);
  ys_.reshape(dim_, k_);
  for (std::size_t r = 0; r < dim_; ++r) {
    ys_.set_row(r, y_.row(r));
    linalg::axpy(shift, omega_.row(r), ys_.row(r));
  }
  linalg::matmul_tn(omega_, ys_, gram_);
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double avg = 0.5 * (gram_(i, j) + gram_(j, i));
      gram_(i, j) = avg;
      gram_(j, i) = avg;
    }
  }
  linalg::EigenConfig eig_config;
  eig_config.vectors = true;
  eig_config.max_vectors = k_;
  linalg::eigen_symmetric(gram_, ws_, eig_, eig_config);
  // Drop the numerically null probe directions: 1/√λ amplifies anything
  // below the eigenvalue floor into pure noise.
  const double lambda_max = eig_.values.empty() ? 0.0 : eig_.values.front();
  std::size_t rank = 0;
  while (rank < eig_.values.size() && rank < eig_.vectors.cols() &&
         eig_.values[rank] > lambda_max * 1e-10 && eig_.values[rank] > 0.0) {
    ++rank;
  }
  if (rank == 0) return Matrix(0, dim_);
  linalg::matmul(ys_, eig_.vectors, z_);  // Z = Ys·U (d × #vectors)
  t_.reshape(rank, dim_);
  for (std::size_t i = 0; i < rank; ++i) {
    const double inv = 1.0 / std::sqrt(eig_.values[i]);
    auto row = t_.row(i);
    for (std::size_t c = 0; c < dim_; ++c) {
      row[c] = z_(c, i) * inv;
    }
  }
  // Fixed-rank truncation through the packed SVD core: keep the top-ℓ of
  // Σ·Vᵀ of the Nyström factor, exactly the FD output convention.
  linalg::sigma_vt_svd(t_, ws_, svd_, std::min(ell_, rank));
  const std::size_t cap = std::min({ell_, svd_.w.rows(), svd_.sigma.size()});
  std::size_t keep = 0;
  while (keep < cap && svd_.sigma[keep] > 0.0) ++keep;
  Matrix out(keep, dim_);
  for (std::size_t i = 0; i < keep; ++i) {
    out.set_row(i, svd_.w.row(i));
  }
  ++stats_.svd_count;
  stats_.shrink_seconds += timer.seconds();
  return out;
}

}  // namespace arams::core
