#include "core/arams_sketch.hpp"

#include <sstream>

#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace arams::core {

using linalg::Matrix;

std::vector<std::string> AramsConfig::validate() const {
  std::vector<std::string> errors;
  const auto fmt = [](const auto& value) {
    std::ostringstream out;
    out << value;
    return out.str();
  };
  if (!(beta > 0.0 && beta <= 1.0)) {
    errors.push_back("beta must be in (0, 1], got " + fmt(beta));
  }
  if (ell < 2) {
    errors.push_back("ell must be >= 2, got " + fmt(ell));
  }
  if (max_ell != 0 && ell > max_ell) {
    errors.push_back("ell (" + fmt(ell) + ") exceeds max_ell (" +
                     fmt(max_ell) + ")");
  }
  if (rank_adaptive) {
    if (nu < 1) {
      errors.push_back("nu (probes per estimate) must be >= 1, got " +
                       fmt(nu));
    }
    if (epsilon < 0.0) {
      errors.push_back("epsilon must be >= 0, got " + fmt(epsilon));
    }
  }
  return errors;
}

namespace {

std::string join_errors(const std::vector<std::string>& errors) {
  std::string out;
  for (const auto& e : errors) {
    if (!out.empty()) out += "; ";
    out += e;
  }
  return out;
}

}  // namespace

Arams::Arams(const AramsConfig& config) : config_(config) {
  const std::vector<std::string> errors = config.validate();
  ARAMS_CHECK(errors.empty(), "invalid AramsConfig: " + join_errors(errors));
  if (config_.rank_adaptive) {
    RankAdaptiveConfig ra;
    ra.initial_ell = config_.ell;
    ra.nu = config_.nu;
    ra.rank_step = config_.rank_step;
    ra.epsilon = config_.epsilon;
    ra.relative_error = config_.relative_error;
    ra.max_ell = config_.max_ell;
    ra.estimator = config_.estimator;
    ra.seed = config_.seed;
    ra_fd_ = std::make_unique<RankAdaptiveFd>(ra);
  } else {
    fixed_fd_ = std::make_unique<FrequentDirections>(
        FdConfig{config_.ell, /*fast=*/true});
  }
}

FrequentDirections& Arams::fd() {
  return ra_fd_ ? static_cast<FrequentDirections&>(*ra_fd_) : *fixed_fd_;
}

AramsResult Arams::sketch_matrix(const Matrix& x) {
  const obs::ScopedSpan span("arams.sketch_matrix");
  AramsResult result;
  Stopwatch timer;

  const Matrix* input = &x;
  Matrix sampled;
  if (config_.use_sampling && config_.beta < 1.0) {
    const obs::ScopedSpan sample_span("arams.sample");
    PrioritySamplerConfig ps;
    ps.weight = config_.weight;
    ps.seed = config_.seed ^ 0x5a5a5a5aull;
    sampled = priority_sample(x, config_.beta, ps);
    input = &sampled;
  }
  result.report.set_seconds("sample", timer.lap());
  result.rows_sampled = input->rows();
  rows_sampled_total_ += input->rows();

  {
    const obs::ScopedSpan sketch_span("arams.sketch");
    if (ra_fd_) {
      ra_fd_->set_rows_remaining(static_cast<long>(input->rows()));
      ra_fd_->append_batch(*input);
    } else {
      fixed_fd_->append_batch(*input);
    }
    fd().compress();
  }
  result.report.set_seconds("sketch", timer.lap());
  result.sketch = fd().sketch();
  result.final_ell = fd().ell();
  append_to_report(fd().stats(), result.report);
  return result;
}

void Arams::push_batch(const Matrix& batch) {
  Stopwatch timer;
  const Matrix* input = &batch;
  Matrix sampled;
  if (config_.use_sampling && config_.beta < 1.0) {
    PrioritySamplerConfig ps;
    ps.weight = config_.weight;
    ps.seed = config_.seed ^ (0x9e3779b9ull + rows_sampled_total_);
    sampled = priority_sample(batch, config_.beta, ps);
    input = &sampled;
  }
  sample_seconds_ += timer.lap();
  rows_sampled_total_ += input->rows();
  if (ra_fd_) {
    ra_fd_->append_batch(*input);
  } else {
    fixed_fd_->append_batch(*input);
  }
}

void Arams::push_batch(linalg::MatrixViewF batch) {
  if (batch.rows() == 0) return;
  Stopwatch timer;
  if (config_.use_sampling && config_.beta < 1.0) {
    PrioritySamplerConfig ps;
    ps.weight = config_.weight;
    ps.seed = config_.seed ^ (0x9e3779b9ull + rows_sampled_total_);
    // The fp32 sampler overload widens only the ⌈βn⌉ survivors.
    const Matrix sampled = priority_sample(batch, config_.beta, ps);
    sample_seconds_ += timer.lap();
    rows_sampled_total_ += sampled.rows();
    if (ra_fd_) {
      ra_fd_->append_batch(sampled);
    } else {
      fixed_fd_->append_batch(sampled);
    }
    return;
  }
  sample_seconds_ += timer.lap();
  rows_sampled_total_ += batch.rows();
  if (ra_fd_) {
    // RankAdaptiveFd's recent-row window shadows the float append path;
    // widen once into grow-only scratch and reuse its fp64 entry point.
    linalg::widen(batch, f32_widen_);
    ra_fd_->append_batch(f32_widen_);
  } else {
    fixed_fd_->append_batch(batch);
  }
}

Matrix Arams::sketch() {
  fd().compress();
  return fd().sketch();
}

Matrix Arams::basis(std::size_t k) {
  // Uniform Sketcher empty-state contract: checked precondition at the API
  // boundary rather than a CheckError from deep inside FD.
  ARAMS_CHECK(dim() > 0,
              "basis of an empty sketch: no rows ingested yet "
              "(check dim() != 0 before calling basis)");
  return fd().basis(k);
}

std::size_t Arams::current_ell() const {
  return ra_fd_ ? ra_fd_->ell() : fixed_fd_->ell();
}

std::size_t Arams::dim() const {
  return ra_fd_ ? ra_fd_->dim() : fixed_fd_->dim();
}

SketchStats Arams::stats() const {
  return ra_fd_ ? ra_fd_->stats() : fixed_fd_->stats();
}

}  // namespace arams::core
