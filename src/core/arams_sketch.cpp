#include "core/arams_sketch.hpp"

#include "util/stopwatch.hpp"

namespace arams::core {

using linalg::Matrix;

Arams::Arams(const AramsConfig& config) : config_(config) {
  ARAMS_CHECK(config.beta > 0.0 && config.beta <= 1.0,
              "beta must be in (0, 1]");
  if (config_.rank_adaptive) {
    RankAdaptiveConfig ra;
    ra.initial_ell = config_.ell;
    ra.nu = config_.nu;
    ra.rank_step = config_.rank_step;
    ra.epsilon = config_.epsilon;
    ra.relative_error = config_.relative_error;
    ra.max_ell = config_.max_ell;
    ra.estimator = config_.estimator;
    ra.seed = config_.seed;
    ra_fd_ = std::make_unique<RankAdaptiveFd>(ra);
  } else {
    fixed_fd_ = std::make_unique<FrequentDirections>(
        FdConfig{config_.ell, /*fast=*/true});
  }
}

FrequentDirections& Arams::fd() {
  return ra_fd_ ? static_cast<FrequentDirections&>(*ra_fd_) : *fixed_fd_;
}

AramsResult Arams::sketch_matrix(const Matrix& x) {
  AramsResult result;
  Stopwatch timer;

  const Matrix* input = &x;
  Matrix sampled;
  if (config_.use_sampling && config_.beta < 1.0) {
    PrioritySamplerConfig ps;
    ps.weight = config_.weight;
    ps.seed = config_.seed ^ 0x5a5a5a5aull;
    sampled = priority_sample(x, config_.beta, ps);
    input = &sampled;
  }
  result.sample_seconds = timer.lap();
  result.rows_sampled = input->rows();
  rows_sampled_total_ += input->rows();

  if (ra_fd_) {
    ra_fd_->set_rows_remaining(static_cast<long>(input->rows()));
    ra_fd_->append_batch(*input);
  } else {
    fixed_fd_->append_batch(*input);
  }
  fd().compress();
  result.sketch_seconds = timer.lap();
  result.sketch = fd().sketch();
  result.final_ell = fd().ell();
  result.stats = fd().stats();
  return result;
}

void Arams::push_batch(const Matrix& batch) {
  Stopwatch timer;
  const Matrix* input = &batch;
  Matrix sampled;
  if (config_.use_sampling && config_.beta < 1.0) {
    PrioritySamplerConfig ps;
    ps.weight = config_.weight;
    ps.seed = config_.seed ^ (0x9e3779b9ull + rows_sampled_total_);
    sampled = priority_sample(batch, config_.beta, ps);
    input = &sampled;
  }
  sample_seconds_ += timer.lap();
  rows_sampled_total_ += input->rows();
  if (ra_fd_) {
    ra_fd_->append_batch(*input);
  } else {
    fixed_fd_->append_batch(*input);
  }
}

Matrix Arams::sketch() {
  fd().compress();
  return fd().sketch();
}

Matrix Arams::basis(std::size_t k) { return fd().basis(k); }

std::size_t Arams::current_ell() const {
  return ra_fd_ ? ra_fd_->ell() : fixed_fd_->ell();
}

SketchStats Arams::stats() const {
  return ra_fd_ ? ra_fd_->stats() : fixed_fd_->stats();
}

}  // namespace arams::core
