#pragma once
// Online sketch-quality meter.
//
// Computing the true reconstruction error "up to the most recent time
// would require storing all the data" (§IV-A2) — but a *uniform reservoir
// sample* of the stream gives an unbiased estimate of the average
// reconstruction error over everything seen, at fixed memory. This is the
// operator-facing "how good is my sketch right now" gauge the
// rank-adaptation heuristic (which only sees the most recent batch)
// deliberately does not provide.

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace arams::core {

struct ErrorTrackerConfig {
  std::size_t reservoir_size = 256;  ///< rows retained (uniform sample)
  std::uint64_t seed = 77;
};

/// Uniform reservoir (Vitter's Algorithm R) over the stream's rows, plus
/// the residual evaluation against a sketch basis.
class SketchErrorTracker {
 public:
  explicit SketchErrorTracker(const ErrorTrackerConfig& config);

  /// Offers one data row (every row of the stream, pre-sketch).
  void observe(std::span<const double> row);

  /// Offers every row of a batch.
  void observe_batch(const linalg::Matrix& rows);

  /// Relative reconstruction error of the reservoir against the given
  /// orthonormal row basis (e.g. FrequentDirections::basis(k)):
  /// ‖R − R·VᵀV‖²_F / ‖R‖²_F. Unbiased for the stream average because the
  /// reservoir is a uniform sample. Throws CheckError before any rows.
  [[nodiscard]] double relative_error(const linalg::Matrix& basis) const;

  [[nodiscard]] long rows_seen() const { return rows_seen_; }
  [[nodiscard]] std::size_t reservoir_count() const;

  /// The current reservoir as a matrix (a uniform sample of the stream —
  /// also useful as a representative row set for operator inspection).
  [[nodiscard]] linalg::Matrix reservoir_rows() const;

 private:
  ErrorTrackerConfig config_;
  Rng rng_;
  std::vector<std::vector<double>> reservoir_;
  long rows_seen_ = 0;
  std::size_t dim_ = 0;
};

}  // namespace arams::core
