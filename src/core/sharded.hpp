#pragma once
// core::ShardedSketcher — N-way concurrent ingest over any factory backend,
// merged by a pool-executed FD tree. This is the in-process realization of
// the paper's Fig. 2 scaling argument: FD sketches are mergeable, so P
// independent shards ingest in parallel and tree-merge in ⌈log₂P⌉ rounds.
//
// Partitioning is round-robin on a global row counter: row j of the
// lifetime stream lands on shard j mod P. That makes the shard contents —
// and therefore the merged sketch — a pure function of arrival order,
// independent of pool size or scheduling: results are bitwise identical
// at any thread count (including pool == nullptr, fully inline).
//
// Concurrency/allocation contract: every shard owns its inner sketcher, a
// private linalg::Workspace gather arena (wslot::kShardGather) and a
// grow-only fp32 gather buffer, so concurrent shard tasks never share
// mutable state (no locks on the data path) and steady-state ingest
// performs no heap allocation in the shard work itself. Dispatching onto a
// ThreadPool costs O(shards) small control allocations per batch; run with
// pool == nullptr for strictly allocation-free inline ingest.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/merge.hpp"
#include "core/sketcher.hpp"
#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"
#include "obs/metrics.hpp"

namespace arams::parallel {
class ThreadPool;
}  // namespace arams::parallel

namespace arams::core {

class ShardedSketcher final : public Sketcher {
 public:
  /// Builds `shards` inner backends from `inner` (which must name a plain,
  /// non-sharded backend). Shard i seeds with inner.seed + i (and
  /// inner.arams.seed + i for "arams"), matching the historical
  /// run_stages sharding convention. `pool` executes shard ingest and the
  /// merge groups; nullptr runs everything inline on the calling thread.
  ShardedSketcher(const SketcherConfig& inner, std::size_t shards,
                  parallel::ThreadPool* pool);

  void push_batch(const linalg::Matrix& batch) override;
  void push_batch(linalg::MatrixViewF batch) override;
  linalg::Matrix sketch() override;
  [[nodiscard]] std::size_t current_ell() const override;
  [[nodiscard]] std::size_t dim() const override;
  [[nodiscard]] SketchStats stats() const override;
  [[nodiscard]] std::string name() const override;

  /// Base report plus the stats of the last sketch()-time merge (the
  /// "merge_*" keys, including the measured-vs-modeled makespan pair).
  void report(obs::StageReport& out) const override;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Lifetime rows routed to shard `s` (also published as the
  /// "sketch.shard_rows.<s>" gauge after every batch).
  [[nodiscard]] long shard_rows(std::size_t s) const;

  /// Stats of the most recent sketch()-time parallel tree merge; zeros
  /// before the first sketch() call.
  [[nodiscard]] const MergeStats& last_merge_stats() const {
    return last_merge_stats_;
  }

 private:
  struct Shard {
    std::unique_ptr<Sketcher> inner;
    linalg::Workspace ws;        ///< fp64 gather arena (wslot::kShardGather)
    linalg::MatrixF gather_f32;  ///< fp32 lane gather, grow-only
    obs::Gauge* rows_gauge = nullptr;  ///< "sketch.shard_rows.<s>"
    long rows = 0;
  };

  /// True when shard work should go to the pool (>1 worker, >1 shard).
  [[nodiscard]] bool use_pool() const;
  /// Pooled fan-out, out of line to keep ThreadPool out of this header.
  void pool_dispatch(const std::function<void(std::size_t)>& fn);

  /// Runs fn(s) for every shard — on the pool when it has >1 worker,
  /// inline otherwise. Either way shard s does identical work. Templated
  /// so the inline path never type-erases fn into a std::function (that
  /// erasure heap-allocates, which would break the allocation-free
  /// steady-state contract of pool-less ingest).
  template <typename Fn>
  void for_each_shard(Fn&& fn) {
    if (use_pool()) {
      pool_dispatch(std::function<void(std::size_t)>(std::forward<Fn>(fn)));
    } else {
      for (std::size_t s = 0; s < shards_.size(); ++s) fn(s);
    }
  }

  std::vector<Shard> shards_;
  parallel::ThreadPool* pool_;
  std::size_t row_cursor_ = 0;  ///< lifetime rows seen; round-robin state
  MergeStats last_merge_stats_;
  std::string inner_name_;
};

}  // namespace arams::core
