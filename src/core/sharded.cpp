#include "core/sharded.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace arams::core {

using linalg::Matrix;
using linalg::MatrixViewF;

namespace {

/// First row index of `batch` that round-robins onto shard s when the
/// lifetime cursor stands at `cursor` (rows land on (cursor + j) mod P).
std::size_t first_row_for(std::size_t s, std::size_t cursor, std::size_t p) {
  return (s + p - cursor % p) % p;
}

std::size_t rows_for(std::size_t first, std::size_t n, std::size_t p) {
  return first < n ? (n - first + p - 1) / p : 0;
}

}  // namespace

ShardedSketcher::ShardedSketcher(const SketcherConfig& inner,
                                 std::size_t shards,
                                 parallel::ThreadPool* pool)
    : pool_(pool) {
  ARAMS_CHECK(shards >= 1, "sharded: shard count must be >= 1, got " +
                               std::to_string(shards));
  inner_name_ = inner.backend;
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    SketcherConfig config = inner;
    config.shards = 1;
    config.seed = inner.seed + s;
    config.arams.seed = inner.arams.seed + s;
    Shard shard;
    shard.inner = make_sketcher(config);
    shard.rows_gauge =
        &obs::metrics().gauge("sketch.shard_rows." + std::to_string(s));
    shards_.push_back(std::move(shard));
  }
  inner_name_ = shards_.front().inner->name();
}

bool ShardedSketcher::use_pool() const {
  return pool_ != nullptr && pool_->thread_count() > 1 && shards_.size() > 1;
}

void ShardedSketcher::pool_dispatch(
    const std::function<void(std::size_t)>& fn) {
  pool_->parallel_for(shards_.size(), fn);
}

void ShardedSketcher::push_batch(const Matrix& batch) {
  if (batch.rows() == 0) return;
  const obs::ScopedSpan span("sketch.sharded_ingest");
  const std::size_t p = shards_.size();
  const std::size_t n = batch.rows();
  const std::size_t cursor = row_cursor_;
  for_each_shard([&](std::size_t s) {
    Shard& shard = shards_[s];
    const std::size_t first = first_row_for(s, cursor, p);
    const std::size_t count = rows_for(first, n, p);
    if (count == 0) return;
    if (p == 1) {
      // One shard sees the whole batch: skip the gather copy entirely.
      shard.inner->push_batch(batch);
    } else {
      Matrix& gathered =
          shard.ws.mat(linalg::wslot::kShardGather, count, batch.cols());
      std::size_t at = 0;
      for (std::size_t j = first; j < n; j += p) {
        gathered.set_row(at++, batch.row(j));
      }
      shard.inner->push_batch(gathered);
    }
    shard.rows += static_cast<long>(count);
  });
  row_cursor_ += n;
  for (auto& shard : shards_) {
    shard.rows_gauge->set(static_cast<double>(shard.rows));
  }
}

void ShardedSketcher::push_batch(MatrixViewF batch) {
  if (batch.rows() == 0) return;
  const obs::ScopedSpan span("sketch.sharded_ingest");
  const std::size_t p = shards_.size();
  const std::size_t n = batch.rows();
  const std::size_t cursor = row_cursor_;
  for_each_shard([&](std::size_t s) {
    Shard& shard = shards_[s];
    const std::size_t first = first_row_for(s, cursor, p);
    const std::size_t count = rows_for(first, n, p);
    if (count == 0) return;
    if (p == 1) {
      shard.inner->push_batch(batch);
    } else {
      shard.gather_f32.reshape(count, batch.cols());
      std::size_t at = 0;
      for (std::size_t j = first; j < n; j += p) {
        shard.gather_f32.set_row(at++, batch.row(j));
      }
      shard.inner->push_batch(MatrixViewF(shard.gather_f32));
    }
    shard.rows += static_cast<long>(count);
  });
  row_cursor_ += n;
  // Credit the lane on the wrapper: report() reads this object's counters,
  // and the inner sketchers already account their own widen time.
  note_f32_rows(n);
  for (auto& shard : shards_) {
    shard.rows_gauge->set(static_cast<double>(shard.rows));
  }
}

Matrix ShardedSketcher::sketch() {
  const std::size_t d = dim();
  if (d == 0) return Matrix();
  std::vector<Matrix> parts;
  parts.reserve(shards_.size());
  for (auto& shard : shards_) {
    if (shard.inner->dim() == 0) continue;
    Matrix part = shard.inner->sketch();
    if (part.rows() > 0) parts.push_back(std::move(part));
  }
  if (parts.empty()) return Matrix(0, d);
  if (parts.size() == 1) return std::move(parts.front());
  return parallel_tree_merge(std::move(parts), current_ell(), 2,
                             &last_merge_stats_, pool_);
}

std::size_t ShardedSketcher::current_ell() const {
  std::size_t ell = 0;
  for (const auto& shard : shards_) {
    ell = std::max(ell, shard.inner->current_ell());
  }
  return ell;
}

std::size_t ShardedSketcher::dim() const {
  for (const auto& shard : shards_) {
    if (shard.inner->dim() > 0) return shard.inner->dim();
  }
  return 0;
}

SketchStats ShardedSketcher::stats() const {
  SketchStats total;
  for (const auto& shard : shards_) {
    total += shard.inner->stats();
  }
  return total;
}

std::string ShardedSketcher::name() const {
  return "sharded:" + inner_name_;
}

void ShardedSketcher::report(obs::StageReport& out) const {
  Sketcher::report(out);
  out.add_counter("shards", static_cast<long>(shards_.size()));
  if (last_merge_stats_.merge_ops > 0) {
    append_to_report(last_merge_stats_, out);
  }
}

long ShardedSketcher::shard_rows(std::size_t s) const {
  ARAMS_CHECK(s < shards_.size(), "shard index out of range");
  return shards_[s].rows;
}

}  // namespace arams::core
