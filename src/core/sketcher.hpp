#pragma once
// core::Sketcher — the one seam every matrix-sketching backend sits behind.
//
// The paper's whole comparison (FD-family vs sampling vs random projection,
// Desai–Ghashami–Phillips 2016) only becomes architecture when the pipeline
// can swap designs without recompiling: the streaming monitor, the stage
// runner, the CLI and the ablation benches all consume this interface, and
// the factory (`make_sketcher`) resolves a backend by name at run time.
//
// Registered backends (canonical factory names):
//   arams        priority sampling + (rank-adaptive) FD — Algorithm 3
//   fd           fixed-rank Frequent Directions (fast 2ℓ buffer)
//   isvd         incremental truncated SVD (no shrinkage, no guarantee)
//   gaussian     dense Gaussian (JL) projection, batch GEMM accumulation
//   countsketch  sparse sign embedding (one bucket per row)
//   normsample   length-squared iid row sampling (A-Res reservoirs)
//   rangefinder  single-pass randomized range-finder / Nyström sketch of
//                AᵀA (Tropp, Yurtsever, Udell, Cevher 2017)
//
// Any backend can additionally be wrapped in N concurrent ingest shards
// with the "sharded:<inner>" spelling (e.g. "sharded:fd") or by setting
// SketcherConfig::shards > 1 — see core/sharded.hpp.
//
// ## Empty-state contract (uniform across every backend)
//
//  * `dim() == 0` until the first row lands in the sketch. Note that a
//    push_batch call alone is no guarantee for every backend — ARAMS's
//    priority sampler may drop an entire batch — so callers gate on
//    `dim()`, never on "I pushed something".
//  * `sketch()` on an empty sketch returns an empty Matrix (0×0 before the
//    dimension is known, 0×d once it is). It never throws.
//  * `basis(k)` REQUIRES `dim() > 0` and throws util::CheckError with the
//    uniform "basis of an empty sketch" message otherwise; once the
//    dimension is known it returns a (possibly 0)×d row-orthonormal matrix.
//    Check `dim() != 0` first.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/arams_sketch.hpp"
#include "core/sketch_stats.hpp"
#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"
#include "obs/stage_report.hpp"
#include "rng/rng.hpp"

namespace arams::core {

/// Streaming matrix-sketcher interface. Batch-first: `push_batch` is the
/// primitive every backend implements (one GEMM/scatter/shrink cycle per
/// batch); `append` is a per-row convenience on top of it. Long-lived
/// instances are expected to be allocation-free at steady state in their
/// ingest path (grow-only scratch, workspace-backed kernels).
class Sketcher {
 public:
  virtual ~Sketcher() = default;

  /// Ingests a batch of rows (n×d). The first non-empty batch fixes d.
  virtual void push_batch(const linalg::Matrix& batch) = 0;

  /// Per-row convenience; default copies the row into a 1×d batch. Backends
  /// with a natural row primitive override it to skip the copy.
  virtual void append(std::span<const double> row);

  /// fp32 ingest lane: accepts an fp32 batch directly. The default widens
  /// into workspace scratch (grow-only — allocation-free at steady state),
  /// charges the conversion to the "ingest.widen_seconds" histogram and
  /// forwards to the fp64 primitive, so *every* backend accepts fp32
  /// frames; backends with a native mixed-precision path (arams, fd,
  /// gaussian, countsketch) override to defer or skip the widen. Results
  /// are bitwise identical to widening the batch up front because all
  /// native paths accumulate in double.
  virtual void push_batch(linalg::MatrixViewF batch);

  /// fp32 per-row convenience; default widens into vec scratch and calls
  /// the fp64 append.
  virtual void append(std::span<const float> row);

  /// Current sketch, ≤ current_ell() rows × dim(). May compress internal
  /// state but must be idempotent: two consecutive calls with no ingest in
  /// between return identical matrices. Empty sketch → empty Matrix.
  virtual linalg::Matrix sketch() = 0;

  /// Orthonormal top-k principal row directions of the current sketch
  /// (≤k × d). Precondition: dim() > 0 (throws CheckError otherwise — see
  /// the empty-state contract above). Default implementation recovers the
  /// right singular vectors of sketch(); backends with a cheaper route
  /// (FD's already-rotated buffer) override.
  virtual linalg::Matrix basis(std::size_t k);

  /// Target sketch size ℓ (rows retained); grows under rank adaptation.
  [[nodiscard]] virtual std::size_t current_ell() const = 0;

  /// Column count; 0 until the first row actually lands in the sketch.
  [[nodiscard]] virtual std::size_t dim() const = 0;

  /// Operation counters (rows, rotations, probes, shrink seconds).
  [[nodiscard]] virtual SketchStats stats() const = 0;

  /// Folds stats() into a StageReport — the structured form every result
  /// type carries. When any fp32 rows were ingested the report also gains
  /// the lane's counters ("rows_ingested_f32", "ingest_widen" seconds), so
  /// fp64-only runs keep their report shape bit-for-bit. Virtual so
  /// composite backends (sharded) can append their own keys; overrides
  /// must call the base.
  virtual void report(obs::StageReport& out) const {
    append_to_report(stats(), out);
    if (rows_f32_ > 0) {
      out.add_counter("rows_ingested_f32", rows_f32_);
      out.add_seconds("ingest_widen", widen_seconds_);
    }
  }

  /// fp32 rows ingested through the lane (either shim or native override).
  [[nodiscard]] long rows_ingested_f32() const { return rows_f32_; }

  /// Canonical factory name; make_sketcher(name(), …) round-trips.
  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  /// Widens an fp32 batch into this sketcher's private ingest scratch
  /// (slot wslot::kIngestWiden), timing the conversion into the
  /// "ingest.widen_seconds" histogram and crediting the f32 row counter.
  /// The reference stays valid until the next widen_to_scratch call.
  const linalg::Matrix& widen_to_scratch(linalg::MatrixViewF batch);

  /// Credits `rows` fp32 rows to the ingest counters — native fp32
  /// overrides call this instead of going through widen_to_scratch.
  void note_f32_rows(std::size_t rows) {
    rows_f32_ += static_cast<long>(rows);
  }

 private:
  linalg::Workspace ingest_ws_;  ///< fp32 lane scratch (widen targets)
  long rows_f32_ = 0;
  double widen_seconds_ = 0.0;
};

/// Configuration for any factory-constructed backend. `backend` selects the
/// implementation; the scalar knobs apply to the simple backends, and the
/// nested AramsConfig carries the full Algorithm-3 parameter set for
/// "arams" (which reads its own ell/seed from `arams`, not the scalars).
struct SketcherConfig {
  std::string backend = "arams";  ///< canonical name or registered alias
  std::size_t ell = 32;           ///< sketch rows for non-arams backends
  std::uint64_t seed = 2024;      ///< RNG seed for non-arams backends

  /// Concurrent ingest shards. 1 = plain single instance. Either shards > 1
  /// or a "sharded:<inner>" backend spelling builds a core::ShardedSketcher
  /// over the shared pool; shard i seeds with seed + i.
  std::size_t shards = 1;

  /// Full parameter set for the "arams" backend.
  AramsConfig arams;

  // --- rangefinder knobs ---
  std::size_t rf_oversample = 8;    ///< extra probe columns beyond ℓ
  std::size_t rf_reorth_every = 16; ///< batches between QR re-orthogonalizations

  /// Human-readable configuration errors, empty when usable. Called by
  /// make_sketcher so a bad config fails at the API boundary.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// True when `name` is a canonical backend name or a registered alias.
[[nodiscard]] bool sketcher_registered(const std::string& name);

/// Canonical backend names, factory registration order.
[[nodiscard]] std::vector<std::string> registered_sketchers();

/// One-line description of a canonical backend (for --help / `arams
/// backends`). Throws CheckError on unknown names.
[[nodiscard]] std::string sketcher_description(const std::string& name);

/// Builds the backend selected by `config.backend`. Validates the config
/// and throws CheckError on errors or unknown names.
std::unique_ptr<Sketcher> make_sketcher(const SketcherConfig& config);

/// Convenience: default config with the given name/ell/seed. For "arams"
/// this is the stock AramsConfig (sampling + rank adaptation on) with
/// ell/seed substituted.
std::unique_ptr<Sketcher> make_sketcher(const std::string& name,
                                        std::size_t ell, std::uint64_t seed);

/// Single-pass randomized range-finder sketch — the streaming Nyström
/// approximation of G = AᵀA from Tropp, Yurtsever, Udell & Cevher,
/// "Fixed-rank approximation of a positive-semidefinite matrix from
/// streaming data" (2017), adapted to row streams:
///
///   maintain   Y = G·Ω = Σ_batches batchᵀ·(batch·Ω)
///
/// with Ω a fixed seeded d×k Gaussian test matrix (k = ℓ + oversample).
/// Each batch costs two packed GEMMs; every `reorth_every` batches Ω is
/// QR-re-orthogonalized (Householder) and Y is rotated by R⁻¹ so the
/// invariant Y = G·Ω survives with a well-conditioned Ω. sketch() forms
/// the shifted Nyström factor T = Λ^{-1/2}·Uᵀ·(Y+νΩ)ᵀ (eig of the k×k
/// Ωᵀ(Y+νΩ)) and truncates to the top ℓ of Σ·Vᵀ — so BᵀB equals the
/// fixed-rank Nyström approximation of G.
///
/// No FD-style worst-case bound; accuracy tracks the spectral decay
/// (excellent on low-rank streams, weak on flat spectra) at a fraction of
/// FD's per-row cost. Measured against the family in
/// `bench/ablation_baselines`.
class RangeFinderSketch : public Sketcher {
 public:
  RangeFinderSketch(std::size_t ell, std::uint64_t seed,
                    std::size_t oversample = 8,
                    std::size_t reorth_every = 16);

  void push_batch(const linalg::Matrix& batch) override;
  linalg::Matrix sketch() override;
  [[nodiscard]] std::size_t current_ell() const override { return ell_; }
  [[nodiscard]] std::size_t dim() const override { return dim_; }
  [[nodiscard]] SketchStats stats() const override { return stats_; }
  [[nodiscard]] std::string name() const override { return "rangefinder"; }

 private:
  void ensure_dim(std::size_t d);
  /// Ω ← Q, Y ← Y·R⁻¹ from the thin Householder QR of Ω.
  void reorthogonalize();

  std::size_t ell_;
  std::size_t oversample_;
  std::size_t reorth_every_;
  std::uint64_t seed_;
  std::size_t k_ = 0;    ///< probe columns, min(ℓ + oversample, d)
  std::size_t dim_ = 0;  ///< 0 until the first row arrives
  std::size_t batches_ = 0;
  linalg::Matrix omega_;  ///< d×k test matrix
  linalg::Matrix y_;      ///< d×k accumulated G·Ω
  SketchStats stats_;
  // Grow-only scratch: steady-state push_batch (between
  // re-orthogonalizations) performs no heap allocation.
  linalg::Matrix proj_;    ///< batch·Ω (b×k)
  linalg::Matrix update_;  ///< batchᵀ·proj (d×k)
  linalg::Matrix ys_;      ///< shifted Y (d×k), sketch() scratch
  linalg::Matrix gram_;    ///< ΩᵀYs (k×k)
  linalg::Matrix z_;       ///< Ys·U (d×r)
  linalg::Matrix t_;       ///< Nyström factor (r×d)
  linalg::Workspace ws_;
  linalg::SymmetricEig eig_;
  linalg::SigmaVt svd_;
};

}  // namespace arams::core
