#pragma once
// Binary frame-bundle format: a whole detector run (same-shaped frames) in
// one file, so example runs can be persisted and replayed. Layout:
//   "ARAMSFR1" magic, then u64 {height, width, count}, then count·h·w
//   little-endian float64 pixels.

#include <string>
#include <vector>

#include "image/image.hpp"

namespace arams::io {

/// Writes a same-shaped frame bundle. Throws CheckError on empty input,
/// inconsistent shapes, or I/O failure.
void save_frames(const std::string& path,
                 const std::vector<image::ImageF>& frames);

/// Loads a frame bundle written by save_frames.
std::vector<image::ImageF> load_frames(const std::string& path);

}  // namespace arams::io
