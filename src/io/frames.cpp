#include "io/frames.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/check.hpp"

namespace arams::io {

namespace {
constexpr char kMagic[8] = {'A', 'R', 'A', 'M', 'S', 'F', 'R', '1'};

void write_u64(std::ofstream& f, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  f.write(buf, 8);
}

std::uint64_t read_u64(std::ifstream& f) {
  unsigned char buf[8];
  f.read(reinterpret_cast<char*>(buf), 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  return v;
}
}  // namespace

void save_frames(const std::string& path,
                 const std::vector<image::ImageF>& frames) {
  ARAMS_CHECK(!frames.empty(), "refusing to write an empty frame bundle");
  const std::size_t h = frames.front().height();
  const std::size_t w = frames.front().width();
  std::ofstream f(path, std::ios::binary);
  ARAMS_CHECK(f.good(), "cannot open for writing: " + path);
  f.write(kMagic, 8);
  write_u64(f, h);
  write_u64(f, w);
  write_u64(f, frames.size());
  for (const auto& frame : frames) {
    ARAMS_CHECK(frame.height() == h && frame.width() == w,
                "inconsistent frame shapes in bundle");
    const auto pixels = frame.pixels();
    f.write(reinterpret_cast<const char*>(pixels.data()),
            static_cast<std::streamsize>(pixels.size() * sizeof(double)));
  }
  ARAMS_CHECK(f.good(), "write failed: " + path);
}

std::vector<image::ImageF> load_frames(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  ARAMS_CHECK(f.good(), "cannot open: " + path);
  char magic[8];
  f.read(magic, 8);
  ARAMS_CHECK(f.good() && std::memcmp(magic, kMagic, 8) == 0,
              "not an ARAMS frame bundle: " + path);
  const std::uint64_t h = read_u64(f);
  const std::uint64_t w = read_u64(f);
  const std::uint64_t count = read_u64(f);
  ARAMS_CHECK(f.good() && h > 0 && w > 0 && count > 0,
              "malformed frame bundle header in " + path);

  std::vector<image::ImageF> frames;
  frames.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    image::ImageF frame(h, w);
    auto pixels = frame.pixels();
    f.read(reinterpret_cast<char*>(pixels.data()),
           static_cast<std::streamsize>(pixels.size() * sizeof(double)));
    ARAMS_CHECK(f.good(), "truncated frame bundle: " + path);
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace arams::io
