#pragma once
// NumPy .npy (format version 1.0) reader/writer for 2-D double and float
// arrays.
//
// The paper's artifact exchanges sketches and error curves as .npy files
// between the sketching jobs and the plotting scripts; this module keeps
// that interoperability: matrices written here load with np.load() and
// vice versa (little-endian '<f8'/'<f4', C order). The fp32 entry points
// exist for the mixed-precision ingest lane: detector dumps are '<f4',
// and load_npy_f32/save_npy_f32 move them without an fp64 round trip.

#include <string>

#include "linalg/matrix.hpp"

namespace arams::io {

/// Writes `m` as a 2-D float64 .npy file. Throws CheckError on I/O errors.
void save_npy(const std::string& path, const linalg::Matrix& m);

/// Writes `m` as a 2-D float32 ('<f4') .npy file, no widening round trip.
void save_npy_f32(const std::string& path, const linalg::MatrixF& m);

/// Loads a 2-D float64 or float32 .npy file (little-endian, C-order);
/// '<f4' payloads are widened on read. 1-D files load as a single-row
/// matrix. Throws CheckError on malformed input, dtype or order mismatch.
linalg::Matrix load_npy(const std::string& path);

/// Loads a float32 or float64 .npy file natively into an fp32 MatrixF —
/// '<f4' payloads are read without an fp64 round trip, '<f8' payloads are
/// narrowed on read (the fp32 ingest lane's door conversion).
linalg::MatrixF load_npy_f32(const std::string& path);

}  // namespace arams::io
