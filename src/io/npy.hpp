#pragma once
// NumPy .npy (format version 1.0) reader/writer for 2-D double arrays.
//
// The paper's artifact exchanges sketches and error curves as .npy files
// between the sketching jobs and the plotting scripts; this module keeps
// that interoperability: matrices written here load with np.load() and
// vice versa (little-endian '<f8', C order).

#include <string>

#include "linalg/matrix.hpp"

namespace arams::io {

/// Writes `m` as a 2-D float64 .npy file. Throws CheckError on I/O errors.
void save_npy(const std::string& path, const linalg::Matrix& m);

/// Loads a 2-D float64 .npy file (little-endian, C-order). 1-D files load
/// as a single-row matrix. Throws CheckError on malformed input, dtype or
/// order mismatch.
linalg::Matrix load_npy(const std::string& path);

}  // namespace arams::io
