#include "io/npy.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace arams::io {

namespace {

constexpr char kMagic[] = "\x93NUMPY";

/// Extracts the value of a python-dict literal key like "'shape': (3, 4)".
std::string dict_value(const std::string& header, const std::string& key) {
  const auto kpos = header.find("'" + key + "'");
  ARAMS_CHECK(kpos != std::string::npos, "npy header missing key " + key);
  auto vpos = header.find(':', kpos);
  ARAMS_CHECK(vpos != std::string::npos, "malformed npy header");
  ++vpos;
  while (vpos < header.size() && header[vpos] == ' ') ++vpos;
  // Value ends at the matching comma outside parentheses.
  int depth = 0;
  std::size_t end = vpos;
  for (; end < header.size(); ++end) {
    const char c = header[end];
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if ((c == ',' || c == '}') && depth == 0) break;
  }
  return header.substr(vpos, end - vpos);
}

/// Writes magic + version + padded dict header for an r×c array of the
/// given dtype descr ('<f8' or '<f4').
void write_header(std::ofstream& f, const char* descr, std::size_t rows,
                  std::size_t cols) {
  std::ostringstream dict;
  dict << "{'descr': '" << descr << "', 'fortran_order': False, 'shape': ("
       << rows << ", " << cols << "), }";
  std::string header = dict.str();
  // Pad with spaces so that magic(6)+version(2)+len(2)+header is a
  // multiple of 64, terminated by '\n'.
  const std::size_t base = 6 + 2 + 2;
  const std::size_t total = ((base + header.size() + 1 + 63) / 64) * 64;
  header.resize(total - base - 1, ' ');
  header += '\n';

  f.write(kMagic, 6);
  f.put('\x01');
  f.put('\x00');
  const auto hlen = static_cast<std::uint16_t>(header.size());
  f.put(static_cast<char>(hlen & 0xff));
  f.put(static_cast<char>(hlen >> 8));
  f.write(header.data(), static_cast<std::streamsize>(header.size()));
}

/// Parsed .npy prolog: shape plus which of the two supported dtypes the
/// payload carries. The stream is left positioned at the payload.
struct NpyProlog {
  std::size_t rows = 0;
  std::size_t cols = 0;
  bool is_f32 = false;
};

NpyProlog read_prolog(std::ifstream& f, const std::string& path) {
  char magic[6];
  f.read(magic, 6);
  ARAMS_CHECK(f.good() && std::memcmp(magic, kMagic, 6) == 0,
              "not an npy file: " + path);
  char version[2];
  f.read(version, 2);
  ARAMS_CHECK(f.good() && version[0] == 1,
              "unsupported npy version in " + path);
  unsigned char len_bytes[2];
  f.read(reinterpret_cast<char*>(len_bytes), 2);
  const std::size_t hlen =
      static_cast<std::size_t>(len_bytes[0]) |
      (static_cast<std::size_t>(len_bytes[1]) << 8);
  std::string header(hlen, '\0');
  f.read(header.data(), static_cast<std::streamsize>(hlen));
  ARAMS_CHECK(f.good(), "truncated npy header in " + path);

  NpyProlog out;
  const std::string descr = dict_value(header, "descr");
  if (descr.find("<f4") != std::string::npos) {
    out.is_f32 = true;
  } else {
    ARAMS_CHECK(descr.find("<f8") != std::string::npos,
                "npy dtype must be little-endian float64 or float32, got " +
                    descr);
  }
  const std::string order = dict_value(header, "fortran_order");
  ARAMS_CHECK(order.find("False") != std::string::npos,
              "npy must be C-ordered");

  // Parse "(r, c)" or "(n,)".
  std::string shape = dict_value(header, "shape");
  for (auto& c : shape) {
    if (c == '(' || c == ')' || c == ',') c = ' ';
  }
  std::istringstream ss(shape);
  ss >> out.rows;
  if (!(ss >> out.cols)) {
    out.cols = out.rows;  // 1-D array of length n → 1×n matrix
    out.rows = 1;
  }
  ARAMS_CHECK(out.rows > 0 && out.cols > 0, "npy with empty shape: " + path);
  return out;
}

}  // namespace

void save_npy(const std::string& path, const linalg::Matrix& m) {
  ARAMS_CHECK(!m.empty(), "refusing to write an empty matrix");
  std::ofstream f(path, std::ios::binary);
  ARAMS_CHECK(f.good(), "cannot open for writing: " + path);
  write_header(f, "<f8", m.rows(), m.cols());
  f.write(reinterpret_cast<const char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(double)));
  ARAMS_CHECK(f.good(), "write failed: " + path);
}

void save_npy_f32(const std::string& path, const linalg::MatrixF& m) {
  ARAMS_CHECK(!m.empty(), "refusing to write an empty matrix");
  std::ofstream f(path, std::ios::binary);
  ARAMS_CHECK(f.good(), "cannot open for writing: " + path);
  write_header(f, "<f4", m.rows(), m.cols());
  f.write(reinterpret_cast<const char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  ARAMS_CHECK(f.good(), "write failed: " + path);
}

linalg::Matrix load_npy(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  ARAMS_CHECK(f.good(), "cannot open: " + path);
  const NpyProlog p = read_prolog(f, path);

  linalg::Matrix m(p.rows, p.cols);
  if (p.is_f32) {
    std::vector<float> buf(p.rows * p.cols);
    f.read(reinterpret_cast<char*>(buf.data()),
           static_cast<std::streamsize>(buf.size() * sizeof(float)));
    ARAMS_CHECK(f.good(), "truncated npy payload in " + path);
    double* dst = m.data();
    for (std::size_t i = 0; i < buf.size(); ++i) {
      dst[i] = static_cast<double>(buf[i]);
    }
  } else {
    f.read(reinterpret_cast<char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(double)));
    ARAMS_CHECK(f.good(), "truncated npy payload in " + path);
  }
  return m;
}

linalg::MatrixF load_npy_f32(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  ARAMS_CHECK(f.good(), "cannot open: " + path);
  const NpyProlog p = read_prolog(f, path);

  linalg::MatrixF m(p.rows, p.cols);
  if (p.is_f32) {
    f.read(reinterpret_cast<char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
    ARAMS_CHECK(f.good(), "truncated npy payload in " + path);
  } else {
    std::vector<double> buf(p.rows * p.cols);
    f.read(reinterpret_cast<char*>(buf.data()),
           static_cast<std::streamsize>(buf.size() * sizeof(double)));
    ARAMS_CHECK(f.good(), "truncated npy payload in " + path);
    float* dst = m.data();
    for (std::size_t i = 0; i < buf.size(); ++i) {
      dst[i] = static_cast<float>(buf[i]);
    }
  }
  return m;
}

}  // namespace arams::io
