#pragma once
// Norm computations and randomized estimators.
//
// covariance_error is the paper's sketch-quality metric ‖AᵀA − BᵀB‖₂. The
// d×d difference is never formed: a power iteration works through matvecs
// x ↦ Aᵀ(Ax) − Bᵀ(Bx), so the cost is O(iters · (nnz(A)+nnz(B))) and 2-MP
// image dimensions stay feasible.
//
// estimate_projection_residual is Algorithm 1's randomized Frobenius
// estimator: E‖(I − VᵀV)·Xᵀ·g‖² over Gaussian probes g equals
// ‖X − X·VᵀV‖²_F (rows of V orthonormal). The Bujanovic–Kressner analysis
// gives the tail bounds the paper cites.

#include <functional>

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace arams::linalg {

/// Largest absolute eigenvalue of a symmetric operator given only its
/// matvec. `dim` is the operator order. Uses power iteration with a random
/// start; deterministic given `rng`.
double spectral_norm_sym(
    const std::function<void(std::span<const double>, std::span<double>)>&
        matvec,
    std::size_t dim, Rng& rng, int iters = 60);

/// Spectral norm of a general matrix via power iteration on AᵀA.
double spectral_norm(const Matrix& a, Rng& rng, int iters = 60);

/// ‖AᵀA − BᵀB‖₂ — the covariance (sketch) error. Column counts must match.
double covariance_error(const Matrix& a, const Matrix& b, Rng& rng,
                        int iters = 60);

/// covariance_error normalized by ‖A‖²_F, the scale-free form used when
/// comparing across datasets.
double covariance_error_relative(const Matrix& a, const Matrix& b, Rng& rng,
                                 int iters = 60);

/// ‖X − X·VᵀV‖²_F computed exactly (rows of `v` must be orthonormal,
/// spanning the retained subspace). O(n·d·k); used by tests as ground truth.
double projection_residual_exact(const Matrix& x, const Matrix& v);

/// Randomized estimate of projection_residual_exact using `probes` Gaussian
/// probe vectors (Algorithm 1 of the paper). Unbiased; relative accuracy
/// improves roughly 10% per 10 probes as reported in the paper.
double estimate_projection_residual(const Matrix& x, const Matrix& v,
                                    int probes, Rng& rng);

}  // namespace arams::linalg
