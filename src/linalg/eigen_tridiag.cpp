// Production symmetric eigensolver: blocked Householder tridiagonalization
// (dsytrd/dlatrd-style panels) + implicit Wilkinson-shift QL iteration on
// the tridiagonal (dsteqr-style) + Householder back-transformation of the
// retained eigenvector prefix.
//
// Shape of the computation, for an n×n symmetric input:
//  1. Reduce A to tridiagonal T = Qᵀ·A·Q. Panels of kPanel columns are
//     factored dlatrd-style: each column's reflector is generated against
//     the *unupdated* trailing matrix plus V/W correction terms, and the
//     accumulated rank-2·nb update A ← A − V·Wᵀ − W·Vᵀ is applied to the
//     trailing block once per panel through matmul_nt — i.e. through the
//     packed, register-blocked, thread-pool-parallel GEMM core — so about
//     half the reduction's ~(4/3)n³ flops run at Level-3 speed.
//  2. Diagonalize T by implicit QL with Wilkinson shifts and deflation.
//     With eigenvectors, plane rotations accumulate into Z (O(n³) but with
//     a tiny constant); eigenvalues-only skips Z for an O(n²) total.
//  3. Back-transform only the eigenvectors the caller keeps:
//     out.vectors = Q·Z[:, top-k]. FD's shrink discards directions with
//     σᵢ² ≤ δ, so k ≤ ℓ of the 2ℓ columns — the reflector applications
//     stop at the retained prefix instead of rotating everything.
//
// All scratch lives in wslot::kTrd* workspace slots; steady-state calls
// perform zero heap allocations (covered by tests/test_workspace.cpp).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numeric>
#include <span>

#include "linalg/blas.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/workspace.hpp"

namespace arams::linalg {

namespace {

/// dlatrd panel width. Big enough that the trailing GEMM dominates the
/// panel's Level-2 work, small enough that the V/W correction loops stay
/// L1-resident at FD sizes.
constexpr std::size_t kPanel = 32;

/// Generates the Householder reflector annihilating wm[j+2:n, j]:
/// H = I − tau·v·vᵀ with v[j+1] = 1, v[j+2:n] stored in-place in column j.
/// Returns tau (0 when the column is already reduced) and writes the
/// resulting subdiagonal value to `beta`.
double householder_column(Matrix& wm, std::size_t n, std::size_t j,
                          double& beta) {
  const double alpha = wm(j + 1, j);
  double xnorm2 = 0.0;
  for (std::size_t r = j + 2; r < n; ++r) {
    xnorm2 += wm(r, j) * wm(r, j);
  }
  if (xnorm2 == 0.0) {
    beta = alpha;
    wm(j + 1, j) = 1.0;
    return 0.0;
  }
  const double norm = std::sqrt(alpha * alpha + xnorm2);
  beta = (alpha >= 0.0) ? -norm : norm;
  const double tau = (beta - alpha) / beta;
  const double inv = 1.0 / (alpha - beta);
  for (std::size_t r = j + 2; r < n; ++r) {
    wm(r, j) *= inv;
  }
  wm(j + 1, j) = 1.0;  // explicit unit so panel math and Q·S reads need no
                       // special case; the true subdiagonal lives in e[j]
  return tau;
}

/// Blocked reduction of the symmetrized matrix in `wm` to tridiagonal form.
/// On return: d/e hold the tridiagonal, tau the reflector scales, and the
/// reflector vectors sit below the subdiagonal of wm (unit entries
/// explicit). Full (symmetric) storage is maintained for the trailing
/// block so the per-column matvec streams contiguous rows.
void tridiagonalize(Matrix& wm, std::size_t n, std::span<double> d,
                    std::span<double> e, std::span<double> tau,
                    Workspace& ws) {
  std::span<double> vc = ws.vec(wslot::kTrdScratch, n);
  std::span<double> wv = ws.vec(wslot::kTrdScratch2, n);
  std::size_t k = 0;
  while (k + 1 < n) {
    const std::size_t nb = std::min(kPanel, n - 1 - k);
    Matrix& vp = ws.mat(wslot::kTrdPanelV, n, nb);
    Matrix& wp = ws.mat(wslot::kTrdPanelW, n, nb);
    for (std::size_t i = 0; i < nb; ++i) {
      const std::size_t j = k + i;
      // Apply the panel's pending rank-2 updates to column j only; the
      // trailing block is updated once per panel below.
      if (i > 0) {
        for (std::size_t r = j; r < n; ++r) {
          const auto vrow = vp.row(r);
          const auto wrow = wp.row(r);
          double acc = 0.0;
          for (std::size_t c = 0; c < i; ++c) {
            acc += vrow[c] * wp(j, c) + wrow[c] * vp(j, c);
          }
          wm(r, j) -= acc;
        }
      }
      d[j] = wm(j, j);

      const double t = householder_column(wm, n, j, e[j]);
      tau[j] = t;
      for (std::size_t r = j + 1; r < n; ++r) {
        vc[r] = wm(r, j);
      }

      // w = tau·(A − V·Wᵀ − W·Vᵀ)·v, computed as the unupdated-A matvec
      // plus panel correction terms (the dlatrd identity), then the
      // symmetric normalization w −= (tau/2)(wᵀv)·v.
      const std::size_t tail = n - j - 1;
      const auto vtail = vc.subspan(j + 1, tail);
      for (std::size_t r = j + 1; r < n; ++r) {
        wv[r] = dot(wm.row(r).subspan(j + 1, tail), vtail);
      }
      if (i > 0) {
        double p1[kPanel] = {0.0};  // Wᵀ·v
        double p2[kPanel] = {0.0};  // Vᵀ·v
        for (std::size_t r = j + 1; r < n; ++r) {
          const double vr = vc[r];
          const auto vrow = vp.row(r);
          const auto wrow = wp.row(r);
          for (std::size_t c = 0; c < i; ++c) {
            p1[c] += wrow[c] * vr;
            p2[c] += vrow[c] * vr;
          }
        }
        for (std::size_t r = j + 1; r < n; ++r) {
          const auto vrow = vp.row(r);
          const auto wrow = wp.row(r);
          double acc = 0.0;
          for (std::size_t c = 0; c < i; ++c) {
            acc += vrow[c] * p1[c] + wrow[c] * p2[c];
          }
          wv[r] -= acc;
        }
      }
      double wtv = 0.0;
      for (std::size_t r = j + 1; r < n; ++r) {
        wv[r] *= t;
        wtv += wv[r] * vc[r];
      }
      const double corr = -0.5 * t * wtv;
      for (std::size_t r = 0; r < n; ++r) {
        const bool live = r > j;
        vp(r, i) = live ? vc[r] : 0.0;
        wp(r, i) = live ? wv[r] + corr * vc[r] : 0.0;
      }
    }

    // Rank-2·nb trailing update A ← A − V·Wᵀ − (V·Wᵀ)ᵀ through the packed
    // GEMM core (rows_of views skip the zero panel-region rows).
    const std::size_t kk = k + nb;
    if (kk < n) {
      const MatrixView vt = MatrixView::rows_of(vp, kk, n);
      const MatrixView wt = MatrixView::rows_of(wp, kk, n);
      Matrix& upd = ws.mat(wslot::kTrdUpdate, n - kk, n - kk);
      matmul_nt(vt, wt, upd);
      const std::size_t t2 = n - kk;
      for (std::size_t r = 0; r < t2; ++r) {
        auto dst = wm.row(kk + r);
        const auto urow = upd.row(r);
        for (std::size_t c = 0; c < t2; ++c) {
          dst[kk + c] -= urow[c] + upd(c, r);
        }
      }
    }
    k = kk;
  }
  d[n - 1] = wm(n - 1, n - 1);
}

/// Implicit Wilkinson-shift QL with deflation on the tridiagonal (d, e)
/// where e[i] couples rows i and i+1 (e[n-1] unused). When z is non-null
/// the plane rotations accumulate into its columns. Returns the number of
/// shift iterations taken. The standard dsteqr/tql2 recurrence.
int ql_implicit(std::span<double> d, std::span<double> e, std::size_t n,
                Matrix* z) {
  if (n <= 1) return 0;
  e[n - 1] = 0.0;
  const double eps = std::numeric_limits<double>::epsilon();
  int total_iters = 0;
  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    while (true) {
      // Deflation scan: the first negligible coupling at or above l.
      std::size_t m = l;
      while (m + 1 < n) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= eps * dd) break;
        ++m;
      }
      if (m == l) break;  // d[l] converged
      ARAMS_CHECK(++iter <= 80, "tridiagonal QL failed to converge");
      ++total_iters;

      // Wilkinson shift from the leading 2×2, folded into the chase.
      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      bool underflow = false;
      for (std::size_t i = m; i-- > l;) {
        double f = s * e[i];
        const double b = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          // Rotation annihilated early: split the problem and restart.
          d[i + 1] -= p;
          e[m] = 0.0;
          underflow = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        if (z != nullptr) {
          Matrix& zz = *z;
          const std::size_t rows = zz.rows();
          for (std::size_t row = 0; row < rows; ++row) {
            auto zr = zz.row(row);
            f = zr[i + 1];
            zr[i + 1] = s * zr[i] + c * f;
            zr[i] = c * zr[i] - s * f;
          }
        }
      }
      if (!underflow) {
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    }
  }
  return total_iters;
}

}  // namespace

void tridiag_eigen_symmetric(MatrixView a, Workspace& ws, SymmetricEig& out,
                             const EigenConfig& config) {
  ARAMS_CHECK(a.rows() == a.cols(), "eigensolver needs a square matrix");
  ARAMS_CHECK(a.rows() > 0, "eigensolver needs a non-empty matrix");
  const std::size_t n = a.rows();
  const bool want_vectors = config.vectors && config.max_vectors > 0;
  const std::size_t keep = want_vectors ? std::min(config.max_vectors, n) : 0;

  // Symmetrized working copy; Gram products carry ~eps asymmetry.
  Matrix& wm = ws.mat(wslot::kTrdWork, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      wm(i, j) = 0.5 * (a(i, j) + a(j, i));
    }
  }

  if (n == 1) {
    out.values.resize(1);
    out.values[0] = wm(0, 0);
    out.iterations = 0;
    out.vectors.reshape(want_vectors ? 1 : 0, want_vectors ? 1 : 0);
    if (want_vectors) out.vectors(0, 0) = 1.0;
    return;
  }

  const std::span<double> d = ws.vec(wslot::kTrdDiag, n);
  const std::span<double> e = ws.vec(wslot::kTrdOff, n);
  const std::span<double> tau = ws.vec(wslot::kTrdTau, n);
  tridiagonalize(wm, n, d, e, tau, ws);

  Matrix* zp = nullptr;
  if (want_vectors) {
    Matrix& z = ws.mat(wslot::kTrdZ, n, n);
    z.fill(0.0);
    for (std::size_t i = 0; i < n; ++i) z(i, i) = 1.0;
    zp = &z;
  }
  out.iterations = ql_implicit(d, e, n, zp);

  // Sort descending (indirect, so Z columns are gathered once).
  const std::span<std::size_t> order = ws.idx(wslot::kEigOrder, n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return d[x] > d[y]; });
  out.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.values[i] = d[order[i]];
  }

  if (!want_vectors) {
    out.vectors.reshape(0, 0);
    return;
  }

  // Gather the retained prefix of tridiagonal eigenvectors, then
  // back-transform: out.vectors = Q·Z_kept with Q = H₀·H₁···H_{n−2}
  // applied last-to-first. Cost 2n²·keep, vs 2n³ for all columns.
  out.vectors.reshape(n, keep);
  for (std::size_t c = 0; c < keep; ++c) {
    const std::size_t src = order[c];
    for (std::size_t r = 0; r < n; ++r) {
      out.vectors(r, c) = (*zp)(r, src);
    }
  }
  const std::span<double> acc = ws.vec(wslot::kTrdScratch, keep);
  for (std::size_t j = n - 1; j-- > 0;) {
    const double t = tau[j];
    if (t == 0.0) continue;
    std::fill(acc.begin(), acc.end(), 0.0);
    for (std::size_t r = j + 1; r < n; ++r) {
      axpy(wm(r, j), out.vectors.row(r), acc);  // acc = vᵀ·M
    }
    for (std::size_t r = j + 1; r < n; ++r) {
      axpy(-t * wm(r, j), acc, out.vectors.row(r));  // M −= tau·v·acc
    }
  }
}

}  // namespace arams::linalg
