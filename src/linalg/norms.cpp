#include "linalg/norms.hpp"

#include <cmath>
#include <vector>

#include "linalg/blas.hpp"

namespace arams::linalg {

double spectral_norm_sym(
    const std::function<void(std::span<const double>, std::span<double>)>&
        matvec,
    std::size_t dim, Rng& rng, int iters) {
  ARAMS_CHECK(dim > 0, "spectral_norm_sym needs dim > 0");
  std::vector<double> x(dim);
  std::vector<double> y(dim);
  rng.fill_normal(x);
  double nrm = norm2(x);
  if (nrm == 0.0) {
    x[0] = 1.0;
    nrm = 1.0;
  }
  scale(x, 1.0 / nrm);

  double lambda = 0.0;
  for (int it = 0; it < iters; ++it) {
    matvec(x, y);
    // For a symmetric operator the Rayleigh quotient xᵀ(Mx) tracks the
    // dominant eigenvalue; |·| covers negative-dominant spectra.
    lambda = dot(x, y);
    const double ynorm = norm2(y);
    if (ynorm == 0.0) return 0.0;  // operator annihilated the iterate
    for (std::size_t i = 0; i < dim; ++i) {
      x[i] = y[i] / ynorm;
    }
    // |lambda| converges to ‖M‖₂ when the dominant eigenvalue dominates in
    // magnitude; the final ynorm is the safer estimate, keep the max.
    lambda = std::max(std::abs(lambda), ynorm);
  }
  return std::abs(lambda);
}

double spectral_norm(const Matrix& a, Rng& rng, int iters) {
  const std::size_t d = a.cols();
  std::vector<double> tmp(a.rows());
  const auto matvec = [&](std::span<const double> x, std::span<double> y) {
    gemv(a, x, tmp);
    gemv_t(a, tmp, y);
  };
  const double lam = spectral_norm_sym(matvec, d, rng, iters);
  return std::sqrt(std::max(lam, 0.0));
}

double covariance_error(const Matrix& a, const Matrix& b, Rng& rng,
                        int iters) {
  ARAMS_CHECK(a.cols() == b.cols(), "covariance_error column mismatch");
  const std::size_t d = a.cols();
  std::vector<double> ta(a.rows());
  std::vector<double> tb(b.rows());
  std::vector<double> yb(d);
  const auto matvec = [&](std::span<const double> x, std::span<double> y) {
    gemv(a, x, ta);
    gemv_t(a, ta, y);
    gemv(b, x, tb);
    gemv_t(b, tb, yb);
    for (std::size_t i = 0; i < d; ++i) {
      y[i] -= yb[i];
    }
  };
  return spectral_norm_sym(matvec, d, rng, iters);
}

double covariance_error_relative(const Matrix& a, const Matrix& b, Rng& rng,
                                 int iters) {
  const double denom = frobenius_norm_squared(a);
  ARAMS_CHECK(denom > 0.0, "relative error of a zero matrix");
  return covariance_error(a, b, rng, iters) / denom;
}

double projection_residual_exact(const Matrix& x, const Matrix& v) {
  ARAMS_CHECK(v.cols() == x.cols(), "projection basis dimension mismatch");
  // ‖X − XVᵀV‖²_F = ‖X‖²_F − ‖XVᵀ‖²_F for orthonormal rows of V.
  const Matrix coeff = matmul_nt(x, v);  // n×k
  const double total = frobenius_norm_squared(x);
  const double captured = frobenius_norm_squared(coeff);
  return std::max(total - captured, 0.0);
}

double estimate_projection_residual(const Matrix& x, const Matrix& v,
                                    int probes, Rng& rng) {
  ARAMS_CHECK(probes > 0, "need at least one probe");
  ARAMS_CHECK(v.cols() == x.cols(), "projection basis dimension mismatch");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const std::size_t k = v.rows();

  std::vector<double> g(n);
  std::vector<double> y(d);
  std::vector<double> c(k);
  std::vector<double> yhat(d);

  double acc = 0.0;
  for (int p = 0; p < probes; ++p) {
    rng.fill_normal(g);
    // y = Xᵀ g — random combination of the batch rows.
    gemv_t(x, g, y);
    // yhat = Vᵀ (V y) — projection onto the retained subspace.
    gemv(v, y, c);
    gemv_t(v, c, yhat);
    double r = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      const double diff = y[i] - yhat[i];
      r += diff * diff;
    }
    acc += r;
  }
  return acc / probes;
}

}  // namespace arams::linalg
