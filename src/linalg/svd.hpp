#pragma once
// Singular value decompositions.
//
// Two implementations with different roles:
//  * jacobi_svd — reference one-sided Jacobi (Hestenes) SVD for any shape.
//    Unconditionally stable; used in tests and wherever full U, Σ, Vᵀ of a
//    modest matrix are needed (e.g. PCA of a final sketch).
//  * gram_row_svd — the production kernel for the FD shrink: for a short-fat
//    sketch buffer B (m×d, m ≪ d) it eigendecomposes the m×m Gram matrix
//    B·Bᵀ and returns W = Uᵀ·B whose row i equals σᵢ·vᵢᵀ. The FD shrink
//    rescales those rows directly and never forms Vᵀ, avoiding divisions by
//    tiny singular values. Cost O(m²d + m³) instead of O(md²).

#include <vector>

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace arams::linalg {

struct ThinSvd {
  Matrix u;                   ///< m×r, orthonormal columns
  std::vector<double> sigma;  ///< r singular values, descending, >= 0
  Matrix vt;                  ///< r×n, orthonormal rows
};

/// One-sided Jacobi SVD. Returns the thin factorization with
/// r = min(m, n). Throws CheckError on empty input.
ThinSvd jacobi_svd(const Matrix& a, double tol = 1e-12, int max_sweeps = 60);

struct RowSpaceSvd {
  std::vector<double> sigma;  ///< all m singular values, descending, >= 0
  Matrix u;                   ///< m×r, orthonormal columns (left vectors);
                              ///< r = min(m, max_rank)
  Matrix w;                   ///< r×d, row i = sigma[i] * v_iᵀ
};

class Workspace;

/// SVD of a short-fat matrix through its row Gram matrix. Requires
/// rows <= cols. Row i of `w` spans the i-th right singular direction with
/// length sigma[i]; dividing by sigma[i] (when > 0) recovers vᵢᵀ.
RowSpaceSvd gram_row_svd(const Matrix& a);

/// Allocation-free variant: Gram and eig scratch live in `ws`, and `out`
/// is reshaped in place, so repeated same-shape calls never touch the
/// heap. `a` must not alias workspace storage (it is read after scratch
/// matrices are written). `max_rank` caps how many singular directions are
/// materialized in u/w (sigma always holds all m values) — callers that
/// only consume a known prefix (FD keeps < ℓ of 2ℓ, PCA keeps k) skip the
/// eigenvector back-transformation and the Uᵀ·A GEMM for the rest.
void gram_row_svd(MatrixView a, Workspace& ws, RowSpaceSvd& out,
                  std::size_t max_rank = static_cast<std::size_t>(-1));

/// Recovers the top-k right singular vectors (k×d, orthonormal rows) from a
/// RowSpaceSvd, skipping directions with sigma below `rank_tol` relative to
/// sigma[0]. Returns fewer than k rows if the numerical rank is smaller.
/// The default tolerance reflects the Gram trick's squared conditioning:
/// singular values below ~√ε·σ₀ are numerical noise.
Matrix right_vectors(const RowSpaceSvd& s, std::size_t k,
                     double rank_tol = 1e-7);

/// Reconstructs u * diag(sigma) * vt — test helper.
Matrix svd_reconstruct(const ThinSvd& s);

/// The Σ·Vᵀ part of the SVD, for any orientation — exactly what the FD
/// shrink consumes. Row i of `w` equals sigma[i]·vᵢᵀ. Dispatches on shape:
/// short-fat matrices go through the m×m row Gram (gram_row_svd), tall
/// ones through the n×n column Gram — always the smaller eigenproblem.
struct SigmaVt {
  std::vector<double> sigma;  ///< all min(m, n) values, descending, >= 0
  Matrix w;                   ///< min(m, n, max_rank) × n, row i = sigma[i]·vᵢᵀ
};
SigmaVt sigma_vt_svd(const Matrix& a);

/// Allocation-free variant — the FD shrink entry point. The caller holds
/// one Workspace and one SigmaVt for the lifetime of the sketch; at steady
/// state (constant buffer shape) this performs zero heap allocations.
/// `max_rank` caps the rows of `w` (sigma always holds every value): the
/// FD shrink keeps at most ℓ−1 of its 2ℓ directions, so passing ℓ halves
/// the eigenvector back-transformation and W-forming work.
void sigma_vt_svd(MatrixView a, Workspace& ws, SigmaVt& out,
                  std::size_t max_rank = static_cast<std::size_t>(-1));

/// Randomized truncated SVD (Halko, Martinsson, Tropp 2011): Gaussian
/// range sketch with `oversample` extra directions and `power_iters`
/// subspace iterations, then an exact SVD of the (k+p)×n projection.
/// Near-optimal for matrices with spectral decay; cost O(ndk) instead of
/// O(nd·min(n,d)). Returns at most k components.
ThinSvd randomized_svd(const Matrix& a, std::size_t k, Rng& rng,
                       std::size_t oversample = 8, int power_iters = 2);

}  // namespace arams::linalg
