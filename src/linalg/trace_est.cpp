#include "linalg/trace_est.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "util/check.hpp"

namespace arams::linalg {

namespace {

void fill_rademacher(std::span<double> z, Rng& rng) {
  for (auto& v : z) {
    v = (rng.next_u64() & 1u) ? 1.0 : -1.0;
  }
}

}  // namespace

double hutchinson_trace(const SymMatVec& matvec, std::size_t dim, int probes,
                        Rng& rng) {
  ARAMS_CHECK(dim > 0, "trace of an empty operator");
  ARAMS_CHECK(probes >= 1, "need at least one probe");
  std::vector<double> z(dim), mz(dim);
  double acc = 0.0;
  for (int p = 0; p < probes; ++p) {
    fill_rademacher(z, rng);
    matvec(z, mz);
    acc += dot(z, mz);
  }
  return acc / probes;
}

double hutchpp_trace(const SymMatVec& matvec, std::size_t dim, int probes,
                     Rng& rng) {
  ARAMS_CHECK(dim > 0, "trace of an empty operator");
  ARAMS_CHECK(probes >= 3, "Hutch++ needs at least 3 probes");
  const std::size_t m =
      std::min<std::size_t>(std::max<int>(probes / 3, 1), dim);

  // 1. Range sketch: S = M·G with G Rademacher, then Q = orth(S).
  Matrix q(dim, m);  // columns built one at a time
  {
    std::vector<double> g(dim), mg(dim);
    for (std::size_t j = 0; j < m; ++j) {
      fill_rademacher(g, rng);
      matvec(g, mg);
      for (std::size_t i = 0; i < dim; ++i) {
        q(i, j) = mg[i];
      }
    }
  }
  const std::size_t rank = orthonormalize_columns(q);

  // 2. Exact trace of the deflated top part: Σⱼ qⱼᵀ M qⱼ.
  double top = 0.0;
  std::vector<double> col(dim), mcol(dim);
  for (std::size_t j = 0; j < rank; ++j) {
    for (std::size_t i = 0; i < dim; ++i) col[i] = q(i, j);
    matvec(col, mcol);
    top += dot(col, mcol);
  }

  // 3. Hutchinson on the residual operator (I−QQᵀ)M(I−QQᵀ).
  const int rest_probes = std::max(probes - 2 * static_cast<int>(m), 1);
  std::vector<double> z(dim), mz(dim), coeff(rank);
  const auto project_out = [&](std::vector<double>& vec) {
    // vec ← (I − QQᵀ)·vec, using the first `rank` columns of q.
    for (std::size_t j = 0; j < rank; ++j) {
      double c = 0.0;
      for (std::size_t i = 0; i < dim; ++i) c += q(i, j) * vec[i];
      coeff[j] = c;
    }
    for (std::size_t j = 0; j < rank; ++j) {
      for (std::size_t i = 0; i < dim; ++i) {
        vec[i] -= coeff[j] * q(i, j);
      }
    }
  };
  double rest = 0.0;
  for (int p = 0; p < rest_probes; ++p) {
    fill_rademacher(z, rng);
    project_out(z);
    matvec(z, mz);
    project_out(mz);
    rest += dot(z, mz);
  }
  return top + rest / rest_probes;
}

double estimate_residual(const Matrix& x, const Matrix& v,
                         ResidualEstimator estimator, int probes, Rng& rng) {
  ARAMS_CHECK(v.cols() == x.cols(), "projection basis dimension mismatch");
  ARAMS_CHECK(probes >= 1, "need at least one probe");
  if (estimator == ResidualEstimator::kGaussianProbes) {
    return estimate_projection_residual(x, v, probes, rng);
  }

  // Residual = tr(M) for the n×n PSD operator M = X(I−VᵀV)Xᵀ.
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  const std::size_t k = v.rows();
  std::vector<double> y(d), c(k);
  const SymMatVec matvec = [&](std::span<const double> in,
                               std::span<double> out) {
    gemv_t(x, in, y);  // y = Xᵀ·in
    if (k > 0) {
      gemv(v, y, c);   // c = V·y
      for (std::size_t j = 0; j < k; ++j) {
        axpy(-c[j], v.row(j), y);  // y ← (I − VᵀV)·y
      }
    }
    gemv(x, y, out);  // out = X·y
  };

  if (estimator == ResidualEstimator::kHutchinson) {
    return hutchinson_trace(matvec, n, probes, rng);
  }
  if (probes < 3) {
    // Hutch++ degenerates below 3 probes; fall back to Hutchinson.
    return hutchinson_trace(matvec, n, probes, rng);
  }
  return hutchpp_trace(matvec, n, probes, rng);
}

ResidualEstimator parse_residual_estimator(const std::string& name) {
  if (name == "gaussian") return ResidualEstimator::kGaussianProbes;
  if (name == "hutchinson") return ResidualEstimator::kHutchinson;
  if (name == "hutchpp") return ResidualEstimator::kHutchPlusPlus;
  ARAMS_CHECK(false, "unknown residual estimator: " + name);
  return ResidualEstimator::kGaussianProbes;
}

std::string residual_estimator_name(ResidualEstimator estimator) {
  switch (estimator) {
    case ResidualEstimator::kGaussianProbes:
      return "gaussian";
    case ResidualEstimator::kHutchinson:
      return "hutchinson";
    case ResidualEstimator::kHutchPlusPlus:
      return "hutchpp";
  }
  return "?";
}

}  // namespace arams::linalg
