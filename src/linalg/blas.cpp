#include "linalg/blas.hpp"

#include <cmath>

namespace arams::linalg {

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  ARAMS_DCHECK(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

void scale(std::span<double> x, double alpha) {
  for (auto& v : x) v *= alpha;
}

double dot(std::span<const double> x, std::span<const double> y) {
  ARAMS_DCHECK(x.size() == y.size(), "dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    s += x[i] * y[i];
  }
  return s;
}

double norm2_squared(std::span<const double> x) { return dot(x, x); }

double norm2(std::span<const double> x) { return std::sqrt(norm2_squared(x)); }

Matrix matmul(const Matrix& a, const Matrix& b) {
  ARAMS_CHECK(a.cols() == b.rows(), "matmul inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  // ikj order: streams through B and C rows contiguously.
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.row(i).data();
    const double* ai = a.row(i).data();
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = ai[p];
      if (aip == 0.0) continue;
      const double* bp = b.row(p).data();
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] += aip * bp[j];
      }
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  ARAMS_CHECK(a.rows() == b.rows(), "matmul_tn dimension mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (std::size_t p = 0; p < k; ++p) {
    const double* ap = a.row(p).data();
    const double* bp = b.row(p).data();
    for (std::size_t i = 0; i < m; ++i) {
      const double api = ap[i];
      if (api == 0.0) continue;
      double* ci = c.row(i).data();
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] += api * bp[j];
      }
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  ARAMS_CHECK(a.cols() == b.cols(), "matmul_nt dimension mismatch");
  const std::size_t m = a.rows(), n = b.rows();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const auto ai = a.row(i);
    double* ci = c.row(i).data();
    for (std::size_t j = 0; j < n; ++j) {
      ci[j] = dot(ai, b.row(j));
    }
  }
  return c;
}

Matrix gram_rows(const Matrix& a) {
  const std::size_t m = a.rows();
  Matrix g(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto ai = a.row(i);
    for (std::size_t j = i; j < m; ++j) {
      const double v = dot(ai, a.row(j));
      g(i, j) = v;
      g(j, i) = v;
    }
  }
  return g;
}

Matrix gram_cols(const Matrix& a) {
  const std::size_t n = a.cols();
  Matrix g(n, n);
  // Accumulate rank-1 updates row by row: G += aᵣᵀ aᵣ. Keeps the inner loop
  // contiguous for row-major storage.
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* ar = a.row(r).data();
    for (std::size_t i = 0; i < n; ++i) {
      const double ari = ar[i];
      if (ari == 0.0) continue;
      double* gi = g.row(i).data();
      for (std::size_t j = i; j < n; ++j) {
        gi[j] += ari * ar[j];
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      g(i, j) = g(j, i);
    }
  }
  return g;
}

void gemv(const Matrix& a, std::span<const double> x, std::span<double> y) {
  ARAMS_CHECK(x.size() == a.cols() && y.size() == a.rows(),
              "gemv size mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    y[i] = dot(a.row(i), x);
  }
}

void gemv_t(const Matrix& a, std::span<const double> x, std::span<double> y) {
  ARAMS_CHECK(x.size() == a.rows() && y.size() == a.cols(),
              "gemv_t size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    axpy(x[i], a.row(i), y);
  }
}

double frobenius_norm_squared(const Matrix& a) {
  double s = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    s += norm2_squared(a.row(r));
  }
  return s;
}

double frobenius_norm(const Matrix& a) {
  return std::sqrt(frobenius_norm_squared(a));
}

}  // namespace arams::linalg
