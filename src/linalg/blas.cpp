#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace arams::linalg {

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  ARAMS_DCHECK(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

void axpy(double alpha, std::span<const float> x, std::span<double> y) {
  ARAMS_DCHECK(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * static_cast<double>(x[i]);
  }
}

void scale(std::span<double> x, double alpha) {
  for (auto& v : x) v *= alpha;
}

double dot(std::span<const double> x, std::span<const double> y) {
  ARAMS_DCHECK(x.size() == y.size(), "dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    s += x[i] * y[i];
  }
  return s;
}

double dot(std::span<const float> x, std::span<const float> y) {
  ARAMS_DCHECK(x.size() == y.size(), "dot size mismatch");
  // fp32 lane: eight independent double accumulators so the reduction is
  // bandwidth- rather than FMA-latency-bound. The fp64 dot above keeps its
  // bitwise-frozen serial order; this overload is new with the fp32 lane,
  // so its (still fully fp64) accumulation may take the fast shape.
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  double a4 = 0.0, a5 = 0.0, a6 = 0.0, a7 = 0.0;
  const std::size_t n = x.size();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    a1 += static_cast<double>(x[i + 1]) * static_cast<double>(y[i + 1]);
    a2 += static_cast<double>(x[i + 2]) * static_cast<double>(y[i + 2]);
    a3 += static_cast<double>(x[i + 3]) * static_cast<double>(y[i + 3]);
    a4 += static_cast<double>(x[i + 4]) * static_cast<double>(y[i + 4]);
    a5 += static_cast<double>(x[i + 5]) * static_cast<double>(y[i + 5]);
    a6 += static_cast<double>(x[i + 6]) * static_cast<double>(y[i + 6]);
    a7 += static_cast<double>(x[i + 7]) * static_cast<double>(y[i + 7]);
  }
  for (; i < n; ++i) {
    a0 += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7));
}

double norm2_squared(std::span<const double> x) { return dot(x, x); }

double norm2_squared(std::span<const float> x) { return dot(x, x); }

double norm2(std::span<const double> x) { return std::sqrt(norm2_squared(x)); }

double norm2(std::span<const float> x) { return std::sqrt(norm2_squared(x)); }

namespace {

// Blocking parameters. KC×NC is the packed B panel (≤ 1 MiB, resident in
// L2 while every row band streams over it); MR is the register block: the
// micro-kernel keeps MR C-rows live and reads each packed B element once
// per MR rows instead of once per row, cutting B traffic MR-fold.
constexpr std::size_t kKc = 256;
constexpr std::size_t kNc = 512;
constexpr std::size_t kMr = 4;

// Calls above this many flops (2·m·n·k for GEMM, m²·d for Gram) fan out
// row bands across the shared pool; below it they stay sequential so the
// small shapes FD produces at modest ℓ pay no dispatch overhead.
constexpr double kParallelFlopThreshold = 8e6;

// Grow-only, per-thread packing scratch: steady-state kernel calls never
// allocate. pack_b is filled by the calling thread; pack_a by whichever
// thread runs the row band (each worker keeps its own).
std::vector<double>& pack_a_scratch() {
  thread_local std::vector<double> buf;
  return buf;
}
std::vector<double>& pack_b_scratch() {
  thread_local std::vector<double> buf;
  return buf;
}

parallel::ThreadPool* maybe_pool(double flops) {
  if (flops < kParallelFlopThreshold) return nullptr;
  parallel::ThreadPool& pool = parallel::shared_pool();
  if (pool.thread_count() < 2) return nullptr;
  static obs::Counter& dispatches =
      obs::metrics().counter("linalg.gemm_parallel_count");
  dispatches.add(1);
  return &pool;
}

/// Packs Bop[pc..pc+kb) × [jc..jc+jb) into dst, kb rows of jb contiguous
/// doubles. Bop(p, j) = b[p·brs + j·bcs]. Templated on the source element
/// type: fp32 operands are widened here, element by element as the panel
/// streams through, so the micro-kernel sees the identical fp64 panel a
/// pre-widened operand would produce (and the fp64 instantiation keeps the
/// historical std::copy fast path — bit-for-bit the old code).
template <typename T>
void pack_b_panel(const T* b, std::size_t brs, std::size_t bcs,
                  std::size_t pc, std::size_t jc, std::size_t kb,
                  std::size_t jb, double* dst) {
  for (std::size_t p = 0; p < kb; ++p) {
    const T* src = b + (pc + p) * brs + jc * bcs;
    double* out = dst + p * jb;
    if (bcs == 1) {
      if constexpr (std::is_same_v<T, double>) {
        std::copy(src, src + jb, out);
      } else {
        for (std::size_t j = 0; j < jb; ++j) {
          out[j] = static_cast<double>(src[j]);
        }
      }
    } else {
      for (std::size_t j = 0; j < jb; ++j) {
        out[j] = static_cast<double>(src[j * bcs]);
      }
    }
  }
}

/// Packs rows [i, i+mr) × cols [pc, pc+kb) of Aop into dst, mr rows of kb
/// contiguous doubles. Aop(i, p) = a[i·ars + p·acs]. Same widening story
/// as pack_b_panel.
template <typename T>
void pack_a_panel(const T* a, std::size_t ars, std::size_t acs,
                  std::size_t i, std::size_t pc, std::size_t mr,
                  std::size_t kb, double* dst) {
  for (std::size_t r = 0; r < mr; ++r) {
    const T* src = a + (i + r) * ars + pc * acs;
    double* out = dst + r * kb;
    if (acs == 1) {
      if constexpr (std::is_same_v<T, double>) {
        std::copy(src, src + kb, out);
      } else {
        for (std::size_t p = 0; p < kb; ++p) {
          out[p] = static_cast<double>(src[p]);
        }
      }
    } else {
      for (std::size_t p = 0; p < kb; ++p) {
        out[p] = static_cast<double>(src[p * acs]);
      }
    }
  }
}

// Register tile width of the micro-kernel's j dimension: 4×8 doubles of C
// accumulators (8 vector registers at AVX width) stay live across the
// whole k panel, so each C element is touched once per panel instead of
// once per p — the kernel reads 4 A broadcasts + 2 B vectors per 8 FMAs
// rather than re-streaming C rows through L1 every step.
constexpr std::size_t kJr = 8;

// GCC/Clang generic vector of 4 doubles. `aligned(8)` makes loads/stores
// through v4df* legal at any double boundary (packed panels and C rows are
// only 8-byte aligned); the compiler lowers it to unaligned vector moves —
// or pairs of 128-bit ops on baseline ISAs — element-wise arithmetic in
// the same order as the scalar loops it replaces.
typedef double v4df __attribute__((vector_size(32), aligned(8)));

inline v4df v4_broadcast(double x) { return v4df{x, x, x, x}; }

/// C rows [i, i+mr): mr×jb tile accumulated from a packed mr×kb A panel and
/// a packed kb×jb B panel. The mr == kMr fast path walks jb in kJr-wide
/// register tiles; the generic tail (mr < 4, last tile only) loops.
///
/// `first` marks the first k panel (pc == 0): the finished accumulator is
/// *stored* instead of added into pre-zeroed memory. That skips both the
/// fill pass and one full read of C — for the inner dimensions this
/// pipeline runs (k ≤ kKc, a single k panel) it cuts C traffic from three
/// sweeps to one, which is most of the wall time of a memory-bound product
/// like a pairwise-distance Gram block. Accumulators start at +0.0, so the
/// first-panel result is bit-identical to the historical
/// fill-then-accumulate form (0.0 + x canonicalizes -0.0 products exactly
/// as accumulating into zeroed memory did).
void micro_kernel(const double* am, std::size_t kb, const double* bp,
                  std::size_t jb, double* c0, std::size_t ldc,
                  std::size_t mr, bool first) {
  if (mr == kMr) {
    double* __restrict r0 = c0;
    double* __restrict r1 = c0 + ldc;
    double* __restrict r2 = c0 + 2 * ldc;
    double* __restrict r3 = c0 + 3 * ldc;
    std::size_t j0 = 0;
    for (; j0 + kJr <= jb; j0 += kJr) {
      v4df acc00{}, acc01{}, acc10{}, acc11{};
      v4df acc20{}, acc21{}, acc30{}, acc31{};
      const double* __restrict b = bp + j0;
      for (std::size_t p = 0; p < kb; ++p, b += jb) {
        const v4df b0 = *reinterpret_cast<const v4df*>(b);
        const v4df b1 = *reinterpret_cast<const v4df*>(b + 4);
        const v4df a0 = v4_broadcast(am[p]);
        acc00 += a0 * b0;
        acc01 += a0 * b1;
        const v4df a1 = v4_broadcast(am[kb + p]);
        acc10 += a1 * b0;
        acc11 += a1 * b1;
        const v4df a2 = v4_broadcast(am[2 * kb + p]);
        acc20 += a2 * b0;
        acc21 += a2 * b1;
        const v4df a3 = v4_broadcast(am[3 * kb + p]);
        acc30 += a3 * b0;
        acc31 += a3 * b1;
      }
      const auto store = [first](double* c, v4df lo, v4df hi) {
        v4df* clo = reinterpret_cast<v4df*>(c);
        v4df* chi = reinterpret_cast<v4df*>(c + 4);
        if (first) {
          *clo = lo;
          *chi = hi;
        } else {
          *clo += lo;
          *chi += hi;
        }
      };
      store(r0 + j0, acc00, acc01);
      store(r1 + j0, acc10, acc11);
      store(r2 + j0, acc20, acc21);
      store(r3 + j0, acc30, acc31);
    }
    for (; j0 < jb; ++j0) {
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      const double* b = bp + j0;
      for (std::size_t p = 0; p < kb; ++p, b += jb) {
        const double bv = *b;
        s0 += am[p] * bv;
        s1 += am[kb + p] * bv;
        s2 += am[2 * kb + p] * bv;
        s3 += am[3 * kb + p] * bv;
      }
      if (first) {
        r0[j0] = s0;
        r1[j0] = s1;
        r2[j0] = s2;
        r3[j0] = s3;
      } else {
        r0[j0] += s0;
        r1[j0] += s1;
        r2[j0] += s2;
        r3[j0] += s3;
      }
    }
    return;
  }
  for (std::size_t r = 0; r < mr; ++r) {
    double* c = c0 + r * ldc;
    const double* ar = am + r * kb;
    for (std::size_t j = 0; j < jb; ++j) {
      double s = 0.0;
      const double* b = bp + j;
      for (std::size_t p = 0; p < kb; ++p, b += jb) {
        s += ar[p] * *b;
      }
      if (first) {
        c[j] = s;
      } else {
        c[j] += s;
      }
    }
  }
}

/// out = Aop · Bop where Aop(i,p) = a[i·ars + p·acs] (m×k) and
/// Bop(p,j) = b[p·brs + j·bcs] (k×n). One strided entry point serves NN,
/// TN and NT products — only the stride pairs differ. Row bands are
/// disjoint and keep the identical (jc, pc, p, j) accumulation order, so
/// sequential and parallel runs produce bit-identical results. Operand
/// element types are template parameters: fp32 operands widen at packing
/// time, the micro-kernel and accumulation order never change.
template <typename TA, typename TB>
void gemm_strided(std::size_t m, std::size_t n, std::size_t k,
                  const TA* a, std::size_t ars, std::size_t acs,
                  const TB* b, std::size_t brs, std::size_t bcs,
                  Matrix& out) {
  out.reshape(m, n);
  if (m == 0 || n == 0 || k == 0) {
    out.fill(0.0);
    return;
  }
  parallel::ThreadPool* pool =
      maybe_pool(2.0 * static_cast<double>(m) * static_cast<double>(n) *
                 static_cast<double>(k));
  double* c = out.data();
  for (std::size_t jc = 0; jc < n; jc += kNc) {
    const std::size_t jb = std::min(kNc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKc) {
      const std::size_t kb = std::min(kKc, k - pc);
      std::vector<double>& bbuf = pack_b_scratch();
      if (bbuf.size() < kb * jb) bbuf.resize(kb * jb);
      pack_b_panel(b, brs, bcs, pc, jc, kb, jb, bbuf.data());
      const double* bp = bbuf.data();

      const bool first = pc == 0;
      const auto run_band = [&](std::size_t i0, std::size_t i1) {
        std::vector<double>& abuf = pack_a_scratch();
        if (abuf.size() < kMr * kb) abuf.resize(kMr * kb);
        for (std::size_t i = i0; i < i1; i += kMr) {
          const std::size_t mr = std::min(kMr, i1 - i);
          pack_a_panel(a, ars, acs, i, pc, mr, kb, abuf.data());
          micro_kernel(abuf.data(), kb, bp, jb, c + i * n + jc, n, mr, first);
        }
      };

      if (pool == nullptr) {
        run_band(0, m);
      } else {
        // Band boundaries are multiples of kMr so no tile straddles two
        // bands; ~4 bands per worker lets the queue balance load.
        const std::size_t tiles = (m + kMr - 1) / kMr;
        const std::size_t bands =
            std::min(tiles, pool->thread_count() * 4);
        pool->parallel_for(bands, [&](std::size_t t) {
          const std::size_t t0 = tiles * t / bands;
          const std::size_t t1 = tiles * (t + 1) / bands;
          run_band(t0 * kMr, std::min(t1 * kMr, m));
        });
      }
    }
  }
}

/// Symmetric product helper: fills the upper triangle of out (n×n) with
/// 4×4 dot tiles over `len` terms, then mirrors. `ptr(i)` must return a
/// pointer p_i with Gram(i, j) = Σ_t p_i[t·stride]·p_j[t·stride].
template <typename PtrFn>
void gram_tiled(std::size_t n, std::size_t len, std::size_t stride,
                double flops, const PtrFn& ptr, Matrix& out) {
  out.reshape(n, n);
  if (n == 0) return;
  if (len == 0) {
    out.fill(0.0);
    return;
  }
  parallel::ThreadPool* pool = maybe_pool(flops);
  const std::size_t tiles = (n + kMr - 1) / kMr;

  // One task per 4-row tile of the upper triangle; out-of-range lanes are
  // clamped to the last row so the 4×4 accumulator loop stays branch-free
  // (their results are simply not stored).
  const auto do_tile_row = [&](std::size_t ti) {
    const std::size_t i0 = ti * kMr;
    const std::size_t mr = std::min(kMr, n - i0);
    const double* rp[kMr];
    for (std::size_t r = 0; r < kMr; ++r) {
      rp[r] = ptr(std::min(i0 + r, n - 1));
    }
    for (std::size_t j0 = i0; j0 < n; j0 += kMr) {
      const std::size_t nr = std::min(kMr, n - j0);
      const double* cq[kMr];
      for (std::size_t q = 0; q < kMr; ++q) {
        cq[q] = ptr(std::min(j0 + q, n - 1));
      }
      double acc[kMr][kMr] = {};
      for (std::size_t t = 0; t < len; ++t) {
        const std::size_t off = t * stride;
        const double av[kMr] = {rp[0][off], rp[1][off], rp[2][off],
                                rp[3][off]};
        const double bv[kMr] = {cq[0][off], cq[1][off], cq[2][off],
                                cq[3][off]};
        for (std::size_t r = 0; r < kMr; ++r) {
          for (std::size_t q = 0; q < kMr; ++q) {
            acc[r][q] += av[r] * bv[q];
          }
        }
      }
      for (std::size_t r = 0; r < mr; ++r) {
        for (std::size_t q = 0; q < nr; ++q) {
          out(i0 + r, j0 + q) = acc[r][q];
        }
      }
    }
  };

  if (pool == nullptr) {
    for (std::size_t ti = 0; ti < tiles; ++ti) do_tile_row(ti);
  } else {
    pool->parallel_for(tiles, do_tile_row);
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      out(i, j) = out(j, i);
    }
  }
}

}  // namespace

void matmul(MatrixView a, MatrixView b, Matrix& out) {
  ARAMS_CHECK(a.cols() == b.rows(), "matmul inner dimension mismatch");
  gemm_strided(a.rows(), b.cols(), a.cols(), a.data(), a.cols(), 1,
               b.data(), b.cols(), 1, out);
}

Matrix matmul(MatrixView a, MatrixView b) {
  Matrix out;
  matmul(a, b, out);
  return out;
}

void matmul(MatrixViewF a, MatrixViewF b, Matrix& out) {
  ARAMS_CHECK(a.cols() == b.rows(), "matmul inner dimension mismatch");
  gemm_strided(a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
               std::size_t{1}, b.data(), b.cols(), std::size_t{1}, out);
}

Matrix matmul(MatrixViewF a, MatrixViewF b) {
  Matrix out;
  matmul(a, b, out);
  return out;
}

void matmul_tn(MatrixView a, MatrixView b, Matrix& out) {
  ARAMS_CHECK(a.rows() == b.rows(), "matmul_tn dimension mismatch");
  // Aop = Aᵀ: Aop(i,p) = a(p,i) → row stride 1, column stride a.cols().
  gemm_strided(a.cols(), b.cols(), a.rows(), a.data(), 1, a.cols(),
               b.data(), b.cols(), 1, out);
}

Matrix matmul_tn(MatrixView a, MatrixView b) {
  Matrix out;
  matmul_tn(a, b, out);
  return out;
}

void matmul_tn(MatrixViewF a, MatrixViewF b, Matrix& out) {
  ARAMS_CHECK(a.rows() == b.rows(), "matmul_tn dimension mismatch");
  gemm_strided(a.cols(), b.cols(), a.rows(), a.data(), std::size_t{1},
               a.cols(), b.data(), b.cols(), std::size_t{1}, out);
}

Matrix matmul_tn(MatrixViewF a, MatrixViewF b) {
  Matrix out;
  matmul_tn(a, b, out);
  return out;
}

void matmul_tn(MatrixView a, MatrixViewF b, Matrix& out) {
  ARAMS_CHECK(a.rows() == b.rows(), "matmul_tn dimension mismatch");
  gemm_strided(a.cols(), b.cols(), a.rows(), a.data(), std::size_t{1},
               a.cols(), b.data(), b.cols(), std::size_t{1}, out);
}

Matrix matmul_tn(MatrixView a, MatrixViewF b) {
  Matrix out;
  matmul_tn(a, b, out);
  return out;
}

void matmul_nt(MatrixView a, MatrixView b, Matrix& out) {
  ARAMS_CHECK(a.cols() == b.cols(), "matmul_nt dimension mismatch");
  // Bop = Bᵀ: Bop(p,j) = b(j,p) → row stride 1, column stride b.cols().
  gemm_strided(a.rows(), b.rows(), a.cols(), a.data(), a.cols(), 1,
               b.data(), 1, b.cols(), out);
}

Matrix matmul_nt(MatrixView a, MatrixView b) {
  Matrix out;
  matmul_nt(a, b, out);
  return out;
}

void gram_rows(MatrixView a, Matrix& out) {
  const std::size_t m = a.rows();
  const double flops = static_cast<double>(m) * static_cast<double>(m) *
                       static_cast<double>(a.cols());
  gram_tiled(
      m, a.cols(), 1, flops,
      [&](std::size_t i) { return a.data() + i * a.cols(); }, out);
}

Matrix gram_rows(MatrixView a) {
  Matrix out;
  gram_rows(a, out);
  return out;
}

void gram_cols(MatrixView a, Matrix& out) {
  const std::size_t n = a.cols();
  const double flops = static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(a.rows());
  gram_tiled(
      n, a.rows(), n, flops, [&](std::size_t i) { return a.data() + i; },
      out);
}

Matrix gram_cols(MatrixView a) {
  Matrix out;
  gram_cols(a, out);
  return out;
}

void gemv(MatrixView a, std::span<const double> x, std::span<double> y) {
  ARAMS_CHECK(x.size() == a.cols() && y.size() == a.rows(),
              "gemv size mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    y[i] = dot(a.row(i), x);
  }
}

void gemv_t(MatrixView a, std::span<const double> x, std::span<double> y) {
  ARAMS_CHECK(x.size() == a.rows() && y.size() == a.cols(),
              "gemv_t size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    axpy(x[i], a.row(i), y);
  }
}

double frobenius_norm_squared(MatrixView a) {
  double s = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    s += norm2_squared(a.row(r));
  }
  return s;
}

double frobenius_norm(MatrixView a) {
  return std::sqrt(frobenius_norm_squared(a));
}

}  // namespace arams::linalg
