#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/blas.hpp"

namespace arams::linalg {

QrResult householder_qr(const Matrix& a) {
  const std::size_t m = a.rows(), n = a.cols();
  ARAMS_CHECK(m >= n, "householder_qr requires rows >= cols");
  Matrix work = a;                    // becomes R in its upper triangle
  std::vector<double> taus(n, 0.0);   // reflector scalars
  Matrix vs(n, m);                    // reflector k stored in row k, cols k..m

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k below the diagonal.
    double alpha = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      alpha += work(i, k) * work(i, k);
    }
    alpha = std::sqrt(alpha);
    const double akk = work(k, k);
    if (alpha == 0.0) {
      taus[k] = 0.0;
      continue;
    }
    const double beta = akk >= 0.0 ? -alpha : alpha;
    double* vk = vs.row(k).data();
    vk[k] = akk - beta;
    for (std::size_t i = k + 1; i < m; ++i) {
      vk[i] = work(i, k);
    }
    double vnorm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      vnorm2 += vk[i] * vk[i];
    }
    if (vnorm2 == 0.0) {
      taus[k] = 0.0;
      continue;
    }
    taus[k] = 2.0 / vnorm2;

    // Apply (I - tau v vᵀ) to the trailing columns of work.
    for (std::size_t j = k; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) {
        s += vk[i] * work(i, j);
      }
      s *= taus[k];
      for (std::size_t i = k; i < m; ++i) {
        work(i, j) -= s * vk[i];
      }
    }
  }

  QrResult out;
  out.r = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      out.r(i, j) = work(i, j);
    }
  }

  // Accumulate thin Q by applying reflectors in reverse to the first n
  // columns of the identity.
  out.q = Matrix(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.q(j, j) = 1.0;
  }
  for (std::size_t k = n; k-- > 0;) {
    if (taus[k] == 0.0) continue;
    const double* vk = vs.row(k).data();
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) {
        s += vk[i] * out.q(i, j);
      }
      s *= taus[k];
      for (std::size_t i = k; i < m; ++i) {
        out.q(i, j) -= s * vk[i];
      }
    }
  }
  return out;
}

std::size_t orthonormalize_columns(Matrix& a) {
  const std::size_t m = a.rows(), n = a.cols();
  // Work column-wise on a transposed copy so inner loops are contiguous.
  Matrix at = a.transposed();  // n×m, row k = column k of a
  std::size_t rank = 0;
  const double base = frobenius_norm(a);
  const double tol = (base == 0.0 ? 0.0 : base * 1e-12);
  for (std::size_t k = 0; k < n; ++k) {
    auto col = at.row(k);
    // Two Gram–Schmidt passes ("twice is enough").
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t j = 0; j < rank; ++j) {
        const double c = dot(at.row(j), col);
        axpy(-c, at.row(j), col);
      }
    }
    const double nrm = norm2(col);
    if (nrm <= tol) {
      std::fill(col.begin(), col.end(), 0.0);
      continue;
    }
    scale(col, 1.0 / nrm);
    if (rank != k) {
      // Compact: move this column into the next rank slot.
      std::copy(col.begin(), col.end(), at.row(rank).begin());
      std::fill(col.begin(), col.end(), 0.0);
    }
    ++rank;
  }
  a = at.transposed();
  (void)m;
  return rank;
}

double orthonormality_defect(const Matrix& q) {
  const Matrix gtg = gram_cols(q);
  double defect = 0.0;
  for (std::size_t i = 0; i < gtg.rows(); ++i) {
    for (std::size_t j = 0; j < gtg.cols(); ++j) {
      const double target = (i == j) ? 1.0 : 0.0;
      defect = std::max(defect, std::abs(gtg(i, j) - target));
    }
  }
  return defect;
}

}  // namespace arams::linalg
