#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "linalg/workspace.hpp"
#include "obs/metrics.hpp"
#include "util/stopwatch.hpp"

namespace arams::linalg {

void jacobi_eigen_symmetric(MatrixView a, Workspace& ws, SymmetricEig& out,
                            double tol, int max_sweeps) {
  ARAMS_CHECK(a.rows() == a.cols(), "eigensolver needs a square matrix");
  ARAMS_CHECK(a.rows() > 0, "eigensolver needs a non-empty matrix");
  const std::size_t n = a.rows();

  // Work on the symmetrized copy; Gram products can carry ~eps asymmetry.
  Matrix& w = ws.mat(wslot::kEigWork, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      w(i, j) = 0.5 * (a(i, j) + a(j, i));
    }
  }
  Matrix& v = ws.mat(wslot::kEigVectors, n, n);
  v.fill(0.0);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  // Scale-invariant convergence threshold on off-diagonal mass.
  double diag_scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    diag_scale = std::max(diag_scale, std::abs(w(i, i)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      diag_scale = std::max(diag_scale, std::abs(w(i, j)));
    }
  }
  const double threshold = tol * std::max(diag_scale, 1e-300);

  int sweep = 0;
  for (; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        off = std::max(off, std::abs(w(i, j)));
      }
    }
    if (off <= threshold) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = w(p, q);
        if (std::abs(apq) <= threshold * 1e-2) continue;
        const double app = w(p, p);
        const double aqq = w(q, q);
        // Classic Jacobi rotation parameters.
        const double theta = 0.5 * (aqq - app) / apq;
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Update rows/columns p and q of w.
        for (std::size_t k = 0; k < n; ++k) {
          const double wkp = w(k, p);
          const double wkq = w(k, q);
          w(k, p) = c * wkp - s * wkq;
          w(k, q) = s * wkp + c * wkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double wpk = w(p, k);
          const double wqk = w(q, k);
          w(p, k) = c * wpk - s * wqk;
          w(q, k) = s * wpk + c * wqk;
        }
        // Accumulate eigenvectors.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  out.iterations = sweep;

  // Extract and sort descending.
  const std::span<std::size_t> order = ws.idx(wslot::kEigOrder, n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::span<double> values = ws.vec(wslot::kEigValues, n);
  for (std::size_t i = 0; i < n; ++i) values[i] = w(i, i);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return values[x] > values[y];
  });

  out.values.resize(n);
  out.vectors.reshape(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = values[order[k]];
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors(i, k) = v(i, order[k]);
    }
  }
}

SymmetricEig jacobi_eigen_symmetric(const Matrix& a, double tol,
                                    int max_sweeps) {
  Workspace ws;
  SymmetricEig out;
  jacobi_eigen_symmetric(MatrixView(a), ws, out, tol, max_sweeps);
  return out;
}

namespace {

/// Drops trailing columns of a row-major matrix in place: row r's first
/// `keep` entries move to offset r*keep. Forward compaction is safe because
/// every destination index r*keep+c is <= its source index r*cols+c, and
/// strictly below every not-yet-read source.
void truncate_columns_in_place(Matrix& m, std::size_t keep) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  if (keep >= cols) return;
  double* data = m.data();
  for (std::size_t r = 1; r < rows; ++r) {
    std::memmove(data + r * keep, data + r * cols, keep * sizeof(double));
  }
  m.reshape(rows, keep);  // grow-only storage: no reallocation, keeps prefix
}

EigMethod resolve_method(EigMethod requested) {
  if (requested != EigMethod::kAuto) return requested;
  // Read per call (not cached) so tests and the parity harness can flip the
  // whole process between solvers with setenv; getenv is a pointer walk,
  // invisible next to an O(n³) decomposition, and never allocates.
  const char* env = std::getenv("ARAMS_EIG_METHOD");
  if (env != nullptr && std::strcmp(env, "jacobi") == 0) {
    return EigMethod::kJacobi;
  }
  return EigMethod::kTridiag;
}

}  // namespace

void eigen_symmetric(MatrixView a, Workspace& ws, SymmetricEig& out,
                     const EigenConfig& config) {
  Stopwatch timer;
  const EigMethod method = resolve_method(config.method);
  if (method == EigMethod::kJacobi) {
    jacobi_eigen_symmetric(a, ws, out, config.jacobi_tol,
                           config.jacobi_max_sweeps);
    // Jacobi always accumulates the full square factor; trim to the
    // requested prefix so both methods honour the same output contract.
    if (!config.vectors) {
      out.vectors.reshape(0, 0);
    } else if (config.max_vectors < out.vectors.cols()) {
      truncate_columns_in_place(out.vectors, config.max_vectors);
    }
  } else {
    tridiag_eigen_symmetric(a, ws, out, config);
  }
  // Resolved once; per-call cost is two relaxed atomic observes.
  static obs::Histogram& seconds =
      obs::metrics().histogram("linalg.eig_seconds");
  static constexpr double kIterBounds[] = {1,  2,   4,   8,   16,  32,
                                           64, 128, 256, 512, 1024, 4096};
  static obs::Histogram& iterations =
      obs::metrics().histogram("linalg.eig_iterations", kIterBounds);
  seconds.observe(timer.seconds());
  iterations.observe(static_cast<double>(out.iterations));
}

SymmetricEig eigen_symmetric(const Matrix& a, const EigenConfig& config) {
  Workspace ws;
  SymmetricEig out;
  eigen_symmetric(MatrixView(a), ws, out, config);
  return out;
}

}  // namespace arams::linalg
