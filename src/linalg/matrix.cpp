#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace arams::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    ARAMS_CHECK(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::zero_row(std::size_t r) {
  ARAMS_DCHECK(r < rows_, "row index out of range");
  std::fill_n(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_), cols_,
              0.0);
}

void Matrix::set_row(std::size_t r, std::span<const double> src) {
  ARAMS_CHECK(src.size() == cols_, "row length mismatch");
  std::copy(src.begin(), src.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

void Matrix::append_zero_rows(std::size_t count) {
  data_.resize((rows_ + count) * cols_, 0.0);
  rows_ += count;
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  data_.resize(rows * cols);
  rows_ = rows;
  cols_ = cols;
}

Matrix Matrix::slice_rows(std::size_t r0, std::size_t r1) const {
  ARAMS_CHECK(r0 <= r1 && r1 <= rows_, "bad row slice");
  Matrix out(r1 - r0, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(r0 * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(r1 * cols_),
            out.data_.begin());
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  // Simple blocked transpose; adequate for the sizes this library moves.
  constexpr std::size_t kBlock = 32;
  for (std::size_t rb = 0; rb < rows_; rb += kBlock) {
    const std::size_t rend = std::min(rows_, rb + kBlock);
    for (std::size_t cb = 0; cb < cols_; cb += kBlock) {
      const std::size_t cend = std::min(cols_, cb + kBlock);
      for (std::size_t r = rb; r < rend; ++r) {
        for (std::size_t c = cb; c < cend; ++c) {
          out.data_[c * rows_ + r] = data_[r * cols_ + c];
        }
      }
    }
  }
  return out;
}

Matrix Matrix::vstack(const Matrix& top, const Matrix& bottom) {
  if (top.empty()) return bottom;
  if (bottom.empty()) return top;
  ARAMS_CHECK(top.cols() == bottom.cols(), "vstack column mismatch");
  Matrix out(top.rows() + bottom.rows(), top.cols());
  std::copy(top.data_.begin(), top.data_.end(), out.data_.begin());
  std::copy(bottom.data_.begin(), bottom.data_.end(),
            out.data_.begin() + static_cast<std::ptrdiff_t>(top.size()));
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  ARAMS_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "shape mismatch in max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

Matrix MatrixView::to_matrix() const {
  Matrix out(rows_, cols_);
  std::copy(data_, data_ + rows_ * cols_, out.data());
  return out;
}

MatrixF::MatrixF(std::initializer_list<std::initializer_list<float>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    ARAMS_CHECK(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void MatrixF::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void MatrixF::zero_row(std::size_t r) {
  ARAMS_DCHECK(r < rows_, "row index out of range");
  std::fill_n(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_), cols_,
              0.0F);
}

void MatrixF::set_row(std::size_t r, std::span<const float> src) {
  ARAMS_CHECK(src.size() == cols_, "row length mismatch");
  std::copy(src.begin(), src.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

void MatrixF::reshape(std::size_t rows, std::size_t cols) {
  data_.resize(rows * cols);
  rows_ = rows;
  cols_ = cols;
}

MatrixF MatrixF::slice_rows(std::size_t r0, std::size_t r1) const {
  ARAMS_CHECK(r0 <= r1 && r1 <= rows_, "bad row slice");
  MatrixF out(r1 - r0, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(r0 * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(r1 * cols_),
            out.data_.begin());
  return out;
}

Matrix MatrixF::to_matrix() const {
  Matrix out;
  widen(MatrixViewF(*this), out);
  return out;
}

MatrixF MatrixF::from_matrix(const Matrix& m) {
  MatrixF out(m.rows(), m.cols());
  const double* src = m.data();
  float* dst = out.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    dst[i] = static_cast<float>(src[i]);
  }
  return out;
}

float MatrixF::max_abs_diff(const MatrixF& a, const MatrixF& b) {
  ARAMS_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "shape mismatch in max_abs_diff");
  float m = 0.0F;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

Matrix MatrixViewF::to_matrix() const {
  Matrix out;
  widen(*this, out);
  return out;
}

void widen(MatrixViewF src, Matrix& dst) {
  dst.reshape(src.rows(), src.cols());
  const float* in = src.data();
  double* out = dst.data();
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(in[i]);
  }
}

}  // namespace arams::linalg
