#pragma once
// Symmetric dense eigensolvers.
//
// The FD shrink step needs the full eigendecomposition of the 2ℓ×2ℓ Gram
// matrix B·Bᵀ on every shrink — the single hottest kernel on the sketch
// critical path now that the GEMM side is tiled. Two implementations with
// different roles:
//
//  * tridiag_eigen_symmetric — the production solver: blocked Householder
//    tridiagonalization (dsytrd-style panels whose rank-2k trailing updates
//    run through the packed GEMM core, so they inherit its tiling and
//    thread-pool parallelism), implicit Wilkinson-shift QL iteration with
//    deflation on the tridiagonal (dsteqr-style), and Householder
//    back-transformation of only the eigenvectors the caller keeps.
//    ~(4/3)n³ flops to tridiagonal + O(n³) QL accumulation, an order of
//    magnitude under Jacobi's per-sweep cost times 6–10 sweeps.
//  * jacobi_eigen_symmetric — cyclic threshold Jacobi, kept verbatim as the
//    verification reference and a runtime-selectable fallback.
//    Unconditionally stable and embarrassingly simple to audit; prefer it
//    when debugging a numerical anomaly (ARAMS_EIG_METHOD=jacobi flips the
//    whole process over without a rebuild).
//
// Callers go through eigen_symmetric(), which dispatches on
// EigenConfig::method / the ARAMS_EIG_METHOD environment variable and
// records the "linalg.eig_seconds" / "linalg.eig_iterations" metrics.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace arams::linalg {

struct SymmetricEig {
  std::vector<double> values;  ///< all n eigenvalues, descending
  /// Column k is the eigenvector of values[k]. n×min(n, max_vectors)
  /// columns; empty when EigenConfig::vectors is false.
  Matrix vectors;
  /// Convergence effort: Jacobi sweeps or implicit-QL shift iterations,
  /// depending on the method that produced this result.
  int iterations = 0;

  /// Deprecated Jacobi-era name for `iterations`.
  [[deprecated("use iterations")]] [[nodiscard]] int sweeps() const {
    return iterations;
  }
};

class Workspace;

/// Which solver eigen_symmetric() runs.
enum class EigMethod {
  kAuto,     ///< ARAMS_EIG_METHOD env override ("jacobi"|"tridiag"), else tridiag
  kJacobi,   ///< cyclic Jacobi reference/fallback
  kTridiag,  ///< Householder tridiagonalization + implicit-shift QL
};

struct EigenConfig {
  EigMethod method = EigMethod::kAuto;
  /// false: eigenvalues only. The tridiagonal path then skips the rotation
  /// accumulation entirely (O(n²) QL instead of O(n³)).
  bool vectors = true;
  /// Form at most this many eigenvectors (top of the descending order).
  /// FD's shrink keeps at most ℓ−1 of 2ℓ directions, so capping here stops
  /// the back-transformation at the retained prefix.
  std::size_t max_vectors = static_cast<std::size_t>(-1);
  double jacobi_tol = 1e-12;  ///< Jacobi off-diagonal threshold
  int jacobi_max_sweeps = 50;
};

/// Full eigendecomposition of a symmetric matrix, dispatching on
/// `config.method` (kAuto consults ARAMS_EIG_METHOD per call, so tests and
/// the parity harness can flip methods at runtime). The input is validated
/// for squareness; mild asymmetry (roundoff from Gram products) is
/// symmetrized internally. Throws CheckError for empty input or (tridiag)
/// QL non-convergence. Allocation-free at steady state: all scratch lives
/// in `ws` and `out` reshapes in place.
void eigen_symmetric(MatrixView a, Workspace& ws, SymmetricEig& out,
                     const EigenConfig& config = {});

/// Allocating convenience wrapper.
SymmetricEig eigen_symmetric(const Matrix& a, const EigenConfig& config = {});

/// Production solver: blocked Householder tridiagonalization +
/// implicit-shift QL (+ prefix-limited back-transformation). Normally
/// reached through eigen_symmetric(); exposed for direct benchmarking and
/// cross-checking. Scratch lives in the wslot::kTrd* workspace slots.
void tridiag_eigen_symmetric(MatrixView a, Workspace& ws, SymmetricEig& out,
                             const EigenConfig& config = {});

/// Reference/fallback solver (cyclic threshold Jacobi). Quadratic per
/// sweep over n(n−1)/2 rotations; converges in a handful of sweeps at FD
/// sizes but does ~an order of magnitude more flops than the tridiagonal
/// path. Kept verbatim as the verification baseline.
SymmetricEig jacobi_eigen_symmetric(const Matrix& a, double tol = 1e-12,
                                    int max_sweeps = 50);

/// Allocation-free Jacobi variant: all scratch (rotation target,
/// eigenvector accumulator, sort permutation) lives in `ws` (slots
/// wslot::kEig*), and `out` is reshaped in place, so repeated same-shape
/// calls never touch the heap. `a` may alias a workspace matrix from a
/// *different* slot (it is copied into kEigWork before rotations start).
void jacobi_eigen_symmetric(MatrixView a, Workspace& ws, SymmetricEig& out,
                            double tol = 1e-12, int max_sweeps = 50);

}  // namespace arams::linalg
