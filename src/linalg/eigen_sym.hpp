#pragma once
// Symmetric dense eigensolver (cyclic Jacobi with threshold sweeps).
//
// The FD shrink step needs the full eigendecomposition of the 2ℓ×2ℓ Gram
// matrix B·Bᵀ. Jacobi is quadratic-per-sweep but unconditionally stable and
// converges in a handful of sweeps for the sizes FD uses (ℓ ≤ ~1000); it is
// also embarrassingly simple to verify, which matters more here than the
// last 2× of a tridiagonalization-based solver.

#include <vector>

#include "linalg/matrix.hpp"

namespace arams::linalg {

struct SymmetricEig {
  std::vector<double> values;  ///< eigenvalues, descending
  Matrix vectors;              ///< column k is the eigenvector of values[k]
  int sweeps = 0;              ///< Jacobi sweeps used
};

class Workspace;

/// Full eigendecomposition of a symmetric matrix. The input is validated
/// for squareness; mild asymmetry (roundoff from Gram products) is
/// symmetrized internally. Throws CheckError for empty input.
SymmetricEig jacobi_eigen_symmetric(const Matrix& a, double tol = 1e-12,
                                    int max_sweeps = 50);

/// Allocation-free variant for hot paths: all scratch (rotation target,
/// eigenvector accumulator, sort permutation) lives in `ws` (slots
/// wslot::kEig*), and `out` is reshaped in place, so repeated same-shape
/// calls never touch the heap. `a` may alias a workspace matrix from a
/// *different* slot (it is copied into kEigWork before rotations start).
void jacobi_eigen_symmetric(MatrixView a, Workspace& ws, SymmetricEig& out,
                            double tol = 1e-12, int max_sweeps = 50);

}  // namespace arams::linalg
