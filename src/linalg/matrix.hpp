#pragma once
// Dense row-major matrix of doubles. This is the storage type the whole
// library is built on: sketch buffers, image batches, latent embeddings.
//
// Design notes:
//  * Row-major because sketching appends/zeroes *rows* and the FD shrink
//    touches rows sequentially; row(i) is a contiguous std::span.
//  * Owning, value-semantic; views are std::span over rows. Deliberately no
//    expression templates — the hot kernels live in blas.hpp.
//  * MatrixF/MatrixViewF are the fp32 siblings used by the ingest lane:
//    detector frames arrive fp32, so the preprocessing → sketch path moves
//    float rows and widens to double only at the accumulation boundary
//    (panel packing in blas.cpp, or the Sketcher widening shim).

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace arams::linalg {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Builds from nested initializer list (test convenience).
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    ARAMS_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    ARAMS_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    ARAMS_DCHECK(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    ARAMS_DCHECK(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  /// Sets every entry to v.
  void fill(double v);

  /// Zeroes the given row.
  void zero_row(std::size_t r);

  /// Copies `src` into row r. Length must equal cols().
  void set_row(std::size_t r, std::span<const double> src);

  /// Appends rows of zeros at the bottom (used by rank adaptation when the
  /// sketch buffer grows).
  void append_zero_rows(std::size_t count);

  /// Reinterprets the matrix as rows×cols, resizing storage as needed.
  /// Contents are unspecified afterwards. Storage is grow-only: shrinking
  /// or same-size reshapes never release or reallocate memory, which is
  /// what makes Workspace-held matrices allocation-free at steady state.
  void reshape(std::size_t rows, std::size_t cols);

  /// Bytes of the live rows*cols payload — the honest logical footprint.
  [[nodiscard]] std::size_t bytes() const {
    return data_.size() * sizeof(double);
  }

  /// Bytes of heap storage currently reserved (>= bytes(); grow-only
  /// storage keeps the high-water mark).
  [[nodiscard]] std::size_t capacity_bytes() const {
    return data_.capacity() * sizeof(double);
  }

  /// Returns rows [r0, r1) as a new matrix.
  [[nodiscard]] Matrix slice_rows(std::size_t r0, std::size_t r1) const;

  /// Returns the transpose as a new matrix.
  [[nodiscard]] Matrix transposed() const;

  /// Stacks `top` over `bottom` (column counts must match).
  static Matrix vstack(const Matrix& top, const Matrix& bottom);

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  /// Max |a_ij - b_ij|; matrices must be the same shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Non-owning const view of a contiguous row range — the shape the dense
/// kernels consume. Converts implicitly from Matrix, so every kernel that
/// takes a MatrixView also accepts a Matrix; rows_of() views the occupied
/// prefix of a sketch buffer without the copy slice_rows() would make.
class MatrixView {
 public:
  constexpr MatrixView() = default;
  MatrixView(const double* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit.
  MatrixView(const Matrix& m) : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}

  /// Views rows [r0, r1) of m. No copy; valid while m's storage is.
  static MatrixView rows_of(const Matrix& m, std::size_t r0, std::size_t r1) {
    ARAMS_CHECK(r0 <= r1 && r1 <= m.rows(), "bad row view");
    return {m.data() + r0 * m.cols(), r1 - r0, m.cols()};
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return rows_ * cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }
  [[nodiscard]] const double* data() const { return data_; }

  double operator()(std::size_t r, std::size_t c) const {
    ARAMS_DCHECK(r < rows_ && c < cols_, "view index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    ARAMS_DCHECK(r < rows_, "view row out of range");
    return {data_ + r * cols_, cols_};
  }

  /// Materializes the view as an owning Matrix (test/interop convenience).
  [[nodiscard]] Matrix to_matrix() const;

 private:
  const double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Dense row-major matrix of floats — the fp32 ingest-lane storage type.
/// Mirrors the Matrix surface the frame path needs (row spans, grow-only
/// reshape, slicing); it deliberately has no arithmetic of its own — the
/// mixed-precision kernels in blas.hpp widen per register tile so all
/// accumulation stays fp64.
class MatrixF {
 public:
  MatrixF() = default;

  /// rows x cols matrix, zero-initialized.
  MatrixF(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0F) {}

  /// Builds from nested initializer list (test convenience).
  MatrixF(std::initializer_list<std::initializer_list<float>> init);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    ARAMS_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    ARAMS_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<float> row(std::size_t r) {
    ARAMS_DCHECK(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const {
    ARAMS_DCHECK(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  /// Sets every entry to v.
  void fill(float v);

  /// Zeroes the given row.
  void zero_row(std::size_t r);

  /// Copies `src` into row r. Length must equal cols().
  void set_row(std::size_t r, std::span<const float> src);

  /// Reinterprets the matrix as rows×cols, resizing storage as needed.
  /// Contents are unspecified afterwards. Grow-only, like Matrix::reshape.
  void reshape(std::size_t rows, std::size_t cols);

  /// Bytes of the live rows*cols payload.
  [[nodiscard]] std::size_t bytes() const {
    return data_.size() * sizeof(float);
  }

  /// Bytes of heap storage currently reserved (>= bytes()).
  [[nodiscard]] std::size_t capacity_bytes() const {
    return data_.capacity() * sizeof(float);
  }

  /// Returns rows [r0, r1) as a new matrix.
  [[nodiscard]] MatrixF slice_rows(std::size_t r0, std::size_t r1) const;

  /// Widens to an owning fp64 Matrix (one cast per element).
  [[nodiscard]] Matrix to_matrix() const;

  /// Narrows an fp64 matrix to fp32 (one cast per element) — the "door"
  /// conversion when an fp64 source feeds the fp32 ingest lane.
  static MatrixF from_matrix(const Matrix& m);

  /// Max |a_ij - b_ij|; matrices must be the same shape.
  static float max_abs_diff(const MatrixF& a, const MatrixF& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Non-owning const view of contiguous fp32 rows — the shape the
/// mixed-precision kernels and Sketcher::push_batch(MatrixViewF) consume.
/// Converts implicitly from MatrixF, mirroring Matrix → MatrixView.
class MatrixViewF {
 public:
  constexpr MatrixViewF() = default;
  MatrixViewF(const float* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit.
  MatrixViewF(const MatrixF& m)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}

  /// Views rows [r0, r1) of m. No copy; valid while m's storage is.
  static MatrixViewF rows_of(const MatrixF& m, std::size_t r0,
                             std::size_t r1) {
    ARAMS_CHECK(r0 <= r1 && r1 <= m.rows(), "bad row view");
    return {m.data() + r0 * m.cols(), r1 - r0, m.cols()};
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return rows_ * cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }
  [[nodiscard]] const float* data() const { return data_; }

  float operator()(std::size_t r, std::size_t c) const {
    ARAMS_DCHECK(r < rows_ && c < cols_, "view index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const {
    ARAMS_DCHECK(r < rows_, "view row out of range");
    return {data_ + r * cols_, cols_};
  }

  /// Widens the view into an owning fp64 Matrix.
  [[nodiscard]] Matrix to_matrix() const;

 private:
  const float* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Widens `src` into `dst` in place (grow-only reshape + one cast per
/// element). The Sketcher widening shim funnels through this with a
/// Workspace-held `dst` so steady-state fp32 ingest stays allocation-free.
void widen(MatrixViewF src, Matrix& dst);

}  // namespace arams::linalg
