#include "linalg/workspace.hpp"

#include "obs/metrics.hpp"

namespace arams::linalg {

Matrix& Workspace::mat(std::size_t slot, std::size_t rows, std::size_t cols) {
  if (slot >= mats_.size()) mats_.resize(slot + 1);
  Matrix& m = mats_[slot];
  const std::size_t before = m.capacity_bytes();
  m.reshape(rows, cols);
  if (m.capacity_bytes() != before) publish_bytes();
  return m;
}

std::span<double> Workspace::vec(std::size_t slot, std::size_t n) {
  if (slot >= vecs_.size()) vecs_.resize(slot + 1);
  auto& v = vecs_[slot];
  const std::size_t before = v.capacity();
  v.resize(n);
  if (v.capacity() != before) publish_bytes();
  return v;
}

std::span<std::size_t> Workspace::idx(std::size_t slot, std::size_t n) {
  if (slot >= idxs_.size()) idxs_.resize(slot + 1);
  auto& v = idxs_[slot];
  const std::size_t before = v.capacity();
  v.resize(n);
  if (v.capacity() != before) publish_bytes();
  return v;
}

std::size_t Workspace::bytes() const {
  std::size_t total = 0;
  for (const auto& m : mats_) total += m.bytes();
  for (const auto& v : vecs_) total += v.size() * sizeof(double);
  for (const auto& v : idxs_) total += v.size() * sizeof(std::size_t);
  total += eig_.vectors.bytes();
  total += eig_.values.size() * sizeof(double);
  total += rsvd_.u.bytes();
  total += rsvd_.w.bytes();
  total += rsvd_.sigma.size() * sizeof(double);
  return total;
}

std::size_t Workspace::capacity_bytes() const {
  std::size_t total = 0;
  for (const auto& m : mats_) total += m.capacity_bytes();
  for (const auto& v : vecs_) total += v.capacity() * sizeof(double);
  for (const auto& v : idxs_) total += v.capacity() * sizeof(std::size_t);
  total += eig_.vectors.capacity_bytes();
  total += eig_.values.capacity() * sizeof(double);
  total += rsvd_.u.capacity_bytes();
  total += rsvd_.w.capacity_bytes();
  total += rsvd_.sigma.capacity() * sizeof(double);
  return total;
}

void Workspace::publish_bytes() const {
  static obs::Gauge& gauge = obs::metrics().gauge("linalg.workspace_bytes");
  gauge.set(static_cast<double>(capacity_bytes()));
}

}  // namespace arams::linalg
