#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/blas.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/qr.hpp"
#include "linalg/workspace.hpp"

namespace arams::linalg {

namespace {

/// One-sided Jacobi on a tall (m>=n) matrix: rotates column pairs of `u`
/// until all pairs are orthogonal, accumulating rotations into `v` (n×n).
void hestenes_sweeps(Matrix& u, Matrix& v, double tol, int max_sweeps) {
  const std::size_t n = u.cols();
  // Work on the transpose so columns of u are contiguous rows here.
  Matrix ut = u.transposed();
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        auto cp = ut.row(p);
        auto cq = ut.row(q);
        const double alpha = norm2_squared(cp);
        const double beta = norm2_squared(cq);
        const double gamma = dot(cp, cq);
        if (std::abs(gamma) <= tol * std::sqrt(alpha * beta) ||
            alpha == 0.0 || beta == 0.0) {
          continue;
        }
        rotated = true;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < cp.size(); ++i) {
          const double up = cp[i];
          const double uq = cq[i];
          cp[i] = c * up - s * uq;
          cq[i] = s * up + c * uq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
  }
  u = ut.transposed();
}

}  // namespace

ThinSvd jacobi_svd(const Matrix& a, double tol, int max_sweeps) {
  ARAMS_CHECK(a.rows() > 0 && a.cols() > 0, "svd of empty matrix");
  const bool transposed = a.rows() < a.cols();
  Matrix work = transposed ? a.transposed() : a;
  const std::size_t m = work.rows(), n = work.cols();

  Matrix v = Matrix::identity(n);
  hestenes_sweeps(work, v, tol, max_sweeps);

  // Column norms are the singular values.
  std::vector<double> sigma(n);
  Matrix wt = work.transposed();  // n×m, row j = column j of work
  for (std::size_t j = 0; j < n; ++j) {
    sigma[j] = norm2(wt.row(j));
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  ThinSvd out;
  out.sigma.resize(n);
  Matrix u(m, n);
  Matrix vt(n, n);
  const double smax = sigma.empty() ? 0.0 : sigma[order[0]];
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t j = order[k];
    out.sigma[k] = sigma[j];
    const auto col = wt.row(j);
    if (sigma[j] > smax * 1e-300 && sigma[j] > 0.0) {
      for (std::size_t i = 0; i < m; ++i) {
        u(i, k) = col[i] / sigma[j];
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      vt(k, i) = v(i, j);
    }
  }

  if (transposed) {
    // a = (workᵀ) = (U Σ Vᵀ)ᵀ = V Σ Uᵀ.
    out.u = vt.transposed();
    out.vt = u.transposed();
  } else {
    out.u = std::move(u);
    out.vt = std::move(vt);
  }
  return out;
}

void gram_row_svd(MatrixView a, Workspace& ws, RowSpaceSvd& out,
                  std::size_t max_rank) {
  ARAMS_CHECK(a.rows() > 0 && a.cols() > 0, "svd of empty matrix");
  ARAMS_CHECK(a.rows() <= a.cols(), "gram_row_svd requires rows <= cols");
  const std::size_t m = a.rows();
  Matrix& g = ws.mat(wslot::kSvdGram, m, m);
  gram_rows(a, g);
  SymmetricEig& eig = ws.eig();
  EigenConfig cfg;
  cfg.max_vectors = max_rank;
  eigen_symmetric(g, ws, eig, cfg);

  out.sigma.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    out.sigma[i] = std::sqrt(std::max(eig.values[i], 0.0));
  }
  out.u = eig.vectors;         // m×r, columns sorted by descending sigma
  matmul_tn(out.u, a, out.w);  // Uᵀ·A, row i = sigma_i v_iᵀ
  ws.publish();
}

RowSpaceSvd gram_row_svd(const Matrix& a) {
  Workspace ws;
  RowSpaceSvd out;
  gram_row_svd(MatrixView(a), ws, out);
  return out;
}

Matrix right_vectors(const RowSpaceSvd& s, std::size_t k, double rank_tol) {
  const std::size_t m = s.w.rows();
  k = std::min(k, m);
  const double smax = s.sigma.empty() ? 0.0 : s.sigma[0];
  std::size_t kept = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (s.sigma[i] > rank_tol * smax && s.sigma[i] > 0.0) {
      ++kept;
    }
  }
  Matrix vt(kept, s.w.cols());
  for (std::size_t i = 0; i < kept; ++i) {
    const auto wi = s.w.row(i);
    auto vi = vt.row(i);
    const double inv = 1.0 / s.sigma[i];
    for (std::size_t j = 0; j < wi.size(); ++j) {
      vi[j] = wi[j] * inv;
    }
  }
  return vt;
}

void sigma_vt_svd(MatrixView a, Workspace& ws, SigmaVt& out,
                  std::size_t max_rank) {
  ARAMS_CHECK(a.rows() > 0 && a.cols() > 0, "svd of empty matrix");
  if (a.rows() <= a.cols()) {
    // Short-fat: m×m row Gram, then W = Uᵀ·A — no U copy kept.
    const std::size_t m = a.rows();
    Matrix& g = ws.mat(wslot::kSvdGram, m, m);
    gram_rows(a, g);
    SymmetricEig& eig = ws.eig();
    EigenConfig cfg;
    cfg.max_vectors = max_rank;
    eigen_symmetric(g, ws, eig, cfg);
    out.sigma.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      out.sigma[i] = std::sqrt(std::max(eig.values[i], 0.0));
    }
    matmul_tn(eig.vectors, a, out.w);
    ws.publish();
    return;
  }
  // Tall: eigendecompose the n×n column Gram AᵀA = V diag(σ²) Vᵀ and form
  // W = Σ·Vᵀ directly — no left factor needed.
  const std::size_t n = a.cols();
  Matrix& g = ws.mat(wslot::kSvdGram, n, n);
  gram_cols(a, g);
  SymmetricEig& eig = ws.eig();
  EigenConfig cfg;
  cfg.max_vectors = max_rank;
  eigen_symmetric(g, ws, eig, cfg);
  const std::size_t kept = std::min(n, max_rank);
  out.sigma.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.sigma[i] = std::sqrt(std::max(eig.values[i], 0.0));
  }
  out.w.reshape(kept, n);
  for (std::size_t i = 0; i < kept; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.w(i, j) = out.sigma[i] * eig.vectors(j, i);
    }
  }
  ws.publish();
}

SigmaVt sigma_vt_svd(const Matrix& a) {
  Workspace ws;
  SigmaVt out;
  sigma_vt_svd(MatrixView(a), ws, out);
  return out;
}

ThinSvd randomized_svd(const Matrix& a, std::size_t k, Rng& rng,
                       std::size_t oversample, int power_iters) {
  ARAMS_CHECK(a.rows() > 0 && a.cols() > 0, "svd of empty matrix");
  ARAMS_CHECK(k >= 1, "need at least one component");
  const std::size_t n = a.rows();
  const std::size_t d = a.cols();
  const std::size_t sketch =
      std::min(k + oversample, std::min(n, d));

  // Y = A·G, then optional subspace iterations Y ← A·(Aᵀ·Y) with
  // re-orthonormalization for stability.
  Matrix g(d, sketch);
  for (std::size_t i = 0; i < d; ++i) {
    rng.fill_normal(g.row(i));
  }
  Matrix y = matmul(a, g);  // n×sketch
  orthonormalize_columns(y);
  for (int it = 0; it < power_iters; ++it) {
    Matrix z = matmul_tn(a, y);  // d×sketch
    orthonormalize_columns(z);
    y = matmul(a, z);
    orthonormalize_columns(y);
  }

  // Project: B = Qᵀ·A is sketch×d; exact SVD of the small factor.
  const Matrix b = matmul_tn(y, a);
  const ThinSvd small = jacobi_svd(b);

  ThinSvd out;
  const std::size_t kept = std::min(k, small.sigma.size());
  out.sigma.assign(small.sigma.begin(),
                   small.sigma.begin() + static_cast<std::ptrdiff_t>(kept));
  // U = Q·U_small, truncated to k columns.
  const Matrix u_full = matmul(y, small.u);
  out.u = Matrix(n, kept);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < kept; ++j) {
      out.u(i, j) = u_full(i, j);
    }
  }
  out.vt = small.vt.slice_rows(0, kept);
  return out;
}

Matrix svd_reconstruct(const ThinSvd& s) {
  Matrix us = s.u;
  for (std::size_t i = 0; i < us.rows(); ++i) {
    auto row = us.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] *= s.sigma[j];
    }
  }
  return matmul(us, s.vt);
}

}  // namespace arams::linalg
