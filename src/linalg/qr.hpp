#pragma once
// Householder QR factorization. Used for generating random orthogonal
// factors in the synthetic data generators and for orthonormalizing
// projection bases.

#include "linalg/matrix.hpp"

namespace arams::linalg {

struct QrResult {
  Matrix q;  ///< m×n with orthonormal columns (thin Q).
  Matrix r;  ///< n×n upper triangular.
};

/// Thin QR of an m×n matrix with m >= n via Householder reflections.
/// Throws CheckError if m < n.
QrResult householder_qr(const Matrix& a);

/// Orthonormalizes the columns of `a` in place using modified Gram–Schmidt
/// with one reorthogonalization pass. Cheaper than full QR when only Q is
/// needed and n is small; returns the numerical rank found (columns beyond
/// it are zeroed).
std::size_t orthonormalize_columns(Matrix& a);

/// Max |QᵀQ - I| — orthonormality defect, used in tests and diagnostics.
double orthonormality_defect(const Matrix& q);

}  // namespace arams::linalg
