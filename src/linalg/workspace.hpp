#pragma once
// linalg::Workspace — a grow-only arena of reusable scratch buffers for the
// dense-kernel call chain (Gram products, Jacobi eig, Σ·Vᵀ SVD).
//
// Why: the FD shrink cycle runs millions of times per stream. Every scratch
// matrix it allocates (Gram, eig rotation accumulator, Uᵀ·B) is the same
// shape on every call, so a caller-owned workspace turns the whole cycle
// allocation-free at steady state: buffers reshape in place and std::vector
// capacity is never released.
//
// Ownership rules:
//  * One Workspace per owning object (FrequentDirections, TruncatedSvdSketch,
//    a merge call). NOT thread-safe — never share across threads.
//  * Slots are keyed by the constants in `wslot`; each kernel layer owns a
//    disjoint slot range, so the nested call chain
//    sigma_vt_svd → gram_rows → jacobi_eigen_symmetric never aliases a live
//    buffer. New kernels must claim fresh slot ids, not reuse these.
//  * mat()/vec()/idx() return storage with UNSPECIFIED contents; callers
//    must fully overwrite (or zero) what they read.
//
// Telemetry: total reserved bytes are published to the
// "linalg.workspace_bytes" gauge whenever an arena grows, so a stream job
// can confirm scratch memory stabilizes after warm-up.

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

#include "linalg/eigen_sym.hpp"
#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace arams::linalg {

/// Slot ids. Each kernel layer uses its own ids so nested calls compose.
namespace wslot {
inline constexpr std::size_t kSvdGram = 0;   ///< sigma_vt_svd / gram_row_svd
inline constexpr std::size_t kEigWork = 1;   ///< jacobi eig rotation target
inline constexpr std::size_t kEigVectors = 2;  ///< jacobi eig accumulator
inline constexpr std::size_t kEigValues = 0;   ///< vec slot: unsorted values
inline constexpr std::size_t kEigOrder = 0;    ///< idx slot: sort permutation
// Tridiagonal eigensolver (eigen_tridiag.cpp). Jacobi and tridiag are
// alternatives at the same layer, but they keep disjoint ids so flipping
// ARAMS_EIG_METHOD mid-process never hands one solver the other's scratch.
inline constexpr std::size_t kTrdWork = 3;     ///< reduction target / V store
inline constexpr std::size_t kTrdPanelV = 4;   ///< dlatrd panel V (n×nb)
inline constexpr std::size_t kTrdPanelW = 5;   ///< dlatrd panel W (n×nb)
inline constexpr std::size_t kTrdUpdate = 6;   ///< V·Wᵀ trailing product
inline constexpr std::size_t kTrdZ = 7;        ///< QL rotation accumulator
inline constexpr std::size_t kTrdDiag = 1;     ///< vec slot: tridiag diagonal
inline constexpr std::size_t kTrdOff = 2;      ///< vec slot: tridiag off-diag
inline constexpr std::size_t kTrdTau = 3;      ///< vec slot: Householder taus
inline constexpr std::size_t kTrdScratch = 4;  ///< vec slot: reflector scratch
inline constexpr std::size_t kTrdScratch2 = 5; ///< vec slot: panel corrections
// Downstream distance engine (embed/distance.cpp) and its consumers
// (exact kNN, NN-descent scoring, UMAP transform, OPTICS, ABOD, k-means).
// The engine nests inside snapshot paths that also run the SVD/eig stack
// above, so it claims disjoint ids.
inline constexpr std::size_t kDistBlock = 8;    ///< pairwise d² block
inline constexpr std::size_t kDistGather = 9;   ///< gathered candidate rows
inline constexpr std::size_t kDistGram = 10;    ///< candidate Gram matrix
inline constexpr std::size_t kDistXNorms = 6;   ///< vec slot: query ‖·‖²
inline constexpr std::size_t kDistYNorms = 7;   ///< vec slot: reference ‖·‖²
// Approximate-NN layer (embed/ann/). Searcher queries nest on top of the
// distance engine (whose kernels consume the kDist* ids above) and inside
// consumers that hold live kDist* references of their own (OPTICS keeps a
// distance row, ABOD a neighbour Gram), so the ANN scratch claims fresh
// ids at every arena.
inline constexpr std::size_t kAnnBlock = 11;   ///< query-vs-index d²/Gram block
inline constexpr std::size_t kAnnGather = 12;  ///< gathered candidate rows
inline constexpr std::size_t kAnnGram = 13;    ///< leaf/candidate Gram matrix
inline constexpr std::size_t kAnnProj = 14;    ///< rp-tree projection column
inline constexpr std::size_t kAnnQNorms = 8;   ///< vec slot: query ‖·‖²
inline constexpr std::size_t kAnnDists = 9;    ///< vec slot: candidate d²
inline constexpr std::size_t kAnnOrder = 1;    ///< idx slot: candidate indices
// fp32 ingest lane (core/sketcher.cpp widening shim and native fp32
// push_batch overrides). Widening an fp32 batch happens while sketch
// scratch above may be live, so the lane claims fresh ids.
inline constexpr std::size_t kIngestWiden = 15;  ///< widened fp32 batch
inline constexpr std::size_t kIngestRow = 10;    ///< vec slot: widened row
// Sharded ingest + parallel merge (core/sharded.cpp, core/merge.cpp).
// Each merge group / ingest shard owns its own arena, but the merge stack
// nests above sigma_vt_svd in the same arena, so it claims a fresh id.
inline constexpr std::size_t kMergeStack = 16;   ///< stacked group sketches
inline constexpr std::size_t kShardGather = 17;  ///< gathered shard rows
}  // namespace wslot

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// Matrix-shaped scratch for `slot`, reshaped to rows×cols in place.
  /// Contents unspecified. The reference stays valid until the slot is
  /// requested again with a larger footprint.
  Matrix& mat(std::size_t slot, std::size_t rows, std::size_t cols);

  /// Flat double scratch of length n for `slot`. Contents unspecified.
  std::span<double> vec(std::size_t slot, std::size_t n);

  /// Index scratch of length n for `slot` (sort permutations).
  std::span<std::size_t> idx(std::size_t slot, std::size_t n);

  /// Reusable eigendecomposition output — sigma_vt_svd and gram_row_svd
  /// funnel their internal eigen_symmetric call through this so the
  /// eigenvector matrix is recycled too.
  SymmetricEig& eig() { return eig_; }

  /// Reusable row-space SVD output — callers that rebuild a RowSpaceSvd
  /// per call (e.g. PCA snapshot projection) draw it from here so the
  /// u/w factors are recycled alongside the rest of the arena.
  RowSpaceSvd& rsvd() { return rsvd_; }

  /// Total bytes of the *live* payloads across every buffer — the honest
  /// logical footprint (what the current shapes actually occupy).
  [[nodiscard]] std::size_t bytes() const;

  /// Total heap bytes currently reserved across every buffer (grow-only
  /// high-water mark; >= bytes()). This is what the
  /// "linalg.workspace_bytes" gauge publishes — stability of the reserved
  /// total is the allocation-free-steady-state signal.
  [[nodiscard]] std::size_t capacity_bytes() const;

  /// Re-publishes capacity_bytes() to the "linalg.workspace_bytes" gauge.
  /// The workspace-accepting SVD entry points call this after the eig
  /// output (whose growth the arena cannot observe directly) may have
  /// grown.
  void publish() const { publish_bytes(); }

 private:
  void publish_bytes() const;

  // Deques, not vectors: acquiring a new slot must never move existing
  // slots — callers hold live references across nested acquisitions (e.g.
  // the eig rotation target while the eigenvector accumulator is fetched).
  std::deque<Matrix> mats_;
  std::deque<std::vector<double>> vecs_;
  std::deque<std::vector<std::size_t>> idxs_;
  SymmetricEig eig_;
  RowSpaceSvd rsvd_;
};

}  // namespace arams::linalg
