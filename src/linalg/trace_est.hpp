#pragma once
// Stochastic trace estimation.
//
// Section IV-A2 of the paper uses plain Gaussian probes for the
// reconstruction-error estimate and names stochastic trace estimation
// (Hutchinson) and variance-reduced variants as the future-work upgrades
// "with the potential to significantly improve runtime and error rates for
// rank adaptivity". Both are implemented here:
//  * hutchinson_trace — Rademacher probes; Var ∝ ‖M‖²_F/ν.
//  * hutchpp_trace   — Hutch++ (Meyer, Musco, Musco, Woodruff 2021):
//    deflates the top range of M exactly and runs Hutchinson on the
//    remainder; error O(1/ν) instead of O(1/√ν) for PSD operators.
//
// Both operate on a symmetric operator given only its matvec, like the
// power iteration in norms.hpp.

#include <functional>
#include <span>
#include <string>

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace arams::linalg {

using SymMatVec =
    std::function<void(std::span<const double>, std::span<double>)>;

/// Hutchinson estimator: (1/ν)·Σ zᵀMz with z Rademacher. Unbiased.
double hutchinson_trace(const SymMatVec& matvec, std::size_t dim, int probes,
                        Rng& rng);

/// Hutch++: spends probes/3 on a sketch of the range, probes/3 on the
/// exact trace of the deflated part, probes/3 on Hutchinson of the rest.
/// Requires probes >= 3; unbiased; far lower variance on PSD M with decay.
double hutchpp_trace(const SymMatVec& matvec, std::size_t dim, int probes,
                     Rng& rng);

/// Which estimator drives the Algorithm-1 reconstruction-error estimate.
enum class ResidualEstimator {
  kGaussianProbes,  ///< the paper's random-matrix-multiplication estimate
  kHutchinson,      ///< Rademacher stochastic trace estimation
  kHutchPlusPlus,   ///< variance-reduced Hutch++
};

/// ‖X − X·VᵀV‖²_F estimated with the selected strategy and `probes`
/// matvec-equivalents. V must have orthonormal rows. All strategies are
/// unbiased; they differ in variance per probe.
double estimate_residual(const Matrix& x, const Matrix& v,
                         ResidualEstimator estimator, int probes, Rng& rng);

/// Parses "gaussian" / "hutchinson" / "hutchpp"; throws on other input.
ResidualEstimator parse_residual_estimator(const std::string& name);

/// Display name of an estimator.
std::string residual_estimator_name(ResidualEstimator estimator);

}  // namespace arams::linalg
