#pragma once
// BLAS-like dense kernels. These are the only loops that matter for
// throughput: FD's shrink is dominated by the Gram product B·Bᵀ and the
// back-multiplication Uᵀ·B, and the data generator by orthogonal assembly.
//
// Kernels are written cache-aware (ikj order, register blocking on the k
// loop) but deliberately scalar: the container has no SIMD guarantees and
// correctness/tests come first. All shapes are validated with ARAMS_CHECK.

#include <span>

#include "linalg/matrix.hpp"

namespace arams::linalg {

/// y += alpha * x (sizes must match).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scale(std::span<double> x, double alpha);

/// Dot product of equal-length vectors.
double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm of a vector.
double norm2(std::span<const double> x);

/// Squared Euclidean norm.
double norm2_squared(std::span<const double> x);

/// C = A * B (m×k times k×n).
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = Aᵀ * B (A is k×m, B is k×n → result m×n).
Matrix matmul_tn(const Matrix& a, const Matrix& b);

/// C = A * Bᵀ (A is m×k, B is n×k → result m×n).
Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// Gram matrix G = A * Aᵀ (m×m, symmetric). Only the full matrix is
/// returned; symmetry is exploited during computation.
Matrix gram_rows(const Matrix& a);

/// Gram matrix G = Aᵀ * A (n×n, symmetric).
Matrix gram_cols(const Matrix& a);

/// y = A * x (A m×n, x length n, y length m).
void gemv(const Matrix& a, std::span<const double> x, std::span<double> y);

/// y = Aᵀ * x (A m×n, x length m, y length n).
void gemv_t(const Matrix& a, std::span<const double> x, std::span<double> y);

/// Frobenius norm of a matrix.
double frobenius_norm(const Matrix& a);

/// Squared Frobenius norm.
double frobenius_norm_squared(const Matrix& a);

}  // namespace arams::linalg
