#pragma once
// BLAS-like dense kernels. These are the only loops that matter for
// throughput: FD's shrink is dominated by the Gram product B·Bᵀ and the
// back-multiplication Uᵀ·B, and the data generator by orthogonal assembly.
//
// The matmul/Gram family is cache-blocked (KC×NC panels packed into
// contiguous scratch) with an MR=4 register-blocked micro-kernel, and
// dispatches row bands onto the shared parallel::ThreadPool once a call
// exceeds a flop threshold — below it everything stays sequential so the
// small shapes FD produces at modest ℓ pay zero overhead. The parallel
// partition is over disjoint output rows with an unchanged inner loop
// order, so tiled, parallel and sequential paths produce identical results.
// Packing scratch is thread-local and grow-only: steady-state calls do not
// touch the heap. Dispatches are counted in the
// "linalg.gemm_parallel_count" metric.
//
// All kernels take MatrixView, so they accept an owning Matrix or a
// zero-copy row-range view (MatrixView::rows_of) interchangeably. The
// out-parameter overloads reshape `out` in place (grow-only storage) for
// allocation-free reuse; the value-returning forms are conveniences that
// allocate a fresh result.
//
// Mixed precision: the MatrixViewF overloads accept fp32 operands and
// widen them to fp64 at panel-packing time, register tile by register
// tile, so the 4×8 fp64 micro-kernel and its accumulation order are
// untouched. Results are therefore bitwise identical to widening the
// whole operand up front — only the pack/load bandwidth halves. The
// fp32 vector kernels likewise accumulate in double.

#include <span>

#include "linalg/matrix.hpp"

namespace arams::linalg {

/// y += alpha * x (sizes must match).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// y += alpha * x with fp32 x widened term-wise (fp64 accumulation).
void axpy(double alpha, std::span<const float> x, std::span<double> y);

/// x *= alpha.
void scale(std::span<double> x, double alpha);

/// Dot product of equal-length vectors.
double dot(std::span<const double> x, std::span<const double> y);

/// Dot product of fp32 vectors, accumulated in double.
double dot(std::span<const float> x, std::span<const float> y);

/// Euclidean norm of a vector.
double norm2(std::span<const double> x);
double norm2(std::span<const float> x);

/// Squared Euclidean norm.
double norm2_squared(std::span<const double> x);
double norm2_squared(std::span<const float> x);

/// C = A * B (m×k times k×n).
Matrix matmul(MatrixView a, MatrixView b);
void matmul(MatrixView a, MatrixView b, Matrix& out);

/// C = A * B with fp32 operands (fp64 accumulation, fp64 result).
Matrix matmul(MatrixViewF a, MatrixViewF b);
void matmul(MatrixViewF a, MatrixViewF b, Matrix& out);

/// C = Aᵀ * B (A is k×m, B is k×n → result m×n).
Matrix matmul_tn(MatrixView a, MatrixView b);
void matmul_tn(MatrixView a, MatrixView b, Matrix& out);

/// C = Aᵀ * B with fp32 operands.
Matrix matmul_tn(MatrixViewF a, MatrixViewF b);
void matmul_tn(MatrixViewF a, MatrixViewF b, Matrix& out);

/// C = Aᵀ * B with fp64 A and fp32 B — the shape the Gaussian sketch's
/// native fp32 ingest needs (fp64 coefficient panel times fp32 batch).
Matrix matmul_tn(MatrixView a, MatrixViewF b);
void matmul_tn(MatrixView a, MatrixViewF b, Matrix& out);

/// C = A * Bᵀ (A is m×k, B is n×k → result m×n).
Matrix matmul_nt(MatrixView a, MatrixView b);
void matmul_nt(MatrixView a, MatrixView b, Matrix& out);

/// Gram matrix G = A * Aᵀ (m×m, symmetric). Only the upper triangle is
/// computed (4×4 dot tiles); the lower is mirrored afterwards.
Matrix gram_rows(MatrixView a);
void gram_rows(MatrixView a, Matrix& out);

/// Gram matrix G = Aᵀ * A (n×n, symmetric).
Matrix gram_cols(MatrixView a);
void gram_cols(MatrixView a, Matrix& out);

/// y = A * x (A m×n, x length n, y length m).
void gemv(MatrixView a, std::span<const double> x, std::span<double> y);

/// y = Aᵀ * x (A m×n, x length m, y length n).
void gemv_t(MatrixView a, std::span<const double> x, std::span<double> y);

/// Frobenius norm of a matrix.
double frobenius_norm(MatrixView a);

/// Squared Frobenius norm.
double frobenius_norm_squared(MatrixView a);

}  // namespace arams::linalg
