#pragma once
// BLAS-like dense kernels. These are the only loops that matter for
// throughput: FD's shrink is dominated by the Gram product B·Bᵀ and the
// back-multiplication Uᵀ·B, and the data generator by orthogonal assembly.
//
// The matmul/Gram family is cache-blocked (KC×NC panels packed into
// contiguous scratch) with an MR=4 register-blocked micro-kernel, and
// dispatches row bands onto the shared parallel::ThreadPool once a call
// exceeds a flop threshold — below it everything stays sequential so the
// small shapes FD produces at modest ℓ pay zero overhead. The parallel
// partition is over disjoint output rows with an unchanged inner loop
// order, so tiled, parallel and sequential paths produce identical results.
// Packing scratch is thread-local and grow-only: steady-state calls do not
// touch the heap. Dispatches are counted in the
// "linalg.gemm_parallel_count" metric.
//
// All kernels take MatrixView, so they accept an owning Matrix or a
// zero-copy row-range view (MatrixView::rows_of) interchangeably. The
// out-parameter overloads reshape `out` in place (grow-only storage) for
// allocation-free reuse; the value-returning forms are conveniences that
// allocate a fresh result.

#include <span>

#include "linalg/matrix.hpp"

namespace arams::linalg {

/// y += alpha * x (sizes must match).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scale(std::span<double> x, double alpha);

/// Dot product of equal-length vectors.
double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm of a vector.
double norm2(std::span<const double> x);

/// Squared Euclidean norm.
double norm2_squared(std::span<const double> x);

/// C = A * B (m×k times k×n).
Matrix matmul(MatrixView a, MatrixView b);
void matmul(MatrixView a, MatrixView b, Matrix& out);

/// C = Aᵀ * B (A is k×m, B is k×n → result m×n).
Matrix matmul_tn(MatrixView a, MatrixView b);
void matmul_tn(MatrixView a, MatrixView b, Matrix& out);

/// C = A * Bᵀ (A is m×k, B is n×k → result m×n).
Matrix matmul_nt(MatrixView a, MatrixView b);
void matmul_nt(MatrixView a, MatrixView b, Matrix& out);

/// Gram matrix G = A * Aᵀ (m×m, symmetric). Only the upper triangle is
/// computed (4×4 dot tiles); the lower is mirrored afterwards.
Matrix gram_rows(MatrixView a);
void gram_rows(MatrixView a, Matrix& out);

/// Gram matrix G = Aᵀ * A (n×n, symmetric).
Matrix gram_cols(MatrixView a);
void gram_cols(MatrixView a, Matrix& out);

/// y = A * x (A m×n, x length n, y length m).
void gemv(MatrixView a, std::span<const double> x, std::span<double> y);

/// y = Aᵀ * x (A m×n, x length m, y length n).
void gemv_t(MatrixView a, std::span<const double> x, std::span<double> y);

/// Frobenius norm of a matrix.
double frobenius_norm(MatrixView a);

/// Squared Frobenius norm.
double frobenius_norm_squared(MatrixView a);

}  // namespace arams::linalg
