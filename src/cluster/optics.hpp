#pragma once
// OPTICS — Ordering Points To Identify the Clustering Structure (Ankerst,
// Breunig, Kriegel, Sander 1999) — stage 4 of the monitoring pipeline.
//
// optics() produces the reachability ordering; two extractors turn it into
// labels: extract_dbscan (an ε-cut, equivalent to DBSCAN at that ε) and
// extract_xi (ξ-steep up/down cluster boundaries). extract_auto picks the
// ε-cut at a reachability quantile — a robust default when the operator
// has no prior on density, which is the monitoring situation.

#include <limits>
#include <vector>

#include "embed/ann/searcher.hpp"
#include "embed/distance.hpp"
#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"

namespace arams::cluster {

struct OpticsConfig {
  std::size_t min_pts = 5;  ///< core-point neighbourhood size
  double max_eps = std::numeric_limits<double>::infinity();
};

struct OpticsResult {
  std::vector<std::size_t> order;      ///< visit order of the points
  std::vector<double> reachability;    ///< reachability distance per point
  std::vector<double> core_distance;   ///< core distance per point
};

/// Runs OPTICS with brute-force range queries (O(n²) — the embeddings this
/// pipeline clusters are 2-D and a few thousand points). Each visited
/// point's full distance row comes from the shared engine as one 1×n block
/// (embed/distance.hpp), with all point norms hoisted out of the traversal;
/// range-query wall time per call accumulates into the
/// "cluster.core_dist_seconds" histogram. The traversal itself is
/// inherently sequential, so the ordering is identical for any pool size.
OpticsResult optics(const linalg::Matrix& points, const OpticsConfig& config);

/// Workspace-backed variant: the distance row, point norms and core-dist
/// selection scratch all come from `ws` (allocation-free at steady state on
/// the serial path). `opts.use_gemm = false` reproduces the historical
/// per-pair scalar arithmetic bit for bit.
OpticsResult optics(const linalg::Matrix& points, const OpticsConfig& config,
                    linalg::Workspace& ws,
                    const embed::DistanceOptions& opts = {});

/// Searcher-backed variant: range queries go through
/// NeighborSearcher::sq_dists_to over the index's stored points (the two
/// overloads above delegate here with a local `exact` index). An exact
/// index reproduces the historical arithmetic bit for bit.
OpticsResult optics(embed::NeighborSearcher& index, const OpticsConfig& config,
                    linalg::Workspace& ws,
                    const embed::DistanceOptions& opts = {});

/// ε-cut extraction: walking the ordering, a point with reachability > eps
/// starts a new cluster if it is a core point at eps, else is noise (-1).
std::vector<int> extract_dbscan(const OpticsResult& result, double eps);

/// ξ-extraction (simplified valley finder): clusters are maximal runs of
/// the ordering whose reachability sits below (1−ξ) times the bounding
/// steep edges. min_cluster_size filters fragments.
std::vector<int> extract_xi(const OpticsResult& result, double xi,
                            std::size_t min_cluster_size = 5);

/// ε-cut at the given quantile of finite reachability values.
std::vector<int> extract_auto(const OpticsResult& result,
                              double quantile = 0.75);

/// Number of clusters in a label vector (ignoring noise = -1).
std::size_t cluster_count(const std::vector<int>& labels);

}  // namespace arams::cluster
