#pragma once
// HDBSCAN* (Campello, Moulavi, Sander 2013) — hierarchical density-based
// clustering with stability-based flat extraction.
//
// The paper's artifact environment ships the hdbscan package alongside
// OPTICS; HDBSCAN is the robust default when cluster densities differ (a
// single OPTICS ε-cut cannot recover clusters of different densities — see
// the tests). Dense O(n²) implementation, matching the embedding sizes the
// monitoring pipeline produces:
//   1. core distance = distance to the min_samples-th neighbour;
//   2. mutual reachability d_mr(a,b) = max(core_a, core_b, d(a,b));
//   3. minimum spanning tree of the mutual-reachability graph (Prim);
//   4. single-linkage hierarchy from the sorted MST edges;
//   5. condensed tree with min_cluster_size;
//   6. flat clusters = the stability-maximizing antichain.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace arams::cluster {

struct HdbscanConfig {
  std::size_t min_samples = 5;       ///< core-distance neighbourhood
  std::size_t min_cluster_size = 5;  ///< smallest cluster kept
  /// Let the root (the whole dataset) win the stability competition. Off
  /// by default, matching the reference implementation: a monitoring view
  /// that labels every shot as one cluster carries no information.
  bool allow_single_cluster = false;
};

struct HdbscanResult {
  std::vector<int> labels;            ///< cluster per point, −1 = noise
  std::vector<double> probabilities;  ///< in-cluster membership strength
  std::size_t num_clusters = 0;
};

/// Runs HDBSCAN* over Euclidean points (n×d). Requires
/// n > min_samples and min_cluster_size >= 2.
HdbscanResult hdbscan(const linalg::Matrix& points,
                      const HdbscanConfig& config);

}  // namespace arams::cluster
