#include "cluster/optics.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::cluster {

using linalg::Matrix;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

OpticsResult optics(embed::NeighborSearcher& index, const OpticsConfig& config,
                    linalg::Workspace& ws,
                    const embed::DistanceOptions& opts) {
  const Matrix& points = index.points();
  const std::size_t n = points.rows();
  ARAMS_CHECK(n >= 2, "OPTICS needs at least two points");
  ARAMS_CHECK(config.min_pts >= 2 && config.min_pts <= n,
              "min_pts out of range");
  static obs::Histogram& core_dist_seconds =
      obs::metrics().histogram("cluster.core_dist_seconds");
  Accumulator range_time;

  OpticsResult result;
  result.order.reserve(n);
  result.reachability.assign(n, kInf);
  result.core_distance.assign(n, kInf);

  std::vector<bool> processed(n, false);
  std::vector<double> dists(n);
  std::vector<double> dsq(n);
  std::vector<std::size_t> neighbors;

  const auto nd = ws.vec(linalg::wslot::kDistXNorms, n);  // selection scratch

  const auto range_query = [&](std::size_t p) {
    Stopwatch timer;
    index.sq_dists_to(points.row(p), ws, dsq, opts);
    neighbors.clear();
    for (std::size_t q = 0; q < n; ++q) {
      if (q == p) continue;
      dists[q] = std::sqrt(dsq[q]);
      if (dists[q] <= config.max_eps) {
        neighbors.push_back(q);
      }
    }
    // Core distance = distance to the (min_pts−1)-th neighbour (the point
    // itself counts toward min_pts, as in the original paper).
    if (neighbors.size() + 1 >= config.min_pts) {
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        nd[i] = dists[neighbors[i]];
      }
      const std::size_t kth = config.min_pts - 2;  // 0-based among neighbours
      std::nth_element(nd.begin(),
                       nd.begin() + static_cast<std::ptrdiff_t>(kth),
                       nd.begin() + static_cast<std::ptrdiff_t>(
                                        neighbors.size()));
      result.core_distance[p] = nd[kth];
    } else {
      result.core_distance[p] = kInf;
    }
    range_time.add(timer.seconds());
  };

  // Lazy-deletion min-heap keyed by candidate reachability.
  using Seed = std::pair<double, std::size_t>;
  std::priority_queue<Seed, std::vector<Seed>, std::greater<>> seeds;

  const auto update_seeds = [&](std::size_t p) {
    const double core = result.core_distance[p];
    if (std::isinf(core)) return;  // not a core point: expands nothing
    for (const std::size_t q : neighbors) {
      if (processed[q]) continue;
      const double reach = std::max(core, dists[q]);
      if (reach < result.reachability[q]) {
        result.reachability[q] = reach;
        seeds.emplace(reach, q);
      }
    }
  };

  for (std::size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    processed[start] = true;
    range_query(start);
    result.order.push_back(start);
    update_seeds(start);

    while (!seeds.empty()) {
      const auto [r, q] = seeds.top();
      seeds.pop();
      if (processed[q] || r > result.reachability[q]) continue;  // stale
      processed[q] = true;
      range_query(q);
      result.order.push_back(q);
      update_seeds(q);
    }
  }
  ARAMS_CHECK(result.order.size() == n, "OPTICS ordering incomplete");
  core_dist_seconds.observe(range_time.total_seconds());
  return result;
}

OpticsResult optics(const Matrix& points, const OpticsConfig& config,
                    linalg::Workspace& ws,
                    const embed::DistanceOptions& opts) {
  const auto index = embed::make_searcher("exact", /*seed=*/0);
  index->build(points, ws, opts);
  return optics(*index, config, ws, opts);
}

OpticsResult optics(const Matrix& points, const OpticsConfig& config) {
  linalg::Workspace ws;
  return optics(points, config, ws);
}

std::vector<int> extract_dbscan(const OpticsResult& result, double eps) {
  const std::size_t n = result.order.size();
  std::vector<int> labels(n, -1);
  int cluster = -1;
  for (const std::size_t p : result.order) {
    if (result.reachability[p] > eps) {
      if (result.core_distance[p] <= eps) {
        ++cluster;
        labels[p] = cluster;
      }  // else: noise, stays -1
    } else if (cluster >= 0) {
      labels[p] = cluster;
    }
  }
  return labels;
}

namespace {

/// Recursive reachability-valley splitting (simplified ξ extraction, see
/// header). Positions are indices into result.order.
void split_interval(const std::vector<double>& r, std::size_t s,
                    std::size_t e, double xi, std::size_t min_size,
                    std::vector<std::pair<std::size_t, std::size_t>>& leaves) {
  if (e - s < min_size) return;
  // Largest interior reachability is the candidate split point; position s
  // is excluded because r[s] is the entry edge into this valley.
  std::size_t m = s + 1;
  for (std::size_t i = s + 1; i < e; ++i) {
    if (r[i] > r[m]) m = i;
  }
  // Significance: the candidate must be a statistical outlier against the
  // rest of the valley (mean + 3σ), shrunk by the ξ factor. Ordinary
  // intra-cluster reachability noise stays below this; genuine
  // cluster-boundary spikes exceed it by an order of magnitude.
  double mean = 0.0, m2 = 0.0;
  std::size_t count = 0;
  for (std::size_t i = s + 1; i < e; ++i) {
    if (i == m || std::isinf(r[i])) continue;
    ++count;
    const double delta = r[i] - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (r[i] - mean);
  }
  const double stddev =
      count > 1 ? std::sqrt(m2 / static_cast<double>(count - 1)) : 0.0;
  const bool significant =
      std::isinf(r[m]) ||
      (count > 1 && r[m] * (1.0 - xi) > mean + 3.0 * stddev);
  if (!significant) {
    leaves.emplace_back(s, e);
    return;
  }
  const std::size_t before = leaves.size();
  split_interval(r, s, m, xi, min_size, leaves);
  split_interval(r, m, e, xi, min_size, leaves);
  if (leaves.size() == before) {
    // Both halves too small — keep the whole interval as one cluster.
    leaves.emplace_back(s, e);
  }
}

}  // namespace

std::vector<int> extract_xi(const OpticsResult& result, double xi,
                            std::size_t min_cluster_size) {
  ARAMS_CHECK(xi > 0.0 && xi < 1.0, "xi must be in (0, 1)");
  const std::size_t n = result.order.size();
  // Reachability in ordering position space.
  std::vector<double> r(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    r[pos] = result.reachability[result.order[pos]];
  }
  std::vector<std::pair<std::size_t, std::size_t>> leaves;
  split_interval(r, 0, n, xi, min_cluster_size, leaves);

  std::vector<int> labels(n, -1);
  int cluster = 0;
  for (const auto& [s, e] : leaves) {
    for (std::size_t pos = s; pos < e; ++pos) {
      labels[result.order[pos]] = cluster;
    }
    ++cluster;
  }
  return labels;
}

std::vector<int> extract_auto(const OpticsResult& result, double quantile) {
  ARAMS_CHECK(quantile > 0.0 && quantile < 1.0, "quantile must be in (0,1)");
  std::vector<double> finite;
  finite.reserve(result.reachability.size());
  for (const double v : result.reachability) {
    if (!std::isinf(v)) finite.push_back(v);
  }
  if (finite.empty()) {
    return std::vector<int>(result.order.size(), -1);
  }
  const auto idx = static_cast<std::size_t>(
      quantile * static_cast<double>(finite.size() - 1));
  std::nth_element(finite.begin(),
                   finite.begin() + static_cast<std::ptrdiff_t>(idx),
                   finite.end());
  // A small headroom above the quantile keeps cluster interiors connected.
  return extract_dbscan(result, finite[idx] * 1.05);
}

std::size_t cluster_count(const std::vector<int>& labels) {
  int mx = -1;
  for (const int l : labels) mx = std::max(mx, l);
  return static_cast<std::size_t>(mx + 1);
}

}  // namespace arams::cluster
