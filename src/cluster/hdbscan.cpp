#include "cluster/hdbscan.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <utility>

#include "util/check.hpp"

namespace arams::cluster {

using linalg::Matrix;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double euclidean(const Matrix& pts, std::size_t a, std::size_t b) {
  double s = 0.0;
  const auto ra = pts.row(a);
  const auto rb = pts.row(b);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    const double d = ra[i] - rb[i];
    s += d * d;
  }
  return std::sqrt(s);
}

struct MstEdge {
  std::size_t a;
  std::size_t b;
  double weight;  ///< mutual-reachability distance
};

/// Single-linkage merge node (ids n..2n−2; leaves are 0..n−1).
struct LinkageNode {
  std::size_t left;
  std::size_t right;
  double distance;
  std::size_t size;
};

/// Condensed-tree cluster.
struct CondensedCluster {
  std::size_t parent;            ///< condensed parent id (self for root)
  double lambda_birth;           ///< 1/distance when the cluster appeared
  double stability = 0.0;
  std::vector<std::size_t> points;        ///< points that fall out here
  std::vector<double> point_lambda;       ///< λ at which each fell out
  std::vector<std::size_t> children;      ///< condensed child ids
  bool selected = false;
};

}  // namespace

HdbscanResult hdbscan(const Matrix& points, const HdbscanConfig& config) {
  const std::size_t n = points.rows();
  ARAMS_CHECK(n >= 2, "HDBSCAN needs at least two points");
  ARAMS_CHECK(config.min_samples >= 1 && config.min_samples < n,
              "min_samples out of range");
  ARAMS_CHECK(config.min_cluster_size >= 2, "min_cluster_size must be >= 2");

  // --- 1. core distances -------------------------------------------------
  std::vector<double> core(n);
  {
    std::vector<double> dists(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        dists[j] = (i == j) ? kInf : euclidean(points, i, j);
      }
      std::nth_element(
          dists.begin(),
          dists.begin() + static_cast<std::ptrdiff_t>(config.min_samples - 1),
          dists.end());
      core[i] = dists[config.min_samples - 1];
    }
  }

  // --- 2+3. MST of the mutual-reachability graph (Prim, dense) ----------
  std::vector<MstEdge> mst;
  mst.reserve(n - 1);
  {
    std::vector<bool> in_tree(n, false);
    std::vector<double> best(n, kInf);
    std::vector<std::size_t> from(n, 0);
    std::size_t current = 0;
    in_tree[0] = true;
    for (std::size_t added = 1; added < n; ++added) {
      for (std::size_t j = 0; j < n; ++j) {
        if (in_tree[j]) continue;
        const double d = euclidean(points, current, j);
        const double mr = std::max({core[current], core[j], d});
        if (mr < best[j]) {
          best[j] = mr;
          from[j] = current;
        }
      }
      std::size_t next = 0;
      double next_w = kInf;
      for (std::size_t j = 0; j < n; ++j) {
        if (!in_tree[j] && best[j] < next_w) {
          next_w = best[j];
          next = j;
        }
      }
      mst.push_back({from[next], next, next_w});
      in_tree[next] = true;
      current = next;
    }
  }
  std::sort(mst.begin(), mst.end(),
            [](const MstEdge& a, const MstEdge& b) {
              return a.weight < b.weight;
            });

  // --- 4. single-linkage hierarchy ---------------------------------------
  // Union-find mapping each component to its current hierarchy node id.
  std::vector<std::size_t> uf_parent(2 * n - 1);
  std::iota(uf_parent.begin(), uf_parent.end(), std::size_t{0});
  const std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    while (uf_parent[x] != x) {
      uf_parent[x] = uf_parent[uf_parent[x]];
      x = uf_parent[x];
    }
    return x;
  };
  std::vector<LinkageNode> nodes;
  nodes.reserve(n - 1);
  for (const auto& e : mst) {
    const std::size_t ra = find(e.a);
    const std::size_t rb = find(e.b);
    const std::size_t id = n + nodes.size();
    const std::size_t size_a = (ra < n) ? 1 : nodes[ra - n].size;
    const std::size_t size_b = (rb < n) ? 1 : nodes[rb - n].size;
    nodes.push_back({ra, rb, e.weight, size_a + size_b});
    uf_parent[ra] = id;
    uf_parent[rb] = id;
  }

  // --- 5. condensed tree --------------------------------------------------
  std::vector<CondensedCluster> clusters;
  {
    CondensedCluster root;
    root.parent = 0;
    root.lambda_birth = 0.0;
    clusters.push_back(std::move(root));
  }

  // Iterative DFS: (hierarchy node, condensed cluster id).
  struct Frame {
    std::size_t node;
    std::size_t cluster;
  };
  std::vector<Frame> stack;
  stack.push_back({2 * n - 2, 0});

  // Collect every leaf under a hierarchy node, with the λ at which the
  // walk down dissolves (all edges below are tighter than lambda).
  const auto collect_points = [&](std::size_t root, std::size_t cluster,
                                  double lambda) {
    std::vector<std::size_t> walk{root};
    while (!walk.empty()) {
      const std::size_t v = walk.back();
      walk.pop_back();
      if (v < n) {
        clusters[cluster].points.push_back(v);
        clusters[cluster].point_lambda.push_back(lambda);
      } else {
        walk.push_back(nodes[v - n].left);
        walk.push_back(nodes[v - n].right);
      }
    }
  };

  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.node < n) {
      // Singleton reaching here falls out at its parent edge's λ — handled
      // by the caller via collect_points; a leaf only lands on the stack
      // from the root when n == 1 (excluded by the checks).
      clusters[frame.cluster].points.push_back(frame.node);
      clusters[frame.cluster].point_lambda.push_back(
          clusters[frame.cluster].lambda_birth);
      continue;
    }
    const LinkageNode& node = nodes[frame.node - n];
    const double lambda =
        node.distance > 0.0 ? 1.0 / node.distance : kInf;
    const std::size_t size_l =
        (node.left < n) ? 1 : nodes[node.left - n].size;
    const std::size_t size_r =
        (node.right < n) ? 1 : nodes[node.right - n].size;
    const bool big_l = size_l >= config.min_cluster_size;
    const bool big_r = size_r >= config.min_cluster_size;

    if (big_l && big_r) {
      // True split: two new condensed clusters born at λ.
      for (const std::size_t side : {node.left, node.right}) {
        CondensedCluster born;
        born.parent = frame.cluster;
        born.lambda_birth = lambda;
        clusters.push_back(std::move(born));
        const std::size_t child_id = clusters.size() - 1;
        clusters[frame.cluster].children.push_back(child_id);
        stack.push_back({side, child_id});
      }
    } else if (big_l || big_r) {
      // The big side continues as the same cluster; the small side's
      // points fall out of it at λ.
      const std::size_t cont = big_l ? node.left : node.right;
      const std::size_t fall = big_l ? node.right : node.left;
      collect_points(fall, frame.cluster, lambda);
      stack.push_back({cont, frame.cluster});
    } else {
      // Both sides below min size: everything falls out at λ.
      collect_points(node.left, frame.cluster, lambda);
      collect_points(node.right, frame.cluster, lambda);
    }
  }

  // --- stability ----------------------------------------------------------
  // Point term: each point contributes (λ_fall-out − λ_birth).
  for (auto& cluster : clusters) {
    double s = 0.0;
    for (std::size_t i = 0; i < cluster.points.size(); ++i) {
      const double lam = std::isinf(cluster.point_lambda[i])
                             ? cluster.lambda_birth
                             : cluster.point_lambda[i];
      s += lam - cluster.lambda_birth;
    }
    cluster.stability = s;
  }
  // Child-departure term: each child's subtree contributes
  // subtree_point_count · (λ_child_birth − λ_birth).
  std::vector<std::size_t> subtree_points(clusters.size(), 0);
  for (std::size_t c = clusters.size(); c-- > 0;) {
    subtree_points[c] += clusters[c].points.size();
    for (const std::size_t child : clusters[c].children) {
      subtree_points[c] += subtree_points[child];
    }
  }
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (const std::size_t child : clusters[c].children) {
      const double dl =
          clusters[child].lambda_birth - clusters[c].lambda_birth;
      clusters[c].stability +=
          static_cast<double>(subtree_points[child]) * dl;
    }
  }

  // --- 6. stability-maximizing selection (bottom-up) ----------------------
  std::vector<double> best_below(clusters.size(), 0.0);
  for (std::size_t c = clusters.size(); c-- > 0;) {
    double children_total = 0.0;
    for (const std::size_t child : clusters[c].children) {
      children_total += best_below[child];
    }
    if (clusters[c].children.empty() ||
        clusters[c].stability >= children_total) {
      best_below[c] = clusters[c].stability;
      clusters[c].selected = true;
    } else {
      best_below[c] = children_total;
      clusters[c].selected = false;
    }
  }
  // The root is never a flat cluster (it would swallow everything) unless
  // it has no children at all or the caller explicitly allows it.
  if (!clusters[0].children.empty() && !config.allow_single_cluster) {
    clusters[0].selected = false;
  }
  // Deselect descendants of selected clusters (antichain property).
  {
    std::vector<std::pair<std::size_t, bool>> walk{{0, false}};
    while (!walk.empty()) {
      const auto [c, covered] = walk.back();
      walk.pop_back();
      bool now_covered = covered;
      if (covered) {
        clusters[c].selected = false;
      } else if (clusters[c].selected) {
        now_covered = true;
      }
      for (const std::size_t child : clusters[c].children) {
        walk.emplace_back(child, now_covered);
      }
    }
  }

  // --- labels + membership probabilities ----------------------------------
  HdbscanResult result;
  result.labels.assign(n, -1);
  result.probabilities.assign(n, 0.0);
  int next_label = 0;
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (!clusters[c].selected) continue;
    const int label = next_label++;
    // Gather all points in the selected cluster's subtree.
    double lambda_max = clusters[c].lambda_birth;
    std::vector<std::pair<std::size_t, double>> members;
    std::vector<std::size_t> walk{c};
    while (!walk.empty()) {
      const std::size_t v = walk.back();
      walk.pop_back();
      for (std::size_t i = 0; i < clusters[v].points.size(); ++i) {
        const double lam = clusters[v].point_lambda[i];
        members.emplace_back(clusters[v].points[i], lam);
        if (!std::isinf(lam)) lambda_max = std::max(lambda_max, lam);
      }
      for (const std::size_t child : clusters[v].children) {
        walk.push_back(child);
      }
    }
    for (const auto& [p, lam] : members) {
      result.labels[p] = label;
      const double l = std::isinf(lam) ? lambda_max : lam;
      result.probabilities[p] =
          lambda_max > clusters[c].lambda_birth
              ? (l - clusters[c].lambda_birth) /
                    (lambda_max - clusters[c].lambda_birth)
              : 1.0;
    }
  }
  result.num_clusters = static_cast<std::size_t>(next_label);
  return result;
}

}  // namespace arams::cluster
