#pragma once
// Fast Angle-Based Outlier Detection (Kriegel, Schubert, Zimek 2008) — the
// anomaly-detection option Section VI mentions for flagging exotic beam
// profiles in the embedded space.
//
// FastABOD approximates the angle-based outlier factor using only each
// point's k nearest neighbours: ABOF(p) is the weighted variance, over
// neighbour pairs (a, b), of ⟨pa, pb⟩ / (‖pa‖²·‖pb‖²), weighted by
// 1/(‖pa‖·‖pb‖). Points deep inside a cluster see neighbours at widely
// varying angles (high variance); outliers see everything in a narrow cone
// (low variance). Low score ⇒ outlier.

#include <vector>

#include "embed/ann/searcher.hpp"
#include "embed/knn.hpp"
#include "linalg/matrix.hpp"

namespace arams::cluster {

struct AbodConfig {
  std::size_t k = 10;  ///< neighbourhood size

  /// kNN searcher used for the neighbourhood graph; the default "auto"
  /// backend keeps the historical exact graph below knn.exact_threshold
  /// points and switches to rpforest above.
  embed::AnnConfig knn;
};

/// ABOF score per point (low = outlying).
std::vector<double> fast_abod(const linalg::Matrix& points,
                              const AbodConfig& config);

/// Workspace-backed FastABOD: the kNN build and the per-point pair
/// statistics run through the shared distance engine — each point's k
/// neighbour-difference vectors are assembled once and their Gram matrix
/// G(a,b) = ⟨pa, pb⟩ supplies every pairwise inner product and norm, so the
/// O(k²) angle loop does O(1) work per pair instead of O(d).
std::vector<double> fast_abod(const linalg::Matrix& points,
                              const AbodConfig& config,
                              linalg::Workspace& ws,
                              const embed::DistanceOptions& opts = {});

/// Exact ABOD over all point pairs — O(n³·d); reference implementation for
/// validating FastABOD's ranking on small sets.
std::vector<double> exact_abod(const linalg::Matrix& points);

/// Indices of the `count` lowest-scoring (most outlying) points, most
/// outlying first.
std::vector<std::size_t> top_outliers(const std::vector<double>& scores,
                                      std::size_t count);

}  // namespace arams::cluster
