#pragma once
// Lloyd's k-means with k-means++ seeding — the classic baseline for the
// clustering stage when the operator *knows* the number of classes (the
// density methods OPTICS/HDBSCAN discover it; k-means anchors the
// comparison in the Fig. 6 benches).

#include <cstdint>
#include <vector>

#include "embed/distance.hpp"
#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"
#include "rng/rng.hpp"

namespace arams::cluster {

struct KmeansConfig {
  std::size_t k = 4;
  int max_iters = 100;
  int restarts = 4;        ///< independent k-means++ runs; best inertia wins
  double tol = 1e-7;       ///< relative inertia improvement to keep going
  std::uint64_t seed = 11;
};

struct KmeansResult {
  std::vector<int> labels;   ///< cluster per point, 0..k−1
  linalg::Matrix centroids;  ///< k×d
  double inertia = 0.0;      ///< Σ squared distance to assigned centroid
  int iterations = 0;        ///< iterations of the winning restart
};

/// Runs k-means on Euclidean rows. Requires k >= 1 and n >= k.
KmeansResult kmeans(const linalg::Matrix& points, const KmeansConfig& config);

/// Workspace-backed k-means: each Lloyd assignment step computes the full
/// n×k point-to-centroid distance matrix as one engine block (squared point
/// norms hoisted across all iterations and restarts); the argmin scan keeps
/// the historical first-wins tie order over centroids.
KmeansResult kmeans(const linalg::Matrix& points, const KmeansConfig& config,
                    linalg::Workspace& ws,
                    const embed::DistanceOptions& opts = {});

}  // namespace arams::cluster
