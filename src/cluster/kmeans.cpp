#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "embed/ann/searcher.hpp"
#include "util/check.hpp"

namespace arams::cluster {

using linalg::Matrix;

namespace {

using embed::sq_dist;

/// k-means++ seeding: each next centroid is drawn ∝ distance² to the
/// nearest already-chosen centroid. Each round's point-vs-centroid distance
/// row comes from the searcher seam (one engine block per new centroid,
/// `d2_scratch` is caller scratch of index.size() entries).
Matrix seed_centroids(const embed::NeighborSearcher& index, std::size_t k,
                      Rng& rng, linalg::Workspace& ws,
                      std::span<double> d2_scratch,
                      const embed::DistanceOptions& opts) {
  const Matrix& points = index.points();
  const std::size_t n = points.rows();
  Matrix centroids(k, points.cols());
  std::vector<double> best_d2(n, std::numeric_limits<double>::infinity());

  std::size_t first = rng.uniform_index(n);
  centroids.set_row(0, points.row(first));
  for (std::size_t c = 1; c < k; ++c) {
    index.sq_dists_to(centroids.row(c - 1), ws, d2_scratch, opts);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      best_d2[i] = std::min(best_d2[i], d2_scratch[i]);
      total += best_d2[i];
    }
    std::size_t chosen = n - 1;
    if (total > 0.0) {
      double target = rng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= best_d2[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.uniform_index(n);  // all points identical
    }
    centroids.set_row(c, points.row(chosen));
  }
  return centroids;
}

KmeansResult run_once(const Matrix& points, const KmeansConfig& config,
                      const embed::NeighborSearcher& index, Rng& rng,
                      linalg::Workspace& ws,
                      std::span<const double> point_norms,
                      std::span<double> seed_scratch,
                      const embed::DistanceOptions& opts) {
  const std::size_t n = points.rows();
  const std::size_t k = config.k;
  KmeansResult result;
  result.centroids = seed_centroids(index, k, rng, ws, seed_scratch, opts);
  result.labels.assign(n, 0);

  double prev_inertia = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> counts(k);
  Matrix sums(k, points.cols());
  Matrix& d2 = ws.mat(linalg::wslot::kDistBlock, n, k);
  for (int iter = 0; iter < config.max_iters; ++iter) {
    // Assignment step: one n×k engine block per Lloyd iteration (point
    // norms are hoisted by the caller; centroid norms change every
    // iteration). The argmin scans centroids in index order, preserving
    // the historical first-wins tie behaviour.
    const auto centroid_norms = ws.vec(linalg::wslot::kDistYNorms, k);
    embed::row_sq_norms(result.centroids, centroid_norms);
    embed::pairwise_sq_dists_prenormed(points, result.centroids, point_norms,
                                       centroid_norms, ws, d2, opts);
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = d2.row(i);
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        if (row[c] < best) {
          best = row[c];
          best_c = static_cast<int>(c);
        }
      }
      result.labels[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;
    result.iterations = iter + 1;

    // Update step.
    sums.fill(0.0);
    std::fill(counts.begin(), counts.end(), std::size_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(result.labels[i]);
      ++counts[c];
      const auto row = points.row(i);
      auto sum = sums.row(c);
      for (std::size_t j = 0; j < row.size(); ++j) {
        sum[j] += row[j];
      }
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: reseed on the farthest point from its centroid.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d = sq_dist(
              points.row(i),
              result.centroids.row(static_cast<std::size_t>(
                  result.labels[i])));
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        result.centroids.set_row(c, points.row(far));
        continue;
      }
      auto centroid = result.centroids.row(c);
      const auto sum = sums.row(c);
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t j = 0; j < centroid.size(); ++j) {
        centroid[j] = sum[j] * inv;
      }
    }

    if (prev_inertia - inertia <=
        config.tol * std::max(prev_inertia, 1e-300)) {
      break;
    }
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace

KmeansResult kmeans(const Matrix& points, const KmeansConfig& config,
                    linalg::Workspace& ws,
                    const embed::DistanceOptions& opts) {
  ARAMS_CHECK(config.k >= 1, "k must be >= 1");
  ARAMS_CHECK(points.rows() >= config.k, "need at least k points");
  ARAMS_CHECK(config.restarts >= 1, "need at least one restart");

  Rng rng(config.seed);
  // Point norms never change: hoist them across every iteration of every
  // restart.
  const auto point_norms = ws.vec(linalg::wslot::kDistXNorms, points.rows());
  embed::row_sq_norms(points, point_norms);

  // The seeding rounds range-query candidate centroids against the point
  // set through the searcher seam (exact: k-means++ needs true distances).
  const auto index = embed::make_searcher("exact", config.seed);
  index->build(points, ws, opts);
  std::vector<double> seed_scratch(points.rows());

  KmeansResult best;
  best.inertia = std::numeric_limits<double>::infinity();
  for (int r = 0; r < config.restarts; ++r) {
    KmeansResult candidate = run_once(points, config, *index, rng, ws,
                                      point_norms, seed_scratch, opts);
    if (candidate.inertia < best.inertia) {
      best = std::move(candidate);
    }
  }
  return best;
}

KmeansResult kmeans(const Matrix& points, const KmeansConfig& config) {
  linalg::Workspace ws;
  return kmeans(points, config, ws);
}

}  // namespace arams::cluster
