#pragma once
// External and internal clustering quality metrics — used to quantify the
// Fig. 6 claim ("data separates into clear clusters" matching the latent
// quadrant-weight classes).

#include <vector>

#include "linalg/matrix.hpp"

namespace arams::cluster {

/// Adjusted Rand Index between two labelings (noise −1 is treated as its
/// own label). 1 = identical partitions, ≈0 = random agreement.
double adjusted_rand_index(const std::vector<int>& a,
                           const std::vector<int>& b);

/// Purity of `predicted` against `truth`: for each predicted cluster take
/// its majority truth class; noise points count as errors.
double purity(const std::vector<int>& predicted,
              const std::vector<int>& truth);

/// Mean silhouette coefficient over clustered (non-noise) points; O(n²).
/// Returns 0 when fewer than two clusters exist.
double silhouette(const linalg::Matrix& points,
                  const std::vector<int>& labels);

}  // namespace arams::cluster
