#include "cluster/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "util/check.hpp"

namespace arams::cluster {

using linalg::Matrix;

double adjusted_rand_index(const std::vector<int>& a,
                           const std::vector<int>& b) {
  ARAMS_CHECK(a.size() == b.size(), "labelings differ in length");
  const std::size_t n = a.size();
  ARAMS_CHECK(n >= 2, "need at least two points");

  std::map<std::pair<int, int>, long> contingency;
  std::map<int, long> count_a, count_b;
  for (std::size_t i = 0; i < n; ++i) {
    ++contingency[{a[i], b[i]}];
    ++count_a[a[i]];
    ++count_b[b[i]];
  }
  const auto comb2 = [](long m) {
    return static_cast<double>(m) * static_cast<double>(m - 1) / 2.0;
  };
  double sum_cells = 0.0;
  for (const auto& [key, c] : contingency) sum_cells += comb2(c);
  double sum_a = 0.0, sum_b = 0.0;
  for (const auto& [key, c] : count_a) sum_a += comb2(c);
  for (const auto& [key, c] : count_b) sum_b += comb2(c);
  const double total = comb2(static_cast<long>(n));
  const double expected = sum_a * sum_b / total;
  const double maximum = 0.5 * (sum_a + sum_b);
  if (maximum - expected == 0.0) return 0.0;
  return (sum_cells - expected) / (maximum - expected);
}

double purity(const std::vector<int>& predicted,
              const std::vector<int>& truth) {
  ARAMS_CHECK(predicted.size() == truth.size(), "labelings differ in length");
  const std::size_t n = predicted.size();
  ARAMS_CHECK(n > 0, "empty labelings");

  std::unordered_map<int, std::unordered_map<int, long>> table;
  for (std::size_t i = 0; i < n; ++i) {
    if (predicted[i] < 0) continue;  // noise counts against purity
    ++table[predicted[i]][truth[i]];
  }
  long correct = 0;
  for (const auto& [cluster, counts] : table) {
    long best = 0;
    for (const auto& [cls, c] : counts) best = std::max(best, c);
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double silhouette(const Matrix& points, const std::vector<int>& labels) {
  const std::size_t n = points.rows();
  ARAMS_CHECK(labels.size() == n, "label length mismatch");

  // Gather clustered points per label.
  std::map<int, std::vector<std::size_t>> clusters;
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] >= 0) clusters[labels[i]].push_back(i);
  }
  if (clusters.size() < 2) return 0.0;

  const auto distance = [&](std::size_t x, std::size_t y) {
    double s = 0.0;
    const auto rx = points.row(x);
    const auto ry = points.row(y);
    for (std::size_t c = 0; c < rx.size(); ++c) {
      const double d = rx[c] - ry[c];
      s += d * d;
    }
    return std::sqrt(s);
  };

  double total = 0.0;
  std::size_t counted = 0;
  for (const auto& [label, members] : clusters) {
    if (members.size() < 2) continue;
    for (const std::size_t i : members) {
      double a = 0.0;
      for (const std::size_t j : members) {
        if (j != i) a += distance(i, j);
      }
      a /= static_cast<double>(members.size() - 1);

      double b = std::numeric_limits<double>::infinity();
      for (const auto& [other_label, other] : clusters) {
        if (other_label == label) continue;
        double m = 0.0;
        for (const std::size_t j : other) m += distance(i, j);
        b = std::min(b, m / static_cast<double>(other.size()));
      }
      const double denom = std::max(a, b);
      if (denom > 0.0) {
        total += (b - a) / denom;
      }
      ++counted;
    }
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace arams::cluster
