#include "cluster/abod.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/blas.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::cluster {

using linalg::Matrix;

std::vector<double> fast_abod(const Matrix& points, const AbodConfig& config,
                              linalg::Workspace& ws,
                              const embed::DistanceOptions& opts) {
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  ARAMS_CHECK(config.k >= 2, "ABOD needs k >= 2");
  ARAMS_CHECK(n > config.k, "need more points than k");
  const std::size_t k = config.k;

  const auto searcher = embed::make_searcher(config.knn);
  searcher->build(points, ws, opts);
  embed::KnnGraph graph;
  searcher->query_graph(k, ws, graph, opts);

  std::vector<double> scores(n, 0.0);
  // Per-point scratch: the k neighbour-difference vectors and their Gram
  // matrix, reused (grow-only) across all n points.
  Matrix& diffs = ws.mat(linalg::wslot::kDistGather, k, dim);
  Matrix& gram = ws.mat(linalg::wslot::kDistGram, k, k);
  std::vector<double> norms(k);

  for (std::size_t p = 0; p < n; ++p) {
    const auto row_p = points.row(p);
    for (std::size_t a = 0; a < k; ++a) {
      const auto row_a = points.row(graph.neighbor(p, a));
      const auto da = diffs.row(a);
      for (std::size_t c = 0; c < dim; ++c) {
        da[c] = row_a[c] - row_p[c];
      }
    }
    // One tiled Gram product hands every pair its inner product and both
    // norms; the O(k²) angle-statistics loop below no longer touches d.
    linalg::gram_rows(diffs, gram);
    for (std::size_t a = 0; a < k; ++a) {
      norms[a] = std::sqrt(gram(a, a));
    }
    double wsum = 0.0, mean = 0.0, m2 = 0.0;
    for (std::size_t a = 0; a < k; ++a) {
      if (norms[a] == 0.0) continue;
      for (std::size_t b = a + 1; b < k; ++b) {
        if (norms[b] == 0.0) continue;
        const double inner = gram(a, b);
        const double value =
            inner / (norms[a] * norms[a] * norms[b] * norms[b]);
        const double w = 1.0 / (norms[a] * norms[b]);
        // West's incremental weighted variance.
        wsum += w;
        const double delta = value - mean;
        mean += (w / wsum) * delta;
        m2 += w * delta * (value - mean);
      }
    }
    scores[p] = (wsum > 0.0) ? m2 / wsum : 0.0;
  }
  return scores;
}

std::vector<double> fast_abod(const Matrix& points, const AbodConfig& config) {
  linalg::Workspace ws;
  return fast_abod(points, config, ws);
}

std::vector<double> exact_abod(const Matrix& points) {
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  ARAMS_CHECK(n >= 3, "exact ABOD needs at least three points");

  std::vector<double> scores(n, 0.0);
  std::vector<double> da(dim), db(dim);
  for (std::size_t p = 0; p < n; ++p) {
    const auto row_p = points.row(p);
    double wsum = 0.0, mean = 0.0, m2 = 0.0;
    for (std::size_t a = 0; a < n; ++a) {
      if (a == p) continue;
      const auto row_a = points.row(a);
      double na = 0.0;
      for (std::size_t c = 0; c < dim; ++c) {
        da[c] = row_a[c] - row_p[c];
        na += da[c] * da[c];
      }
      if (na == 0.0) continue;
      na = std::sqrt(na);
      for (std::size_t b = a + 1; b < n; ++b) {
        if (b == p) continue;
        const auto row_b = points.row(b);
        double nb = 0.0, inner = 0.0;
        for (std::size_t c = 0; c < dim; ++c) {
          db[c] = row_b[c] - row_p[c];
          nb += db[c] * db[c];
          inner += da[c] * db[c];
        }
        if (nb == 0.0) continue;
        nb = std::sqrt(nb);
        const double value = inner / (na * na * nb * nb);
        const double w = 1.0 / (na * nb);
        wsum += w;
        const double delta = value - mean;
        mean += (w / wsum) * delta;
        m2 += w * delta * (value - mean);
      }
    }
    scores[p] = (wsum > 0.0) ? m2 / wsum : 0.0;
  }
  return scores;
}

std::vector<std::size_t> top_outliers(const std::vector<double>& scores,
                                      std::size_t count) {
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  count = std::min(count, scores.size());
  std::partial_sort(idx.begin(),
                    idx.begin() + static_cast<std::ptrdiff_t>(count),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      return scores[a] < scores[b];
                    });
  idx.resize(count);
  return idx;
}

}  // namespace arams::cluster
