#include "embed/umap.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "embed/pca.hpp"
#include "linalg/blas.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace arams::embed {

using linalg::Matrix;

SmoothKnn smooth_knn_distances(const KnnGraph& graph,
                               double local_connectivity, int iterations) {
  const std::size_t n = graph.n;
  const std::size_t k = graph.k;
  SmoothKnn out;
  out.rho.resize(n, 0.0);
  out.sigma.resize(n, 1.0);
  const double target = std::log2(static_cast<double>(k));

  for (std::size_t i = 0; i < n; ++i) {
    // ρᵢ: distance to the ⌈local_connectivity⌉-th non-zero neighbour
    // (interpolated; with the default 1.0 this is simply the nearest).
    std::vector<double> nonzero;
    nonzero.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      const double d = graph.distance(i, j);
      if (d > 0.0) nonzero.push_back(d);
    }
    if (!nonzero.empty()) {
      const auto idx = static_cast<std::size_t>(
          std::floor(local_connectivity)) ;
      if (idx >= 1 && idx <= nonzero.size()) {
        const double frac = local_connectivity - std::floor(local_connectivity);
        out.rho[i] = nonzero[idx - 1];
        if (frac > 0.0 && idx < nonzero.size()) {
          out.rho[i] += frac * (nonzero[idx] - nonzero[idx - 1]);
        }
      } else {
        out.rho[i] = *std::max_element(nonzero.begin(), nonzero.end());
      }
    }

    // Binary search σᵢ so that Σⱼ exp(−max(0, dᵢⱼ−ρᵢ)/σᵢ) = log₂(k).
    double lo = 0.0;
    double hi = std::numeric_limits<double>::infinity();
    double mid = 1.0;
    for (int it = 0; it < iterations; ++it) {
      double sum = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        const double d = graph.distance(i, j) - out.rho[i];
        sum += (d <= 0.0) ? 1.0 : std::exp(-d / mid);
      }
      if (std::abs(sum - target) < 1e-5) break;
      if (sum > target) {
        hi = mid;
        mid = (lo + hi) / 2.0;
      } else {
        lo = mid;
        mid = std::isinf(hi) ? mid * 2.0 : (lo + hi) / 2.0;
      }
    }
    // Bandwidth floor relative to the mean neighbour distance, as in the
    // reference implementation.
    double mean_d = 0.0;
    for (std::size_t j = 0; j < k; ++j) mean_d += graph.distance(i, j);
    mean_d /= static_cast<double>(k);
    out.sigma[i] = std::max(mid, 1e-3 * mean_d);
    if (out.sigma[i] <= 0.0) out.sigma[i] = 1.0;
  }
  return out;
}

FuzzyGraph fuzzy_simplicial_set(const KnnGraph& graph,
                                const SmoothKnn& smooth) {
  const std::size_t n = graph.n;
  const std::size_t k = graph.k;
  // Directed membership strengths, then w = a + b − ab.
  std::map<std::pair<std::size_t, std::size_t>, double> directed;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t t = graph.neighbor(i, j);
      const double d = graph.distance(i, j) - smooth.rho[i];
      const double w = (d <= 0.0) ? 1.0 : std::exp(-d / smooth.sigma[i]);
      directed[{i, t}] = w;
    }
  }
  FuzzyGraph out;
  out.n = n;
  std::map<std::pair<std::size_t, std::size_t>, double> sym;
  for (const auto& [key, w] : directed) {
    const auto [i, j] = key;
    const auto canon = std::minmax(i, j);
    const auto rev_it = directed.find({j, i});
    const double wr = (rev_it != directed.end()) ? rev_it->second : 0.0;
    sym[{canon.first, canon.second}] = w + wr - w * wr;
  }
  out.edges.reserve(sym.size());
  for (const auto& [key, w] : sym) {
    if (w > 0.0) {
      out.edges.push_back({key.first, key.second, w});
    }
  }
  return out;
}

std::pair<double, double> fit_ab(double spread, double min_dist) {
  ARAMS_CHECK(spread > 0.0, "spread must be positive");
  ARAMS_CHECK(min_dist >= 0.0 && min_dist < 3.0 * spread,
              "min_dist out of range");
  // Target curve ψ(x): 1 on [0, min_dist], exp decay beyond.
  constexpr int kSamples = 300;
  std::vector<double> xs(kSamples), ys(kSamples);
  for (int s = 0; s < kSamples; ++s) {
    const double x = 3.0 * spread * (s + 0.5) / kSamples;
    xs[s] = x;
    ys[s] = (x <= min_dist) ? 1.0 : std::exp(-(x - min_dist) / spread);
  }
  const auto loss = [&](double a, double b) {
    double l = 0.0;
    for (int s = 0; s < kSamples; ++s) {
      const double f = 1.0 / (1.0 + a * std::pow(xs[s], 2.0 * b));
      const double diff = f - ys[s];
      l += diff * diff;
    }
    return l;
  };
  // Two-stage grid search: coarse, then refined around the best cell.
  double best_a = 1.0, best_b = 1.0, best = loss(1.0, 1.0);
  for (int stage = 0; stage < 3; ++stage) {
    const double ra = (stage == 0) ? 3.0 : std::pow(0.3, stage);
    const double rb = (stage == 0) ? 1.2 : std::pow(0.3, stage);
    const double a0 = (stage == 0) ? 0.05 : best_a;
    const double b0 = (stage == 0) ? 0.3 : best_b;
    for (int ia = -20; ia <= 20; ++ia) {
      const double a = (stage == 0)
                           ? a0 * std::pow(10.0, ia * ra / 20.0)
                           : a0 * (1.0 + ra * ia / 20.0);
      if (a <= 0.0) continue;
      for (int ib = -20; ib <= 20; ++ib) {
        const double b = (stage == 0) ? b0 + (ib + 20) * rb / 20.0
                                      : b0 * (1.0 + rb * ib / 20.0);
        if (b <= 0.05) continue;
        const double l = loss(a, b);
        if (l < best) {
          best = l;
          best_a = a;
          best_b = b;
        }
      }
    }
  }
  return {best_a, best_b};
}

Matrix spectral_init(const FuzzyGraph& graph, std::size_t n_components,
                     Rng& rng, int iterations) {
  ARAMS_CHECK(graph.n >= 2, "spectral init needs at least two points");
  const std::size_t n = graph.n;

  // Degree vector of the symmetric weighted graph.
  std::vector<double> degree(n, 1e-12);  // floor avoids isolated-node 1/0
  for (const auto& e : graph.edges) {
    degree[e.u] += e.weight;
    degree[e.v] += e.weight;
  }
  std::vector<double> inv_sqrt_deg(n);
  for (std::size_t i = 0; i < n; ++i) {
    inv_sqrt_deg[i] = 1.0 / std::sqrt(degree[i]);
  }

  // Normalized adjacency T = D^{-1/2}·W·D^{-1/2}; its top eigenvector is
  // the trivial D^{1/2}·1. The Laplacian's smallest non-trivial
  // eigenvectors are T's next-largest; find them by power iteration on the
  // PSD shift (T + I)/2 with deflation.
  const auto matvec = [&](const std::vector<double>& x,
                          std::vector<double>& y) {
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = 0.5 * x[i];  // the +I/2 shift
    }
    for (const auto& e : graph.edges) {
      const double w = 0.5 * e.weight * inv_sqrt_deg[e.u] *
                       inv_sqrt_deg[e.v];
      y[e.u] += w * x[e.v];
      y[e.v] += w * x[e.u];
    }
  };

  std::vector<std::vector<double>> found;
  // Trivial eigenvector, normalized.
  {
    std::vector<double> trivial(n);
    for (std::size_t i = 0; i < n; ++i) trivial[i] = std::sqrt(degree[i]);
    const double nrm = linalg::norm2(trivial);
    linalg::scale(trivial, 1.0 / nrm);
    found.push_back(std::move(trivial));
  }

  Matrix y(n, n_components);
  std::vector<double> x(n), tx(n);
  for (std::size_t comp = 0; comp < n_components; ++comp) {
    rng.fill_normal(x);
    for (int it = 0; it < iterations; ++it) {
      // Deflate all previously found directions.
      for (const auto& q : found) {
        linalg::axpy(-linalg::dot(q, x), q, x);
      }
      matvec(x, tx);
      const double nrm = linalg::norm2(tx);
      if (nrm <= 0.0) break;
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = tx[i] / nrm;
      }
    }
    for (const auto& q : found) {
      linalg::axpy(-linalg::dot(q, x), q, x);
    }
    const double nrm = linalg::norm2(x);
    if (nrm > 0.0) linalg::scale(x, 1.0 / nrm);
    for (std::size_t i = 0; i < n; ++i) {
      // Recover the Laplacian eigenvector u = D^{-1/2}·x.
      y(i, comp) = x[i] * inv_sqrt_deg[i];
    }
    found.push_back(x);
  }

  // Rescale to the [-10, 10] box UMAP's SGD expects.
  double mx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const double v : y.row(i)) mx = std::max(mx, std::abs(v));
  }
  if (mx > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      linalg::scale(y.row(i), 10.0 / mx);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : y.row(i)) v += 1e-4 * rng.normal();
  }
  return y;
}

namespace {

Matrix initialize_embedding(const Matrix& points, const FuzzyGraph& fuzzy,
                            const UmapConfig& config, Rng& rng) {
  const std::size_t n = points.rows();
  Matrix y(n, config.n_components);
  if (config.init == UmapConfig::Init::kSpectral) {
    return spectral_init(fuzzy, config.n_components, rng);
  }
  if (config.init == UmapConfig::Init::kPca &&
      points.cols() >= config.n_components) {
    // Center, project on top components, rescale to [-10, 10].
    Matrix centered = points;
    std::vector<double> mean(points.cols(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      linalg::axpy(1.0, points.row(i), mean);
    }
    linalg::scale(mean, 1.0 / static_cast<double>(n));
    for (std::size_t i = 0; i < n; ++i) {
      linalg::axpy(-1.0, mean, centered.row(i));
    }
    const PcaProjector pca(centered, config.n_components);
    y = pca.project(centered);
    double mx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (const double v : y.row(i)) mx = std::max(mx, std::abs(v));
    }
    if (mx > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        linalg::scale(y.row(i), 10.0 / mx);
      }
    }
    // Tiny jitter breaks exact ties so SGD does not divide by zero.
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& v : y.row(i)) v += 1e-4 * rng.normal();
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& v : y.row(i)) v = rng.uniform(-10.0, 10.0);
    }
  }
  return y;
}

double clip4(double v) { return std::clamp(v, -4.0, 4.0); }

void optimize_layout(Matrix& y, const FuzzyGraph& graph,
                     const UmapConfig& config, double a, double b, Rng& rng) {
  const std::size_t n = y.rows();
  const std::size_t dim = y.cols();
  const int n_epochs = config.n_epochs;
  if (graph.edges.empty()) return;

  double w_max = 0.0;
  for (const auto& e : graph.edges) w_max = std::max(w_max, e.weight);

  const std::size_t m = graph.edges.size();
  std::vector<double> epochs_per_sample(m);
  std::vector<double> epoch_of_next(m);
  std::vector<double> epochs_per_negative(m);
  std::vector<double> epoch_of_next_negative(m);
  for (std::size_t e = 0; e < m; ++e) {
    epochs_per_sample[e] = w_max / graph.edges[e].weight;
    epoch_of_next[e] = epochs_per_sample[e];
    epochs_per_negative[e] =
        epochs_per_sample[e] / std::max(config.negative_samples, 1);
    epoch_of_next_negative[e] = epochs_per_negative[e];
  }

  const double gamma = config.repulsion_strength;
  for (int epoch = 1; epoch <= n_epochs; ++epoch) {
    const double alpha =
        config.learning_rate *
        (1.0 - static_cast<double>(epoch) / static_cast<double>(n_epochs));
    for (std::size_t e = 0; e < m; ++e) {
      if (epoch_of_next[e] > epoch) continue;
      const auto& edge = graph.edges[e];
      auto yu = y.row(edge.u);
      auto yv = y.row(edge.v);

      // Attractive move along the edge.
      double d2 = 0.0;
      for (std::size_t c = 0; c < dim; ++c) {
        const double diff = yu[c] - yv[c];
        d2 += diff * diff;
      }
      if (d2 > 0.0) {
        const double coeff = (-2.0 * a * b * std::pow(d2, b - 1.0)) /
                             (1.0 + a * std::pow(d2, b));
        for (std::size_t c = 0; c < dim; ++c) {
          const double g = clip4(coeff * (yu[c] - yv[c]));
          yu[c] += alpha * g;
          yv[c] -= alpha * g;
        }
      }
      epoch_of_next[e] += epochs_per_sample[e];

      // Negative (repulsive) samples for the head vertex.
      const int n_neg = static_cast<int>(
          (epoch - epoch_of_next_negative[e]) / epochs_per_negative[e]) + 1;
      for (int s = 0; s < n_neg; ++s) {
        const std::size_t r = rng.uniform_index(n);
        if (r == edge.u || r == edge.v) continue;
        const auto yr = y.row(r);
        double rd2 = 0.0;
        for (std::size_t c = 0; c < dim; ++c) {
          const double diff = yu[c] - yr[c];
          rd2 += diff * diff;
        }
        double coeff = 0.0;
        if (rd2 > 0.0) {
          coeff = (2.0 * gamma * b) /
                  ((0.001 + rd2) * (1.0 + a * std::pow(rd2, b)));
        }
        for (std::size_t c = 0; c < dim; ++c) {
          const double g =
              (coeff > 0.0) ? clip4(coeff * (yu[c] - yr[c])) : 4.0;
          yu[c] += alpha * g;
        }
      }
      epoch_of_next_negative[e] +=
          epochs_per_negative[e] * static_cast<double>(n_neg);
    }
  }
}

/// Batch-parallel layout (umappp-style). Per epoch: the layout is frozen
/// into y_prev, the edge list is split into kPartitions fixed contiguous
/// ranges, and each partition accumulates its gradient steps into a private
/// delta matrix while reading only y_prev. Deltas are then folded into y in
/// partition order. Nothing shared is written concurrently (TSan-clean) and
/// both the partitioning and the reduction order are independent of the
/// pool size, so the result is deterministic for any thread count —
/// including one, which is how the serial-equivalence test runs it.
/// Negative samples come from per-edge-per-epoch split RNG streams.
void optimize_layout_batch(Matrix& y, const FuzzyGraph& graph,
                           const UmapConfig& config, double a, double b,
                           const Rng& rng) {
  const std::size_t n = y.rows();
  const std::size_t dim = y.cols();
  const int n_epochs = config.n_epochs;
  if (graph.edges.empty()) return;

  double w_max = 0.0;
  for (const auto& e : graph.edges) w_max = std::max(w_max, e.weight);

  const std::size_t m = graph.edges.size();
  std::vector<double> epochs_per_sample(m);
  std::vector<double> epoch_of_next(m);
  std::vector<double> epochs_per_negative(m);
  std::vector<double> epoch_of_next_negative(m);
  for (std::size_t e = 0; e < m; ++e) {
    epochs_per_sample[e] = w_max / graph.edges[e].weight;
    epoch_of_next[e] = epochs_per_sample[e];
    epochs_per_negative[e] =
        epochs_per_sample[e] / std::max(config.negative_samples, 1);
    epoch_of_next_negative[e] = epochs_per_negative[e];
  }

  constexpr std::size_t kPartitions = 16;
  const std::size_t parts = std::min(kPartitions, m);
  std::vector<Matrix> deltas;
  deltas.reserve(parts);
  for (std::size_t p = 0; p < parts; ++p) deltas.emplace_back(n, dim);
  Matrix y_prev(n, dim);

  parallel::ThreadPool& pool = parallel::shared_pool();
  const bool parallel_epochs = pool.thread_count() >= 2;

  const double gamma = config.repulsion_strength;
  for (int epoch = 1; epoch <= n_epochs; ++epoch) {
    const double alpha =
        config.learning_rate *
        (1.0 - static_cast<double>(epoch) / static_cast<double>(n_epochs));
    std::copy(y.data(), y.data() + n * dim, y_prev.data());

    const auto run_partition = [&](std::size_t p) {
      Matrix& delta = deltas[p];
      std::fill(delta.data(), delta.data() + n * dim, 0.0);
      const std::size_t e0 = m * p / parts;
      const std::size_t e1 = m * (p + 1) / parts;
      for (std::size_t e = e0; e < e1; ++e) {
        if (epoch_of_next[e] > epoch) continue;
        const auto& edge = graph.edges[e];
        const auto yu = y_prev.row(edge.u);
        const auto yv = y_prev.row(edge.v);
        auto du = delta.row(edge.u);
        auto dv = delta.row(edge.v);

        double d2 = 0.0;
        for (std::size_t c = 0; c < dim; ++c) {
          const double diff = yu[c] - yv[c];
          d2 += diff * diff;
        }
        if (d2 > 0.0) {
          const double coeff = (-2.0 * a * b * std::pow(d2, b - 1.0)) /
                               (1.0 + a * std::pow(d2, b));
          for (std::size_t c = 0; c < dim; ++c) {
            const double g = clip4(coeff * (yu[c] - yv[c]));
            du[c] += alpha * g;
            dv[c] -= alpha * g;
          }
        }
        epoch_of_next[e] += epochs_per_sample[e];

        const int n_neg = static_cast<int>(
            (epoch - epoch_of_next_negative[e]) / epochs_per_negative[e]) + 1;
        Rng neg_rng = rng.split(static_cast<std::uint64_t>(epoch) * m + e);
        for (int s = 0; s < n_neg; ++s) {
          const std::size_t r = neg_rng.uniform_index(n);
          if (r == edge.u || r == edge.v) continue;
          const auto yr = y_prev.row(r);
          double rd2 = 0.0;
          for (std::size_t c = 0; c < dim; ++c) {
            const double diff = yu[c] - yr[c];
            rd2 += diff * diff;
          }
          double coeff = 0.0;
          if (rd2 > 0.0) {
            coeff = (2.0 * gamma * b) /
                    ((0.001 + rd2) * (1.0 + a * std::pow(rd2, b)));
          }
          for (std::size_t c = 0; c < dim; ++c) {
            const double g =
                (coeff > 0.0) ? clip4(coeff * (yu[c] - yr[c])) : 4.0;
            du[c] += alpha * g;
          }
        }
        epoch_of_next_negative[e] +=
            epochs_per_negative[e] * static_cast<double>(n_neg);
      }
    };

    if (parallel_epochs) {
      pool.parallel_for(parts, run_partition);
    } else {
      for (std::size_t p = 0; p < parts; ++p) run_partition(p);
    }

    // Deterministic reduction: partition 0 first, always.
    for (std::size_t p = 0; p < parts; ++p) {
      const double* src = deltas[p].data();
      double* dst = y.data();
      for (std::size_t i = 0; i < n * dim; ++i) dst[i] += src[i];
    }
  }
}

/// Resolves UmapConfig::Optimizer::kAuto by total edge-epoch visit count.
bool use_batch_optimizer(const FuzzyGraph& graph, const UmapConfig& config) {
  switch (config.optimizer) {
    case UmapConfig::Optimizer::kSerial:
      return false;
    case UmapConfig::Optimizer::kBatchParallel:
      return true;
    case UmapConfig::Optimizer::kAuto:
      break;
  }
  const double visits = static_cast<double>(graph.edges.size()) *
                        static_cast<double>(std::max(config.n_epochs, 0));
  return visits >= 2e7;
}

}  // namespace

Matrix umap_embed_graph(const Matrix& points, const KnnGraph& graph,
                        const UmapConfig& config) {
  ARAMS_CHECK(points.rows() == graph.n, "graph does not match points");
  ARAMS_CHECK(config.n_components >= 1, "need at least one component");
  Rng rng(config.seed);

  const SmoothKnn smooth = smooth_knn_distances(graph);
  const FuzzyGraph fuzzy = fuzzy_simplicial_set(graph, smooth);
  const auto [a, b] = fit_ab(config.spread, config.min_dist);

  Matrix y = initialize_embedding(points, fuzzy, config, rng);
  if (use_batch_optimizer(fuzzy, config)) {
    optimize_layout_batch(y, fuzzy, config, a, b, rng);
  } else {
    optimize_layout(y, fuzzy, config, a, b, rng);
  }
  return y;
}

namespace {

/// Places one new point given its k nearest reference neighbours (indices
/// `nbr`, ascending Euclidean distances `ndist` — one row of the searcher's
/// query_batch output): weighted-average init from the k nearest, then a
/// short attract-only refinement driven by the point's own RNG stream (so
/// every point is independent and the loop can fan across the pool).
void place_new_point(std::span<const std::size_t> nbr,
                     std::span<const double> ndist,
                     const Matrix& reference_embedding,
                     const UmapConfig& config, double a, double b,
                     const Rng& base_rng, std::size_t point_index,
                     std::span<double> yi) {
  const std::size_t k = nbr.size();
  const std::size_t dim = yi.size();
  thread_local std::vector<double> w;

  // Membership weights from the same smooth-kNN kernel.
  const double rho = ndist[0];
  double sigma = std::max(ndist[k - 1] - rho, 1e-3 * (rho + 1e-12));
  if (sigma <= 0.0) sigma = 1.0;
  w.resize(k);
  double wsum = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const double d = ndist[j] - rho;
    w[j] = (d <= 0.0) ? 1.0 : std::exp(-d / sigma);
    wsum += w[j];
  }

  // Init: weighted average of neighbour embeddings.
  for (std::size_t c = 0; c < dim; ++c) yi[c] = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    const auto ref = reference_embedding.row(nbr[j]);
    for (std::size_t c = 0; c < dim; ++c) {
      yi[c] += (w[j] / wsum) * ref[c];
    }
  }

  // Short attract-only refinement toward the neighbours (the reference
  // embedding is frozen; repulsion would need global context).
  Rng rng = base_rng.split(point_index);
  const int epochs = std::max(config.n_epochs / 6, 10);
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    const double alpha = config.learning_rate * 0.5 *
                         (1.0 - static_cast<double>(epoch) / epochs);
    const std::size_t j = rng.uniform_index(k);
    const auto ref = reference_embedding.row(nbr[j]);
    double d2 = 0.0;
    for (std::size_t c = 0; c < dim; ++c) {
      const double diff = yi[c] - ref[c];
      d2 += diff * diff;
    }
    if (d2 <= 0.0) continue;
    const double coeff = (-2.0 * a * b * std::pow(d2, b - 1.0)) /
                         (1.0 + a * std::pow(d2, b));
    for (std::size_t c = 0; c < dim; ++c) {
      yi[c] += alpha * (w[j] / wsum) *
               clip4(coeff * (yi[c] - ref[c]));
    }
  }
}

}  // namespace

Matrix umap_transform(NeighborSearcher& reference_index,
                      const Matrix& reference_embedding,
                      const Matrix& new_points, const UmapConfig& config,
                      linalg::Workspace& ws, const DistanceOptions& opts) {
  const std::size_t n_ref = reference_index.size();
  ARAMS_CHECK(n_ref == reference_embedding.rows(),
              "reference index/embedding row mismatch");
  ARAMS_CHECK(new_points.cols() == reference_index.dim(),
              "new points have a different dimension");
  ARAMS_CHECK(n_ref > config.n_neighbors,
              "need more reference points than n_neighbors");
  const std::size_t n_new = new_points.rows();
  const std::size_t dim = reference_embedding.cols();
  const std::size_t k = config.n_neighbors;
  const Rng rng(config.seed ^ 0x77aa77ull);

  const auto [a, b] = fit_ab(config.spread, config.min_dist);
  Matrix y(n_new, dim);
  if (n_new == 0) return y;

  // One batch query resolves every new point's reference neighbourhood
  // (the exact backend streams row blocks through the prenormed engine —
  // the same blocked arithmetic this function used to inline).
  KnnGraph knn;
  reference_index.query_batch(new_points, k, ws, knn, opts);

  // Placement fans across the pool: each point owns a split RNG stream, so
  // the result is deterministic and independent of the banding.
  const auto place_band = [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      place_new_point(
          std::span<const std::size_t>(knn.neighbors).subspan(r * k, k),
          std::span<const double>(knn.distances).subspan(r * k, k),
          reference_embedding, config, a, b, rng, r, y.row(r));
    }
  };
  parallel::ThreadPool* pool = nullptr;
  if (opts.allow_parallel && n_new * n_ref >= (std::size_t{1} << 18)) {
    parallel::ThreadPool& shared = parallel::shared_pool();
    if (shared.thread_count() >= 2) pool = &shared;
  }
  if (pool == nullptr) {
    place_band(0, n_new);
  } else {
    const std::size_t bands = std::min(n_new, pool->thread_count() * 4);
    pool->parallel_for(bands, [&](std::size_t t) {
      place_band(n_new * t / bands, n_new * (t + 1) / bands);
    });
  }
  return y;
}

Matrix umap_transform(const Matrix& reference_points,
                      const Matrix& reference_embedding,
                      const Matrix& new_points, const UmapConfig& config,
                      linalg::Workspace& ws, const DistanceOptions& opts) {
  // One-shot form: an exact index over the reference set (selection through
  // the searcher is lexicographically identical to the historical
  // partial_sort, so results are unchanged).
  const auto index = make_searcher("exact", config.seed);
  index->build(reference_points, ws, opts);
  return umap_transform(*index, reference_embedding, new_points, config, ws,
                        opts);
}

Matrix umap_transform(const Matrix& reference_points,
                      const Matrix& reference_embedding,
                      const Matrix& new_points, const UmapConfig& config) {
  linalg::Workspace ws;
  return umap_transform(reference_points, reference_embedding, new_points,
                        config, ws);
}

/// The effective searcher config for an embedding run: `seed` flows into
/// the searcher stream, and a legacy non-default exact_knn_threshold is
/// honored while knn.exact_threshold is untouched (deprecation shim).
AnnConfig umap_knn_config(const UmapConfig& config) {
  AnnConfig ann = config.knn;
  const UmapConfig default_umap;
  if (config.exact_knn_threshold != default_umap.exact_knn_threshold &&
      ann.exact_threshold == AnnConfig{}.exact_threshold) {
    ann.exact_threshold = config.exact_knn_threshold;
  }
  ann.seed = config.seed ^ 0xabcdefull;
  return ann;
}

Matrix umap_embed(const Matrix& points, const UmapConfig& config,
                  linalg::Workspace& ws, const DistanceOptions& opts) {
  ARAMS_CHECK(points.rows() > config.n_neighbors,
              "need more points than n_neighbors");
  const auto searcher = make_searcher(umap_knn_config(config));
  searcher->build(points, ws, opts);
  KnnGraph graph;
  searcher->query_graph(config.n_neighbors, ws, graph, opts);
  return umap_embed_graph(points, graph, config);
}

Matrix umap_embed(const Matrix& points, const UmapConfig& config) {
  linalg::Workspace ws;
  return umap_embed(points, config, ws);
}

}  // namespace arams::embed
