#include "embed/pca.hpp"

#include "linalg/blas.hpp"
#include "linalg/svd.hpp"
#include "linalg/workspace.hpp"
#include "util/check.hpp"

namespace arams::embed {

using linalg::Matrix;

PcaProjector::PcaProjector(const Matrix& sketch, std::size_t k) {
  linalg::Workspace ws;
  init(sketch, k, ws);
}

PcaProjector::PcaProjector(const Matrix& sketch, std::size_t k,
                           linalg::Workspace& ws) {
  init(sketch, k, ws);
}

void PcaProjector::init(const Matrix& sketch, std::size_t k,
                        linalg::Workspace& ws) {
  ARAMS_CHECK(sketch.rows() > 0 && sketch.cols() > 0,
              "cannot build PCA from an empty sketch");
  ARAMS_CHECK(k > 0, "need at least one component");
  if (sketch.rows() <= sketch.cols()) {
    // Sketch rows never exceed ℓ here, so the Gram trick applies; the
    // workspace's reusable RowSpaceSvd keeps repeated rebuilds (one per
    // monitor snapshot) off the heap, and max_rank=k stops the eigenvector
    // back-transformation at the components we keep.
    linalg::RowSpaceSvd& svd = ws.rsvd();
    linalg::gram_row_svd(linalg::MatrixView(sketch), ws, svd, k);
    basis_ = linalg::right_vectors(svd, k);
    sigma_.assign(svd.sigma.begin(),
                  svd.sigma.begin() +
                      static_cast<std::ptrdiff_t>(basis_.rows()));
  } else {
    const linalg::ThinSvd svd = linalg::jacobi_svd(sketch);
    const std::size_t kept = std::min(k, svd.vt.rows());
    basis_ = svd.vt.slice_rows(0, kept);
    sigma_.assign(svd.sigma.begin(),
                  svd.sigma.begin() + static_cast<std::ptrdiff_t>(kept));
  }
  ARAMS_CHECK(basis_.rows() > 0, "sketch had numerical rank zero");
}

Matrix PcaProjector::project(const Matrix& x) const {
  ARAMS_CHECK(x.cols() == basis_.cols(), "data dimension mismatch");
  return linalg::matmul_nt(x, basis_);
}

Matrix PcaProjector::reconstruct(const Matrix& z) const {
  ARAMS_CHECK(z.cols() == basis_.rows(), "latent dimension mismatch");
  return linalg::matmul(z, basis_);
}

}  // namespace arams::embed
