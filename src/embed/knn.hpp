#pragma once
// k-nearest-neighbour graphs over latent points.
//
// Two constructions: exact brute force (O(n²·k) — the latent dimension is
// small after PCA, so this is fine for the few-thousand-point embeddings
// the monitoring pipeline draws), and NN-descent (Dong et al. 2011), the
// approximate method reference UMAP uses, for larger point sets.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace arams::embed {

/// Flat kNN graph: neighbor j of point i sits at index i*k + j, sorted by
/// ascending distance. Distances are Euclidean.
struct KnnGraph {
  std::size_t n = 0;
  std::size_t k = 0;
  std::vector<std::size_t> neighbors;  ///< n·k indices
  std::vector<double> distances;       ///< n·k distances

  [[nodiscard]] std::size_t neighbor(std::size_t i, std::size_t j) const {
    return neighbors[i * k + j];
  }
  [[nodiscard]] double distance(std::size_t i, std::size_t j) const {
    return distances[i * k + j];
  }
};

/// Exact kNN by brute force. Excludes self-neighbours. Requires k < n.
KnnGraph exact_knn(const linalg::Matrix& points, std::size_t k);

/// Approximate kNN via NN-descent. `iters` full passes; `sample_rate`
/// controls the candidate pool per pass. Recall is typically > 0.9 after
/// 4–6 passes on latent data.
KnnGraph nn_descent(const linalg::Matrix& points, std::size_t k, Rng& rng,
                    int iters = 6, double sample_rate = 1.0);

/// Builds a kNN graph choosing the method by size: exact below
/// `exact_threshold` points, NN-descent above.
KnnGraph build_knn(const linalg::Matrix& points, std::size_t k, Rng& rng,
                   std::size_t exact_threshold = 4096);

/// Fraction of true kNN edges recovered (test / diagnostic helper).
double knn_recall(const KnnGraph& approx, const KnnGraph& exact);

}  // namespace arams::embed
