#pragma once
// k-nearest-neighbour graphs over latent points.
//
// Two constructions: exact brute force (blocked GEMM distance blocks from
// the shared engine in distance.hpp plus a per-row partial select — the
// latent dimension is small after PCA, so this is fine for the
// few-thousand-point embeddings the monitoring pipeline draws), and
// NN-descent (Dong et al. 2011), the approximate method reference UMAP
// uses, for larger point sets. Both record their wall time in the
// "embed.knn_seconds" histogram.
//
// The workspace overloads draw every scratch block (distance block, row
// norms, gathered candidate Gram) from a caller-owned linalg::Workspace and
// reuse the output graph's storage, so a snapshot loop that rebuilds the
// graph at a fixed shape performs no steady-state heap allocations on the
// serial path. The plain overloads are conveniences that own a local
// workspace per call.

#include <cstddef>
#include <vector>

#include "embed/distance.hpp"
#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"
#include "rng/rng.hpp"

namespace arams::embed {

/// Flat kNN graph: neighbor j of point i sits at index i*k + j, sorted by
/// ascending distance. Distances are Euclidean.
struct KnnGraph {
  std::size_t n = 0;
  std::size_t k = 0;
  std::vector<std::size_t> neighbors;  ///< n·k indices
  std::vector<double> distances;       ///< n·k distances

  [[nodiscard]] std::size_t neighbor(std::size_t i, std::size_t j) const {
    return neighbors[i * k + j];
  }
  [[nodiscard]] double distance(std::size_t i, std::size_t j) const {
    return distances[i * k + j];
  }
};

/// Exact kNN by blocked brute force. Excludes self-neighbours. Requires
/// k < n.
KnnGraph exact_knn(const linalg::Matrix& points, std::size_t k);

/// Workspace-backed exact kNN: distance blocks and selection scratch come
/// from `ws`, the graph is rebuilt in place into `out`.
void exact_knn(const linalg::Matrix& points, std::size_t k,
               linalg::Workspace& ws, KnnGraph& out,
               const DistanceOptions& opts = {});

/// Approximate kNN via NN-descent. `iters` full passes; `sample_rate`
/// controls the candidate pool per pass. Recall is typically > 0.9 after
/// 4–6 passes on latent data.
KnnGraph nn_descent(const linalg::Matrix& points, std::size_t k, Rng& rng,
                    int iters = 6, double sample_rate = 1.0);

/// Workspace-backed NN-descent: candidate scoring goes through gathered
/// Gram blocks drawn from `ws` instead of per-pair scalar loops.
void nn_descent(const linalg::Matrix& points, std::size_t k, Rng& rng,
                linalg::Workspace& ws, KnnGraph& out, int iters = 6,
                double sample_rate = 1.0, const DistanceOptions& opts = {});

/// Refines an existing kNN graph in place with NN-descent local-join
/// passes. `graph` must be a valid graph over `points` (n == points.rows(),
/// ascending Euclidean distances, no self/invalid neighbours) — typically
/// the leaf-co-membership seed the rpforest searcher produces, which
/// converges in far fewer passes than random initialization.
void nn_descent_refine(const linalg::Matrix& points, Rng& rng,
                       linalg::Workspace& ws, KnnGraph& graph, int iters,
                       double sample_rate = 1.0,
                       const DistanceOptions& opts = {});

/// Builds a kNN graph choosing the method by size: exact below
/// `exact_threshold` points, NN-descent above.
KnnGraph build_knn(const linalg::Matrix& points, std::size_t k, Rng& rng,
                   std::size_t exact_threshold = 4096);

/// Workspace-backed build_knn (same method selection).
void build_knn(const linalg::Matrix& points, std::size_t k, Rng& rng,
               linalg::Workspace& ws, KnnGraph& out,
               std::size_t exact_threshold = 4096,
               const DistanceOptions& opts = {});

/// Fraction of true kNN edges recovered (test / diagnostic helper).
double knn_recall(const KnnGraph& approx, const KnnGraph& exact);

}  // namespace arams::embed
