#pragma once
// Internal base for the NeighborSearcher backends: owns the indexed point
// copy, the hoisted squared row norms the prenormed engine consumes, the
// stats/telemetry plumbing, and the shared k-selection + validation
// helpers. Backends (exact.cpp / rpforest.cpp) derive from this and only
// implement the candidate-generation strategy.

#include <cstddef>
#include <span>
#include <vector>

#include "embed/ann/searcher.hpp"
#include "embed/distance.hpp"
#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"

namespace arams::embed::ann {

/// Bounded insertion scan selecting the k lexicographically-smallest
/// (value, index) pairs of `value(j)`, j in [0, n), skipping `self`
/// (pass n or larger to disable self-exclusion). `best` is caller scratch
/// resized to k; identical tie behaviour to knn.cpp's select_row / the
/// historical partial_sort path.
template <typename ValueFn>
void select_k(std::size_t n, std::size_t self, std::size_t k,
              std::vector<std::pair<double, std::size_t>>& best,
              ValueFn value) {
  best.resize(k);
  std::size_t filled = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (j == self) continue;
    const double d = value(j);
    if (filled == k && d >= best[k - 1].first) continue;
    std::size_t pos = filled < k ? filled : k - 1;
    while (pos > 0 && best[pos - 1].first > d) {
      best[pos] = best[pos - 1];
      --pos;
    }
    best[pos] = {d, j};
    if (filled < k) ++filled;
  }
}

class PointStoreSearcher : public NeighborSearcher {
 public:
  explicit PointStoreSearcher(AnnConfig config);

  void query(std::span<const double> point, std::size_t k,
             linalg::Workspace& ws, std::vector<std::size_t>& neighbors,
             std::vector<double>& distances,
             const DistanceOptions& opts = {}) override;

  void sq_dists_to(std::span<const double> point, linalg::Workspace& ws,
                   std::span<double> out,
                   const DistanceOptions& opts = {}) const override;

  [[nodiscard]] std::size_t size() const override { return points_.rows(); }
  [[nodiscard]] std::size_t dim() const override { return points_.cols(); }
  [[nodiscard]] const linalg::Matrix& points() const override {
    return points_;
  }
  [[nodiscard]] const AnnStats& stats() const override { return stats_; }

 protected:
  /// Copies `points` into the store and hoists the squared row norms.
  void store_points(const linalg::Matrix& points);

  /// Appends rows (grow-only reshape: existing rows stay in place) and
  /// extends the norm cache.
  void append_rows(linalg::MatrixView rows);

  /// Throws CheckError unless 1 <= k <= size() (external queries) or
  /// 1 <= k < size() (`self_excluded`, the graph path), with the values in
  /// the message.
  void check_k(std::size_t k, bool self_excluded) const;

  /// Records wall time + rows into stats_ and the embed.ann_* metrics.
  void note_build(double seconds);
  void note_insert(double seconds, std::size_t rows);
  void note_query(double seconds, std::size_t rows, long candidates) const;

  AnnConfig config_;
  linalg::Matrix points_;       ///< indexed rows (grow-only)
  std::vector<double> norms_;   ///< hoisted ‖row‖² per indexed point
  mutable AnnStats stats_;      ///< mutable: sq_dists_to is const but counted

  /// select_k scratch shared by the backends (grow-only).
  std::vector<std::pair<double, std::size_t>> best_;

 private:
  // query() scratch (grow-only, keeps the single-point path heap-free).
  KnnGraph query_scratch_;
};

/// Internal backend constructors (searcher.cpp / rpforest.cpp); the public
/// entry point is make_searcher.
std::unique_ptr<NeighborSearcher> make_exact_searcher(const AnnConfig& config);
std::unique_ptr<NeighborSearcher> make_rpforest_searcher(
    const AnnConfig& config);

}  // namespace arams::embed::ann
