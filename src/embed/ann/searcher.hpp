#pragma once
// embed::NeighborSearcher — the one seam every nearest-neighbour consumer
// sits behind (UMAP fuzzy graphs and out-of-sample transforms, OPTICS range
// queries, FastABOD, k-means++ seeding, the streaming monitor's snapshot
// index).
//
// The motivation mirrors the core::Sketcher seam: exact kNN — even GEMM-
// blocked — is O(n²) and is the scaling cliff for million-point runs, and
// umappp-style pipelines solve it with a pluggable searcher (knncolle). A
// backend is resolved by name at run time through `make_searcher`, so the
// pipeline, the CLI (`--knn-backend=`) and the benches can swap the exact
// engine for the randomized-projection forest without recompiling.
//
// Registered backends (canonical factory names):
//   exact     GEMM-blocked brute force (the PR-5 distance engine); the
//             ground-truth reference and the right choice for the few-
//             thousand-point embeddings the monitor draws.
//   rpforest  randomized-projection-tree forest: blocked tree construction
//             through the packed GEMM core, leaf-level candidate scoring
//             through embed::pairwise_gram, multi-tree candidate union and
//             NN-descent refinement seeded from the forest candidates.
//   auto      size-based dispatch — exact at or below
//             AnnConfig::exact_threshold indexed points, rpforest above
//             (this policy replaces the old hard-coded
//             UmapConfig::exact_knn_threshold magic constant).
//
// ## Contract (uniform across backends, enforced by tests/test_ann.cpp)
//
//  * build() (re)indexes a point set; insert() appends rows to a built
//    index without a full rebuild (the streaming monitor keeps its snapshot
//    index warm this way). Both count into stats().
//  * query()/query_batch() answer for *external* points (no self-
//    exclusion); query_graph() answers for the indexed points themselves
//    (self excluded) — the kNN-graph construction path.
//  * Fixed config.seed ⇒ bitwise-identical results regardless of thread
//    count or DistanceOptions::allow_parallel.
//  * Steady-state query()/query_batch() at a fixed shape perform no heap
//    allocations (grow-only members + the wslot::kAnn* arena slots).
//  * k is validated, not silently clamped: query_graph needs
//    1 <= k < size(), query/query_batch need 1 <= k <= size(), with the
//    offending values in the error message.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "embed/knn.hpp"
#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"
#include "obs/stage_report.hpp"

namespace arams::embed {

/// Configuration for any factory-constructed searcher. `backend` selects
/// the implementation; the forest knobs apply to "rpforest" (and to "auto"
/// once it dispatches there).
struct AnnConfig {
  std::string backend = "auto";    ///< exact | rpforest | auto
  /// "auto" dispatch policy: exact at or below this many indexed points,
  /// rpforest above. Successor of UmapConfig::exact_knn_threshold.
  std::size_t exact_threshold = 4096;
  std::size_t num_trees = 8;       ///< rpforest: trees in the forest
  std::size_t leaf_size = 32;      ///< rpforest: max points per leaf
  int refine_iters = 3;            ///< rpforest: NN-descent passes on the seed
  /// rpforest single-point queries: candidate budget as a multiple of k
  /// (traversal stops once ~candidate_factor·k leaf members are collected).
  double candidate_factor = 16.0;
  std::uint64_t seed = 2024;       ///< tree directions + refinement streams

  /// Human-readable configuration errors, empty when usable. Called by
  /// make_searcher so a bad config fails at the API boundary.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Lifetime counters for one searcher instance. `builds` vs `inserts` is
/// the observable the monitor tests pin: an index kept warm across
/// incremental snapshots shows builds == 1 while inserts grows.
struct AnnStats {
  long builds = 0;             ///< full (re)index operations
  long inserted_rows = 0;      ///< rows appended via insert()
  long query_rows = 0;         ///< query points answered (all query paths)
  long candidates_scored = 0;  ///< candidate distances evaluated
  double build_seconds = 0.0;  ///< wall time in build() + insert()
  double query_seconds = 0.0;  ///< wall time in the query paths
};

/// Abstract nearest-neighbour index over a stored point set.
class NeighborSearcher {
 public:
  virtual ~NeighborSearcher() = default;

  /// (Re)indexes `points` (copied into the searcher). Resets size() and
  /// dim(); previous contents are discarded.
  virtual void build(const linalg::Matrix& points, linalg::Workspace& ws,
                     const DistanceOptions& opts = {}) = 0;

  /// Appends rows to a built index without a full rebuild. The new points
  /// take indices size()..size()+rows.rows()-1.
  virtual void insert(linalg::MatrixView rows, linalg::Workspace& ws,
                      const DistanceOptions& opts = {}) = 0;

  /// k nearest indexed points to one external query point, ascending
  /// Euclidean distance. Requires 1 <= k <= size().
  virtual void query(std::span<const double> point, std::size_t k,
                     linalg::Workspace& ws,
                     std::vector<std::size_t>& neighbors,
                     std::vector<double>& distances,
                     const DistanceOptions& opts = {}) = 0;

  /// Batch form of query(): one graph row per query row (queries are
  /// external — no self-exclusion). Requires 1 <= k <= size().
  virtual void query_batch(linalg::MatrixView queries, std::size_t k,
                           linalg::Workspace& ws, KnnGraph& out,
                           const DistanceOptions& opts = {}) = 0;

  /// kNN graph over the indexed points themselves (self excluded).
  /// Requires 1 <= k < size().
  virtual void query_graph(std::size_t k, linalg::Workspace& ws,
                           KnnGraph& out,
                           const DistanceOptions& opts = {}) = 0;

  /// Exact squared distances from one external point to every indexed
  /// point (`out.size() == size()`), through the prenormed GEMM engine —
  /// the range-query primitive OPTICS and k-means++ seeding consume.
  virtual void sq_dists_to(std::span<const double> point,
                           linalg::Workspace& ws, std::span<double> out,
                           const DistanceOptions& opts = {}) const = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;  ///< indexed points
  [[nodiscard]] virtual std::size_t dim() const = 0;   ///< point dimension

  /// The indexed point set (row i ↔ index i).
  [[nodiscard]] virtual const linalg::Matrix& points() const = 0;

  /// Canonical factory name; make_searcher(name(), …) round-trips.
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual const AnnStats& stats() const = 0;

  /// Folds stats() into a StageReport — the structured form the snapshot
  /// and pipeline results carry.
  void report(obs::StageReport& out) const;
};

/// True when `name` is a canonical searcher name.
[[nodiscard]] bool searcher_registered(const std::string& name);

/// Canonical searcher names, factory registration order.
[[nodiscard]] std::vector<std::string> registered_searchers();

/// One-line description of a canonical searcher (for --help / docs lint).
/// Throws CheckError on unknown names.
[[nodiscard]] std::string searcher_description(const std::string& name);

/// Builds the searcher selected by `config.backend`. Validates the config
/// and throws CheckError on errors or unknown names.
std::unique_ptr<NeighborSearcher> make_searcher(const AnnConfig& config);

/// Convenience: default config with the given name/seed.
std::unique_ptr<NeighborSearcher> make_searcher(const std::string& name,
                                                std::uint64_t seed);

}  // namespace arams::embed
