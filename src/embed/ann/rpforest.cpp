// rpforest — randomized-projection-tree forest (Annoy-style hyperplane
// splits) with NN-descent refinement for the graph path.
//
// Index: num_trees independent trees over the stored points. Each internal
// node splits on the hyperplane normal to the difference of two randomly
// chosen member points, at the median projection (nth_element over
// (projection, index) pairs — the index tie-break makes the partition
// deterministic even with duplicate projections). Construction is blocked:
// a node gathers its members once and projects them with a single
// tall-skinny GEMM through the packed matmul_nt core, instead of n·depth
// scalar dot products.
//
// Queries: best-first traversal over all trees with a shared max-heap keyed
// by hyperplane margin (the near child inherits the parent's bound, the far
// child is bounded by |margin|), collecting leaf members until the
// candidate budget (candidate_factor·k) is met; candidates are scored as a
// single gathered GEMM block and reduced with the shared bounded select.
//
// Graph path: leaf co-membership seeds bounded neighbour lists (per-leaf
// Gram scoring through gram_rows), then embed::nn_descent_refine runs a few
// local-join passes — NN-descent converges far faster from forest seeds
// than from the random initialization the standalone builder uses.
//
// insert(): each new point is routed down every tree and appended to the
// leaf it lands in; a leaf grown past 2·leaf_size is re-split in place
// (sub-tree rebuild over its members only), so the index stays warm across
// streaming snapshots instead of being rebuilt from scratch.
//
// Determinism: all traversal/selection is serial with explicit index
// tie-breaks; the GEMM core's parallel partition is bit-identical to its
// serial path — so a fixed config.seed gives bitwise-identical results
// regardless of thread count.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "embed/ann/point_store.hpp"
#include "embed/ann/searcher.hpp"
#include "embed/distance.hpp"
#include "embed/knn.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"
#include "rng/rng.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::embed::ann {
namespace {

constexpr std::size_t kNoSelf = static_cast<std::size_t>(-1);

// Candidate sets at or above this size are scored through a gathered GEMM
// block; smaller sets stay on the scalar path (same cutoff as NN-descent's
// join scoring).
constexpr std::size_t kGramCutoff = 8;

class RpForestSearcher final : public PointStoreSearcher {
 public:
  using PointStoreSearcher::PointStoreSearcher;

  void build(const linalg::Matrix& points, linalg::Workspace& ws,
             const DistanceOptions& opts) override {
    (void)opts;
    Stopwatch timer;
    store_points(points);
    const std::size_t n = size();
    trees_.assign(config_.num_trees, Tree{});
    dirs_.reshape(0, dim());
    dirs_count_ = 0;
    order_.resize(n);
    visit_mark_.assign(n, 0);
    visit_epoch_ = 0;
    const Rng root(config_.seed);
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      std::iota(order_.begin(), order_.end(), std::size_t{0});
      Rng rng = root.split(t + 1);
      fill_subtree(trees_[t], alloc_node(trees_[t]), order_, 0, n, rng, ws);
    }
    note_build(timer.seconds());
  }

  void insert(linalg::MatrixView rows, linalg::Workspace& ws,
              const DistanceOptions& opts) override {
    (void)opts;
    Stopwatch timer;
    const std::size_t old_rows = size();
    append_rows(rows);
    visit_mark_.resize(size(), 0);
    for (std::size_t i = old_rows; i < size(); ++i) {
      const std::span<const double> p = points_.row(i);
      for (std::size_t t = 0; t < trees_.size(); ++t) {
        Tree& tree = trees_[t];
        std::int32_t nid = 0;
        while (tree.nodes[static_cast<std::size_t>(nid)].leaf < 0) {
          const Node& node = tree.nodes[static_cast<std::size_t>(nid)];
          const double proj =
              linalg::dot(p, dirs_.row(static_cast<std::size_t>(node.dir)));
          nid = proj < node.threshold ? node.left : node.right;
        }
        Node& leaf_node = tree.nodes[static_cast<std::size_t>(nid)];
        std::vector<std::size_t>& members =
            tree.leaves[static_cast<std::size_t>(leaf_node.leaf)];
        members.push_back(i);
        if (members.size() > 2 * config_.leaf_size) {
          resplit_leaf(tree, t, nid, ws);
        }
      }
    }
    note_insert(timer.seconds(), rows.rows());
  }

  void query_batch(linalg::MatrixView queries, std::size_t k,
                   linalg::Workspace& ws, KnnGraph& out,
                   const DistanceOptions& opts) override {
    ARAMS_CHECK(queries.cols() == dim(),
                "NeighborSearcher::query_batch dimension mismatch (got " +
                    std::to_string(queries.cols()) + ", index has " +
                    std::to_string(dim()) + ")");
    check_k(k, /*self_excluded=*/false);
    Stopwatch timer;
    const std::size_t m = queries.rows();
    out.n = m;
    out.k = k;
    out.neighbors.resize(m * k);
    out.distances.resize(m * k);
    long scored = 0;
    for (std::size_t r = 0; r < m; ++r) {
      scored += query_one(queries.row(r), k, ws, out, r, opts);
    }
    note_query(timer.seconds(), m, scored);
  }

  void query_graph(std::size_t k, linalg::Workspace& ws, KnnGraph& out,
                   const DistanceOptions& opts) override {
    check_k(k, /*self_excluded=*/true);
    Stopwatch timer;
    const std::size_t n = size();
    const std::size_t d = dim();
    const double inf = std::numeric_limits<double>::infinity();
    seed_d2_.assign(n * k, inf);
    seed_idx_.assign(n * k, kNoSelf);
    long scored = 0;

    // Leaf co-membership: every pair sharing a leaf in any tree is a
    // candidate edge, scored once per leaf through a Gram block.
    for (const Tree& tree : trees_) {
      for (const std::vector<std::size_t>& members : tree.leaves) {
        const std::size_t c = members.size();
        if (c < 2) continue;  // tombstoned or singleton leaf
        const bool use_gram = opts.use_gemm && c >= kGramCutoff;
        linalg::Matrix* gram = nullptr;
        if (use_gram) {
          linalg::Matrix& gathered =
              ws.mat(linalg::wslot::kAnnGather, c, d);
          gather_rows(points_, members, gathered);
          gram = &ws.mat(linalg::wslot::kAnnGram, c, c);
          linalg::gram_rows(gathered, *gram);
        }
        for (std::size_t a = 0; a < c; ++a) {
          for (std::size_t b = a + 1; b < c; ++b) {
            const double d2 =
                use_gram
                    ? std::max(0.0, (*gram)(a, a) + (*gram)(b, b) -
                                        2.0 * (*gram)(a, b))
                    : sq_dist(points_.row(members[a]),
                              points_.row(members[b]));
            seed_insert(members[a], k, d2, members[b]);
            seed_insert(members[b], k, d2, members[a]);
            ++scored;
          }
        }
      }
    }

    // Points that never shared a leaf with k distinct others (tiny inputs,
    // heavy duplicates) get deterministic sequential probes so the seed
    // graph handed to the refiner is always fully populated.
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t step = 1;
      while (seed_idx_[i * k + k - 1] == kNoSelf) {
        const std::size_t j = (i + step) % n;
        ++step;
        if (j == i) continue;
        seed_insert(i, k, sq_dist(points_.row(i), points_.row(j)), j);
        ++scored;
      }
    }

    out.n = n;
    out.k = k;
    out.neighbors.assign(seed_idx_.begin(), seed_idx_.end());
    out.distances.resize(n * k);
    for (std::size_t s = 0; s < n * k; ++s) {
      out.distances[s] = std::sqrt(seed_d2_[s]);
    }

    Rng refine_rng(config_.seed ^ 0x9e3779b97f4a7c15ULL);
    nn_descent_refine(points_, refine_rng, ws, out, config_.refine_iters,
                      /*sample_rate=*/1.0, opts);
    note_query(timer.seconds(), n, scored);
  }

  [[nodiscard]] std::string name() const override { return "rpforest"; }

 private:
  struct Node {
    std::int32_t left = -1;       ///< internal: child node ids
    std::int32_t right = -1;
    std::int32_t dir = -1;        ///< internal: row in dirs_
    std::int32_t leaf = -1;       ///< >= 0: id into Tree::leaves
    double threshold = 0.0;       ///< internal: median projection
  };
  struct Tree {
    std::vector<Node> nodes;                       ///< node 0 is the root
    std::vector<std::vector<std::size_t>> leaves;  ///< member point indices
    std::uint64_t resplits = 0;  ///< deterministic rng stream for re-splits
  };
  struct HeapEntry {
    double priority;  ///< upper bound on how close the subtree can be
    std::uint32_t tree;
    std::int32_t node;
    // Max-heap on priority with a total order (tree, node break ties) so
    // traversal order never depends on heap internals.
    bool operator<(const HeapEntry& o) const {
      if (priority != o.priority) return priority < o.priority;
      if (tree != o.tree) return tree > o.tree;
      return node > o.node;
    }
  };

  std::int32_t alloc_node(Tree& tree) {
    tree.nodes.emplace_back();
    return static_cast<std::int32_t>(tree.nodes.size() - 1);
  }

  std::int32_t append_dir(std::span<const double> dir) {
    dirs_.reshape(dirs_count_ + 1, dim());
    dirs_.set_row(dirs_count_, dir);
    return static_cast<std::int32_t>(dirs_count_++);
  }

  /// Builds the subtree over arr[lo, hi) into the (already allocated) node
  /// `id`. Consumes rng draws in a fixed order (left subtree first).
  void fill_subtree(Tree& tree, std::int32_t id, std::vector<std::size_t>& arr,
                    std::size_t lo, std::size_t hi, Rng& rng,
                    linalg::Workspace& ws) {
    const std::size_t m = hi - lo;
    const std::size_t d = dim();
    tree.nodes[static_cast<std::size_t>(id)] = Node{};
    if (m <= config_.leaf_size) {
      make_leaf(tree, id, arr, lo, hi);
      return;
    }

    // Split direction: difference of two distinct random members
    // (Annoy-style). A few retries dodge coincident picks; an all-duplicate
    // subset cannot be split and becomes an oversized leaf.
    dir_scratch_.resize(d);
    double norm2 = 0.0;
    for (int attempt = 0; attempt < 4 && norm2 == 0.0; ++attempt) {
      const std::size_t ia = rng.uniform_index(m);
      std::size_t ib = rng.uniform_index(m - 1);
      if (ib >= ia) ++ib;
      const std::span<const double> pa = points_.row(arr[lo + ia]);
      const std::span<const double> pb = points_.row(arr[lo + ib]);
      norm2 = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        dir_scratch_[j] = pa[j] - pb[j];
        norm2 += dir_scratch_[j] * dir_scratch_[j];
      }
    }
    if (norm2 == 0.0) {
      make_leaf(tree, id, arr, lo, hi);
      return;
    }
    const std::int32_t dir_id = append_dir(dir_scratch_);

    // Blocked projections: gather the members once, one tall-skinny GEMM
    // against the direction. The (projection, index) pairs are consumed
    // before recursing, so the kAnn* scratch slots can be reused below.
    linalg::Matrix& gathered = ws.mat(linalg::wslot::kAnnGather, m, d);
    gather_rows(points_, std::span<const std::size_t>(arr).subspan(lo, m),
                gathered);
    linalg::Matrix& proj = ws.mat(linalg::wslot::kAnnProj, m, 1);
    linalg::matmul_nt(gathered, linalg::MatrixView(dir_scratch_.data(), 1, d),
                      proj);
    std::vector<std::pair<double, std::size_t>> pairs(m);
    for (std::size_t j = 0; j < m; ++j) {
      pairs[j] = {proj(j, 0), arr[lo + j]};
    }
    const std::size_t mid = m / 2;
    std::nth_element(pairs.begin(),
                     pairs.begin() + static_cast<std::ptrdiff_t>(mid),
                     pairs.end());
    const double threshold = pairs[mid].first;
    for (std::size_t j = 0; j < m; ++j) {
      arr[lo + j] = pairs[j].second;
    }

    const std::int32_t left = alloc_node(tree);
    const std::int32_t right = alloc_node(tree);
    {
      Node& node = tree.nodes[static_cast<std::size_t>(id)];
      node.dir = dir_id;
      node.threshold = threshold;
      node.left = left;
      node.right = right;
    }
    fill_subtree(tree, left, arr, lo, lo + mid, rng, ws);
    fill_subtree(tree, right, arr, lo + mid, hi, rng, ws);
  }

  void make_leaf(Tree& tree, std::int32_t id, const std::vector<std::size_t>& arr,
                 std::size_t lo, std::size_t hi) {
    Node& node = tree.nodes[static_cast<std::size_t>(id)];
    node.leaf = static_cast<std::int32_t>(tree.leaves.size());
    tree.leaves.emplace_back(arr.begin() + static_cast<std::ptrdiff_t>(lo),
                             arr.begin() + static_cast<std::ptrdiff_t>(hi));
  }

  /// Re-splits an over-full leaf in place: its members become a fresh
  /// subtree rooted at the same node id. The old leaf slot is tombstoned
  /// (cleared, never referenced again) so leaf ids stay stable.
  void resplit_leaf(Tree& tree, std::size_t tree_index, std::int32_t nid,
                    linalg::Workspace& ws) {
    Node& node = tree.nodes[static_cast<std::size_t>(nid)];
    std::vector<std::size_t> members =
        std::move(tree.leaves[static_cast<std::size_t>(node.leaf)]);
    tree.leaves[static_cast<std::size_t>(node.leaf)].clear();
    Rng rng = Rng(config_.seed ^ 0x5eedb0b5c0ffee11ULL)
                  .split(tree_index)
                  .split(tree.resplits++);
    fill_subtree(tree, nid, members, 0, members.size(), rng, ws);
  }

  /// Best-first margin traversal across all trees; appends deduplicated
  /// leaf members to cand_ until `budget` candidates are collected.
  void collect_candidates(std::span<const double> q, std::size_t budget,
                          std::size_t self) {
    cand_.clear();
    heap_.clear();
    ++visit_epoch_;
    const double inf = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < trees_.size(); ++t) {
      heap_.push_back(HeapEntry{inf, static_cast<std::uint32_t>(t), 0});
    }
    std::make_heap(heap_.begin(), heap_.end());
    while (!heap_.empty() && cand_.size() < budget) {
      std::pop_heap(heap_.begin(), heap_.end());
      const HeapEntry e = heap_.back();
      heap_.pop_back();
      const Tree& tree = trees_[e.tree];
      const Node& node = tree.nodes[static_cast<std::size_t>(e.node)];
      if (node.leaf >= 0) {
        for (const std::size_t idx :
             tree.leaves[static_cast<std::size_t>(node.leaf)]) {
          if (visit_mark_[idx] == visit_epoch_) continue;
          visit_mark_[idx] = visit_epoch_;
          if (idx != self) cand_.push_back(idx);
        }
        continue;
      }
      const double margin =
          linalg::dot(q, dirs_.row(static_cast<std::size_t>(node.dir))) -
          node.threshold;
      const std::int32_t near = margin < 0.0 ? node.left : node.right;
      const std::int32_t far = margin < 0.0 ? node.right : node.left;
      heap_.push_back(HeapEntry{e.priority, e.tree, near});
      std::push_heap(heap_.begin(), heap_.end());
      heap_.push_back(
          HeapEntry{std::min(e.priority, std::abs(margin)), e.tree, far});
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  /// One external-point query into row `row` of `out`; returns candidates
  /// scored. Allocation-free at steady state (grow-only members + slots).
  long query_one(std::span<const double> q, std::size_t k,
                 linalg::Workspace& ws, KnnGraph& out, std::size_t row,
                 const DistanceOptions& opts) {
    const std::size_t n = size();
    const std::size_t d = dim();
    const std::size_t budget = std::min(
        n, std::max<std::size_t>(
               static_cast<std::size_t>(config_.candidate_factor *
                                        static_cast<double>(k)),
               2 * k));
    collect_candidates(q, budget, kNoSelf);
    const std::size_t c = cand_.size();
    ARAMS_CHECK(c >= k, "rpforest traversal produced " + std::to_string(c) +
                            " candidates for k=" + std::to_string(k));
    if (opts.use_gemm && c >= kGramCutoff) {
      linalg::Matrix& gathered = ws.mat(linalg::wslot::kAnnGather, c, d);
      gather_rows(points_, cand_, gathered);
      linalg::Matrix& inner = ws.mat(linalg::wslot::kAnnBlock, c, 1);
      linalg::matmul_nt(gathered, linalg::MatrixView(q.data(), 1, d), inner);
      const double qn = linalg::dot(q, q);
      select_k(c, kNoSelf, k, best_, [&](std::size_t j) {
        return std::max(0.0, qn + norms_[cand_[j]] - 2.0 * inner(j, 0));
      });
    } else {
      select_k(c, kNoSelf, k, best_, [&](std::size_t j) {
        return sq_dist(q, points_.row(cand_[j]));
      });
    }
    const std::size_t base = row * k;
    for (std::size_t j = 0; j < k; ++j) {
      out.neighbors[base + j] = cand_[best_[j].second];
      out.distances[base + j] = std::sqrt(best_[j].first);
    }
    return static_cast<long>(c);
  }

  /// Bounded sorted insert of candidate edge (i → j, d2) into the seed
  /// arrays: O(1) reject against the row's current worst, O(k) duplicate
  /// scan + shift otherwise.
  void seed_insert(std::size_t i, std::size_t k, double d2, std::size_t j) {
    double* drow = seed_d2_.data() + i * k;
    std::size_t* irow = seed_idx_.data() + i * k;
    if (d2 >= drow[k - 1]) return;
    for (std::size_t t = 0; t < k; ++t) {
      if (irow[t] == j) return;
    }
    std::size_t pos = k - 1;
    while (pos > 0 && drow[pos - 1] > d2) {
      drow[pos] = drow[pos - 1];
      irow[pos] = irow[pos - 1];
      --pos;
    }
    drow[pos] = d2;
    irow[pos] = j;
  }

  std::vector<Tree> trees_;
  linalg::Matrix dirs_;         ///< split directions, one row per internal node
  std::size_t dirs_count_ = 0;  ///< rows of dirs_ in use
  // Grow-only scratch (members so steady-state queries stay heap-free).
  std::vector<std::size_t> order_;       ///< build: member permutation
  std::vector<double> dir_scratch_;      ///< build: current split direction
  std::vector<std::size_t> cand_;        ///< query: candidate union
  std::vector<HeapEntry> heap_;          ///< query: traversal frontier
  std::vector<std::uint64_t> visit_mark_;  ///< query: dedup epochs
  std::uint64_t visit_epoch_ = 0;
  std::vector<double> seed_d2_;          ///< graph: seed distances (squared)
  std::vector<std::size_t> seed_idx_;    ///< graph: seed neighbour indices
};

}  // namespace

std::unique_ptr<NeighborSearcher> make_rpforest_searcher(
    const AnnConfig& config) {
  return std::make_unique<RpForestSearcher>(config);
}

}  // namespace arams::embed::ann
