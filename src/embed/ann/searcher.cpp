// NeighborSearcher base plumbing, the `exact` and `auto` backends, and the
// string-keyed factory. The rpforest backend lives in rpforest.cpp.

#include "embed/ann/searcher.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "embed/ann/point_store.hpp"
#include "embed/distance.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::embed {
namespace {

obs::Histogram& build_seconds_hist() {
  static obs::Histogram& h = obs::metrics().histogram("embed.ann_build_seconds");
  return h;
}

obs::Histogram& query_seconds_hist() {
  static obs::Histogram& h = obs::metrics().histogram("embed.ann_query_seconds");
  return h;
}

obs::Counter& candidates_counter() {
  static obs::Counter& c = obs::metrics().counter("embed.ann_candidates_scored");
  return c;
}

}  // namespace

namespace ann {

PointStoreSearcher::PointStoreSearcher(AnnConfig config)
    : config_(std::move(config)) {}

void PointStoreSearcher::store_points(const linalg::Matrix& points) {
  ARAMS_CHECK(points.rows() >= 1 && points.cols() >= 1,
              "NeighborSearcher::build needs a non-empty point matrix");
  points_ = points;
  norms_.resize(points_.rows());
  row_sq_norms(points_, norms_);
}

void PointStoreSearcher::append_rows(linalg::MatrixView rows) {
  ARAMS_CHECK(points_.rows() > 0,
              "NeighborSearcher::insert requires a built index");
  ARAMS_CHECK(rows.cols() == points_.cols(),
              "NeighborSearcher::insert dimension mismatch (got " +
                  std::to_string(rows.cols()) + " columns, index has " +
                  std::to_string(points_.cols()) + ")");
  const std::size_t old_rows = points_.rows();
  // reshape is prefix-preserving, so existing rows stay in place and only
  // the appended tail is written. `rows` must not alias this index.
  points_.reshape(old_rows + rows.rows(), points_.cols());
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    points_.set_row(old_rows + i, rows.row(i));
  }
  norms_.resize(points_.rows());
  row_sq_norms(rows, std::span<double>(norms_).subspan(old_rows));
}

void PointStoreSearcher::check_k(std::size_t k, bool self_excluded) const {
  const std::size_t n = size();
  ARAMS_CHECK(n >= 1, "NeighborSearcher query before build");
  if (self_excluded) {
    ARAMS_CHECK(k >= 1 && k < n,
                "kNN graph needs 1 <= k < n (got k=" + std::to_string(k) +
                    ", n=" + std::to_string(n) +
                    "); an index of n points has only n-1 neighbours per "
                    "point");
  } else {
    ARAMS_CHECK(k >= 1 && k <= n,
                "kNN query needs 1 <= k <= index size (got k=" +
                    std::to_string(k) + ", size=" + std::to_string(n) + ")");
  }
}

void PointStoreSearcher::note_build(double seconds) {
  ++stats_.builds;
  stats_.build_seconds += seconds;
  build_seconds_hist().observe(seconds);
}

void PointStoreSearcher::note_insert(double seconds, std::size_t rows) {
  stats_.inserted_rows += static_cast<long>(rows);
  stats_.build_seconds += seconds;
  build_seconds_hist().observe(seconds);
}

void PointStoreSearcher::note_query(double seconds, std::size_t rows,
                                    long candidates) const {
  stats_.query_rows += static_cast<long>(rows);
  stats_.candidates_scored += candidates;
  stats_.query_seconds += seconds;
  query_seconds_hist().observe(seconds);
  candidates_counter().add(candidates);
}

void PointStoreSearcher::query(std::span<const double> point, std::size_t k,
                               linalg::Workspace& ws,
                               std::vector<std::size_t>& neighbors,
                               std::vector<double>& distances,
                               const DistanceOptions& opts) {
  ARAMS_CHECK(point.size() == dim(),
              "NeighborSearcher::query dimension mismatch (got " +
                  std::to_string(point.size()) + ", index has " +
                  std::to_string(dim()) + ")");
  const linalg::MatrixView one(point.data(), 1, dim());
  query_batch(one, k, ws, query_scratch_, opts);
  neighbors.resize(k);
  distances.resize(k);
  std::copy(query_scratch_.neighbors.begin(),
            query_scratch_.neighbors.begin() + static_cast<std::ptrdiff_t>(k),
            neighbors.begin());
  std::copy(query_scratch_.distances.begin(),
            query_scratch_.distances.begin() + static_cast<std::ptrdiff_t>(k),
            distances.begin());
}

void PointStoreSearcher::sq_dists_to(std::span<const double> point,
                                     linalg::Workspace& ws,
                                     std::span<double> out,
                                     const DistanceOptions& opts) const {
  const std::size_t n = size();
  ARAMS_CHECK(n >= 1, "NeighborSearcher query before build");
  ARAMS_CHECK(point.size() == dim(),
              "NeighborSearcher::sq_dists_to dimension mismatch (got " +
                  std::to_string(point.size()) + ", index has " +
                  std::to_string(dim()) + ")");
  ARAMS_CHECK(out.size() == n,
              "NeighborSearcher::sq_dists_to output span must cover the "
              "index (got " +
                  std::to_string(out.size()) + ", size=" + std::to_string(n) +
                  ")");
  Stopwatch timer;
  const linalg::MatrixView q(point.data(), 1, dim());
  const std::span<double> qn = ws.vec(linalg::wslot::kAnnQNorms, 1);
  row_sq_norms(q, qn);
  linalg::Matrix& block = ws.mat(linalg::wslot::kAnnBlock, 1, n);
  pairwise_sq_dists_prenormed(q, points_, qn, norms_, ws, block, opts);
  std::copy(block.row(0).begin(), block.row(0).end(), out.begin());
  note_query(timer.seconds(), 1, static_cast<long>(n));
}

}  // namespace ann

void NeighborSearcher::report(obs::StageReport& report) const {
  const AnnStats& s = stats();
  report.add_seconds("ann_build", s.build_seconds);
  report.add_seconds("ann_query", s.query_seconds);
  report.add_counter("ann_builds", s.builds);
  report.add_counter("ann_inserted_rows", s.inserted_rows);
  report.add_counter("ann_query_rows", s.query_rows);
  report.add_counter("ann_candidates_scored", s.candidates_scored);
}

std::vector<std::string> AnnConfig::validate() const {
  std::vector<std::string> errors;
  if (!searcher_registered(backend)) {
    std::string names;
    for (const std::string& n : registered_searchers()) {
      if (!names.empty()) names += ", ";
      names += n;
    }
    errors.push_back("unknown kNN backend '" + backend + "' (registered: " +
                     names + ")");
  }
  if (exact_threshold < 1) {
    errors.push_back("knn exact_threshold must be >= 1");
  }
  if (num_trees < 1) {
    errors.push_back("rpforest num_trees must be >= 1");
  }
  if (leaf_size < 2) {
    errors.push_back("rpforest leaf_size must be >= 2");
  }
  if (refine_iters < 0) {
    errors.push_back("rpforest refine_iters must be >= 0");
  }
  if (!(candidate_factor >= 1.0)) {
    errors.push_back("rpforest candidate_factor must be >= 1");
  }
  return errors;
}

namespace {

using ann::select_k;

/// GEMM-blocked brute force over the stored points — the PR-5 distance
/// engine behind the searcher seam. Ground truth for every recall pin.
class ExactSearcher final : public ann::PointStoreSearcher {
 public:
  using PointStoreSearcher::PointStoreSearcher;

  void build(const linalg::Matrix& points, linalg::Workspace& ws,
             const DistanceOptions& opts) override {
    (void)ws;
    (void)opts;
    Stopwatch timer;
    store_points(points);
    note_build(timer.seconds());
  }

  void insert(linalg::MatrixView rows, linalg::Workspace& ws,
              const DistanceOptions& opts) override {
    (void)ws;
    (void)opts;
    Stopwatch timer;
    append_rows(rows);
    note_insert(timer.seconds(), rows.rows());
  }

  void query_batch(linalg::MatrixView queries, std::size_t k,
                   linalg::Workspace& ws, KnnGraph& out,
                   const DistanceOptions& opts) override {
    ARAMS_CHECK(queries.cols() == dim(),
                "NeighborSearcher::query_batch dimension mismatch (got " +
                    std::to_string(queries.cols()) + ", index has " +
                    std::to_string(dim()) + ")");
    check_k(k, /*self_excluded=*/false);
    Stopwatch timer;
    const std::size_t n = size();
    const std::size_t m = queries.rows();
    out.n = m;
    out.k = k;
    out.neighbors.resize(m * k);
    out.distances.resize(m * k);
    // Stream query bands against the whole index: one prenormed distance
    // block per band, then a bounded insertion select per row — identical
    // selection semantics (lexicographic on (d², index)) to the historical
    // partial_sort in umap_transform.
    const std::size_t band = std::min<std::size_t>(m, 256);
    for (std::size_t r0 = 0; r0 < m; r0 += band) {
      const std::size_t rows = std::min(band, m - r0);
      const linalg::MatrixView qband(queries.row(r0).data(), rows,
                                     queries.cols());
      const std::span<double> qn = ws.vec(linalg::wslot::kAnnQNorms, rows);
      row_sq_norms(qband, qn);
      linalg::Matrix& block = ws.mat(linalg::wslot::kAnnBlock, rows, n);
      pairwise_sq_dists_prenormed(qband, points_, qn, norms_, ws, block, opts);
      for (std::size_t r = 0; r < rows; ++r) {
        const std::span<const double> drow = block.row(r);
        select_k(n, n, k, best_, [&](std::size_t j) { return drow[j]; });
        const std::size_t base = (r0 + r) * k;
        for (std::size_t j = 0; j < k; ++j) {
          out.neighbors[base + j] = best_[j].second;
          out.distances[base + j] = std::sqrt(best_[j].first);
        }
      }
    }
    note_query(timer.seconds(), m, static_cast<long>(m * n));
  }

  void query_graph(std::size_t k, linalg::Workspace& ws, KnnGraph& out,
                   const DistanceOptions& opts) override {
    check_k(k, /*self_excluded=*/true);
    Stopwatch timer;
    exact_knn(points_, k, ws, out, opts);
    const std::size_t n = size();
    note_query(timer.seconds(), n, static_cast<long>(n * n));
  }

  [[nodiscard]] std::string name() const override { return "exact"; }
};

/// Size-based dispatch: the concrete backend is chosen at build() time —
/// exact at or below config.exact_threshold indexed points, rpforest above.
/// This policy replaces the old hard-coded UmapConfig::exact_knn_threshold.
class AutoSearcher final : public NeighborSearcher {
 public:
  explicit AutoSearcher(AnnConfig config) : config_(std::move(config)) {}

  void build(const linalg::Matrix& points, linalg::Workspace& ws,
             const DistanceOptions& opts) override {
    // The backend is re-chosen on every full rebuild; insert() growth
    // keeps whatever build() picked (re-dispatching mid-stream would throw
    // away a warm index).
    if (points.rows() <= config_.exact_threshold) {
      inner_ = ann::make_exact_searcher(config_);
    } else {
      inner_ = ann::make_rpforest_searcher(config_);
    }
    inner_->build(points, ws, opts);
  }

  void insert(linalg::MatrixView rows, linalg::Workspace& ws,
              const DistanceOptions& opts) override {
    ARAMS_CHECK(inner_ != nullptr,
                "NeighborSearcher::insert requires a built index");
    inner_->insert(rows, ws, opts);
  }

  void query(std::span<const double> point, std::size_t k,
             linalg::Workspace& ws, std::vector<std::size_t>& neighbors,
             std::vector<double>& distances,
             const DistanceOptions& opts) override {
    ARAMS_CHECK(inner_ != nullptr, "NeighborSearcher query before build");
    inner_->query(point, k, ws, neighbors, distances, opts);
  }

  void query_batch(linalg::MatrixView queries, std::size_t k,
                   linalg::Workspace& ws, KnnGraph& out,
                   const DistanceOptions& opts) override {
    ARAMS_CHECK(inner_ != nullptr, "NeighborSearcher query before build");
    inner_->query_batch(queries, k, ws, out, opts);
  }

  void query_graph(std::size_t k, linalg::Workspace& ws, KnnGraph& out,
                   const DistanceOptions& opts) override {
    ARAMS_CHECK(inner_ != nullptr, "NeighborSearcher query before build");
    inner_->query_graph(k, ws, out, opts);
  }

  void sq_dists_to(std::span<const double> point, linalg::Workspace& ws,
                   std::span<double> out,
                   const DistanceOptions& opts) const override {
    ARAMS_CHECK(inner_ != nullptr, "NeighborSearcher query before build");
    inner_->sq_dists_to(point, ws, out, opts);
  }

  [[nodiscard]] std::size_t size() const override {
    return inner_ ? inner_->size() : 0;
  }
  [[nodiscard]] std::size_t dim() const override {
    return inner_ ? inner_->dim() : 0;
  }
  [[nodiscard]] const linalg::Matrix& points() const override {
    return inner_ ? inner_->points() : empty_;
  }
  [[nodiscard]] std::string name() const override { return "auto"; }
  [[nodiscard]] const AnnStats& stats() const override {
    return inner_ ? inner_->stats() : empty_stats_;
  }

  /// The backend build() dispatched to (tests peek at this; empty before
  /// the first build).
  [[nodiscard]] std::string dispatched() const {
    return inner_ ? inner_->name() : std::string();
  }

 private:
  AnnConfig config_;
  std::unique_ptr<NeighborSearcher> inner_;
  linalg::Matrix empty_;
  AnnStats empty_stats_;
};

struct SearcherEntry {
  const char* name;
  const char* description;
};

// Registration order == listing order (mirrors core::Sketcher's registry).
constexpr SearcherEntry kSearchers[] = {
    {"exact",
     "GEMM-blocked brute-force kNN (ground truth; O(n^2) per graph)"},
    {"rpforest",
     "randomized-projection-tree forest + NN-descent refinement "
     "(approximate, subquadratic)"},
    {"auto",
     "exact at or below --knn-exact-threshold points, rpforest above"},
};

}  // namespace

namespace ann {

std::unique_ptr<NeighborSearcher> make_exact_searcher(
    const AnnConfig& config) {
  return std::make_unique<ExactSearcher>(config);
}

}  // namespace ann

bool searcher_registered(const std::string& name) {
  for (const SearcherEntry& e : kSearchers) {
    if (name == e.name) return true;
  }
  return false;
}

std::vector<std::string> registered_searchers() {
  std::vector<std::string> names;
  for (const SearcherEntry& e : kSearchers) names.emplace_back(e.name);
  return names;
}

std::string searcher_description(const std::string& name) {
  for (const SearcherEntry& e : kSearchers) {
    if (name == e.name) return e.description;
  }
  ARAMS_CHECK(false, "unknown kNN backend '" + name + "'");
  return {};
}

std::unique_ptr<NeighborSearcher> make_searcher(const AnnConfig& config) {
  const std::vector<std::string> errors = config.validate();
  if (!errors.empty()) {
    std::string joined;
    for (const std::string& e : errors) {
      if (!joined.empty()) joined += "; ";
      joined += e;
    }
    ARAMS_CHECK(false, "invalid AnnConfig: " + joined);
  }
  if (config.backend == "exact") return ann::make_exact_searcher(config);
  if (config.backend == "rpforest") return ann::make_rpforest_searcher(config);
  return std::make_unique<AutoSearcher>(config);
}

std::unique_ptr<NeighborSearcher> make_searcher(const std::string& name,
                                                std::uint64_t seed) {
  AnnConfig config;
  config.backend = name;
  config.seed = seed;
  return make_searcher(config);
}

}  // namespace arams::embed
