#pragma once
// PCA latent projection from a matrix sketch.
//
// The sketch B (≤ ℓ rows) stands in for the full data matrix A: the top-k
// right singular vectors of B approximate A's principal directions at the
// FD error bound, so projecting the original rows onto them produces the
// low-dimensional latent space UMAP consumes (stage 2 of Fig. 4).

#include <vector>

#include "linalg/matrix.hpp"

namespace arams::linalg {
class Workspace;
}  // namespace arams::linalg

namespace arams::embed {

class PcaProjector {
 public:
  /// Builds the projector from a sketch: top-k right singular vectors of
  /// `sketch`. Keeps fewer than k components if the sketch's numerical rank
  /// is smaller.
  PcaProjector(const linalg::Matrix& sketch, std::size_t k);

  /// Workspace-backed variant for callers that rebuild the projector per
  /// snapshot (e.g. the stream monitor): the short-fat path draws its Gram,
  /// eigensolver scratch, and SVD factors from `ws`, so repeated same-shape
  /// rebuilds stop allocating. Only the top-k singular directions are
  /// materialized. Falls back to the allocating path for tall sketches.
  PcaProjector(const linalg::Matrix& sketch, std::size_t k,
               linalg::Workspace& ws);

  /// Projects rows of x (n×d) into the latent space (n×components()).
  [[nodiscard]] linalg::Matrix project(const linalg::Matrix& x) const;

  /// Reconstructs latent rows back into data space (n×k → n×d).
  [[nodiscard]] linalg::Matrix reconstruct(const linalg::Matrix& z) const;

  /// Orthonormal principal directions, one per row (components()×d).
  [[nodiscard]] const linalg::Matrix& basis() const { return basis_; }

  /// Singular values of the sketch associated with each component.
  [[nodiscard]] const std::vector<double>& singular_values() const {
    return sigma_;
  }

  [[nodiscard]] std::size_t components() const { return basis_.rows(); }
  [[nodiscard]] std::size_t dim() const { return basis_.cols(); }

 private:
  void init(const linalg::Matrix& sketch, std::size_t k,
            linalg::Workspace& ws);

  linalg::Matrix basis_;
  std::vector<double> sigma_;
};

}  // namespace arams::embed
