#pragma once
// Embedding quality metrics used to validate the Fig. 5/6 reproductions
// quantitatively (the paper validates visually).

#include "linalg/matrix.hpp"

namespace arams::embed {

/// Trustworthiness (Venna & Kaski): fraction-penalized measure in [0, 1] of
/// how many embedding-space neighbours are also data-space neighbours.
/// 1 = perfect neighbourhood preservation, ~0.5 = random. O(n²·(d+k)).
double trustworthiness(const linalg::Matrix& data,
                       const linalg::Matrix& embedding, std::size_t k);

/// Pearson correlation between a scalar factor and one embedding axis.
/// Used to check Fig. 5's "CoM on one axis, circularity on the other".
double axis_factor_correlation(const linalg::Matrix& embedding,
                               std::size_t axis,
                               const std::vector<double>& factor);

}  // namespace arams::embed
