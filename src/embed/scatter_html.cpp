#include "embed/scatter_html.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "util/check.hpp"

namespace arams::embed {

namespace {

/// Categorical palette (colorblind-friendly Okabe–Ito plus extras).
const char* const kPalette[] = {
    "#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7",
    "#56B4E9", "#F0E442", "#8B4513", "#4B0082", "#2F4F4F",
};
constexpr std::size_t kPaletteSize = std::size(kPalette);

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void write_scatter_html(const std::string& path,
                        const linalg::Matrix& embedding,
                        const std::vector<int>& labels,
                        const std::vector<std::string>& tooltips,
                        const ScatterConfig& config) {
  const std::size_t n = embedding.rows();
  ARAMS_CHECK(n > 0, "empty embedding");
  ARAMS_CHECK(embedding.cols() >= 2, "embedding must have >= 2 columns");
  ARAMS_CHECK(labels.empty() || labels.size() == n, "label count mismatch");
  ARAMS_CHECK(tooltips.empty() || tooltips.size() == n,
              "tooltip count mismatch");

  double min_x = embedding(0, 0), max_x = min_x;
  double min_y = embedding(0, 1), max_y = min_y;
  for (std::size_t i = 0; i < n; ++i) {
    min_x = std::min(min_x, embedding(i, 0));
    max_x = std::max(max_x, embedding(i, 0));
    min_y = std::min(min_y, embedding(i, 1));
    max_y = std::max(max_y, embedding(i, 1));
  }
  const double span_x = std::max(max_x - min_x, 1e-12);
  const double span_y = std::max(max_y - min_y, 1e-12);
  constexpr double kMargin = 24.0;
  const double plot_w = config.width - 2.0 * kMargin;
  const double plot_h = config.height - 2.0 * kMargin;

  std::ofstream f(path);
  ARAMS_CHECK(f.good(), "cannot open for writing: " + path);
  f << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>"
    << escape(config.title) << "</title>\n"
    << "<style>body{font-family:sans-serif;margin:16px}"
    << "circle{opacity:.75}circle:hover{opacity:1;stroke:#000}"
    << "</style></head><body>\n<h2>" << escape(config.title) << "</h2>\n"
    << "<svg width=\"" << config.width << "\" height=\"" << config.height
    << "\" style=\"border:1px solid #ccc;background:#fff\">\n";

  for (std::size_t i = 0; i < n; ++i) {
    const double px =
        kMargin + (embedding(i, 0) - min_x) / span_x * plot_w;
    // SVG y grows downward; flip so the plot reads like a normal axis.
    const double py =
        kMargin + (max_y - embedding(i, 1)) / span_y * plot_h;
    const int label = labels.empty() ? 0 : labels[i];
    const char* color =
        (label < 0) ? "#9e9e9e"
                    : kPalette[static_cast<std::size_t>(label) %
                               kPaletteSize];
    f << "<circle cx=\"" << px << "\" cy=\"" << py << "\" r=\""
      << config.point_radius << "\" fill=\"" << color << "\">";
    if (!tooltips.empty()) {
      f << "<title>" << escape(tooltips[i]) << "</title>";
    } else {
      f << "<title>#" << i << " (cluster " << label << ")</title>";
    }
    f << "</circle>\n";
  }
  f << "</svg>\n<p>" << n
    << " points; grey = OPTICS noise; hover for shot details.</p>\n"
    << "</body></html>\n";
  ARAMS_CHECK(f.good(), "write failed: " + path);
}

}  // namespace arams::embed
