#pragma once
// Exact t-SNE (van der Maaten & Hinton 2008) — the visualization baseline
// UMAP is usually compared against. The paper selects UMAP for stage 3;
// this implementation makes the choice reproducible: the ablation bench
// runs both on the same latent points and reports quality and runtime.
//
// Exact O(n²) gradients (no Barnes–Hut): the monitoring pipeline embeds
// at most a few thousand reservoir points at a time.

#include <cstdint>

#include "linalg/matrix.hpp"

namespace arams::embed {

struct TsneConfig {
  std::size_t n_components = 2;
  double perplexity = 30.0;      ///< effective neighbourhood size
  int n_iters = 500;
  int exaggeration_iters = 100;  ///< early-exaggeration phase length
  double exaggeration = 12.0;
  double learning_rate = 200.0;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  std::uint64_t seed = 17;
};

/// Embeds `points` (n×d) into n×n_components. Requires
/// n > 3·perplexity (the usual t-SNE validity condition).
linalg::Matrix tsne_embed(const linalg::Matrix& points,
                          const TsneConfig& config);

}  // namespace arams::embed
