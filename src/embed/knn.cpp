#include "embed/knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "linalg/blas.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace arams::embed {

using linalg::Matrix;
using linalg::MatrixView;

namespace {

obs::Histogram& knn_seconds() {
  static obs::Histogram& h = obs::metrics().histogram("embed.knn_seconds");
  return h;
}

/// Bounded neighbour list used by NN-descent: a flat array of
/// (distance, index, is_new) keeping the k smallest distances seen.
///
/// The worst entry (index + distance) is cached: a non-improving candidate
/// is rejected in O(1) against the cached distance before the O(k)
/// duplicate scan runs, and the cache is refreshed only on a successful
/// replacement — so a join step over c candidates costs O(c + hits·k)
/// instead of the former O(c·k) with a redundant re-scan in worst().
struct NeighborList {
  struct Item {
    double dist = std::numeric_limits<double>::infinity();
    std::size_t index = static_cast<std::size_t>(-1);
    bool is_new = false;
  };
  std::vector<Item> items;
  std::size_t worst_at = 0;
  double worst_dist = std::numeric_limits<double>::infinity();

  explicit NeighborList(std::size_t k) : items(k) {}

  [[nodiscard]] double worst() const { return worst_dist; }

  void refresh_worst() {
    worst_at = 0;
    worst_dist = -1.0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].dist > worst_dist) {
        worst_dist = items[i].dist;
        worst_at = i;
      }
    }
  }

  /// Inserts (dist, idx) if it improves the list; returns true on change.
  bool try_insert(double dist, std::size_t idx) {
    if (dist >= worst_dist) return false;  // cannot improve the list
    for (const auto& it : items) {
      if (it.index == idx) return false;  // already present
    }
    items[worst_at] = Item{dist, idx, true};
    refresh_worst();
    return true;
  }
};

/// Per-row k-smallest selection scratch. One per worker thread (grow-only),
/// so the parallel selection path stays allocation-free at steady state.
std::vector<std::pair<double, std::size_t>>& selection_scratch() {
  thread_local std::vector<std::pair<double, std::size_t>> buf;
  return buf;
}

/// Selects the k nearest of the n candidate distances `value(j)` (squared),
/// excluding `self`, into the graph slots of point `i`. `value` is invoked
/// once per candidate in ascending j — callers fuse the Gram-trick norm
/// fix-up into it so a distance block is traversed exactly once.
///
/// Bounded insertion scan: one pass with an O(1) reject against the current
/// k-th distance, shift-inserting the rare survivor. Equal distances keep
/// the lower index first and, because j ascends, a candidate tying the
/// current worst can never improve on it — so the output is exactly the k
/// lexicographically-smallest (distance, index) pairs in ascending order,
/// identical to the historical build-all-pairs-and-partial_sort selection,
/// at a fraction of its memory traffic.
template <typename ValueFn>
void select_row(std::size_t n, std::size_t self, std::size_t k,
                std::size_t i, KnnGraph& g, ValueFn value) {
  auto& best = selection_scratch();
  best.resize(k);
  std::size_t filled = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (j == self) continue;
    const double d = value(j);
    if (filled == k && d >= best[k - 1].first) continue;
    std::size_t pos = filled < k ? filled : k - 1;
    while (pos > 0 && best[pos - 1].first > d) {
      best[pos] = best[pos - 1];
      --pos;
    }
    best[pos] = {d, j};
    if (filled < k) ++filled;
  }
  for (std::size_t j = 0; j < k; ++j) {
    g.neighbors[i * k + j] = best[j].second;
    g.distances[i * k + j] = std::sqrt(best[j].first);
  }
}

// Selection fans out across the pool once a block holds this many distance
// entries (the same order of work as the engine's fix-up threshold).
constexpr std::size_t kSelectParallelThreshold = std::size_t{1} << 18;

}  // namespace

namespace {

/// Shared k-vs-n validation for the self-excluding graph builders. A point
/// set of n rows has only n−1 candidate neighbours per point, so k ≥ n can
/// never be satisfied — reject loudly (with the offending values) instead
/// of silently producing a graph padded with sentinel indices.
void check_graph_args(std::size_t n, std::size_t k) {
  ARAMS_CHECK(n >= 2, "kNN graph needs at least two points (got n=" +
                          std::to_string(n) +
                          "); a single point has no neighbours");
  ARAMS_CHECK(k >= 1 && k < n,
              "kNN graph needs 1 <= k < n (got k=" + std::to_string(k) +
                  ", n=" + std::to_string(n) + ")");
}

}  // namespace

void exact_knn(const Matrix& points, std::size_t k, linalg::Workspace& ws,
               KnnGraph& g, const DistanceOptions& opts) {
  const std::size_t n = points.rows();
  check_graph_args(n, k);
  Stopwatch timer;

  g.n = n;
  g.k = k;
  g.neighbors.resize(n * k);
  g.distances.resize(n * k);

  const auto norms = ws.vec(linalg::wslot::kDistYNorms, n);
  if (opts.use_gemm) row_sq_norms(points, norms);

  // Block of query rows per distance block: big enough that the GEMM core
  // reaches its packed fast path, small enough that the whole block stays
  // cache-resident until the selection pass consumes it (at n=4096 a
  // 128-row block is 4 MB; measured fastest end-to-end against
  // 32/64/256/512-row alternatives on the Section VI-B shapes).
  constexpr std::size_t kBlock = 128;
  Matrix& d = ws.mat(linalg::wslot::kDistBlock, std::min(kBlock, n), n);

  for (std::size_t b0 = 0; b0 < n; b0 += kBlock) {
    const std::size_t rows = std::min(kBlock, n - b0);
    const MatrixView queries = MatrixView::rows_of(points, b0, b0 + rows);
    if (opts.use_gemm) {
      // Gram-only block: the ‖q‖² + ‖p‖² − 2g fix-up is fused into the
      // selection scan below, so each block is traversed exactly once
      // (the fix-up expression matches pairwise_sq_dists_prenormed's, so
      // selected distances are identical to the unfused engine path).
      pairwise_gram(queries, points, d);
    } else {
      pairwise_sq_dists_prenormed(queries, points, norms.subspan(b0, rows),
                                  norms, ws, d, opts);
    }

    const auto select_band = [&](std::size_t r0, std::size_t r1) {
      for (std::size_t r = r0; r < r1; ++r) {
        const std::size_t self = b0 + r;
        const double* row = d.row(r).data();
        if (opts.use_gemm) {
          const double qn = norms[self];
          select_row(n, self, k, self, g, [&](std::size_t j) {
            return std::max(0.0, qn + norms[j] - 2.0 * row[j]);
          });
        } else {
          select_row(n, self, k, self, g,
                     [&](std::size_t j) { return row[j]; });
        }
      }
    };
    parallel::ThreadPool* pool = nullptr;
    if (opts.allow_parallel && rows * n >= kSelectParallelThreshold) {
      parallel::ThreadPool& shared = parallel::shared_pool();
      if (shared.thread_count() >= 2) pool = &shared;
    }
    if (pool == nullptr) {
      select_band(0, rows);
    } else {
      const std::size_t bands = std::min(rows, pool->thread_count() * 4);
      pool->parallel_for(bands, [&](std::size_t t) {
        select_band(rows * t / bands, rows * (t + 1) / bands);
      });
    }
  }
  knn_seconds().observe(timer.seconds());
}

KnnGraph exact_knn(const Matrix& points, std::size_t k) {
  linalg::Workspace ws;
  KnnGraph g;
  exact_knn(points, k, ws, g);
  return g;
}

namespace {

/// The NN-descent local-join iterations (Dong et al. 2011), shared by the
/// randomly-initialized builder below and by nn_descent_refine (which seeds
/// the lists from rp-forest candidates instead). Distances in `lists` are
/// squared Euclidean.
void descent_iterations(const Matrix& points, std::vector<NeighborList>& lists,
                        std::size_t k, Rng& rng, linalg::Workspace& ws,
                        int iters, double sample_rate,
                        const DistanceOptions& opts) {
  const std::size_t n = points.rows();
  // Candidate Gram scoring: the union of a join's candidates is gathered
  // into a contiguous block and its Gram matrix computed once through the
  // tiled kernel; each pair's distance is then the rank-1 combination
  // G(a,a) + G(b,b) − 2·G(a,b). Unions smaller than this stay on the
  // scalar path (the Gram's extra old–old entries would not amortize).
  constexpr std::size_t kGramCutoff = 8;
  Matrix& gathered = ws.mat(linalg::wslot::kDistGather, 1, points.cols());
  Matrix& gram = ws.mat(linalg::wslot::kDistGram, 1, 1);

  std::vector<std::vector<std::size_t>> fwd_new(n), fwd_old(n), rev_new(n),
      rev_old(n);
  std::vector<std::size_t> union_idx;
  for (int iter = 0; iter < iters; ++iter) {
    for (auto& v : fwd_new) v.clear();
    for (auto& v : fwd_old) v.clear();
    for (auto& v : rev_new) v.clear();
    for (auto& v : rev_old) v.clear();

    for (std::size_t i = 0; i < n; ++i) {
      for (auto& it : lists[i].items) {
        if (it.index == static_cast<std::size_t>(-1)) continue;
        if (it.is_new) {
          if (sample_rate >= 1.0 || rng.uniform() < sample_rate) {
            fwd_new[i].push_back(it.index);
            rev_new[it.index].push_back(i);
            it.is_new = false;
          }
        } else {
          fwd_old[i].push_back(it.index);
          rev_old[it.index].push_back(i);
        }
      }
    }

    long updates = 0;
    std::vector<std::size_t> new_c, old_c;
    for (std::size_t i = 0; i < n; ++i) {
      new_c = fwd_new[i];
      new_c.insert(new_c.end(), rev_new[i].begin(), rev_new[i].end());
      old_c = fwd_old[i];
      old_c.insert(old_c.end(), rev_old[i].begin(), rev_old[i].end());
      if (new_c.empty()) continue;

      const std::size_t u = new_c.size() + old_c.size();
      const bool use_gram = opts.use_gemm && u >= kGramCutoff;
      if (use_gram) {
        union_idx.assign(new_c.begin(), new_c.end());
        union_idx.insert(union_idx.end(), old_c.begin(), old_c.end());
        gather_rows(points, union_idx, gathered);
        linalg::gram_rows(gathered, gram);
      }
      // Candidate (a, b) positions within the union: new entries first,
      // old entries after, matching union_idx.
      const auto pair_dist = [&](std::size_t pa, std::size_t pb, std::size_t a,
                                 std::size_t b) {
        if (use_gram) {
          return std::max(0.0,
                          gram(pa, pa) + gram(pb, pb) - 2.0 * gram(pa, pb));
        }
        return sq_dist(points.row(a), points.row(b));
      };

      // new-new pairs and new-old pairs share an anchor at i; each pair is
      // a candidate edge.
      for (std::size_t a = 0; a < new_c.size(); ++a) {
        const std::size_t pu = new_c[a];
        for (std::size_t b = a + 1; b < new_c.size(); ++b) {
          const std::size_t pv = new_c[b];
          if (pu == pv) continue;
          const double dd = pair_dist(a, b, pu, pv);
          updates += lists[pu].try_insert(dd, pv) ? 1 : 0;
          updates += lists[pv].try_insert(dd, pu) ? 1 : 0;
        }
        for (std::size_t b = 0; b < old_c.size(); ++b) {
          const std::size_t pv = old_c[b];
          if (pu == pv) continue;
          const double dd = pair_dist(a, new_c.size() + b, pu, pv);
          updates += lists[pu].try_insert(dd, pv) ? 1 : 0;
          updates += lists[pv].try_insert(dd, pu) ? 1 : 0;
        }
      }
    }
    if (updates <= static_cast<long>(0.001 * static_cast<double>(n * k))) {
      break;  // converged early
    }
  }
}

/// Writes the (squared-distance) neighbour lists into `g`, sorted ascending
/// with Euclidean distances.
void lists_to_graph(const std::vector<NeighborList>& lists, std::size_t k,
                    KnnGraph& g) {
  const std::size_t n = lists.size();
  g.n = n;
  g.k = k;
  g.neighbors.resize(n * k);
  g.distances.resize(n * k);
  std::vector<std::pair<double, std::size_t>> sorted(k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      sorted[j] = {lists[i].items[j].dist, lists[i].items[j].index};
    }
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t j = 0; j < k; ++j) {
      g.neighbors[i * k + j] = sorted[j].second;
      g.distances[i * k + j] = std::sqrt(sorted[j].first);
    }
  }
}

}  // namespace

void nn_descent(const Matrix& points, std::size_t k, Rng& rng,
                linalg::Workspace& ws, KnnGraph& g, int iters,
                double sample_rate, const DistanceOptions& opts) {
  const std::size_t n = points.rows();
  check_graph_args(n, k);
  Stopwatch timer;

  std::vector<NeighborList> lists(n, NeighborList(k));
  // Random initialization.
  for (std::size_t i = 0; i < n; ++i) {
    while (true) {
      bool full = true;
      for (const auto& it : lists[i].items) {
        if (it.index == static_cast<std::size_t>(-1)) {
          full = false;
          break;
        }
      }
      if (full) break;
      std::size_t j = rng.uniform_index(n);
      if (j == i) continue;
      lists[i].try_insert(sq_dist(points.row(i), points.row(j)), j);
    }
  }

  descent_iterations(points, lists, k, rng, ws, iters, sample_rate, opts);
  lists_to_graph(lists, k, g);
  knn_seconds().observe(timer.seconds());
}

void nn_descent_refine(const Matrix& points, Rng& rng, linalg::Workspace& ws,
                       KnnGraph& g, int iters, double sample_rate,
                       const DistanceOptions& opts) {
  const std::size_t n = points.rows();
  const std::size_t k = g.k;
  check_graph_args(n, k);
  ARAMS_CHECK(g.n == n, "nn_descent_refine: graph covers " +
                            std::to_string(g.n) + " points, expected " +
                            std::to_string(n));
  if (iters <= 0) return;
  Stopwatch timer;

  // Seed the bounded lists from the caller's graph (Euclidean distances →
  // the squared form the join arithmetic uses), every entry marked new so
  // the first pass joins the full seed neighbourhood.
  std::vector<NeighborList> lists(n, NeighborList(k));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t idx = g.neighbor(i, j);
      ARAMS_CHECK(idx < n && idx != i,
                  "nn_descent_refine: seed graph has invalid neighbour " +
                      std::to_string(idx) + " for point " + std::to_string(i));
      const double d = g.distance(i, j);
      lists[i].items[j] = NeighborList::Item{d * d, idx, true};
    }
    lists[i].refresh_worst();
  }

  descent_iterations(points, lists, k, rng, ws, iters, sample_rate, opts);
  lists_to_graph(lists, k, g);
  knn_seconds().observe(timer.seconds());
}

KnnGraph nn_descent(const Matrix& points, std::size_t k, Rng& rng, int iters,
                    double sample_rate) {
  linalg::Workspace ws;
  KnnGraph g;
  nn_descent(points, k, rng, ws, g, iters, sample_rate);
  return g;
}

void build_knn(const Matrix& points, std::size_t k, Rng& rng,
               linalg::Workspace& ws, KnnGraph& out,
               std::size_t exact_threshold, const DistanceOptions& opts) {
  if (points.rows() <= exact_threshold) {
    exact_knn(points, k, ws, out, opts);
    return;
  }
  nn_descent(points, k, rng, ws, out, /*iters=*/6, /*sample_rate=*/1.0, opts);
}

KnnGraph build_knn(const Matrix& points, std::size_t k, Rng& rng,
                   std::size_t exact_threshold) {
  linalg::Workspace ws;
  KnnGraph g;
  build_knn(points, k, rng, ws, g, exact_threshold);
  return g;
}

double knn_recall(const KnnGraph& approx, const KnnGraph& exact) {
  ARAMS_CHECK(approx.n == exact.n && approx.k == exact.k,
              "graphs not comparable");
  long hits = 0;
  for (std::size_t i = 0; i < exact.n; ++i) {
    for (std::size_t j = 0; j < exact.k; ++j) {
      const std::size_t target = exact.neighbor(i, j);
      for (std::size_t l = 0; l < approx.k; ++l) {
        if (approx.neighbor(i, l) == target) {
          ++hits;
          break;
        }
      }
    }
  }
  return static_cast<double>(hits) /
         static_cast<double>(exact.n * exact.k);
}

}  // namespace arams::embed
