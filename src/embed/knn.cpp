#include "embed/knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/blas.hpp"
#include "util/check.hpp"

namespace arams::embed {

using linalg::Matrix;

namespace {

double sq_dist(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// Bounded neighbour list used by NN-descent: a max-heap-like flat array of
/// (distance, index, is_new) keeping the k smallest distances seen.
struct NeighborList {
  struct Item {
    double dist = std::numeric_limits<double>::infinity();
    std::size_t index = static_cast<std::size_t>(-1);
    bool is_new = false;
  };
  std::vector<Item> items;

  explicit NeighborList(std::size_t k) : items(k) {}

  [[nodiscard]] double worst() const {
    double w = 0.0;
    for (const auto& it : items) w = std::max(w, it.dist);
    return w;
  }

  /// Inserts (dist, idx) if it improves the list; returns true on change.
  bool try_insert(double dist, std::size_t idx) {
    // Reject duplicates and non-improving candidates.
    std::size_t worst_at = 0;
    double worst_dist = -1.0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].index == idx) return false;
      if (items[i].dist > worst_dist) {
        worst_dist = items[i].dist;
        worst_at = i;
      }
    }
    if (dist >= worst_dist) return false;
    items[worst_at] = Item{dist, idx, true};
    return true;
  }
};

}  // namespace

KnnGraph exact_knn(const Matrix& points, std::size_t k) {
  const std::size_t n = points.rows();
  ARAMS_CHECK(n >= 2, "kNN needs at least two points");
  ARAMS_CHECK(k >= 1 && k < n, "k must satisfy 1 <= k < n");

  KnnGraph g;
  g.n = n;
  g.k = k;
  g.neighbors.resize(n * k);
  g.distances.resize(n * k);

  std::vector<std::pair<double, std::size_t>> cand(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t m = 0;
    const auto pi = points.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      cand[m++] = {sq_dist(pi, points.row(j)), j};
    }
    std::partial_sort(cand.begin(),
                      cand.begin() + static_cast<std::ptrdiff_t>(k),
                      cand.end());
    for (std::size_t j = 0; j < k; ++j) {
      g.neighbors[i * k + j] = cand[j].second;
      g.distances[i * k + j] = std::sqrt(cand[j].first);
    }
  }
  return g;
}

KnnGraph nn_descent(const Matrix& points, std::size_t k, Rng& rng, int iters,
                    double sample_rate) {
  const std::size_t n = points.rows();
  ARAMS_CHECK(n >= 2, "kNN needs at least two points");
  ARAMS_CHECK(k >= 1 && k < n, "k must satisfy 1 <= k < n");

  std::vector<NeighborList> lists(n, NeighborList(k));
  // Random initialization.
  for (std::size_t i = 0; i < n; ++i) {
    while (true) {
      bool full = true;
      for (const auto& it : lists[i].items) {
        if (it.index == static_cast<std::size_t>(-1)) {
          full = false;
          break;
        }
      }
      if (full) break;
      std::size_t j = rng.uniform_index(n);
      if (j == i) continue;
      lists[i].try_insert(sq_dist(points.row(i), points.row(j)), j);
    }
  }

  std::vector<std::vector<std::size_t>> fwd_new(n), fwd_old(n), rev_new(n),
      rev_old(n);
  for (int iter = 0; iter < iters; ++iter) {
    for (auto& v : fwd_new) v.clear();
    for (auto& v : fwd_old) v.clear();
    for (auto& v : rev_new) v.clear();
    for (auto& v : rev_old) v.clear();

    for (std::size_t i = 0; i < n; ++i) {
      for (auto& it : lists[i].items) {
        if (it.index == static_cast<std::size_t>(-1)) continue;
        if (it.is_new) {
          if (sample_rate >= 1.0 || rng.uniform() < sample_rate) {
            fwd_new[i].push_back(it.index);
            rev_new[it.index].push_back(i);
            it.is_new = false;
          }
        } else {
          fwd_old[i].push_back(it.index);
          rev_old[it.index].push_back(i);
        }
      }
    }

    long updates = 0;
    std::vector<std::size_t> new_c, old_c;
    for (std::size_t i = 0; i < n; ++i) {
      new_c = fwd_new[i];
      new_c.insert(new_c.end(), rev_new[i].begin(), rev_new[i].end());
      old_c = fwd_old[i];
      old_c.insert(old_c.end(), rev_old[i].begin(), rev_old[i].end());

      // new-new pairs and new-old pairs share an anchor at i; each pair is
      // a candidate edge.
      for (std::size_t a = 0; a < new_c.size(); ++a) {
        const std::size_t u = new_c[a];
        for (std::size_t b = a + 1; b < new_c.size(); ++b) {
          const std::size_t v = new_c[b];
          if (u == v) continue;
          const double d = sq_dist(points.row(u), points.row(v));
          updates += lists[u].try_insert(d, v) ? 1 : 0;
          updates += lists[v].try_insert(d, u) ? 1 : 0;
        }
        for (const std::size_t v : old_c) {
          if (u == v) continue;
          const double d = sq_dist(points.row(u), points.row(v));
          updates += lists[u].try_insert(d, v) ? 1 : 0;
          updates += lists[v].try_insert(d, u) ? 1 : 0;
        }
      }
    }
    if (updates <= static_cast<long>(0.001 * static_cast<double>(n * k))) {
      break;  // converged early
    }
  }

  KnnGraph g;
  g.n = n;
  g.k = k;
  g.neighbors.resize(n * k);
  g.distances.resize(n * k);
  std::vector<std::pair<double, std::size_t>> sorted(k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      sorted[j] = {lists[i].items[j].dist, lists[i].items[j].index};
    }
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t j = 0; j < k; ++j) {
      g.neighbors[i * k + j] = sorted[j].second;
      g.distances[i * k + j] = std::sqrt(sorted[j].first);
    }
  }
  return g;
}

KnnGraph build_knn(const Matrix& points, std::size_t k, Rng& rng,
                   std::size_t exact_threshold) {
  if (points.rows() <= exact_threshold) {
    return exact_knn(points, k);
  }
  return nn_descent(points, k, rng);
}

double knn_recall(const KnnGraph& approx, const KnnGraph& exact) {
  ARAMS_CHECK(approx.n == exact.n && approx.k == exact.k,
              "graphs not comparable");
  long hits = 0;
  for (std::size_t i = 0; i < exact.n; ++i) {
    for (std::size_t j = 0; j < exact.k; ++j) {
      const std::size_t target = exact.neighbor(i, j);
      for (std::size_t l = 0; l < approx.k; ++l) {
        if (approx.neighbor(i, l) == target) {
          ++hits;
          break;
        }
      }
    }
  }
  return static_cast<double>(hits) /
         static_cast<double>(exact.n * exact.k);
}

}  // namespace arams::embed
