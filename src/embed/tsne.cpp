#include "embed/tsne.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "rng/rng.hpp"
#include "util/check.hpp"

namespace arams::embed {

using linalg::Matrix;

namespace {

/// Symmetric, normalized high-dimensional affinities P with per-point
/// bandwidths calibrated to the target perplexity by binary search.
Matrix compute_p(const Matrix& x, double perplexity) {
  const std::size_t n = x.rows();
  // Pairwise squared distances.
  Matrix d2(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      const auto ri = x.row(i);
      const auto rj = x.row(j);
      for (std::size_t c = 0; c < ri.size(); ++c) {
        const double diff = ri[c] - rj[c];
        s += diff * diff;
      }
      d2(i, j) = s;
      d2(j, i) = s;
    }
  }

  const double log_perp = std::log(perplexity);
  Matrix p(n, n);
  std::vector<double> row(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Binary search the precision β = 1/(2σ²) for row i.
    double beta = 1.0, beta_lo = 0.0;
    double beta_hi = std::numeric_limits<double>::infinity();
    for (int it = 0; it < 64; ++it) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = (j == i) ? 0.0 : std::exp(-d2(i, j) * beta);
        sum += row[j];
      }
      if (sum <= 0.0) {
        beta /= 2.0;
        continue;
      }
      // Shannon entropy H = log(sum) + β·⟨d²⟩.
      double weighted_d2 = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        weighted_d2 += row[j] * d2(i, j);
      }
      const double entropy = std::log(sum) + beta * weighted_d2 / sum;
      const double diff = entropy - log_perp;
      if (std::abs(diff) < 1e-5) break;
      if (diff > 0.0) {
        beta_lo = beta;
        beta = std::isinf(beta_hi) ? beta * 2.0 : (beta + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta + beta_lo) / 2.0;
      }
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = (j == i) ? 0.0 : std::exp(-d2(i, j) * beta);
      }
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = (j == i) ? 0.0 : std::exp(-d2(i, j) * beta);
      sum += row[j];
    }
    const double inv = sum > 0.0 ? 1.0 / sum : 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      p(i, j) = row[j] * inv;
    }
  }

  // Symmetrize and normalize: p_ij = (p_{j|i} + p_{i|j}) / 2n, floored.
  Matrix sym(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      sym(i, j) = std::max((p(i, j) + p(j, i)) /
                               (2.0 * static_cast<double>(n)),
                           1e-12);
    }
    sym(i, i) = 0.0;
  }
  return sym;
}

}  // namespace

Matrix tsne_embed(const Matrix& points, const TsneConfig& config) {
  const std::size_t n = points.rows();
  ARAMS_CHECK(n >= 8, "t-SNE needs at least 8 points");
  ARAMS_CHECK(static_cast<double>(n) > 3.0 * config.perplexity,
              "need n > 3*perplexity");
  ARAMS_CHECK(config.n_components >= 1, "need at least one component");
  const std::size_t dim = config.n_components;

  Matrix p = compute_p(points, config.perplexity);
  // Early exaggeration.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      p(i, j) *= config.exaggeration;
    }
  }

  Rng rng(config.seed);
  Matrix y(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : y.row(i)) v = 1e-4 * rng.normal();
  }
  Matrix velocity(n, dim);
  Matrix gains(n, dim);
  gains.fill(1.0);
  Matrix grad(n, dim);
  Matrix qnum(n, n);  // unnormalized low-dim affinities

  for (int iter = 0; iter < config.n_iters; ++iter) {
    if (iter == config.exaggeration_iters) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          p(i, j) /= config.exaggeration;
        }
      }
    }
    // Student-t numerators and their sum.
    double qsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      qnum(i, i) = 0.0;
      for (std::size_t j = i + 1; j < n; ++j) {
        double s = 0.0;
        for (std::size_t c = 0; c < dim; ++c) {
          const double diff = y(i, c) - y(j, c);
          s += diff * diff;
        }
        const double q = 1.0 / (1.0 + s);
        qnum(i, j) = q;
        qnum(j, i) = q;
        qsum += 2.0 * q;
      }
    }
    qsum = std::max(qsum, 1e-300);

    // Gradient: 4·Σⱼ (p_ij − q_ij)·q_num_ij·(y_i − y_j).
    grad.fill(0.0);
    for (std::size_t i = 0; i < n; ++i) {
      auto gi = grad.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double q = qnum(i, j) / qsum;
        const double mult = 4.0 * (p(i, j) - q) * qnum(i, j);
        for (std::size_t c = 0; c < dim; ++c) {
          gi[c] += mult * (y(i, c) - y(j, c));
        }
      }
    }

    // Momentum + adaptive per-coordinate gains, as in the reference code.
    const double momentum = (iter < 250) ? config.initial_momentum
                                         : config.final_momentum;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < dim; ++c) {
        const bool same_sign =
            (grad(i, c) > 0.0) == (velocity(i, c) > 0.0);
        gains(i, c) = same_sign ? std::max(gains(i, c) * 0.8, 0.01)
                                : gains(i, c) + 0.2;
        velocity(i, c) = momentum * velocity(i, c) -
                         config.learning_rate * gains(i, c) * grad(i, c);
        y(i, c) += velocity(i, c);
      }
    }
    // Re-center to remove drift.
    for (std::size_t c = 0; c < dim; ++c) {
      double mean = 0.0;
      for (std::size_t i = 0; i < n; ++i) mean += y(i, c);
      mean /= static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) y(i, c) -= mean;
    }
  }
  return y;
}

}  // namespace arams::embed
