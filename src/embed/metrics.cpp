#include "embed/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace arams::embed {

using linalg::Matrix;

namespace {

double sq_dist(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

/// For each point, ranks of all other points by distance (rank 1 = nearest).
std::vector<std::vector<std::size_t>> rank_table(const Matrix& points) {
  const std::size_t n = points.rows();
  std::vector<std::vector<std::size_t>> ranks(n,
                                              std::vector<std::size_t>(n, 0));
  std::vector<std::pair<double, std::size_t>> cand;
  cand.reserve(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    cand.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      cand.emplace_back(sq_dist(points.row(i), points.row(j)), j);
    }
    std::sort(cand.begin(), cand.end());
    for (std::size_t r = 0; r < cand.size(); ++r) {
      ranks[i][cand[r].second] = r + 1;
    }
  }
  return ranks;
}

}  // namespace

double trustworthiness(const Matrix& data, const Matrix& embedding,
                       std::size_t k) {
  const std::size_t n = data.rows();
  ARAMS_CHECK(embedding.rows() == n, "row count mismatch");
  ARAMS_CHECK(k >= 1 && 2 * k < n, "k out of range for trustworthiness");

  const auto data_ranks = rank_table(data);

  // k nearest in the embedding, for each point.
  std::vector<std::pair<double, std::size_t>> cand;
  double penalty = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cand.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      cand.emplace_back(sq_dist(embedding.row(i), embedding.row(j)), j);
    }
    std::partial_sort(cand.begin(),
                      cand.begin() + static_cast<std::ptrdiff_t>(k),
                      cand.end());
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t idx = cand[j].second;
      const std::size_t r = data_ranks[i][idx];
      if (r > k) {
        penalty += static_cast<double>(r - k);
      }
    }
  }
  const double norm =
      2.0 / (static_cast<double>(n) * static_cast<double>(k) *
             (2.0 * static_cast<double>(n) - 3.0 * static_cast<double>(k) -
              1.0));
  return 1.0 - norm * penalty;
}

double axis_factor_correlation(const Matrix& embedding, std::size_t axis,
                               const std::vector<double>& factor) {
  const std::size_t n = embedding.rows();
  ARAMS_CHECK(axis < embedding.cols(), "axis out of range");
  ARAMS_CHECK(factor.size() == n, "factor length mismatch");
  ARAMS_CHECK(n >= 2, "need at least two points");

  double mx = 0.0, mf = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += embedding(i, axis);
    mf += factor[i];
  }
  mx /= static_cast<double>(n);
  mf /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = embedding(i, axis) - mx;
    const double df = factor[i] - mf;
    sxy += dx * df;
    sxx += dx * dx;
    syy += df * df;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace arams::embed
