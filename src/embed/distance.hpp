#pragma once
// Shared squared-Euclidean distance engine for the downstream pipeline
// (kNN graphs, UMAP transform, OPTICS, ABOD, k-means assignment).
//
// Every consumer used to run its own per-pair scalar loop; this module
// routes all of them through one blocked primitive: a distance block
// D(i,j) = ‖x_i − y_j‖² is computed as ‖x_i‖² + ‖y_j‖² − 2·(X·Yᵀ)(i,j),
// where X·Yᵀ goes through the packed, register-blocked `matmul_nt` core
// (which fans row bands across the shared pool above its flop threshold).
// The rank-1 fix-up and any per-row selection are themselves row-band
// parallel above `kElementParallelThreshold` output elements; bands are
// disjoint rows with per-element independent arithmetic, so parallel and
// sequential runs produce bit-identical blocks.
//
// Scratch discipline: blocks land in caller-provided matrices (typically
// `Workspace` slots in the `wslot::kDist*` range), so steady-state calls in
// a snapshot loop are allocation-free on the serial path (the pool dispatch
// itself allocates task state, same as the GEMM core).
//
// Accuracy contract: the Gram trick reorders the accumulation, so engine
// distances differ from the naive per-pair loop by rounding only —
// ≤ 1e-10 relative (enforced by tests/test_distance.cpp); exact zeros can
// come out as tiny negatives and are clamped to 0. Consumers that need the
// naive arithmetic bit-for-bit (parity tests, the OPTICS ordering-stability
// check) pass `DistanceOptions{.use_gemm = false}`.
//
// Telemetry: every GEMM-backed block bumps "embed.distance_gemm_count".

#include <cstddef>
#include <span>

#include "linalg/matrix.hpp"
#include "linalg/workspace.hpp"

namespace arams::embed {

/// Scalar squared Euclidean distance — the shared reference path every
/// consumer falls back to for single pairs and tiny shapes.
double sq_dist(std::span<const double> a, std::span<const double> b);

struct DistanceOptions {
  /// false → per-pair scalar loops (bitwise-identical to the historical
  /// implementations; used as the parity/ordering reference).
  bool use_gemm = true;
  /// false → keep the fix-up/selection single-threaded even above the
  /// element threshold (the GEMM core's own dispatch is unaffected).
  bool allow_parallel = true;
};

/// out[i] = ‖a.row(i)‖². `out.size()` must equal `a.rows()`.
void row_sq_norms(linalg::MatrixView a, std::span<double> out);

/// Fills `out` (x.rows()×y.rows()) with squared distances between every row
/// of x and every row of y. `out` is reshaped in place (grow-only).
void pairwise_sq_dists(linalg::MatrixView x, linalg::MatrixView y,
                       linalg::Workspace& ws, linalg::Matrix& out,
                       const DistanceOptions& opts = {});

/// Same, with caller-precomputed squared row norms — the hoisted form for
/// loops that stream many query blocks against one reference set (blocked
/// kNN, OPTICS range queries, k-means assignment sweeps).
void pairwise_sq_dists_prenormed(linalg::MatrixView x, linalg::MatrixView y,
                                 std::span<const double> x_sq_norms,
                                 std::span<const double> y_sq_norms,
                                 linalg::Workspace& ws, linalg::Matrix& out,
                                 const DistanceOptions& opts = {});

/// Gram-only block: out = x·yᵀ through the same packed GEMM core (and the
/// same telemetry counter), with *no* norm fix-up. For consumers that fuse
/// the ‖x‖² + ‖y‖² − 2g fix-up into their own consumption pass (the blocked
/// kNN selection does this) so the block is traversed once instead of
/// twice. Apply the fix-up as `max(0.0, xn + yn - 2.0 * g)` — the exact
/// expression `pairwise_sq_dists*` uses — to keep results identical.
void pairwise_gram(linalg::MatrixView x, linalg::MatrixView y,
                   linalg::Matrix& out);

/// Copies rows `idx` of `src` into `out` (idx.size()×src.cols()), the
/// gather step for candidate-set Gram scoring (NN-descent joins, ABOD
/// neighbourhood angle statistics).
void gather_rows(linalg::MatrixView src, std::span<const std::size_t> idx,
                 linalg::Matrix& out);

}  // namespace arams::embed
