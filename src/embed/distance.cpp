#include "embed/distance.hpp"

#include <algorithm>

#include "linalg/blas.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"

namespace arams::embed {

using linalg::Matrix;
using linalg::MatrixView;

double sq_dist(std::span<const double> a, std::span<const double> b) {
  ARAMS_DCHECK(a.size() == b.size(), "sq_dist size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

void row_sq_norms(MatrixView a, std::span<double> out) {
  ARAMS_CHECK(out.size() == a.rows(), "row_sq_norms size mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    out[i] = linalg::norm2_squared(a.row(i));
  }
}

void gather_rows(MatrixView src, std::span<const std::size_t> idx,
                 Matrix& out) {
  out.reshape(idx.size(), src.cols());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    ARAMS_DCHECK(idx[i] < src.rows(), "gather_rows index out of range");
    out.set_row(i, src.row(idx[i]));
  }
}

namespace {

// Output blocks with at least this many elements fan the rank-1 fix-up out
// as row bands across the shared pool. Each element is three flops; below
// this the dispatch overhead dominates.
constexpr std::size_t kElementParallelThreshold = std::size_t{1} << 18;

parallel::ThreadPool* fixup_pool(std::size_t elements,
                                 const DistanceOptions& opts) {
  if (!opts.allow_parallel || elements < kElementParallelThreshold) {
    return nullptr;
  }
  parallel::ThreadPool& pool = parallel::shared_pool();
  return pool.thread_count() >= 2 ? &pool : nullptr;
}

/// Naive reference: per-pair scalar differences, bitwise-identical to the
/// historical consumer loops.
void pairwise_naive(MatrixView x, MatrixView y, Matrix& out) {
  out.reshape(x.rows(), y.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto xi = x.row(i);
    double* dst = out.data() + i * y.rows();
    for (std::size_t j = 0; j < y.rows(); ++j) {
      dst[j] = sq_dist(xi, y.row(j));
    }
  }
}

void pairwise_gemm(MatrixView x, MatrixView y,
                   std::span<const double> x_sq_norms,
                   std::span<const double> y_sq_norms, Matrix& out,
                   const DistanceOptions& opts) {
  // G = X·Yᵀ straight into the output block, then the rank-1 fix-up
  // d² = ‖x‖² + ‖y‖² − 2g in place. The fix-up is per-element independent,
  // so band partitioning cannot change results.
  pairwise_gram(x, y, out);
  const std::size_t m = x.rows();
  const std::size_t n = y.rows();
  const auto fix_rows = [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const double xn = x_sq_norms[i];
      double* row = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = std::max(0.0, xn + y_sq_norms[j] - 2.0 * row[j]);
      }
    }
  };
  parallel::ThreadPool* pool = fixup_pool(m * n, opts);
  if (pool == nullptr) {
    fix_rows(0, m);
  } else {
    const std::size_t bands = std::min(m, pool->thread_count() * 4);
    pool->parallel_for(bands, [&](std::size_t t) {
      fix_rows(m * t / bands, m * (t + 1) / bands);
    });
  }
}

}  // namespace

void pairwise_gram(MatrixView x, MatrixView y, Matrix& out) {
  ARAMS_CHECK(x.cols() == y.cols(), "pairwise dimension mismatch");
  static obs::Counter& gemm_blocks =
      obs::metrics().counter("embed.distance_gemm_count");
  gemm_blocks.add(1);
  linalg::matmul_nt(x, y, out);
}

void pairwise_sq_dists_prenormed(MatrixView x, MatrixView y,
                                 std::span<const double> x_sq_norms,
                                 std::span<const double> y_sq_norms,
                                 linalg::Workspace& ws, Matrix& out,
                                 const DistanceOptions& opts) {
  ARAMS_CHECK(x.cols() == y.cols(), "pairwise dimension mismatch");
  ARAMS_CHECK(x_sq_norms.size() == x.rows() && y_sq_norms.size() == y.rows(),
              "pairwise norm length mismatch");
  (void)ws;  // reserved for future packed scratch; keeps call sites uniform
  if (!opts.use_gemm) {
    pairwise_naive(x, y, out);
    return;
  }
  pairwise_gemm(x, y, x_sq_norms, y_sq_norms, out, opts);
}

void pairwise_sq_dists(MatrixView x, MatrixView y, linalg::Workspace& ws,
                       Matrix& out, const DistanceOptions& opts) {
  ARAMS_CHECK(x.cols() == y.cols(), "pairwise dimension mismatch");
  if (!opts.use_gemm) {
    pairwise_naive(x, y, out);
    return;
  }
  const auto xn = ws.vec(linalg::wslot::kDistXNorms, x.rows());
  row_sq_norms(x, xn);
  // Self-products share one norm vector (the common kNN case x == y).
  if (x.data() == y.data() && x.rows() == y.rows()) {
    pairwise_gemm(x, y, xn, xn, out, opts);
    return;
  }
  const auto yn = ws.vec(linalg::wslot::kDistYNorms, y.rows());
  row_sq_norms(y, yn);
  pairwise_gemm(x, y, xn, yn, out, opts);
}

}  // namespace arams::embed
