#pragma once
// UMAP — Uniform Manifold Approximation and Projection (McInnes, Healy,
// Saul, Großberger 2018), reimplemented for stage 3 of the monitoring
// pipeline (latent space → 2-D visualization).
//
// Pipeline: kNN graph → smoothed local metric (ρᵢ, σᵢ via binary search so
// Σⱼ exp(−max(0, dᵢⱼ−ρᵢ)/σᵢ) = log₂(k)) → fuzzy simplicial set union
// (w = wᵢⱼ + wⱼᵢ − wᵢⱼwⱼᵢ) → negative-sampling SGD on the cross-entropy
// layout with the (a, b) curve fitted from min_dist.
//
// Deviations from the reference implementation (documented in DESIGN.md):
// spectral initialization is replaced by PCA initialization (deterministic,
// and the input here is already a PCA latent space).

#include <cstdint>
#include <utility>
#include <vector>

#include "embed/ann/searcher.hpp"
#include "embed/knn.hpp"
#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace arams::embed {

struct UmapConfig {
  std::size_t n_neighbors = 15;
  std::size_t n_components = 2;
  double min_dist = 0.1;
  double spread = 1.0;
  int n_epochs = 300;
  double learning_rate = 1.0;
  int negative_samples = 5;
  double repulsion_strength = 1.0;
  enum class Init { kPca, kRandom, kSpectral };
  Init init = Init::kPca;
  std::uint64_t seed = 42;

  /// kNN searcher configuration (embed/ann/searcher.hpp). The default
  /// "auto" backend dispatches on size: exact at or below
  /// knn.exact_threshold points, rpforest above. knn.seed is overridden
  /// from `seed` so one knob controls the whole embedding.
  AnnConfig knn;

  /// DEPRECATED — use knn.exact_threshold (`--knn-exact-threshold`).
  /// Honored through a compatibility shim: a non-default value here is
  /// carried into knn.exact_threshold as long as the latter is untouched.
  std::size_t exact_knn_threshold = 4096;

  /// SGD layout strategy.
  ///  * kSerial — the reference single-threaded loop: edges visited in
  ///    order, one shared RNG stream. Bitwise-reproducible run to run.
  ///  * kBatchParallel — umappp-style batch epochs: gradients for each
  ///    epoch are evaluated against a frozen copy of the previous layout,
  ///    edges are split into a fixed number of partitions whose delta
  ///    matrices are reduced in deterministic order, and negative samples
  ///    draw from per-edge split RNG streams. Race-free and deterministic
  ///    regardless of thread count, but a different (batch) update rule, so
  ///    its layouts differ numerically from kSerial's.
  ///  * kAuto — kSerial below ~2·10⁷ edge-epoch visits (every existing
  ///    small-scale caller stays bitwise-identical), kBatchParallel above.
  enum class Optimizer { kSerial, kBatchParallel, kAuto };
  Optimizer optimizer = Optimizer::kAuto;
};

/// Smoothed local metric per point.
struct SmoothKnn {
  std::vector<double> rho;    ///< distance to the nearest neighbour
  std::vector<double> sigma;  ///< bandwidth solving the log₂(k) constraint
};

/// Symmetric weighted graph as an edge list (u < v).
struct FuzzyGraph {
  struct Edge {
    std::size_t u;
    std::size_t v;
    double weight;
  };
  std::size_t n = 0;
  std::vector<Edge> edges;
};

/// Binary-searches σᵢ for every point (Algorithm 3 of the UMAP paper).
SmoothKnn smooth_knn_distances(const KnnGraph& graph,
                               double local_connectivity = 1.0,
                               int iterations = 64);

/// Directed memberships + probabilistic t-conorm symmetrization.
FuzzyGraph fuzzy_simplicial_set(const KnnGraph& graph,
                                const SmoothKnn& smooth);

/// Fits (a, b) of the low-dimensional curve 1/(1 + a·x^{2b}) to the target
/// shape exp(−(x−min_dist)/spread) by two-stage grid search.
std::pair<double, double> fit_ab(double spread, double min_dist);

/// Spectral layout: the n_components eigenvectors of the symmetrically
/// normalized graph Laplacian with the smallest non-trivial eigenvalues,
/// found by deflated power iteration on the normalized adjacency. This is
/// the reference implementation's default initialization.
linalg::Matrix spectral_init(const FuzzyGraph& graph,
                             std::size_t n_components, Rng& rng,
                             int iterations = 200);

/// The effective searcher config an embedding run derives from `config`:
/// `config.seed` flows into the searcher stream and the deprecated
/// exact_knn_threshold field is honored via the compatibility shim. The
/// streaming monitor uses the same derivation so its warm snapshot index
/// matches what umap_embed would build.
[[nodiscard]] AnnConfig umap_knn_config(const UmapConfig& config);

/// Full UMAP embedding of `points` (n×d) into n×n_components.
linalg::Matrix umap_embed(const linalg::Matrix& points,
                          const UmapConfig& config);

/// Workspace-backed embedding: the kNN build draws its distance blocks
/// from `ws` (see knn.hpp) so repeated snapshot calls reuse scratch.
linalg::Matrix umap_embed(const linalg::Matrix& points,
                          const UmapConfig& config, linalg::Workspace& ws,
                          const DistanceOptions& opts = {});

/// Embedding starting from a caller-supplied kNN graph (lets the pipeline
/// reuse one graph for UMAP and diagnostics).
linalg::Matrix umap_embed_graph(const linalg::Matrix& points,
                                const KnnGraph& graph,
                                const UmapConfig& config);

/// Out-of-sample transform: places `new_points` into an existing embedding
/// without re-optimizing it. Each new point is initialized at the
/// weight-averaged embedding of its kNN among `reference_points` and
/// refined by a short SGD pass attracted to those neighbours (the frozen
/// reference never moves). This is what lets a streaming monitor embed
/// fresh shots at per-shot cost instead of re-running UMAP.
linalg::Matrix umap_transform(const linalg::Matrix& reference_points,
                              const linalg::Matrix& reference_embedding,
                              const linalg::Matrix& new_points,
                              const UmapConfig& config);

/// Workspace-backed transform: new-vs-reference distances come from the
/// blocked GEMM engine in 256-row blocks drawn from `ws`, and per-point
/// refinement fans across the shared pool (each point owns a split RNG
/// stream, so results are deterministic and independent of thread count).
linalg::Matrix umap_transform(const linalg::Matrix& reference_points,
                              const linalg::Matrix& reference_embedding,
                              const linalg::Matrix& new_points,
                              const UmapConfig& config, linalg::Workspace& ws,
                              const DistanceOptions& opts = {});

/// Searcher-backed transform: the reference kNN comes from an already
/// built NeighborSearcher over the reference points (row i of
/// `reference_embedding` must correspond to index i of the searcher). This
/// is the streaming monitor's path — the index is built once per full
/// snapshot and kept warm with insert() across incremental snapshots.
linalg::Matrix umap_transform(NeighborSearcher& reference_index,
                              const linalg::Matrix& reference_embedding,
                              const linalg::Matrix& new_points,
                              const UmapConfig& config, linalg::Workspace& ws,
                              const DistanceOptions& opts = {});

}  // namespace arams::embed
