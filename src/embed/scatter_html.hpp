#pragma once
// Self-contained interactive HTML scatter plot of a 2-D embedding.
//
// The paper's artifact produces Bokeh HTML files with hover tooltips for
// the operators; this writer reproduces that deliverable without any
// dependency: one HTML file with inline SVG, points colored by cluster
// label (noise in grey), and a <title> tooltip per point.

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace arams::embed {

struct ScatterConfig {
  std::string title = "ARAMS embedding";
  int width = 760;
  int height = 560;
  double point_radius = 3.0;
};

/// Writes `embedding` (n×2) to `path`. `labels` (may be empty) colors the
/// points; `tooltips` (may be empty) sets one hover line per point.
/// Throws CheckError on shape mismatch or I/O failure.
void write_scatter_html(const std::string& path,
                        const linalg::Matrix& embedding,
                        const std::vector<int>& labels,
                        const std::vector<std::string>& tooltips,
                        const ScatterConfig& config = {});

}  // namespace arams::embed
