#pragma once
// Minimal command-line flag parser shared by benches and examples.
//
// Supported syntax:  --name=value   --name value   --flag (boolean true)
// Unknown flags raise CheckError so typos in bench invocations fail loudly.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace arams {

/// Declarative flag set: declare flags with defaults, then parse argv.
class CliFlags {
 public:
  /// Declares a flag with a default value and a help string.
  void declare(const std::string& name, const std::string& default_value,
               const std::string& help);

  /// Parses argv; throws CheckError on unknown flags or missing values.
  /// Returns positional (non-flag) arguments in order.
  std::vector<std::string> parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// True when the flag was explicitly provided on the command line.
  [[nodiscard]] bool provided(const std::string& name) const;

  /// One-line-per-flag usage text.
  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
    bool provided = false;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace arams
