#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace arams {

void CliFlags::declare(const std::string& name,
                       const std::string& default_value,
                       const std::string& help) {
  ARAMS_CHECK(!flags_.contains(name), "flag declared twice: " + name);
  flags_[name] = Flag{default_value, help, false};
  order_.push_back(name);
}

std::vector<std::string> CliFlags::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!arg.starts_with("--")) {
      positional.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
    }
    const auto it = flags_.find(name);
    ARAMS_CHECK(it != flags_.end(), "unknown flag --" + name);
    if (!value.has_value()) {
      // `--flag value` form, unless the flag looks boolean and the next token
      // is another flag (or absent) — then treat as `--flag` = true.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = *value;
    it->second.provided = true;
  }
  return positional;
}

const std::string& CliFlags::get(const std::string& name) const {
  const auto it = flags_.find(name);
  ARAMS_CHECK(it != flags_.end(), "flag not declared: " + name);
  return it->second.value;
}

long CliFlags::get_int(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const long out = std::strtol(v.c_str(), &end, 10);
  ARAMS_CHECK(end != nullptr && *end == '\0',
              "flag --" + name + " is not an integer: " + v);
  return out;
}

double CliFlags::get_double(const std::string& name) const {
  const std::string& v = get(name);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  ARAMS_CHECK(end != nullptr && *end == '\0',
              "flag --" + name + " is not a number: " + v);
  return out;
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string& v = get(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  ARAMS_CHECK(false, "flag --" + name + " is not a boolean: " + v);
  return false;
}

bool CliFlags::provided(const std::string& name) const {
  const auto it = flags_.find(name);
  ARAMS_CHECK(it != flags_.end(), "flag not declared: " + name);
  return it->second.provided;
}

std::string CliFlags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.value << ")  " << f.help
       << "\n";
  }
  return os.str();
}

}  // namespace arams
