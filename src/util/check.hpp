#pragma once
// Runtime precondition / invariant checking.
//
// ARAMS_CHECK is always active (argument validation on public API
// boundaries); ARAMS_DCHECK compiles out in release builds and is used for
// internal invariants on hot paths.

#include <stdexcept>
#include <string>

namespace arams {

/// Thrown when a precondition or invariant check fails.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace arams

#define ARAMS_CHECK(expr, msg)                                          \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::arams::detail::check_failed(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define ARAMS_DCHECK(expr, msg) \
  do {                          \
  } while (false)
#else
#define ARAMS_DCHECK(expr, msg) ARAMS_CHECK(expr, msg)
#endif
