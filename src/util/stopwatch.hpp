#pragma once
// Monotonic wall-clock stopwatch used by every benchmark harness and by the
// virtual-core scaling model.

#include <chrono>

namespace arams {

/// Steady-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch and returns the elapsed seconds before the reset.
  double lap();

  /// Elapsed seconds since construction or the last lap().
  [[nodiscard]] double seconds() const;

  /// Elapsed milliseconds since construction or the last lap().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulating timer: sums the duration of many timed sections.
class Accumulator {
 public:
  void add(double seconds) { total_ += seconds; ++count_; }
  [[nodiscard]] double total_seconds() const { return total_; }
  [[nodiscard]] long count() const { return count_; }
  void reset() { total_ = 0.0; count_ = 0; }

 private:
  double total_ = 0.0;
  long count_ = 0;
};

}  // namespace arams
