#pragma once
// Leveled stderr logging. Kept deliberately tiny: the library itself logs
// nothing by default; benches and examples raise the level for progress.

#include <sstream>
#include <string>

namespace arams {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace arams

#define ARAMS_LOG(level, expr)                                 \
  do {                                                         \
    if (static_cast<int>(level) >=                             \
        static_cast<int>(::arams::log_level())) {              \
      std::ostringstream arams_log_os;                         \
      arams_log_os << expr;                                    \
      ::arams::detail::log_emit(level, arams_log_os.str());    \
    }                                                          \
  } while (false)

#define ARAMS_INFO(expr) ARAMS_LOG(::arams::LogLevel::kInfo, expr)
#define ARAMS_WARN(expr) ARAMS_LOG(::arams::LogLevel::kWarn, expr)
#define ARAMS_DEBUG(expr) ARAMS_LOG(::arams::LogLevel::kDebug, expr)
