#include "util/stopwatch.hpp"

namespace arams {

double Stopwatch::lap() {
  const auto now = Clock::now();
  const double s = std::chrono::duration<double>(now - start_).count();
  start_ = now;
  return s;
}

double Stopwatch::seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace arams
