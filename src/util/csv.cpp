#include "util/csv.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace arams {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  ARAMS_CHECK(!columns_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ARAMS_CHECK(cells.size() == columns_.size(),
              "row width does not match column count");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

std::string Table::num(long v) { return std::to_string(v); }

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << columns_[c] << (c + 1 < columns_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 < row.size() ? "," : "\n");
    }
  }
}

void Table::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  emit(columns_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void Table::save_csv(const std::string& path) const {
  std::ofstream f(path);
  ARAMS_CHECK(f.good(), "cannot open for writing: " + path);
  write_csv(f);
  ARAMS_CHECK(f.good(), "write failed: " + path);
}

}  // namespace arams
