#include "util/check.hpp"

#include <sstream>

namespace arams::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw CheckError(os.str());
}

}  // namespace arams::detail
