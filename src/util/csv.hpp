#pragma once
// CSV/console table emitter. Every bench harness reports its figure series
// through this so output is machine-parsable and visually aligned.

#include <iosfwd>
#include <string>
#include <vector>

namespace arams {

/// Collects rows of a table and renders them as aligned text or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Appends a row; the cell count must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string num(double v);
  static std::string num(long v);

  /// Renders as comma-separated values (header + rows).
  void write_csv(std::ostream& os) const;

  /// Renders as an aligned, human-readable table.
  void write_pretty(std::ostream& os) const;

  /// Writes CSV to a file path; throws CheckError on I/O failure.
  void save_csv(const std::string& path) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& column_names() const {
    return columns_;
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace arams
