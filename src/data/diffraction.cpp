#include "data/diffraction.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace arams::data {

DiffractionGenerator::DiffractionGenerator(const DiffractionConfig& config)
    : config_(config) {
  ARAMS_CHECK(config.num_classes >= 1, "need at least one class");
  // Fixed, well-separated quadrant patterns: each class emphasizes a
  // distinct subset of quadrants. Drawn once from the class seed.
  Rng rng(config.class_seed);
  patterns_.resize(config.num_classes);
  for (std::size_t k = 0; k < config.num_classes; ++k) {
    auto& p = patterns_[k];
    // Base pattern: rotate a fixed asymmetric template, then jitter.
    const std::array<double, 4> base{1.0, 0.55, 0.25, 0.7};
    for (std::size_t q = 0; q < 4; ++q) {
      p[q] = base[(q + k) % 4] + 0.05 * rng.uniform(-1.0, 1.0);
    }
    // Every other class flips dominance to diagonal quadrants for extra
    // separation when K > 4.
    if (k >= 4) {
      std::swap(p[1], p[2]);
    }
  }
}

DiffractionSample DiffractionGenerator::generate(Rng& rng) const {
  DiffractionSample sample;
  sample.frame = image::ImageF(config_.height, config_.width);
  auto& truth = sample.truth;

  truth.class_label =
      static_cast<int>(rng.uniform_index(patterns_.size()));
  const auto& pattern = patterns_[static_cast<std::size_t>(truth.class_label)];
  for (std::size_t q = 0; q < 4; ++q) {
    truth.quadrant_weights[q] =
        std::max(0.05, pattern[q] + config_.weight_jitter *
                                        rng.uniform(-1.0, 1.0));
  }

  const auto h = static_cast<double>(config_.height);
  const auto w = static_cast<double>(config_.width);
  const double cy = (h - 1.0) / 2.0;
  const double cx = (w - 1.0) / 2.0;
  const double radius =
      (config_.ring_radius_frac +
       config_.radius_jitter * rng.uniform(-1.0, 1.0)) *
      w;
  const double ring_w = config_.ring_width_frac * w;
  const double stop_r = config_.beamstop_radius_frac * w;

  // Expected (noise-free) pattern, then Poisson photon sampling.
  double total = 0.0;
  for (std::size_t y = 0; y < config_.height; ++y) {
    const double dy = static_cast<double>(y) - cy;
    for (std::size_t x = 0; x < config_.width; ++x) {
      const double dx = static_cast<double>(x) - cx;
      const double r = std::sqrt(dx * dx + dy * dy);
      if (r <= stop_r) continue;  // beam stop shadow
      const double e = (r - radius) * (r - radius) / (2.0 * ring_w * ring_w);
      if (e >= 30.0) continue;
      // Smooth angular weight: cos²-interpolate between quadrant weights,
      // anchored at quadrant *centers* so each quadrant's integrated ring
      // mass is dominated by its own weight (no hard edges either).
      double theta = std::atan2(dy, dx);  // [-pi, pi]
      if (theta < 0.0) theta += 2.0 * std::numbers::pi;
      double qpos =
          theta / (std::numbers::pi / 2.0) - 0.5;  // centers at 0,1,2,3
      if (qpos < 0.0) qpos += 4.0;
      const auto q0 = static_cast<std::size_t>(qpos) % 4;
      const std::size_t q1 = (q0 + 1) % 4;
      const double frac = qpos - std::floor(qpos);
      const double blend =
          0.5 - 0.5 * std::cos(frac * std::numbers::pi);  // smoothstep
      const double weight = (1.0 - blend) * truth.quadrant_weights[q0] +
                            blend * truth.quadrant_weights[q1];
      const double v = weight * std::exp(-e);
      sample.frame.at(y, x) = v;
      total += v;
    }
  }

  if (config_.photons_per_frame > 0.0 && total > 0.0) {
    const double scale = config_.photons_per_frame / total;
    for (auto& p : sample.frame.pixels()) {
      if (p <= 0.0) continue;
      p = static_cast<double>(rng.poisson(p * scale));
    }
  }
  return sample;
}

std::vector<DiffractionSample> DiffractionGenerator::generate_batch(
    std::size_t n, Rng& rng) const {
  std::vector<DiffractionSample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(generate(rng));
  }
  return out;
}

}  // namespace arams::data
