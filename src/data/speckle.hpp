#pragma once
// XPCS speckle-pattern generator.
//
// Section VI-B times the framework on "a full run of an LCLS XPCS
// experiment" — X-ray photon correlation spectroscopy frames are speckle
// patterns whose grain size tracks the beam coherence and whose contrast
// tracks beam stability (the paper's §III-A: profile changes cause "large
// uncertainty in speckle contrast"). This generator produces fully
// developed speckle by smoothing a complex Gaussian field with a separable
// Gaussian kernel (no FFT needed) and taking its squared magnitude:
//   * `coherence_length` sets the speckle grain size (kernel σ, pixels);
//   * `contrast` in (0, 1] blends the speckle with its mean, modelling
//     partial coherence;
//   * frames within one "run" share a slowly decorrelating field, so
//     consecutive frames are correlated like a real XPCS series.

#include <vector>

#include "image/image.hpp"
#include "rng/rng.hpp"

namespace arams::data {

struct SpeckleConfig {
  std::size_t height = 64;
  std::size_t width = 64;
  double coherence_length = 2.0;  ///< speckle grain σ in pixels
  double contrast = 1.0;          ///< β in (0, 1]
  double mean_intensity = 1.0;    ///< spatial mean of each frame
  /// Frame-to-frame field mixing in [0, 1): 0 = independent frames,
  /// 0.95 = slowly evolving dynamics (the XPCS observable).
  double correlation = 0.9;
};

struct SpeckleTruth {
  double realized_contrast = 0.0;  ///< σ_I / ⟨I⟩ of the generated frame
};

struct SpeckleSample {
  image::ImageF frame;
  SpeckleTruth truth;
};

/// Streaming generator holding the evolving complex field of one run.
class SpeckleGenerator {
 public:
  SpeckleGenerator(const SpeckleConfig& config, std::uint64_t seed);

  /// Next frame of the series (fields evolve by `correlation` mixing).
  SpeckleSample next();

  [[nodiscard]] const SpeckleConfig& config() const { return config_; }

 private:
  void refresh_field(double mix);
  void render(SpeckleSample& sample);

  SpeckleConfig config_;
  Rng rng_;
  std::vector<double> field_re_;
  std::vector<double> field_im_;
  std::vector<double> kernel_;
  std::vector<double> tmp_;
  bool initialized_ = false;
};

/// Intensity contrast σ_I/⟨I⟩ of a frame — the XPCS observable. Returns 0
/// for an (almost) empty frame.
double speckle_contrast(const image::ImageF& frame);

}  // namespace arams::data
