#pragma once
// Synthetic diffraction-image generator (substitute for the private LCLS
// run xpplx9221 used in Fig. 6).
//
// Fig. 6's claim is that diffraction frames separate into clusters that
// "differ from one another based on the weight in each quadrant of the
// ring". We therefore generate frames from K latent classes, each class a
// fixed 4-vector of quadrant weights; per-frame variation adds weight
// jitter, radius jitter, photon (Poisson) noise and a central beam stop.
// The latent class label is recorded so cluster recovery is measurable
// (ARI / purity in the Fig. 6 bench).

#include <array>
#include <vector>

#include "image/image.hpp"
#include "rng/rng.hpp"

namespace arams::data {

struct DiffractionTruth {
  int class_label = 0;                    ///< latent class index in [0, K)
  std::array<double, 4> quadrant_weights{};  ///< realized ring weights
};

struct DiffractionConfig {
  std::size_t height = 64;
  std::size_t width = 64;
  std::size_t num_classes = 4;      ///< K latent quadrant-weight patterns
  double ring_radius_frac = 0.3;    ///< ring radius, fraction of width
  double ring_width_frac = 0.04;    ///< ring thickness, fraction of width
  double radius_jitter = 0.02;      ///< per-frame radius variation
  double weight_jitter = 0.08;      ///< per-frame quadrant weight jitter
  double photons_per_frame = 2e4;   ///< mean photon budget (Poisson noise)
  double beamstop_radius_frac = 0.06;  ///< central mask radius
  std::uint64_t class_seed = 7;     ///< seed fixing the K class patterns
};

struct DiffractionSample {
  image::ImageF frame;
  DiffractionTruth truth;
};

/// Generator holding the fixed class patterns.
class DiffractionGenerator {
 public:
  explicit DiffractionGenerator(const DiffractionConfig& config);

  /// Draws one frame: picks a class uniformly, jitters its weights.
  DiffractionSample generate(Rng& rng) const;

  /// Batch convenience.
  std::vector<DiffractionSample> generate_batch(std::size_t n,
                                                Rng& rng) const;

  [[nodiscard]] const std::vector<std::array<double, 4>>& class_patterns()
      const {
    return patterns_;
  }
  [[nodiscard]] const DiffractionConfig& config() const { return config_; }

 private:
  DiffractionConfig config_;
  std::vector<std::array<double, 4>> patterns_;
};

}  // namespace arams::data
