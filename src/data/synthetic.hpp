#pragma once
// Synthetic low-rank matrix factory, following Section V.1 of the paper:
// draw random orthogonal factors (QR of a Gaussian matrix, Genz-style),
// assemble A = U·diag(σ)·Vᵀ, and for multi-core studies start every core
// from the same factors and apply a unique per-core perturbation so shards
// look "similar but not identical", like consecutive beam-profile batches.

#include <vector>

#include "data/spectrum.hpp"
#include "linalg/matrix.hpp"
#include "rng/rng.hpp"

namespace arams::data {

/// rows×cols matrix with orthonormal columns (rows >= cols), drawn from the
/// Haar-like distribution obtained by QR of an i.i.d. Gaussian matrix.
linalg::Matrix random_orthogonal(std::size_t rows, std::size_t cols,
                                 Rng& rng);

/// Perturbs an orthonormal-column matrix by epsilon-scaled Gaussian noise
/// and re-orthonormalizes. epsilon = 0 returns the input unchanged.
linalg::Matrix perturb_orthogonal(const linalg::Matrix& q, double epsilon,
                                  Rng& rng);

struct SyntheticConfig {
  std::size_t n = 1000;        ///< samples (rows)
  std::size_t d = 200;         ///< features (columns)
  SpectrumConfig spectrum;     ///< singular values; spectrum.count = rank
  double noise = 0.0;          ///< additive white noise stddev (0 = exact)
};

/// A = U·diag(σ)·Vᵀ (+ noise). Requires spectrum.count <= min(n, d).
linalg::Matrix make_low_rank(const SyntheticConfig& config, Rng& rng);

/// Shared factors for per-core shard generation.
struct SharedFactors {
  linalg::Matrix u;            ///< n×r
  linalg::Matrix v;            ///< d×r
  std::vector<double> sigma;   ///< r values
};

/// Draws the factors once; every core derives its shard from these.
SharedFactors make_shared_factors(const SyntheticConfig& config, Rng& rng);

/// Builds core `core_index`'s shard: perturbs both factors by
/// `perturbation` using the core's split RNG stream, then assembles.
linalg::Matrix make_core_shard(const SharedFactors& factors,
                               std::size_t core_index, double perturbation,
                               const Rng& base_rng);

/// Exact singular values of a matrix (via Jacobi SVD) — test helper for
/// validating generated spectra. O(min(n,d)²·max(n,d)); use on small inputs.
std::vector<double> exact_singular_values(const linalg::Matrix& a);

}  // namespace arams::data
