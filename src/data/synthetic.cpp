#include "data/synthetic.hpp"

#include <algorithm>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "util/check.hpp"

namespace arams::data {

using linalg::Matrix;

Matrix random_orthogonal(std::size_t rows, std::size_t cols, Rng& rng) {
  ARAMS_CHECK(rows >= cols, "random_orthogonal requires rows >= cols");
  Matrix g(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    rng.fill_normal(g.row(r));
  }
  // Gram–Schmidt orthonormalization; a Gaussian matrix is full rank with
  // probability 1, so the rank check is a genuine failure if it trips.
  const std::size_t rank = linalg::orthonormalize_columns(g);
  ARAMS_CHECK(rank == cols, "random Gaussian matrix was rank deficient");
  return g;
}

Matrix perturb_orthogonal(const Matrix& q, double epsilon, Rng& rng) {
  if (epsilon == 0.0) return q;
  Matrix out = q;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    for (auto& v : row) {
      v += epsilon * rng.normal();
    }
  }
  const std::size_t rank = linalg::orthonormalize_columns(out);
  ARAMS_CHECK(rank == q.cols(), "perturbation destroyed rank");
  return out;
}

namespace {

Matrix assemble(const Matrix& u, const std::vector<double>& sigma,
                const Matrix& v, double noise, Rng& rng) {
  // (U·diag(σ))·Vᵀ — scale U's columns first, then one matmul_nt.
  Matrix us = u;
  for (std::size_t r = 0; r < us.rows(); ++r) {
    auto row = us.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      row[c] *= sigma[c];
    }
  }
  Matrix a = linalg::matmul_nt(us, v);
  if (noise > 0.0) {
    for (std::size_t r = 0; r < a.rows(); ++r) {
      for (auto& x : a.row(r)) {
        x += noise * rng.normal();
      }
    }
  }
  return a;
}

}  // namespace

Matrix make_low_rank(const SyntheticConfig& config, Rng& rng) {
  const SharedFactors f = make_shared_factors(config, rng);
  return assemble(f.u, f.sigma, f.v, config.noise, rng);
}

SharedFactors make_shared_factors(const SyntheticConfig& config, Rng& rng) {
  const std::size_t r = config.spectrum.count;
  ARAMS_CHECK(r <= std::min(config.n, config.d),
              "rank exceeds matrix dimensions");
  SharedFactors f;
  f.sigma = make_spectrum(config.spectrum);
  f.u = random_orthogonal(config.n, r, rng);
  f.v = random_orthogonal(config.d, r, rng);
  return f;
}

Matrix make_core_shard(const SharedFactors& factors, std::size_t core_index,
                       double perturbation, const Rng& base_rng) {
  Rng core_rng = base_rng.split(core_index);
  const Matrix u =
      perturb_orthogonal(factors.u, perturbation, core_rng);
  const Matrix v =
      perturb_orthogonal(factors.v, perturbation, core_rng);
  return assemble(u, factors.sigma, v, /*noise=*/0.0, core_rng);
}

std::vector<double> exact_singular_values(const Matrix& a) {
  return linalg::jacobi_svd(a).sigma;
}

}  // namespace arams::data
