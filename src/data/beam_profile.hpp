#pragma once
// Synthetic X-ray beam-profile generator (substitute for the private LCLS
// run xppc00121 used in Fig. 5).
//
// The Fig. 5 claim is that the unsupervised pipeline organizes profiles by
// (a) where the center of mass sits and (b) how circular vs elongated /
// multi-lobed the profile is, and that "exotic" profiles fall out as
// embedding outliers. This generator produces Gaussian-mode profiles whose
// ground-truth factors (CoM offset, ellipticity, lobe count) are recorded,
// so the claim becomes measurable: correlate embedding axes with factors.

#include <vector>

#include "image/image.hpp"
#include "rng/rng.hpp"

namespace arams::data {

/// Ground-truth generative factors for one profile.
struct BeamProfileTruth {
  double com_x = 0.0;        ///< horizontal CoM offset, fraction of width
  double com_y = 0.0;        ///< vertical CoM offset, fraction of height
  double ellipticity = 1.0;  ///< sigma_major / sigma_minor (1 = circular)
  double orientation = 0.0;  ///< major-axis angle, radians
  int lobes = 1;             ///< number of intensity lobes
  bool exotic = false;       ///< donut/crescent outlier shape
};

struct BeamProfileConfig {
  std::size_t height = 64;
  std::size_t width = 64;
  double base_sigma_frac = 0.08;   ///< beam waist, fraction of width
  double com_jitter = 0.15;        ///< CoM offset range (fraction of size)
  double max_ellipticity = 3.0;    ///< upper bound on sigma ratio
  double multi_lobe_prob = 0.25;   ///< probability of 2–3 lobes
  double exotic_prob = 0.02;       ///< probability of an exotic outlier
  double intensity_jitter = 0.3;   ///< relative pulse-energy variation
  double noise = 0.01;             ///< detector read-noise stddev
};

/// One generated frame plus its generative factors.
struct BeamProfileSample {
  image::ImageF frame;
  BeamProfileTruth truth;
};

/// Deterministic given the RNG state.
BeamProfileSample generate_beam_profile(const BeamProfileConfig& config,
                                        Rng& rng);

/// Generates a batch of n profiles.
std::vector<BeamProfileSample> generate_beam_profiles(
    const BeamProfileConfig& config, std::size_t n, Rng& rng);

}  // namespace arams::data
