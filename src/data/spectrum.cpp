#include "data/spectrum.hpp"

#include <cmath>

#include "util/check.hpp"

namespace arams::data {

std::vector<double> make_spectrum(const SpectrumConfig& config) {
  ARAMS_CHECK(config.count > 0, "spectrum needs at least one value");
  std::vector<double> s(config.count);
  for (std::size_t i = 0; i < config.count; ++i) {
    const auto x = static_cast<double>(i);
    double v = 0.0;
    switch (config.kind) {
      case DecayKind::kSubExponential:
        v = std::exp(-config.rate * std::sqrt(x) * 10.0);
        break;
      case DecayKind::kExponential:
        v = std::exp(-config.rate * x);
        break;
      case DecayKind::kSuperExponential:
        v = std::exp(-config.rate * std::pow(x, 1.7) / 3.0);
        break;
      case DecayKind::kCubic:
        v = 1.0 / std::pow(1.0 + x, 3.0);
        break;
      case DecayKind::kStep:
        v = (i < config.step_rank) ? 1.0 : config.step_floor;
        break;
    }
    s[i] = config.scale * v;
  }
  return s;
}

std::string decay_name(DecayKind kind) {
  switch (kind) {
    case DecayKind::kSubExponential:
      return "sub-exponential";
    case DecayKind::kExponential:
      return "exponential";
    case DecayKind::kSuperExponential:
      return "super-exponential";
    case DecayKind::kCubic:
      return "cubic";
    case DecayKind::kStep:
      return "step";
  }
  return "?";
}

DecayKind parse_decay(const std::string& name) {
  if (name == "sub-exponential") return DecayKind::kSubExponential;
  if (name == "exponential") return DecayKind::kExponential;
  if (name == "super-exponential") return DecayKind::kSuperExponential;
  if (name == "cubic") return DecayKind::kCubic;
  if (name == "step") return DecayKind::kStep;
  ARAMS_CHECK(false, "unknown decay kind: " + name);
  return DecayKind::kExponential;
}

}  // namespace arams::data
