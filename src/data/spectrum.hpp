#pragma once
// Singular-value spectrum builders for the synthetic ablation datasets
// (Fig. 1 upper-left panel) and the scaling study matrix (Figs. 2–3).

#include <string>
#include <vector>

namespace arams::data {

enum class DecayKind {
  kSubExponential,    ///< σ_i = exp(-rate·√i) — slowest decay in Fig. 1
  kExponential,       ///< σ_i = exp(-rate·i)
  kSuperExponential,  ///< σ_i = exp(-rate·i^1.7) — fastest decay in Fig. 1
  kCubic,             ///< σ_i = 1/(1+i)³ — the Figs. 2–3 scaling matrix
  kStep,              ///< r0 values at 1, rest at `floor` — rank-detection tests
};

struct SpectrumConfig {
  DecayKind kind = DecayKind::kExponential;
  std::size_t count = 100;   ///< number of singular values
  double rate = 0.05;        ///< decay rate for the exponential family
  double scale = 1.0;        ///< multiplies every value
  std::size_t step_rank = 10;  ///< kStep: number of leading unit values
  double step_floor = 1e-8;    ///< kStep: trailing value
};

/// Builds the descending singular-value vector for a configuration.
std::vector<double> make_spectrum(const SpectrumConfig& config);

/// Name used in bench output ("sub-exponential", ...).
std::string decay_name(DecayKind kind);

/// Parses a decay name (as produced by decay_name); throws on unknown names.
DecayKind parse_decay(const std::string& name);

}  // namespace arams::data
