#include "data/speckle.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace arams::data {

SpeckleGenerator::SpeckleGenerator(const SpeckleConfig& config,
                                   std::uint64_t seed)
    : config_(config), rng_(seed) {
  ARAMS_CHECK(config.height >= 4 && config.width >= 4, "frame too small");
  ARAMS_CHECK(config.coherence_length > 0.0,
              "coherence length must be positive");
  ARAMS_CHECK(config.contrast > 0.0 && config.contrast <= 1.0,
              "contrast must be in (0, 1]");
  ARAMS_CHECK(config.correlation >= 0.0 && config.correlation < 1.0,
              "correlation must be in [0, 1)");
  const std::size_t pixels = config.height * config.width;
  field_re_.assign(pixels, 0.0);
  field_im_.assign(pixels, 0.0);
  tmp_.assign(pixels, 0.0);

  // Separable Gaussian smoothing kernel, truncated at 3σ.
  const auto radius = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(3.0 * config.coherence_length)));
  kernel_.resize(2 * radius + 1);
  double sum = 0.0;
  for (std::size_t i = 0; i < kernel_.size(); ++i) {
    const double x =
        static_cast<double>(i) - static_cast<double>(radius);
    kernel_[i] = std::exp(-x * x /
                          (2.0 * config.coherence_length *
                           config.coherence_length));
    sum += kernel_[i];
  }
  for (auto& k : kernel_) k /= sum;
}

void SpeckleGenerator::refresh_field(double mix) {
  // field ← mix·field + √(1−mix²)·fresh, preserving the Gaussian
  // stationary distribution while decorrelating at rate (1−mix).
  const double fresh_scale = std::sqrt(1.0 - mix * mix);
  for (std::size_t i = 0; i < field_re_.size(); ++i) {
    field_re_[i] = mix * field_re_[i] + fresh_scale * rng_.normal();
    field_im_[i] = mix * field_im_[i] + fresh_scale * rng_.normal();
  }
}

namespace {

/// Separable convolution of one channel with a 1-D kernel (reflect pads).
void smooth(std::vector<double>& data, std::vector<double>& tmp,
            const std::vector<double>& kernel, std::size_t height,
            std::size_t width) {
  const auto radius = static_cast<std::ptrdiff_t>(kernel.size() / 2);
  const auto reflect = [](std::ptrdiff_t i, std::ptrdiff_t n) {
    if (i < 0) return -i - 1;
    if (i >= n) return 2 * n - i - 1;
    return i;
  };
  // Horizontal pass.
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      double s = 0.0;
      for (std::size_t k = 0; k < kernel.size(); ++k) {
        const std::ptrdiff_t sx =
            reflect(static_cast<std::ptrdiff_t>(x) + static_cast<std::ptrdiff_t>(k) - radius,
                    static_cast<std::ptrdiff_t>(width));
        s += kernel[k] * data[y * width + static_cast<std::size_t>(sx)];
      }
      tmp[y * width + x] = s;
    }
  }
  // Vertical pass.
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      double s = 0.0;
      for (std::size_t k = 0; k < kernel.size(); ++k) {
        const std::ptrdiff_t sy =
            reflect(static_cast<std::ptrdiff_t>(y) + static_cast<std::ptrdiff_t>(k) - radius,
                    static_cast<std::ptrdiff_t>(height));
        s += kernel[k] * tmp[static_cast<std::size_t>(sy) * width + x];
      }
      data[y * width + x] = s;
    }
  }
}

}  // namespace

void SpeckleGenerator::render(SpeckleSample& sample) {
  const std::size_t h = config_.height;
  const std::size_t w = config_.width;
  sample.frame = image::ImageF(h, w);

  // Smooth copies of the evolving field (the field itself stays white so
  // the AR(1) mixing statistics remain exact).
  std::vector<double> re = field_re_;
  std::vector<double> im = field_im_;
  smooth(re, tmp_, kernel_, h, w);
  smooth(im, tmp_, kernel_, h, w);

  // Fully developed speckle: I = |E|²; partial coherence blends toward
  // the mean: I_β = (1−β)·⟨I⟩ + β·I.
  double mean_raw = 0.0;
  auto pixels = sample.frame.pixels();
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    pixels[i] = re[i] * re[i] + im[i] * im[i];
    mean_raw += pixels[i];
  }
  mean_raw /= static_cast<double>(pixels.size());
  if (mean_raw <= 0.0) mean_raw = 1e-300;
  const double beta = config_.contrast;
  for (auto& p : pixels) {
    p = ((1.0 - beta) * mean_raw + beta * p) *
        (config_.mean_intensity / mean_raw);
  }
  sample.truth.realized_contrast = speckle_contrast(sample.frame);
}

SpeckleSample SpeckleGenerator::next() {
  if (!initialized_) {
    refresh_field(0.0);  // fresh draw
    initialized_ = true;
  } else {
    refresh_field(config_.correlation);
  }
  SpeckleSample sample;
  render(sample);
  return sample;
}

double speckle_contrast(const image::ImageF& frame) {
  const auto pixels = frame.pixels();
  ARAMS_CHECK(!pixels.empty(), "empty frame");
  double mean = 0.0;
  for (const double p : pixels) mean += p;
  mean /= static_cast<double>(pixels.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (const double p : pixels) {
    var += (p - mean) * (p - mean);
  }
  var /= static_cast<double>(pixels.size() - 1);
  return std::sqrt(var) / mean;
}

}  // namespace arams::data
