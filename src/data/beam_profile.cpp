#include "data/beam_profile.hpp"

#include <cmath>
#include <numbers>

namespace arams::data {

namespace {

/// Adds a rotated anisotropic Gaussian lobe to the frame.
void add_gaussian_lobe(image::ImageF& frame, double cy, double cx,
                       double sigma_y, double sigma_x, double theta,
                       double amplitude) {
  const double ct = std::cos(theta);
  const double st = std::sin(theta);
  for (std::size_t y = 0; y < frame.height(); ++y) {
    const double dy = static_cast<double>(y) - cy;
    for (std::size_t x = 0; x < frame.width(); ++x) {
      const double dx = static_cast<double>(x) - cx;
      // Rotate into the lobe frame.
      const double u = ct * dx + st * dy;
      const double v = -st * dx + ct * dy;
      const double e =
          (u * u) / (2.0 * sigma_x * sigma_x) +
          (v * v) / (2.0 * sigma_y * sigma_y);
      if (e < 30.0) {
        frame.at(y, x) += amplitude * std::exp(-e);
      }
    }
  }
}

/// Donut (ring) mode — the exotic shape.
void add_donut(image::ImageF& frame, double cy, double cx, double radius,
               double width, double amplitude) {
  for (std::size_t y = 0; y < frame.height(); ++y) {
    const double dy = static_cast<double>(y) - cy;
    for (std::size_t x = 0; x < frame.width(); ++x) {
      const double dx = static_cast<double>(x) - cx;
      const double r = std::sqrt(dx * dx + dy * dy);
      const double e = (r - radius) * (r - radius) / (2.0 * width * width);
      if (e < 30.0) {
        frame.at(y, x) += amplitude * std::exp(-e);
      }
    }
  }
}

}  // namespace

BeamProfileSample generate_beam_profile(const BeamProfileConfig& config,
                                        Rng& rng) {
  BeamProfileSample sample;
  sample.frame = image::ImageF(config.height, config.width);
  auto& truth = sample.truth;

  const auto h = static_cast<double>(config.height);
  const auto w = static_cast<double>(config.width);
  truth.com_x = rng.uniform(-config.com_jitter, config.com_jitter);
  truth.com_y = rng.uniform(-config.com_jitter, config.com_jitter);
  const double cy = (h - 1.0) / 2.0 + truth.com_y * h;
  const double cx = (w - 1.0) / 2.0 + truth.com_x * w;

  const double base_sigma = config.base_sigma_frac * w;
  const double amplitude =
      1.0 + config.intensity_jitter * rng.uniform(-1.0, 1.0);

  truth.exotic = rng.uniform() < config.exotic_prob;
  if (truth.exotic) {
    // Donut mode: all mass on a ring, no central lobe.
    add_donut(sample.frame, cy, cx, /*radius=*/2.5 * base_sigma,
              /*width=*/0.6 * base_sigma, amplitude);
    truth.ellipticity = 1.0;
    truth.lobes = 0;
  } else {
    truth.ellipticity = rng.uniform(1.0, config.max_ellipticity);
    truth.orientation = rng.uniform(0.0, std::numbers::pi);
    truth.lobes = 1;
    if (rng.uniform() < config.multi_lobe_prob) {
      truth.lobes = 2 + static_cast<int>(rng.uniform_index(2));
    }
    const double sigma_major = base_sigma * std::sqrt(truth.ellipticity);
    const double sigma_minor = base_sigma / std::sqrt(truth.ellipticity);
    const double ct = std::cos(truth.orientation);
    const double st = std::sin(truth.orientation);
    const double sep = 2.2 * sigma_major;
    for (int lobe = 0; lobe < truth.lobes; ++lobe) {
      // Lobes arranged along the major axis, centered on (cy, cx).
      const double offset =
          (static_cast<double>(lobe) -
           static_cast<double>(truth.lobes - 1) / 2.0) *
          sep;
      add_gaussian_lobe(sample.frame, cy + st * offset, cx + ct * offset,
                        sigma_minor, sigma_major, truth.orientation,
                        amplitude / static_cast<double>(truth.lobes));
    }
  }

  if (config.noise > 0.0) {
    for (auto& p : sample.frame.pixels()) {
      p += config.noise * rng.normal();
      if (p < 0.0) p = 0.0;
    }
  }
  return sample;
}

std::vector<BeamProfileSample> generate_beam_profiles(
    const BeamProfileConfig& config, std::size_t n, Rng& rng) {
  std::vector<BeamProfileSample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(generate_beam_profile(config, rng));
  }
  return out;
}

}  // namespace arams::data
