#include "image/radial.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace arams::image {

RadialProfile radial_profile(const ImageF& frame, double center_y,
                             double center_x, std::size_t bins) {
  ARAMS_CHECK(bins >= 1, "need at least one radial bin");
  const double r_max =
      std::min({center_y, center_x,
                static_cast<double>(frame.height() - 1) - center_y,
                static_cast<double>(frame.width() - 1) - center_x});
  ARAMS_CHECK(r_max > 0.0, "center leaves no room for an annulus");

  RadialProfile out;
  out.radius.resize(bins);
  out.intensity.assign(bins, 0.0);
  out.counts.assign(bins, 0);
  const double width = r_max / static_cast<double>(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    out.radius[b] = (static_cast<double>(b) + 0.5) * width;
  }

  for (std::size_t y = 0; y < frame.height(); ++y) {
    const double dy = static_cast<double>(y) - center_y;
    for (std::size_t x = 0; x < frame.width(); ++x) {
      const double dx = static_cast<double>(x) - center_x;
      const double r = std::sqrt(dx * dx + dy * dy);
      if (r >= r_max) continue;
      const auto b = static_cast<std::size_t>(r / width);
      out.intensity[b] += frame.at(y, x);
      ++out.counts[b];
    }
  }
  for (std::size_t b = 0; b < bins; ++b) {
    if (out.counts[b] > 0) {
      out.intensity[b] /= static_cast<double>(out.counts[b]);
    }
  }
  return out;
}

AzimuthalProfile azimuthal_profile(const ImageF& frame, double center_y,
                                   double center_x, double r_min,
                                   double r_max, std::size_t bins) {
  ARAMS_CHECK(bins >= 1, "need at least one angular bin");
  ARAMS_CHECK(r_min >= 0.0 && r_max > r_min, "bad annulus radii");

  AzimuthalProfile out;
  out.angle.resize(bins);
  out.intensity.assign(bins, 0.0);
  out.counts.assign(bins, 0);
  const double width = 2.0 * std::numbers::pi / static_cast<double>(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    out.angle[b] = (static_cast<double>(b) + 0.5) * width;
  }

  for (std::size_t y = 0; y < frame.height(); ++y) {
    const double dy = static_cast<double>(y) - center_y;
    for (std::size_t x = 0; x < frame.width(); ++x) {
      const double dx = static_cast<double>(x) - center_x;
      const double r = std::sqrt(dx * dx + dy * dy);
      if (r < r_min || r >= r_max) continue;
      double theta = std::atan2(dy, dx);
      if (theta < 0.0) theta += 2.0 * std::numbers::pi;
      const auto b =
          std::min(bins - 1, static_cast<std::size_t>(theta / width));
      out.intensity[b] += frame.at(y, x);
      ++out.counts[b];
    }
  }
  for (std::size_t b = 0; b < bins; ++b) {
    if (out.counts[b] > 0) {
      out.intensity[b] /= static_cast<double>(out.counts[b]);
    }
  }
  return out;
}

double peak_radius(const RadialProfile& profile) {
  ARAMS_CHECK(!profile.intensity.empty(), "empty profile");
  const auto it = std::max_element(profile.intensity.begin(),
                                   profile.intensity.end());
  return profile.radius[static_cast<std::size_t>(
      it - profile.intensity.begin())];
}

std::vector<double> quadrant_weights(const ImageF& frame, double center_y,
                                     double center_x, double r_min,
                                     double r_max) {
  const AzimuthalProfile profile =
      azimuthal_profile(frame, center_y, center_x, r_min, r_max, 4);
  std::vector<double> weights(4, 0.0);
  double total = 0.0;
  for (std::size_t q = 0; q < 4; ++q) {
    weights[q] = profile.intensity[q];
    total += weights[q];
  }
  if (total > 0.0) {
    for (auto& w : weights) w /= total;
  }
  return weights;
}

}  // namespace arams::image
