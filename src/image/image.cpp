#include "image/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>

namespace arams::image {

template <typename T>
double BasicImage<T>::total_intensity() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

// fp32 lane: the same double-precision reduction split across eight
// independent accumulators, so the loop is bandwidth- rather than
// add-latency-bound. The summation order differs from the fp64 kernel
// (which stays bitwise-frozen serial), shifting only the last ulp — within
// the lane's drift budget — and a NaN pixel still propagates into the
// total, so every !(x > 0) guard downstream behaves identically.
template <>
double BasicImage<float>::total_intensity() const {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  double a4 = 0.0, a5 = 0.0, a6 = 0.0, a7 = 0.0;
  const float* v = data_.data();
  const std::size_t n = data_.size();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 += static_cast<double>(v[i]);
    a1 += static_cast<double>(v[i + 1]);
    a2 += static_cast<double>(v[i + 2]);
    a3 += static_cast<double>(v[i + 3]);
    a4 += static_cast<double>(v[i + 4]);
    a5 += static_cast<double>(v[i + 5]);
    a6 += static_cast<double>(v[i + 6]);
    a7 += static_cast<double>(v[i + 7]);
  }
  for (; i < n; ++i) a0 += static_cast<double>(v[i]);
  return ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7));
}

template <typename T>
T BasicImage<T>::max_intensity() const {
  if (data_.empty()) return T{0};
  return *std::max_element(data_.begin(), data_.end());
}

// fp32 lane: four-lane unrolled max. Value-identical to max_element in
// every case — a max() reduction is order-independent, NaNs lose every
// `>` comparison in both versions, and the one asymmetry (max_element
// returns a NaN only when it sits at index 0, because nothing compares
// greater than it) is reproduced by the explicit front check.
template <>
float BasicImage<float>::max_intensity() const {
  if (data_.empty()) return 0.0f;
  if (std::isnan(data_[0])) return data_[0];
  const float* v = data_.data();
  const std::size_t n = data_.size();
  float m0 = v[0], m1 = v[0], m2 = v[0], m3 = v[0];
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = v[i] > m0 ? v[i] : m0;
    m1 = v[i + 1] > m1 ? v[i + 1] : m1;
    m2 = v[i + 2] > m2 ? v[i + 2] : m2;
    m3 = v[i + 3] > m3 ? v[i + 3] : m3;
  }
  for (; i < n; ++i) m0 = v[i] > m0 ? v[i] : m0;
  m0 = m1 > m0 ? m1 : m0;
  m2 = m3 > m2 ? m3 : m2;
  return m2 > m0 ? m2 : m0;
}

template <typename T>
void BasicImage<T>::to_row(std::span<T> row) const {
  ARAMS_CHECK(row.size() == data_.size(), "row length != pixel count");
  std::copy(data_.begin(), data_.end(), row.begin());
}

template <typename T>
BasicImage<T> BasicImage<T>::from_row(std::span<const T> row,
                                      std::size_t height, std::size_t width) {
  ARAMS_CHECK(row.size() == height * width, "row length != height*width");
  BasicImage img(height, width);
  std::copy(row.begin(), row.end(), img.data_.begin());
  return img;
}

template <typename T>
void BasicImage<T>::save_pgm(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  ARAMS_CHECK(f.good(), "cannot open for writing: " + path);
  const double mx =
      std::max(static_cast<double>(max_intensity()), 1e-300);
  f << "P5\n" << width_ << " " << height_ << "\n255\n";
  for (const T v : data_) {
    const double scaled =
        std::clamp(static_cast<double>(v) / mx, 0.0, 1.0) * 255.0;
    f.put(static_cast<char>(static_cast<unsigned char>(scaled)));
  }
  ARAMS_CHECK(f.good(), "write failed: " + path);
}

template class BasicImage<double>;
template class BasicImage<float>;

ImageF32 narrow(const ImageF& img) {
  ImageF32 out(img.height(), img.width());
  const std::span<const double> src = img.pixels();
  const std::span<float> dst = out.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<float>(src[i]);
  }
  return out;
}

ImageF widen(const ImageF32& img) {
  ImageF out(img.height(), img.width());
  const std::span<const float> src = img.pixels();
  const std::span<double> dst = out.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<double>(src[i]);
  }
  return out;
}

linalg::Matrix images_to_matrix(const std::vector<ImageF>& images) {
  ARAMS_CHECK(!images.empty(), "empty image batch");
  const std::size_t d = images.front().pixel_count();
  linalg::Matrix out(images.size(), d);
  for (std::size_t i = 0; i < images.size(); ++i) {
    ARAMS_CHECK(images[i].pixel_count() == d, "inconsistent image shapes");
    images[i].to_row(out.row(i));
  }
  return out;
}

linalg::MatrixF images_to_matrix(const std::vector<ImageF32>& images) {
  ARAMS_CHECK(!images.empty(), "empty image batch");
  const std::size_t d = images.front().pixel_count();
  linalg::MatrixF out(images.size(), d);
  for (std::size_t i = 0; i < images.size(); ++i) {
    ARAMS_CHECK(images[i].pixel_count() == d, "inconsistent image shapes");
    images[i].to_row(out.row(i));
  }
  return out;
}

}  // namespace arams::image
