#include "image/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>

namespace arams::image {

double ImageF::total_intensity() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double ImageF::max_intensity() const {
  if (data_.empty()) return 0.0;
  return *std::max_element(data_.begin(), data_.end());
}

void ImageF::to_row(std::span<double> row) const {
  ARAMS_CHECK(row.size() == data_.size(), "row length != pixel count");
  std::copy(data_.begin(), data_.end(), row.begin());
}

ImageF ImageF::from_row(std::span<const double> row, std::size_t height,
                        std::size_t width) {
  ARAMS_CHECK(row.size() == height * width, "row length != height*width");
  ImageF img(height, width);
  std::copy(row.begin(), row.end(), img.data_.begin());
  return img;
}

void ImageF::save_pgm(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  ARAMS_CHECK(f.good(), "cannot open for writing: " + path);
  const double mx = std::max(max_intensity(), 1e-300);
  f << "P5\n" << width_ << " " << height_ << "\n255\n";
  for (const double v : data_) {
    const double scaled = std::clamp(v / mx, 0.0, 1.0) * 255.0;
    f.put(static_cast<char>(static_cast<unsigned char>(scaled)));
  }
  ARAMS_CHECK(f.good(), "write failed: " + path);
}

linalg::Matrix images_to_matrix(const std::vector<ImageF>& images) {
  ARAMS_CHECK(!images.empty(), "empty image batch");
  const std::size_t d = images.front().pixel_count();
  linalg::Matrix out(images.size(), d);
  for (std::size_t i = 0; i < images.size(); ++i) {
    ARAMS_CHECK(images[i].pixel_count() == d, "inconsistent image shapes");
    images[i].to_row(out.row(i));
  }
  return out;
}

}  // namespace arams::image
