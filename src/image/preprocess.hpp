#pragma once
// Detector-frame preprocessing, mirroring Section VI of the paper: intensity
// thresholding, intensity normalization, and center-of-mass centering so the
// sketch focuses on beam *shape* rather than pointing jitter or pulse energy.
//
// Every kernel exists for both pixel precisions: the ImageF (fp64)
// overloads are the default analysis path; the ImageF32 overloads serve
// the fp32 ingest lane and share one template implementation, with all
// reductions (totals, centroids, block means) accumulated in double so
// the NaN-guard semantics are identical in both lanes.

#include <vector>

#include "image/image.hpp"

namespace arams::image {

struct CenterOfMass {
  double y = 0.0;
  double x = 0.0;
  double mass = 0.0;
};

/// Zeroes pixels below `threshold` (absolute counts).
void threshold_below(ImageF& img, double threshold);
void threshold_below(ImageF32& img, double threshold);

/// Zeroes pixels below `fraction` of the maximum (robust to pulse energy).
void threshold_relative(ImageF& img, double fraction);
void threshold_relative(ImageF32& img, double fraction);

/// Scales the image so the total intensity equals `target` (no-op for an
/// all-zero image).
void normalize_intensity(ImageF& img, double target = 1.0);
void normalize_intensity(ImageF32& img, double target = 1.0);

/// Intensity-weighted centroid (double accumulation in both lanes).
CenterOfMass center_of_mass(const ImageF& img);
CenterOfMass center_of_mass(const ImageF32& img);

/// Translates the image by integer pixels so the center of mass lands on the
/// geometric center; vacated pixels are zero-filled.
void center_on_mass(ImageF& img);
void center_on_mass(ImageF32& img);

/// Central crop to (height, width); throws if the crop exceeds the image.
ImageF crop_center(const ImageF& img, std::size_t height, std::size_t width);
ImageF32 crop_center(const ImageF32& img, std::size_t height,
                     std::size_t width);

/// Block-mean downsampling by an integer `factor` (dimensions must divide).
ImageF downsample(const ImageF& img, std::size_t factor);
ImageF32 downsample(const ImageF32& img, std::size_t factor);

/// Preprocessing pipeline configuration used by the monitoring pipeline.
struct PreprocessConfig {
  double threshold_fraction = 0.02;  ///< relative threshold; <=0 disables
  bool normalize = true;             ///< normalize total intensity to 1
  bool center = true;                ///< center-of-mass recentring
  std::size_t downsample_factor = 1; ///< 1 disables
};

/// Applies the configured pipeline to a frame (in order: threshold,
/// center, normalize, downsample) and returns the result.
ImageF preprocess(const ImageF& img, const PreprocessConfig& config);
ImageF32 preprocess(const ImageF32& img, const PreprocessConfig& config);

/// Applies `preprocess` to a batch.
std::vector<ImageF> preprocess_batch(const std::vector<ImageF>& images,
                                     const PreprocessConfig& config);
std::vector<ImageF32> preprocess_batch(const std::vector<ImageF32>& images,
                                       const PreprocessConfig& config);

}  // namespace arams::image
