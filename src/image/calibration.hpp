#pragma once
// Detector calibration — the corrections behind the paper's "calibrated
// large area detector images": pedestal (dark) subtraction, common-mode
// correction (per-row median, the standard LCLS ePix/CSPAD step), and
// dead/hot pixel masking derived from the running frame statistics.

#include <vector>

#include "image/frame_stats.hpp"
#include "image/image.hpp"

namespace arams::image {

/// Boolean pixel mask; true = pixel is good.
struct PixelMask {
  std::size_t height = 0;
  std::size_t width = 0;
  std::vector<bool> good;

  [[nodiscard]] bool at(std::size_t y, std::size_t x) const {
    return good[y * width + x];
  }
  [[nodiscard]] std::size_t bad_count() const;
};

/// Subtracts a pedestal (dark) frame in place, clamping at zero.
void subtract_pedestal(ImageF& frame, const ImageF& pedestal);

/// Common-mode correction: subtracts each row's median (computed over
/// unmasked pixels below `signal_cut`, so genuine signal does not bias
/// the estimate), clamping at zero. Pass nullptr to use every pixel.
void common_mode_subtract(ImageF& frame, const PixelMask* mask = nullptr,
                          double signal_cut = 1e300);

/// Builds a mask from per-pixel mean/variance statistics: a pixel is bad
/// if its variance is (numerically) zero while others fluctuate (dead) or
/// its mean exceeds `hot_sigma` standard deviations of the mean image's
/// distribution (hot).
PixelMask mask_from_stats(const RunningFrameStats& stats,
                          double hot_sigma = 6.0);

/// Zeroes masked pixels in place.
void apply_mask(ImageF& frame, const PixelMask& mask);

}  // namespace arams::image
