#pragma once
// Radial and azimuthal detector reductions — the standard first-step
// analyses for area-detector frames at LCLS: I(q), the azimuthally
// averaged radial profile (powder pattern), and I(φ), the angular profile
// of a ring (the quantity whose per-quadrant weights drive the Fig. 6
// clusters).

#include <vector>

#include "image/image.hpp"
#include "image/preprocess.hpp"

namespace arams::image {

struct RadialProfile {
  std::vector<double> radius;     ///< bin centers, pixels
  std::vector<double> intensity;  ///< mean intensity per bin
  std::vector<long> counts;       ///< pixels per bin
};

/// Azimuthally averaged intensity vs radius around `center` (pass the
/// geometric center via frame_center()). `bins` over [0, r_max] where
/// r_max is the largest radius that fits inside the frame.
RadialProfile radial_profile(const ImageF& frame, double center_y,
                             double center_x, std::size_t bins);

struct AzimuthalProfile {
  std::vector<double> angle;      ///< bin centers, radians in [0, 2π)
  std::vector<double> intensity;  ///< mean intensity per bin
  std::vector<long> counts;
};

/// Angular intensity profile over the annulus r ∈ [r_min, r_max].
AzimuthalProfile azimuthal_profile(const ImageF& frame, double center_y,
                                   double center_x, double r_min,
                                   double r_max, std::size_t bins);

/// Geometric frame center (y, x).
inline CenterOfMass frame_center(const ImageF& frame) {
  CenterOfMass c;
  c.y = (static_cast<double>(frame.height()) - 1.0) / 2.0;
  c.x = (static_cast<double>(frame.width()) - 1.0) / 2.0;
  c.mass = frame.total_intensity();
  return c;
}

/// Radius of the strongest radial bin — a quick ring-radius estimator.
double peak_radius(const RadialProfile& profile);

/// Integrated intensity per angular quadrant of an annulus, normalized to
/// sum 1 (the Fig. 6 feature).
std::vector<double> quadrant_weights(const ImageF& frame, double center_y,
                                     double center_x, double r_min,
                                     double r_max);

}  // namespace arams::image
