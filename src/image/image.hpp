#pragma once
// 2-D detector frame container. Frames flow through preprocessing as
// ImageF and are flattened to Matrix rows before sketching (the paper's
// "2-megapixel images" become d-dimensional rows).
//
// BasicImage is templated on the pixel type: ImageF (double) is the
// default analysis path, ImageF32 (float) is the fp32 ingest lane —
// detectors emit fp32 counts, so the preprocessing → sketch hot path can
// move half the bytes. Intensity sums always accumulate in double so the
// NaN-guard semantics of the preprocessing kernels are precision-blind.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace arams::image {

/// Row-major grayscale image (detector counts), pixel type T.
template <typename T>
class BasicImage {
 public:
  BasicImage() = default;
  BasicImage(std::size_t height, std::size_t width)
      : height_(height), width_(width), data_(height * width, T{0}) {}

  [[nodiscard]] std::size_t height() const { return height_; }
  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t pixel_count() const { return data_.size(); }

  T& at(std::size_t y, std::size_t x) {
    ARAMS_DCHECK(y < height_ && x < width_, "pixel out of range");
    return data_[y * width_ + x];
  }
  T at(std::size_t y, std::size_t x) const {
    ARAMS_DCHECK(y < height_ && x < width_, "pixel out of range");
    return data_[y * width_ + x];
  }

  [[nodiscard]] std::span<T> pixels() { return data_; }
  [[nodiscard]] std::span<const T> pixels() const { return data_; }

  /// Sum of all pixel values (always accumulated in double).
  [[nodiscard]] double total_intensity() const;

  /// Maximum pixel value (0 for an empty image).
  [[nodiscard]] T max_intensity() const;

  /// Flattens into an existing matrix row (length must be pixel_count()).
  void to_row(std::span<T> row) const;

  /// Rebuilds an image of the given shape from a flat row.
  static BasicImage from_row(std::span<const T> row, std::size_t height,
                             std::size_t width);

  /// Writes as an 8-bit binary PGM (max-normalized) for eyeballing output.
  void save_pgm(const std::string& path) const;

 private:
  std::size_t height_ = 0;
  std::size_t width_ = 0;
  std::vector<T> data_;
};

/// Detector frame of doubles — the default fp64 analysis path.
using ImageF = BasicImage<double>;
/// Detector frame of floats — the fp32 ingest lane.
using ImageF32 = BasicImage<float>;

/// Narrows an fp64 frame to fp32 (the "door" conversion when an fp64
/// source feeds the fp32 ingest lane).
ImageF32 narrow(const ImageF& img);

/// Widens an fp32 frame to fp64.
ImageF widen(const ImageF32& img);

/// Flattens a batch of same-shaped images into an n×d matrix.
linalg::Matrix images_to_matrix(const std::vector<ImageF>& images);

/// fp32 flavour: flattens into an n×d MatrixF without an fp64 round trip.
linalg::MatrixF images_to_matrix(const std::vector<ImageF32>& images);

}  // namespace arams::image
