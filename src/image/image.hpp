#pragma once
// 2-D detector frame container. Frames flow through preprocessing as
// ImageF and are flattened to Matrix rows before sketching (the paper's
// "2-megapixel images" become d-dimensional rows).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace arams::image {

/// Row-major grayscale image of doubles (detector counts).
class ImageF {
 public:
  ImageF() = default;
  ImageF(std::size_t height, std::size_t width)
      : height_(height), width_(width), data_(height * width, 0.0) {}

  [[nodiscard]] std::size_t height() const { return height_; }
  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t pixel_count() const { return data_.size(); }

  double& at(std::size_t y, std::size_t x) {
    ARAMS_DCHECK(y < height_ && x < width_, "pixel out of range");
    return data_[y * width_ + x];
  }
  double at(std::size_t y, std::size_t x) const {
    ARAMS_DCHECK(y < height_ && x < width_, "pixel out of range");
    return data_[y * width_ + x];
  }

  [[nodiscard]] std::span<double> pixels() { return data_; }
  [[nodiscard]] std::span<const double> pixels() const { return data_; }

  /// Sum of all pixel values.
  [[nodiscard]] double total_intensity() const;

  /// Maximum pixel value (0 for an empty image).
  [[nodiscard]] double max_intensity() const;

  /// Flattens into an existing matrix row (length must be pixel_count()).
  void to_row(std::span<double> row) const;

  /// Rebuilds an image of the given shape from a flat row.
  static ImageF from_row(std::span<const double> row, std::size_t height,
                         std::size_t width);

  /// Writes as an 8-bit binary PGM (max-normalized) for eyeballing output.
  void save_pgm(const std::string& path) const;

 private:
  std::size_t height_ = 0;
  std::size_t width_ = 0;
  std::vector<double> data_;
};

/// Flattens a batch of same-shaped images into an n×d matrix.
linalg::Matrix images_to_matrix(const std::vector<ImageF>& images);

}  // namespace arams::image
