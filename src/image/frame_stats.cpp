#include "image/frame_stats.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace arams::image {

void RunningFrameStats::update(const ImageF& frame) {
  if (count_ == 0) {
    height_ = frame.height();
    width_ = frame.width();
    mean_.assign(frame.pixel_count(), 0.0);
    m2_.assign(frame.pixel_count(), 0.0);
  }
  ARAMS_CHECK(frame.height() == height_ && frame.width() == width_,
              "frame shape changed mid-stream");
  ++count_;
  const auto pixels = frame.pixels();
  const double inv_n = 1.0 / static_cast<double>(count_);
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    const double delta = pixels[i] - mean_[i];
    mean_[i] += delta * inv_n;
    m2_[i] += delta * (pixels[i] - mean_[i]);
  }
}

ImageF RunningFrameStats::mean() const {
  ARAMS_CHECK(count_ > 0, "no frames absorbed yet");
  ImageF out(height_, width_);
  std::copy(mean_.begin(), mean_.end(), out.pixels().begin());
  return out;
}

ImageF RunningFrameStats::variance() const {
  ARAMS_CHECK(count_ > 0, "no frames absorbed yet");
  ImageF out(height_, width_);
  if (count_ < 2) return out;
  const double inv = 1.0 / static_cast<double>(count_ - 1);
  auto pixels = out.pixels();
  for (std::size_t i = 0; i < m2_.size(); ++i) {
    pixels[i] = m2_[i] * inv;
  }
  return out;
}

}  // namespace arams::image
