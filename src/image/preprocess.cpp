#include "image/preprocess.hpp"

#include <algorithm>
#include <cmath>

namespace arams::image {

namespace {

// Shared template implementations. Pixel arithmetic happens at the pixel
// type; every *reduction* (total intensity, centroid, block mean) runs in
// double, so the `!(x > 0)` NaN guards below behave identically in the
// fp64 and fp32 lanes.

template <typename T>
void threshold_below_impl(BasicImage<T>& img, double threshold) {
  // Branchless select (value-identical to the old `if`, NaN keeps the
  // pixel either way) so the pass vectorizes instead of mispredicting on
  // speckle-like intensity distributions. The fp32 lane compares at pixel
  // precision — pixels within one float ulp of the cut may land on the
  // other side of it than the fp64 lane, which is inside the lane's drift
  // budget and twice the vector width.
  const T t = static_cast<T>(threshold);
  for (auto& v : img.pixels()) {
    v = v < t ? T{0} : v;
  }
}

template <typename T>
void threshold_relative_impl(BasicImage<T>& img, double fraction) {
  if (fraction <= 0.0) return;
  threshold_below_impl(img,
                       fraction * static_cast<double>(img.max_intensity()));
}

template <typename T>
void normalize_intensity_impl(BasicImage<T>& img, double target) {
  // !(x > 0) rather than x <= 0 so a NaN total (a bad pixel somewhere in
  // the frame) skips normalization instead of smearing NaN everywhere.
  const double total = img.total_intensity();
  if (!(total > 0.0)) return;
  // The scale itself is always computed in double; the per-pixel multiply
  // runs at pixel precision (for T=double that is the identical
  // operation, for the fp32 lane it trades ≤1 ulp for the full-width
  // vector multiply).
  const T s = static_cast<T>(target / total);
  for (auto& v : img.pixels()) {
    v *= s;
  }
}

template <typename T>
CenterOfMass center_of_mass_impl(const BasicImage<T>& img) {
  CenterOfMass com;
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const double v = static_cast<double>(img.at(y, x));
      com.mass += v;
      com.y += v * static_cast<double>(y);
      com.x += v * static_cast<double>(x);
    }
  }
  if (com.mass > 0.0) {
    com.y /= com.mass;
    com.x /= com.mass;
  }
  return com;
}

// fp32 lane: row-factored moments (row mass / row x-moment in four
// independent double accumulators each, y-moment as row_mass·y). Fewer
// flops and no add-latency chain; the reduction order differs from the
// bitwise-frozen fp64 kernel by design. NaN anywhere lands in com.mass,
// so the !(mass > 0) guard in center_on_mass still bails out.
template <>
CenterOfMass center_of_mass_impl(const BasicImage<float>& img) {
  CenterOfMass com;
  const std::size_t w = img.width();
  for (std::size_t y = 0; y < img.height(); ++y) {
    const float* row = img.pixels().data() + y * w;
    double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
    double x0 = 0.0, x1 = 0.0, x2 = 0.0, x3 = 0.0;
    std::size_t x = 0;
    for (; x + 4 <= w; x += 4) {
      const double v0 = static_cast<double>(row[x]);
      const double v1 = static_cast<double>(row[x + 1]);
      const double v2 = static_cast<double>(row[x + 2]);
      const double v3 = static_cast<double>(row[x + 3]);
      m0 += v0;
      m1 += v1;
      m2 += v2;
      m3 += v3;
      x0 += v0 * static_cast<double>(x);
      x1 += v1 * static_cast<double>(x + 1);
      x2 += v2 * static_cast<double>(x + 2);
      x3 += v3 * static_cast<double>(x + 3);
    }
    for (; x < w; ++x) {
      const double v = static_cast<double>(row[x]);
      m0 += v;
      x0 += v * static_cast<double>(x);
    }
    const double row_mass = (m0 + m1) + (m2 + m3);
    com.mass += row_mass;
    com.y += row_mass * static_cast<double>(y);
    com.x += (x0 + x1) + (x2 + x3);
  }
  if (com.mass > 0.0) {
    com.y /= com.mass;
    com.x /= com.mass;
  }
  return com;
}

template <typename T>
void center_on_mass_impl(BasicImage<T>& img) {
  // !(x > 0) so a NaN mass bails out too: lround(NaN) below is undefined
  // behavior, and the resulting garbage shift silently blanks the frame.
  const CenterOfMass com = center_of_mass_impl(img);
  if (!(com.mass > 0.0)) return;
  const auto cy = static_cast<long>(std::lround(
      static_cast<double>(img.height() - 1) / 2.0 - com.y));
  const auto cx = static_cast<long>(std::lround(
      static_cast<double>(img.width() - 1) / 2.0 - com.x));
  if (cy == 0 && cx == 0) return;

  // Row-sliced copy (the shift is a constant translation, so each source
  // row maps onto one contiguous destination span — same pixels the old
  // per-pixel bounds-checked loop moved, at memcpy speed).
  const auto w = static_cast<long>(img.width());
  const std::size_t x_src0 = static_cast<std::size_t>(std::max(0l, -cx));
  const std::size_t x_dst0 = static_cast<std::size_t>(std::max(0l, cx));
  const std::size_t x_count = static_cast<std::size_t>(
      std::max(0l, w - static_cast<long>(x_src0) - static_cast<long>(x_dst0)));
  BasicImage<T> shifted(img.height(), img.width());
  if (x_count > 0) {
    for (std::size_t y = 0; y < img.height(); ++y) {
      const long sy = static_cast<long>(y) + cy;
      if (sy < 0 || sy >= static_cast<long>(img.height())) continue;
      const T* src = img.pixels().data() + y * img.width() + x_src0;
      T* dst = shifted.pixels().data() +
               static_cast<std::size_t>(sy) * img.width() + x_dst0;
      std::copy(src, src + x_count, dst);
    }
  }
  img = std::move(shifted);
}

template <typename T>
BasicImage<T> crop_center_impl(const BasicImage<T>& img, std::size_t height,
                               std::size_t width) {
  ARAMS_CHECK(height <= img.height() && width <= img.width(),
              "crop larger than image");
  const std::size_t y0 = (img.height() - height) / 2;
  const std::size_t x0 = (img.width() - width) / 2;
  BasicImage<T> out(height, width);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      out.at(y, x) = img.at(y0 + y, x0 + x);
    }
  }
  return out;
}

template <typename T>
BasicImage<T> downsample_impl(const BasicImage<T>& img, std::size_t factor) {
  ARAMS_CHECK(factor >= 1, "downsample factor must be >= 1");
  if (factor == 1) return img;
  ARAMS_CHECK(img.height() % factor == 0 && img.width() % factor == 0,
              "dimensions must divide the downsample factor");
  const std::size_t h = img.height() / factor;
  const std::size_t w = img.width() / factor;
  BasicImage<T> out(h, w);
  const double inv = 1.0 / static_cast<double>(factor * factor);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      double s = 0.0;
      for (std::size_t dy = 0; dy < factor; ++dy) {
        for (std::size_t dx = 0; dx < factor; ++dx) {
          s += static_cast<double>(img.at(y * factor + dy, x * factor + dx));
        }
      }
      out.at(y, x) = static_cast<T>(s * inv);
    }
  }
  return out;
}

template <typename T>
BasicImage<T> preprocess_impl(const BasicImage<T>& img,
                              const PreprocessConfig& config) {
  BasicImage<T> out = img;
  if (config.threshold_fraction > 0.0) {
    threshold_relative_impl(out, config.threshold_fraction);
  }
  if (config.center) {
    center_on_mass_impl(out);
  }
  if (config.normalize) {
    normalize_intensity_impl(out, 1.0);
  }
  if (config.downsample_factor > 1) {
    out = downsample_impl(out, config.downsample_factor);
  }
  return out;
}

template <typename T>
std::vector<BasicImage<T>> preprocess_batch_impl(
    const std::vector<BasicImage<T>>& images, const PreprocessConfig& config) {
  std::vector<BasicImage<T>> out;
  out.reserve(images.size());
  for (const auto& img : images) {
    out.push_back(preprocess_impl(img, config));
  }
  return out;
}

}  // namespace

void threshold_below(ImageF& img, double threshold) {
  threshold_below_impl(img, threshold);
}
void threshold_below(ImageF32& img, double threshold) {
  threshold_below_impl(img, threshold);
}

void threshold_relative(ImageF& img, double fraction) {
  threshold_relative_impl(img, fraction);
}
void threshold_relative(ImageF32& img, double fraction) {
  threshold_relative_impl(img, fraction);
}

void normalize_intensity(ImageF& img, double target) {
  normalize_intensity_impl(img, target);
}
void normalize_intensity(ImageF32& img, double target) {
  normalize_intensity_impl(img, target);
}

CenterOfMass center_of_mass(const ImageF& img) {
  return center_of_mass_impl(img);
}
CenterOfMass center_of_mass(const ImageF32& img) {
  return center_of_mass_impl(img);
}

void center_on_mass(ImageF& img) { center_on_mass_impl(img); }
void center_on_mass(ImageF32& img) { center_on_mass_impl(img); }

ImageF crop_center(const ImageF& img, std::size_t height, std::size_t width) {
  return crop_center_impl(img, height, width);
}
ImageF32 crop_center(const ImageF32& img, std::size_t height,
                     std::size_t width) {
  return crop_center_impl(img, height, width);
}

ImageF downsample(const ImageF& img, std::size_t factor) {
  return downsample_impl(img, factor);
}
ImageF32 downsample(const ImageF32& img, std::size_t factor) {
  return downsample_impl(img, factor);
}

ImageF preprocess(const ImageF& img, const PreprocessConfig& config) {
  return preprocess_impl(img, config);
}
ImageF32 preprocess(const ImageF32& img, const PreprocessConfig& config) {
  return preprocess_impl(img, config);
}

std::vector<ImageF> preprocess_batch(const std::vector<ImageF>& images,
                                     const PreprocessConfig& config) {
  return preprocess_batch_impl(images, config);
}
std::vector<ImageF32> preprocess_batch(const std::vector<ImageF32>& images,
                                       const PreprocessConfig& config) {
  return preprocess_batch_impl(images, config);
}

}  // namespace arams::image
