#include "image/preprocess.hpp"

#include <algorithm>
#include <cmath>

namespace arams::image {

void threshold_below(ImageF& img, double threshold) {
  for (auto& v : img.pixels()) {
    if (v < threshold) v = 0.0;
  }
}

void threshold_relative(ImageF& img, double fraction) {
  if (fraction <= 0.0) return;
  threshold_below(img, fraction * img.max_intensity());
}

void normalize_intensity(ImageF& img, double target) {
  // !(x > 0) rather than x <= 0 so a NaN total (a bad pixel somewhere in
  // the frame) skips normalization instead of smearing NaN everywhere.
  const double total = img.total_intensity();
  if (!(total > 0.0)) return;
  const double s = target / total;
  for (auto& v : img.pixels()) v *= s;
}

CenterOfMass center_of_mass(const ImageF& img) {
  CenterOfMass com;
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      const double v = img.at(y, x);
      com.mass += v;
      com.y += v * static_cast<double>(y);
      com.x += v * static_cast<double>(x);
    }
  }
  if (com.mass > 0.0) {
    com.y /= com.mass;
    com.x /= com.mass;
  }
  return com;
}

void center_on_mass(ImageF& img) {
  // !(x > 0) so a NaN mass bails out too: lround(NaN) below is undefined
  // behavior, and the resulting garbage shift silently blanks the frame.
  const CenterOfMass com = center_of_mass(img);
  if (!(com.mass > 0.0)) return;
  const auto cy = static_cast<long>(std::lround(
      static_cast<double>(img.height() - 1) / 2.0 - com.y));
  const auto cx = static_cast<long>(std::lround(
      static_cast<double>(img.width() - 1) / 2.0 - com.x));
  if (cy == 0 && cx == 0) return;

  ImageF shifted(img.height(), img.width());
  for (std::size_t y = 0; y < img.height(); ++y) {
    const long sy = static_cast<long>(y) + cy;
    if (sy < 0 || sy >= static_cast<long>(img.height())) continue;
    for (std::size_t x = 0; x < img.width(); ++x) {
      const long sx = static_cast<long>(x) + cx;
      if (sx < 0 || sx >= static_cast<long>(img.width())) continue;
      shifted.at(static_cast<std::size_t>(sy), static_cast<std::size_t>(sx)) =
          img.at(y, x);
    }
  }
  img = std::move(shifted);
}

ImageF crop_center(const ImageF& img, std::size_t height, std::size_t width) {
  ARAMS_CHECK(height <= img.height() && width <= img.width(),
              "crop larger than image");
  const std::size_t y0 = (img.height() - height) / 2;
  const std::size_t x0 = (img.width() - width) / 2;
  ImageF out(height, width);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      out.at(y, x) = img.at(y0 + y, x0 + x);
    }
  }
  return out;
}

ImageF downsample(const ImageF& img, std::size_t factor) {
  ARAMS_CHECK(factor >= 1, "downsample factor must be >= 1");
  if (factor == 1) return img;
  ARAMS_CHECK(img.height() % factor == 0 && img.width() % factor == 0,
              "dimensions must divide the downsample factor");
  const std::size_t h = img.height() / factor;
  const std::size_t w = img.width() / factor;
  ImageF out(h, w);
  const double inv = 1.0 / static_cast<double>(factor * factor);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      double s = 0.0;
      for (std::size_t dy = 0; dy < factor; ++dy) {
        for (std::size_t dx = 0; dx < factor; ++dx) {
          s += img.at(y * factor + dy, x * factor + dx);
        }
      }
      out.at(y, x) = s * inv;
    }
  }
  return out;
}

ImageF preprocess(const ImageF& img, const PreprocessConfig& config) {
  ImageF out = img;
  if (config.threshold_fraction > 0.0) {
    threshold_relative(out, config.threshold_fraction);
  }
  if (config.center) {
    center_on_mass(out);
  }
  if (config.normalize) {
    normalize_intensity(out);
  }
  if (config.downsample_factor > 1) {
    out = downsample(out, config.downsample_factor);
  }
  return out;
}

std::vector<ImageF> preprocess_batch(const std::vector<ImageF>& images,
                                     const PreprocessConfig& config) {
  std::vector<ImageF> out;
  out.reserve(images.size());
  for (const auto& img : images) {
    out.push_back(preprocess(img, config));
  }
  return out;
}

}  // namespace arams::image
