#include "image/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace arams::image {

std::size_t PixelMask::bad_count() const {
  std::size_t bad = 0;
  for (const bool g : good) {
    if (!g) ++bad;
  }
  return bad;
}

void subtract_pedestal(ImageF& frame, const ImageF& pedestal) {
  ARAMS_CHECK(frame.height() == pedestal.height() &&
                  frame.width() == pedestal.width(),
              "pedestal shape mismatch");
  auto pixels = frame.pixels();
  const auto dark = pedestal.pixels();
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    pixels[i] = std::max(pixels[i] - dark[i], 0.0);
  }
}

void common_mode_subtract(ImageF& frame, const PixelMask* mask,
                          double signal_cut) {
  if (mask != nullptr) {
    ARAMS_CHECK(mask->height == frame.height() &&
                    mask->width == frame.width(),
                "mask shape mismatch");
  }
  std::vector<double> row_values;
  row_values.reserve(frame.width());
  for (std::size_t y = 0; y < frame.height(); ++y) {
    row_values.clear();
    for (std::size_t x = 0; x < frame.width(); ++x) {
      if (mask != nullptr && !mask->at(y, x)) continue;
      const double v = frame.at(y, x);
      if (v < signal_cut) row_values.push_back(v);
    }
    if (row_values.empty()) continue;
    const auto mid = row_values.begin() +
                     static_cast<std::ptrdiff_t>(row_values.size() / 2);
    std::nth_element(row_values.begin(), mid, row_values.end());
    const double median = *mid;
    if (median == 0.0) continue;
    for (std::size_t x = 0; x < frame.width(); ++x) {
      frame.at(y, x) = std::max(frame.at(y, x) - median, 0.0);
    }
  }
}

PixelMask mask_from_stats(const RunningFrameStats& stats, double hot_sigma) {
  ARAMS_CHECK(stats.count() >= 2, "need at least two frames of statistics");
  const ImageF mean = stats.mean();
  const ImageF variance = stats.variance();

  // Distribution of the per-pixel means, for the hot cut.
  double mu = 0.0;
  for (const double v : mean.pixels()) mu += v;
  mu /= static_cast<double>(mean.pixel_count());
  double sd = 0.0;
  for (const double v : mean.pixels()) {
    sd += (v - mu) * (v - mu);
  }
  sd = std::sqrt(sd / static_cast<double>(mean.pixel_count() - 1));

  // A pixel is "dead" if it never fluctuates while the detector overall
  // does; use a tiny fraction of the median variance as the floor.
  std::vector<double> vars(variance.pixels().begin(),
                           variance.pixels().end());
  const auto mid =
      vars.begin() + static_cast<std::ptrdiff_t>(vars.size() / 2);
  std::nth_element(vars.begin(), mid, vars.end());
  const double var_floor = *mid * 1e-9;

  PixelMask mask;
  mask.height = mean.height();
  mask.width = mean.width();
  mask.good.assign(mean.pixel_count(), true);
  for (std::size_t i = 0; i < mean.pixel_count(); ++i) {
    const bool dead = variance.pixels()[i] <= var_floor && *mid > 0.0;
    const bool hot = sd > 0.0 && mean.pixels()[i] > mu + hot_sigma * sd;
    if (dead || hot) mask.good[i] = false;
  }
  return mask;
}

void apply_mask(ImageF& frame, const PixelMask& mask) {
  ARAMS_CHECK(mask.height == frame.height() && mask.width == frame.width(),
              "mask shape mismatch");
  auto pixels = frame.pixels();
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    if (!mask.good[i]) pixels[i] = 0.0;
  }
}

}  // namespace arams::image
