#pragma once
// Welford running mean/variance over same-shaped frames — shared by the
// beam diagnostics (drift reference) and detector calibration (pedestal
// and dead/hot-pixel estimation).

#include <vector>

#include "image/image.hpp"

namespace arams::image {

class RunningFrameStats {
 public:
  /// Absorbs one frame. The first frame fixes the shape.
  void update(const ImageF& frame);

  [[nodiscard]] std::size_t count() const { return count_; }

  /// Mean frame so far. Throws CheckError before the first update.
  [[nodiscard]] ImageF mean() const;

  /// Per-pixel sample variance (zero frame until two updates).
  [[nodiscard]] ImageF variance() const;

 private:
  std::size_t count_ = 0;
  std::vector<double> mean_;
  std::vector<double> m2_;
  std::size_t height_ = 0;
  std::size_t width_ = 0;
};

}  // namespace arams::image
