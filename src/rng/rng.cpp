#include "rng/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace arams {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_origin_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
  // xoshiro's all-zero state is invalid; SplitMix64 cannot emit four zeros
  // from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

Rng Rng::split(std::uint64_t index) const {
  // Mix the original seed with the shard index through SplitMix64 so streams
  // are decorrelated regardless of how much the parent has been consumed.
  std::uint64_t x = seed_origin_ ^ (0xd1342543de82ef95ull * (index + 1));
  return Rng(splitmix64(x));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ARAMS_DCHECK(lo <= hi, "uniform bounds out of order");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  ARAMS_DCHECK(n > 0, "uniform_index needs n > 0");
  // Rejection-free multiply-shift (Lemire); slight bias < 2^-64 acceptable.
  __extension__ using uint128 = unsigned __int128;
  const uint128 product = static_cast<uint128>(next_u64()) * n;
  return static_cast<std::uint64_t>(product >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller. u must be strictly positive for the log.
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  const double v = uniform();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * std::numbers::pi * v;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

void Rng::fill_normal(std::span<double> out) {
  for (auto& v : out) {
    v = normal();
  }
}

void Rng::fill_uniform(std::span<double> out) {
  for (auto& v : out) {
    v = uniform();
  }
}

double Rng::exponential(double lambda) {
  ARAMS_DCHECK(lambda > 0.0, "exponential rate must be positive");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

long Rng::poisson(double mean) {
  ARAMS_CHECK(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // photon-count noise model where mean is large.
    const double draw = std::round(normal(mean, std::sqrt(mean)));
    return draw < 0.0 ? 0 : static_cast<long>(draw);
  }
  const double limit = std::exp(-mean);
  long k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

}  // namespace arams
