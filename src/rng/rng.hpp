#pragma once
// Deterministic, stream-splittable random number generation.
//
// The sketching pipeline must be reproducible given a seed, including when
// work is sharded across virtual cores. SplitMix64 seeds independent
// xoshiro256** streams; `Rng::split(i)` derives the stream for core i.

#include <cstdint>
#include <span>

namespace arams {

/// xoshiro256** PRNG with Gaussian sampling. Cheap to copy; not thread-safe
/// (give each thread / virtual core its own instance via split()).
class Rng {
 public:
  /// Seeds the state from a 64-bit seed via SplitMix64 expansion.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Derives an independent stream for shard `index` (used per virtual core).
  [[nodiscard]] Rng split(std::uint64_t index) const;

  /// Next raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller with one cached value.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Fills `out` with i.i.d. standard normals.
  void fill_normal(std::span<double> out);

  /// Fills `out` with i.i.d. uniforms in [0, 1).
  void fill_uniform(std::span<double> out);

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);

  /// Poisson-distributed count (Knuth for small mean, normal approx above 64).
  long poisson(double mean);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  std::uint64_t seed_origin_;
};

}  // namespace arams
