// ANN subsystem benchmarks (google-benchmark): the rpforest backend next
// to the exact GEMM engine it replaces above the auto-dispatch threshold,
// so BENCH_ann.json records the speedup and the recall it costs directly.
// Shapes follow the Section VI-B latent geometry (d = 32 after PCA) with a
// clustered Gaussian mixture standing in for the per-class structure the
// beam/diffraction generators produce; n sweeps across the O(n²) wall the
// forest exists to remove (the headline row is n = 65536, k = 15).
//
// Counters:
//   recall  fraction of true k-nearest neighbours recovered. Exhaustive at
//           the RecallPin shape; estimated over a 256-query sample on the
//           graph sweep (an exhaustive check at n = 65536 would cost more
//           than the benchmark itself).
//
// tools/check_ann_recall.sh runs the BM_AnnRecallPin filter as a ctest and
// fails the build when recall drops below 0.95.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "embed/ann/searcher.hpp"
#include "embed/knn.hpp"
#include "linalg/workspace.hpp"
#include "rng/rng.hpp"

namespace {

using namespace arams;
using linalg::Matrix;

constexpr std::size_t kDim = 32;
constexpr std::size_t kNeighbors = 15;

/// Clustered Gaussian mixture in latent space: centers spread at scale 5,
/// unit within-cluster noise — the shape a PCA projection of a multi-class
/// run actually hands the kNN stage (iid Gaussian would be the degenerate
/// no-structure case).
Matrix clustered_points(std::size_t n, std::size_t d, std::uint64_t seed) {
  const std::size_t clusters = 32;
  Rng rng(seed);
  Matrix centers(clusters, d);
  for (std::size_t c = 0; c < clusters; ++c) {
    rng.fill_normal(centers.row(c));
    for (double& v : centers.row(c)) v *= 5.0;
  }
  Matrix pts(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % clusters;
    rng.fill_normal(pts.row(i));
    const auto center = centers.row(c);
    auto row = pts.row(i);
    for (std::size_t j = 0; j < d; ++j) row[j] += center[j];
  }
  return pts;
}

/// Neighbour-set recall of `approx` rows against ground-truth rows for the
/// query subset `rows` (approx indexed by position in `rows`).
double sampled_recall(const embed::KnnGraph& truth,
                      const embed::KnnGraph& approx,
                      const std::vector<std::size_t>& rows) {
  std::size_t hits = 0;
  for (std::size_t s = 0; s < rows.size(); ++s) {
    for (std::size_t j = 0; j < truth.k; ++j) {
      const std::size_t want = truth.neighbor(s, j);
      for (std::size_t l = 0; l < approx.k; ++l) {
        if (approx.neighbor(rows[s], l) == want) {
          ++hits;
          break;
        }
      }
    }
  }
  return static_cast<double>(hits) /
         static_cast<double>(rows.size() * truth.k);
}

/// Ground truth for a sample of indexed points: exact query_batch with
/// k + 1, self column dropped.
embed::KnnGraph sampled_truth(const Matrix& pts,
                              const std::vector<std::size_t>& rows,
                              std::size_t k, linalg::Workspace& ws) {
  Matrix queries(rows.size(), pts.cols());
  for (std::size_t s = 0; s < rows.size(); ++s) {
    queries.set_row(s, pts.row(rows[s]));
  }
  const auto exact = embed::make_searcher("exact", 0);
  exact->build(pts, ws);
  embed::KnnGraph with_self;
  exact->query_batch(queries, k + 1, ws, with_self);
  embed::KnnGraph truth;
  truth.n = rows.size();
  truth.k = k;
  truth.neighbors.resize(rows.size() * k);
  truth.distances.resize(rows.size() * k);
  for (std::size_t s = 0; s < rows.size(); ++s) {
    std::size_t out = 0;
    for (std::size_t j = 0; j <= k && out < k; ++j) {
      if (with_self.neighbor(s, j) == rows[s]) continue;
      truth.neighbors[s * k + out] = with_self.neighbor(s, j);
      truth.distances[s * k + out] = with_self.distance(s, j);
      ++out;
    }
  }
  return truth;
}

void BM_AnnGraphExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix pts = clustered_points(n, kDim, 1);
  linalg::Workspace ws;
  const auto searcher = embed::make_searcher("exact", 7);
  searcher->build(pts, ws);
  embed::KnnGraph g;
  for (auto _ : state) {
    searcher->query_graph(kNeighbors, ws, g);
    benchmark::DoNotOptimize(g.neighbors.data());
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["recall"] = 1.0;
}
BENCHMARK(BM_AnnGraphExact)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

void BM_AnnGraphForest(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix pts = clustered_points(n, kDim, 1);
  linalg::Workspace ws;
  const auto searcher = embed::make_searcher("rpforest", 7);
  searcher->build(pts, ws);
  embed::KnnGraph g;
  for (auto _ : state) {
    searcher->query_graph(kNeighbors, ws, g);
    benchmark::DoNotOptimize(g.neighbors.data());
  }
  // Recall estimate on a deterministic 256-row sample (not timed).
  std::vector<std::size_t> sample;
  const std::size_t count = std::min<std::size_t>(n, 256);
  for (std::size_t s = 0; s < count; ++s) {
    sample.push_back((s * n) / count);
  }
  const embed::KnnGraph truth = sampled_truth(pts, sample, kNeighbors, ws);
  state.counters["n"] = static_cast<double>(n);
  state.counters["recall"] = sampled_recall(truth, g, sample);
}
BENCHMARK(BM_AnnGraphForest)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

/// The ctest recall pin: exhaustive ground truth at a size small enough to
/// run on every build (tools/check_ann_recall.sh fails below 0.95).
void BM_AnnRecallPin(benchmark::State& state) {
  const std::size_t n = 4096;
  const Matrix pts = clustered_points(n, kDim, 2);
  linalg::Workspace ws;
  const auto searcher = embed::make_searcher("rpforest", 2024);
  searcher->build(pts, ws);
  embed::KnnGraph g;
  for (auto _ : state) {
    searcher->query_graph(kNeighbors, ws, g);
    benchmark::DoNotOptimize(g.neighbors.data());
  }
  embed::KnnGraph truth;
  const auto exact = embed::make_searcher("exact", 2024);
  exact->build(pts, ws);
  exact->query_graph(kNeighbors, ws, truth);
  state.counters["n"] = static_cast<double>(n);
  state.counters["recall"] = embed::knn_recall(g, truth);
}
BENCHMARK(BM_AnnRecallPin)->Unit(benchmark::kMillisecond);

void BM_AnnQueryBatch(benchmark::State& state, const char* backend) {
  const std::size_t n = 16384;
  const Matrix pts = clustered_points(n, kDim, 3);
  const Matrix queries = clustered_points(256, kDim, 4);
  linalg::Workspace ws;
  const auto searcher = embed::make_searcher(backend, 5);
  searcher->build(pts, ws);
  embed::KnnGraph g;
  searcher->query_batch(queries, kNeighbors, ws, g);  // warm the scratch
  for (auto _ : state) {
    searcher->query_batch(queries, kNeighbors, ws, g);
    benchmark::DoNotOptimize(g.neighbors.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.rows()));
}
BENCHMARK_CAPTURE(BM_AnnQueryBatch, exact, "exact")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AnnQueryBatch, rpforest, "rpforest")
    ->Unit(benchmark::kMillisecond);

/// Streaming growth: 256-row inserts into a warm forest (the monitor's
/// incremental-snapshot path). The index is rebuilt outside the timed
/// region once it doubles, so the measured cost stays at the steady state.
void BM_AnnInsertForest(benchmark::State& state) {
  const std::size_t n = 16384;
  const Matrix pts = clustered_points(n, kDim, 5);
  const Matrix fresh = clustered_points(256, kDim, 6);
  linalg::Workspace ws;
  const auto searcher = embed::make_searcher("rpforest", 8);
  searcher->build(pts, ws);
  for (auto _ : state) {
    if (searcher->size() > 2 * n) {
      state.PauseTiming();
      searcher->build(pts, ws);
      state.ResumeTiming();
    }
    searcher->insert(fresh, ws);
    benchmark::DoNotOptimize(searcher->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fresh.rows()));
}
BENCHMARK(BM_AnnInsertForest)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
