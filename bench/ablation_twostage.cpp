// Ablation — why the pipeline needs BOTH dimension-reduction stages.
//
// Section VI argues: "UMAP ... is not suitable for directly analyzing
// extremely high-dimensional data ... and would be far too slow ...
// On the other hand, PCA is a simple linear method and cannot capture the
// intricacies of complex data sources. Thus, both stages of the procedure
// are necessary." This harness quantifies that claim on the diffraction
// workload:
//   pca-only     project to 2-D with the sketch PCA, no UMAP
//   umap-on-raw  UMAP directly on the pixel rows (no PCA stage)
//   pca+umap     the paper's pipeline
//   pca+tsne     t-SNE as the stage-3 alternative
// reporting runtime, trustworthiness, and cluster recovery (ARI via
// k-means at the true K, isolating embedding quality from the clusterer).

#include <iostream>

#include "bench_common.hpp"
#include "cluster/kmeans.hpp"
#include "cluster/metrics.hpp"
#include "core/arams_sketch.hpp"
#include "embed/metrics.hpp"
#include "embed/pca.hpp"
#include "embed/tsne.hpp"
#include "embed/umap.hpp"
#include "image/preprocess.hpp"
#include "stream/source.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace arams;

double kmeans_ari(const linalg::Matrix& embedding,
                  const std::vector<int>& truth, std::size_t k) {
  cluster::KmeansConfig config;
  config.k = k;
  config.restarts = 6;
  const cluster::KmeansResult r = cluster::kmeans(embedding, config);
  return cluster::adjusted_rand_index(r.labels, truth);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("frames", "300", "diffraction frames");
  flags.declare("size", "40", "frame height/width");
  flags.declare("classes", "4", "latent classes");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("ablation_twostage");
    return 0;
  }
  const auto frames = static_cast<std::size_t>(flags.get_int("frames"));
  const auto classes = static_cast<std::size_t>(flags.get_int("classes"));

  bench::banner("Ablation (both pipeline stages are necessary)", false,
                "pca-only vs umap-on-raw vs pca+umap vs pca+tsne");

  data::DiffractionConfig diff;
  diff.height = static_cast<std::size_t>(flags.get_int("size"));
  diff.width = diff.height;
  diff.num_classes = classes;
  diff.photons_per_frame = 5e4;
  stream::DiffractionSource source(diff, frames, 120.0, 19);
  const auto events = stream::drain(source, frames);
  std::vector<int> truth;
  std::vector<image::ImageF> images;
  for (const auto& e : events) {
    truth.push_back(e.truth_label);
    images.push_back(e.frame);
  }
  image::PreprocessConfig pre;
  pre.center = false;
  const linalg::Matrix raw =
      image::images_to_matrix(image::preprocess_batch(images, pre));

  // Shared sketch + latent projection (the streaming stages).
  Stopwatch timer;
  core::AramsConfig sketch_config;
  sketch_config.ell = 24;
  core::Arams sketcher(sketch_config);
  const core::AramsResult sketch = sketcher.sketch_matrix(raw);
  const embed::PcaProjector pca(sketch.sketch, 10);
  const linalg::Matrix latent = pca.project(raw);
  const double sketch_s = timer.lap();
  std::cerr << "[twostage] sketch+project in " << sketch_s << " s\n";

  embed::UmapConfig umap_config;
  umap_config.n_neighbors = 15;
  umap_config.n_epochs = 200;
  embed::TsneConfig tsne_config;
  tsne_config.perplexity = 20.0;
  tsne_config.n_iters = 400;

  Table table({"variant", "embed_s", "trustworthiness", "kmeans_ari"});
  const auto report = [&](const std::string& name,
                          const linalg::Matrix& embedding, double seconds,
                          const linalg::Matrix& reference) {
    table.add_row(
        {name, Table::num(seconds),
         Table::num(embed::trustworthiness(reference, embedding, 12)),
         Table::num(kmeans_ari(embedding, truth, classes))});
  };

  // pca-only: top-2 principal coordinates as the "embedding".
  {
    Stopwatch t;
    const embed::PcaProjector pca2(sketch.sketch, 2);
    const linalg::Matrix y = pca2.project(raw);
    report("pca-only", y, t.seconds(), latent);
  }
  // umap-on-raw: skip the PCA stage entirely.
  {
    Stopwatch t;
    const linalg::Matrix y = embed::umap_embed(raw, umap_config);
    report("umap-on-raw", y, t.seconds(), latent);
  }
  // pca+umap: the paper's pipeline.
  {
    Stopwatch t;
    const linalg::Matrix y = embed::umap_embed(latent, umap_config);
    report("pca+umap", y, t.seconds(), latent);
  }
  // pca+tsne: the alternative stage-3.
  {
    Stopwatch t;
    const linalg::Matrix y = embed::tsne_embed(latent, tsne_config);
    report("pca+tsne", y, t.seconds(), latent);
  }
  bench::emit("stage ablation on the diffraction workload", table);

  std::cout << "\nexpected shape: pca+umap (and pca+tsne) reach the best "
               "ARI; umap-on-raw pays a large runtime multiple for "
               "comparable quality (and scales with pixel count, which is "
               "fatal at 2 MP); pca-only is fastest but loses cluster "
               "structure that the nonlinear stage recovers.\n";
  return 0;
}
