// Figure 4 — the full data-processing pipeline, reproduced as a
// stage-by-stage latency/throughput account.
//
// Fig. 4 is a schematic (batches → per-core sketches → merge → PCA → UMAP
// → clustering/anomaly detection); the checkable content is that every
// stage exists and that stage latencies stay compatible with online
// operation. This harness runs the beam-profile workload through the
// facade at several batch sizes and reports per-stage wall time and the
// per-frame cost of the streaming stages.

#include <iostream>

#include "bench_common.hpp"
#include "stream/pipeline.hpp"
#include "stream/source.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("size", "32", "frame height/width");
  flags.declare("cores", "4", "virtual sketching cores");
  flags.declare("full", "false", "larger frame counts");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("fig4_pipeline_stages");
    return 0;
  }
  const bool full = flags.get_bool("full");
  const auto size = static_cast<std::size_t>(flags.get_int("size"));

  bench::banner("Figure 4 (pipeline stage accounting)", full,
                "per-stage wall time across workload sizes");

  Table table({"frames", "preprocess_s", "sketch_s", "merge_ops",
               "project_s", "umap_s", "cluster_s", "total_s",
               "stream_stage_us_per_frame"});
  const std::size_t counts_small[] = {128, 256, 512, 1024};
  const std::size_t counts_full[] = {512, 1024, 2048, 4096};
  for (const std::size_t frames : (full ? counts_full : counts_small)) {
    data::BeamProfileConfig beam;
    beam.height = size;
    beam.width = size;
    stream::BeamProfileSource source(beam, frames, 120.0, 13);
    const auto events = stream::drain(source, frames);

    stream::PipelineConfig config;
    config.sketch.ell = 24;
    config.num_cores = static_cast<std::size_t>(flags.get_int("cores"));
    config.pca_components = 12;
    config.umap.n_neighbors = 15;
    config.umap.n_epochs = 200;
    const stream::MonitoringPipeline pipeline(config);

    Stopwatch timer;
    const stream::PipelineResult r = pipeline.analyze_events(events);
    const double total = timer.seconds();
    // The streaming stages are preprocess + sketch + project; UMAP and
    // clustering run on operator demand over the reservoir.
    const double streaming =
        r.preprocess_seconds() + r.sketch_seconds() + r.project_seconds();
    table.add_row({Table::num(static_cast<long>(frames)),
                   Table::num(r.preprocess_seconds()),
                   Table::num(r.sketch_seconds()),
                   Table::num(r.merge_stats().merge_ops),
                   Table::num(r.project_seconds()),
                   Table::num(r.embed_seconds()),
                   Table::num(r.cluster_seconds()), Table::num(total),
                   Table::num(1e6 * streaming /
                              static_cast<double>(frames))});
  }
  bench::emit("stage latencies vs workload size", table);

  std::cout << "\nexpected shape: the streaming stages cost a roughly "
               "constant handful of microseconds per frame (they scale "
               "linearly); UMAP+clustering grow superlinearly but run on "
               "snapshot demand, not per shot.\n";
  return 0;
}
