// Mixed-precision ingest lane benchmarks (google-benchmark): the fp32
// frame path (narrow frames → fp32 preprocess → fp32 flatten → the
// sketcher's fp32 entry point) head-to-head against the classic fp64 lane
// at equal ℓ and d, plus the mixed-precision GEMM against its all-fp64
// twin. The fp32 lane halves the memory traffic of everything before the
// sketch core while every accumulation stays fp64.

#include <benchmark/benchmark.h>

#include "core/sketcher.hpp"
#include "image/image.hpp"
#include "image/preprocess.hpp"
#include "linalg/blas.hpp"
#include "rng/rng.hpp"

namespace {

using namespace arams;
using linalg::Matrix;
using linalg::MatrixF;

constexpr std::size_t kFrames = 64;  ///< frames per ingest batch
constexpr std::size_t kEll = 16;     ///< sketch rank (equal in both lanes)

std::vector<image::ImageF> random_frames(std::size_t count, std::size_t side,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<image::ImageF> frames;
  frames.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    image::ImageF frame(side, side);
    for (std::size_t r = 0; r < side; ++r) {
      for (std::size_t c = 0; c < side; ++c) {
        // Non-negative intensities so threshold/normalize/center all do
        // real work (a zero-mass frame short-circuits the kernels).
        frame.at(r, c) = rng.uniform() + 0.05;
      }
    }
    frames.push_back(std::move(frame));
  }
  return frames;
}

core::SketcherConfig ingest_config() {
  core::SketcherConfig config;
  config.backend = "arams";
  config.ell = kEll;
  config.seed = 2024;
  config.arams.ell = kEll;
  config.arams.seed = 2024;
  // Priority sampling on, at the aggressive keep fraction of the
  // high-rate monitoring regime: the sketch core (whose fp64 work is
  // identical in both lanes by design) digests ~1/10 of the stream, so the
  // benchmark measures the ingest lane itself rather than the shared
  // shrink arithmetic.
  config.arams.beta = 0.1;
  config.arams.use_sampling = true;
  config.arams.rank_adaptive = false;
  return config;
}

image::PreprocessConfig preprocess_config() {
  image::PreprocessConfig config;  // threshold + center + normalize
  return config;
}

// Classic lane: fp64 frames end to end.
void BM_IngestF64(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const std::vector<image::ImageF> frames =
      random_frames(kFrames, side, 1);
  const image::PreprocessConfig prep = preprocess_config();
  const std::unique_ptr<core::Sketcher> sketcher =
      core::make_sketcher(ingest_config());
  for (auto _ : state) {
    const Matrix rows =
        image::images_to_matrix(image::preprocess_batch(frames, prep));
    sketcher->push_batch(rows);
    benchmark::DoNotOptimize(sketcher->current_ell());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFrames));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFrames * side * side *
                                               sizeof(double)));
}
BENCHMARK(BM_IngestF64)->Arg(64)->Arg(96)->Arg(128);

// Mixed-precision lane: the same frames narrowed once at the door, then
// fp32 preprocess, fp32 flatten, and the sketcher's fp32 entry point.
void BM_IngestF32(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  std::vector<image::ImageF32> frames;
  frames.reserve(kFrames);
  for (const image::ImageF& frame : random_frames(kFrames, side, 1)) {
    frames.push_back(image::narrow(frame));
  }
  const image::PreprocessConfig prep = preprocess_config();
  const std::unique_ptr<core::Sketcher> sketcher =
      core::make_sketcher(ingest_config());
  for (auto _ : state) {
    const MatrixF rows =
        image::images_to_matrix(image::preprocess_batch(frames, prep));
    sketcher->push_batch(linalg::MatrixViewF(rows));
    benchmark::DoNotOptimize(sketcher->current_ell());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFrames));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kFrames * side * side *
                                               sizeof(float)));
}
BENCHMARK(BM_IngestF32)->Arg(64)->Arg(96)->Arg(128);

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  for (std::size_t i = 0; i < r; ++i) rng.fill_normal(m.row(i));
  return m;
}

// All-fp64 Aᵀ·B — the baseline the Gaussian backend's update used to pay.
void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 21);
  const Matrix b = random_matrix(n, n, 22);
  Matrix out;
  for (auto _ : state) {
    linalg::matmul_tn(linalg::MatrixView(a), linalg::MatrixView(b), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256)->Arg(512);

// Mixed Aᵀ(fp64)·B(fp32): the fp32 panel widens at pack time into the
// fp64 micro-kernel, so B's streamed traffic halves while the arithmetic
// (and its result, bit for bit) stays fp64.
void BM_GemmMixed(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 21);
  const Matrix b64 = random_matrix(n, n, 22);
  MatrixF b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = b64.row(i);
    auto dst = b.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      dst[j] = static_cast<float>(src[j]);
    }
  }
  Matrix out;
  for (auto _ : state) {
    linalg::matmul_tn(linalg::MatrixView(a), linalg::MatrixViewF(b), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_GemmMixed)->Arg(128)->Arg(256)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
