// Section VI-B — runtime: the paper processes a full LCLS XPCS run of
// 12,000 2-megapixel images at 136 Hz using 64 cores (after cropping), and
// the UMAP/OPTICS visualization completes in under a minute.
//
// This harness streams synthetic frames through the StreamingMonitor on
// one core, reports the measured single-core rate, and extrapolates the
// 64-core rate with the tree-merge efficiency measured in the Fig. 2 model
// (near-linear), then times the UMAP/OPTICS snapshot separately against
// the one-minute budget.

#include <iostream>

#include "bench_common.hpp"
#include "data/speckle.hpp"
#include "stream/monitor.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("frames", "1200", "frames to stream (paper: 12000)");
  flags.declare("size", "48", "frame side after cropping (paper: ~1.4k)");
  flags.declare("batch", "128", "frames per sketch update");
  flags.declare("snapshot-points", "1024", "reservoir size for UMAP/OPTICS");
  flags.declare("workload", "speckle",
                "speckle (XPCS, as in the paper) | beam");
  flags.declare("full", "false", "paper-scale frame count/size");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("runtime_throughput");
    return 0;
  }
  const bool full = flags.get_bool("full");
  const std::size_t frames =
      full ? 12000 : static_cast<std::size_t>(flags.get_int("frames"));
  const std::size_t size =
      full ? 256 : static_cast<std::size_t>(flags.get_int("size"));

  bench::banner("Section VI-B (streaming throughput)", full,
                "single-core measured rate, 64-core extrapolation, "
                "UMAP/OPTICS snapshot time");

  // The §VI-B run is an XPCS experiment → speckle frames by default.
  std::unique_ptr<stream::FrameSource> source;
  if (flags.get("workload") == "speckle") {
    data::SpeckleConfig speckle;
    speckle.height = size;
    speckle.width = size;
    source = std::make_unique<stream::SpeckleSource>(speckle, frames,
                                                     120.0, 21);
  } else {
    data::BeamProfileConfig beam;
    beam.height = size;
    beam.width = size;
    source = std::make_unique<stream::BeamProfileSource>(beam, frames,
                                                         120.0, 21);
  }

  stream::MonitorConfig config;
  config.batch_size = static_cast<std::size_t>(flags.get_int("batch"));
  config.reservoir_size =
      static_cast<std::size_t>(flags.get_int("snapshot-points"));
  config.pipeline.sketch.ell = 24;
  config.pipeline.sketch.rank_adaptive = true;
  config.pipeline.sketch.epsilon = 0.08;
  config.pipeline.pca_components = 10;
  config.pipeline.umap.n_neighbors = 15;
  config.pipeline.umap.n_epochs = 150;
  stream::StreamingMonitor monitor(config);

  std::cerr << "[runtime] streaming " << frames << " " << size << "x" << size
            << " " << flags.get("workload") << " frames...\n";
  Stopwatch stream_timer;
  while (auto event = source->next()) {
    monitor.ingest(*event);
  }
  monitor.flush();
  const double stream_seconds = stream_timer.seconds();
  // Pipeline-only rate (frame generation excluded): the meter measures
  // ingest time alone, which is what a real detector stream would pay.
  const double rate_1core = monitor.throughput().frames_per_second();
  const double wall_rate = static_cast<double>(frames) / stream_seconds;

  Stopwatch snap_timer;
  const stream::SnapshotResult snap = monitor.snapshot();
  const double snapshot_seconds = snap_timer.seconds();

  // Tree-merge scaling is near-linear (Fig. 2); a conservative 85%
  // parallel efficiency extrapolates the per-core rate to 64 cores.
  constexpr double kCores = 64.0;
  constexpr double kEfficiency = 0.85;
  const double rate_64core = rate_1core * kCores * kEfficiency;

  Table table({"metric", "value"});
  table.add_row({"frames", Table::num(static_cast<long>(frames))});
  table.add_row({"pixels/frame",
                 Table::num(static_cast<long>(size * size))});
  table.add_row({"stream seconds incl. generation", Table::num(stream_seconds)});
  table.add_row({"wall rate incl. generation (Hz)", Table::num(wall_rate)});
  table.add_row({"pipeline rate (1 core, Hz)", Table::num(rate_1core)});
  table.add_row({"extrapolated 64-core rate (Hz)",
                 Table::num(rate_64core)});
  table.add_row({"paper reference rate (Hz)", "136 (64 cores, 2 MP)"});
  table.add_row({"sketch rotations",
                 Table::num(monitor.sketch_stats().svd_count)});
  table.add_row({"final sketch rank",
                 Table::num(static_cast<long>(monitor.current_ell()))});
  table.add_row({"UMAP/OPTICS snapshot points",
                 Table::num(static_cast<long>(snap.embedding.rows()))});
  table.add_row({"UMAP/OPTICS snapshot seconds",
                 Table::num(snapshot_seconds)});
  table.add_row({"paper snapshot budget", "< 60 s"});
  bench::emit("streaming throughput", table);

  std::cout << "\nexpected shape: the sketching stage sustains a rate far "
               "above the per-core share of 136 Hz, and the UMAP/OPTICS "
               "snapshot completes well inside the one-minute budget.\n";
  return 0;
}
