// Ablation — merge strategy and tree arity.
//
// DESIGN.md calls out the choice of binary tree merging. This harness
// compares serial merging against trees of arity 2/4/8 on the same 64
// per-core sketches: critical-path rotations, measured merge work, and
// final sketch error.

#include <iostream>

#include "bench_common.hpp"
#include "core/fd.hpp"
#include "core/merge.hpp"
#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("shards", "64", "number of per-core sketches");
  flags.declare("rows-per-shard", "96", "rows per shard");
  flags.declare("d", "512", "feature dimension");
  flags.declare("ell", "24", "sketch rows");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("ablation_merge");
    return 0;
  }
  const auto shards = static_cast<std::size_t>(flags.get_int("shards"));
  const auto rows = static_cast<std::size_t>(flags.get_int("rows-per-shard"));
  const auto d = static_cast<std::size_t>(flags.get_int("d"));
  const auto ell = static_cast<std::size_t>(flags.get_int("ell"));

  bench::banner("Ablation (merge strategy / tree arity)", false,
                "critical path and error for serial vs a-ary tree merges");

  // Build the per-shard sketches once.
  Rng rng(17);
  linalg::Matrix full;
  std::vector<linalg::Matrix> sketches;
  std::cerr << "[merge] sketching " << shards << " shards...\n";
  for (std::size_t s = 0; s < shards; ++s) {
    linalg::Matrix shard(rows, d);
    for (std::size_t i = 0; i < rows; ++i) {
      rng.fill_normal(shard.row(i));
    }
    core::FrequentDirections fd(core::FdConfig{ell, true});
    fd.append_batch(shard);
    fd.compress();
    sketches.push_back(fd.sketch());
    full = linalg::Matrix::vstack(full, shard);
  }

  Table table({"strategy", "critical_path_ops", "total_ops",
               "merge_work_s", "critical_path_s", "error_rel"});
  const auto report = [&](const std::string& name,
                          std::vector<linalg::Matrix> copies,
                          std::size_t arity) {
    core::MergeStats stats;
    const linalg::Matrix merged =
        (arity == 0)
            ? core::serial_merge(std::move(copies), ell, &stats)
            : core::tree_merge(std::move(copies), ell, arity, &stats);
    Rng power(5);
    const double err =
        linalg::covariance_error_relative(full, merged, power, 25);
    table.add_row({name, Table::num(stats.critical_path_ops),
                   Table::num(stats.merge_ops),
                   Table::num(stats.total_seconds),
                   Table::num(stats.critical_path_seconds),
                   Table::num(err)});
  };

  report("serial", sketches, 0);
  report("tree-2", sketches, 2);
  report("tree-4", sketches, 4);
  report("tree-8", sketches, 8);
  bench::emit("merge strategies on " + std::to_string(shards) + " sketches",
              table);

  std::cout << "\nexpected shape: all strategies land at comparable error; "
               "the tree critical path shrinks from P-1 to ~log_a(P) "
               "rotations, with higher arity trading fewer levels for "
               "bigger per-level stacks.\n";
  return 0;
}
