// Ablation — the sketcher shoot-out behind the core::Sketcher seam.
//
// The paper motivates ARAMS by citing Desai–Ghashami–Phillips: FD has the
// best error but the worst runtime among practical sketchers. This harness
// reproduces that landscape through the make_sketcher factory, so every
// registered backend (arams, fd, isvd, gaussian, countsketch, normsample,
// rangefinder) is swept uniformly: for each workload, sketcher and sketch
// size, runtime and relative covariance error.
//
// Workloads: the synthetic low-rank ablation matrix plus the two LCLS-like
// generators (beam profiles, diffraction rings) the EXPERIMENTS.md
// accuracy-vs-throughput shoot-out runs on. Rows are streamed in DAQ-sized
// batches so the batch-first push_batch path is what gets timed.
//
// Expected shape: fd/arams on (or defining) the low-error frontier at every
// ℓ; projections and sampling faster but with noticeably worse error; isvd
// and rangefinder fast *and* accurate on these decaying spectra, but with
// no worst-case guarantee.
//
// --json-out writes the same rows as a JSON array (BENCH_sketchers.json via
// tools/bench_to_json.sh).

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/sketcher.hpp"
#include "data/beam_profile.hpp"
#include "data/diffraction.hpp"
#include "data/synthetic.hpp"
#include "image/image.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace arams;

struct ResultRow {
  std::string workload;
  std::string sketcher;
  std::size_t ell;
  double runtime_s;
  double cov_error_rel;
};

linalg::Matrix make_workload(const std::string& workload, std::size_t n,
                             std::size_t d, std::size_t size) {
  Rng rng(41);
  if (workload == "synthetic") {
    data::SyntheticConfig dc;
    dc.n = n;
    dc.d = d;
    dc.spectrum.kind = data::DecayKind::kExponential;
    dc.spectrum.count = std::min(d, std::size_t{128});
    dc.spectrum.rate = 0.06;
    dc.noise = 1e-3;
    return data::make_low_rank(dc, rng);
  }
  std::vector<image::ImageF> frames;
  frames.reserve(n);
  if (workload == "beam") {
    data::BeamProfileConfig config;
    config.height = size;
    config.width = size;
    for (std::size_t i = 0; i < n; ++i) {
      frames.push_back(data::generate_beam_profile(config, rng).frame);
    }
  } else if (workload == "diffraction") {
    data::DiffractionConfig config;
    config.height = size;
    config.width = size;
    const data::DiffractionGenerator generator(config);
    for (std::size_t i = 0; i < n; ++i) {
      frames.push_back(generator.generate(rng).frame);
    }
  } else {
    ARAMS_CHECK(false, "unknown workload: " + workload);
  }
  return image::images_to_matrix(frames);
}

/// Streams `a` through the named backend in DAQ-sized batches and measures
/// ingest+sketch wall time plus the relative covariance error.
ResultRow run_one(const std::string& workload, const std::string& name,
                  std::size_t ell, const linalg::Matrix& a,
                  std::size_t batch_rows) {
  core::SketcherConfig config;
  config.backend = name;
  config.ell = ell;
  config.seed = 7;
  // Fixed-ℓ shoot-out: ARAMS runs as priority sampling + fixed FD (the
  // paper's "PS+FD" ablation arm) so every backend competes at the same
  // sketch size instead of adapting its rank away from it.
  config.arams.ell = ell;
  config.arams.seed = 7;
  config.arams.use_sampling = true;
  config.arams.beta = 0.8;
  config.arams.rank_adaptive = false;
  const auto sketcher = core::make_sketcher(config);

  Stopwatch timer;
  for (std::size_t r0 = 0; r0 < a.rows(); r0 += batch_rows) {
    const std::size_t r1 = std::min(a.rows(), r0 + batch_rows);
    sketcher->push_batch(a.slice_rows(r0, r1));
  }
  const linalg::Matrix b = sketcher->sketch();
  const double seconds = timer.seconds();
  Rng power(8);
  const double err = linalg::covariance_error_relative(a, b, power, 40);
  return {workload, name, ell, seconds, err};
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : list) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

void write_json(const std::string& path, const std::vector<ResultRow>& rows) {
  std::ofstream out(path);
  ARAMS_CHECK(out.good(), "cannot open --json-out file: " + path);
  out << "{\n  \"name\": \"ablation_baselines\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& r = rows[i];
    out << "    {\"workload\": \"" << r.workload << "\", \"sketcher\": \""
        << r.sketcher << "\", \"ell\": " << r.ell << ", \"runtime_s\": "
        << r.runtime_s << ", \"cov_error_rel\": " << r.cov_error_rel << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("n", "4000", "rows (synthetic) / frames (beam, diffraction)");
  flags.declare("d", "256", "synthetic columns");
  flags.declare("size", "24", "beam/diffraction frame height=width");
  flags.declare("batch", "256", "rows per push_batch call");
  flags.declare("workloads", "synthetic,beam,diffraction",
                "comma list: synthetic | beam | diffraction");
  flags.declare("json-out", "", "also write results as JSON (CI baseline)");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("ablation_baselines");
    return 0;
  }
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto d = static_cast<std::size_t>(flags.get_int("d"));
  const auto size = static_cast<std::size_t>(flags.get_int("size"));
  const auto batch = static_cast<std::size_t>(flags.get_int("batch"));

  bench::banner("Ablation (sketcher shoot-out)", false,
                "runtime and relative covariance error per backend, sketch "
                "size and workload");

  std::vector<ResultRow> rows;
  Table table({"workload", "sketcher", "ell", "runtime_s", "cov_error_rel"});
  for (const std::string& workload : split_csv(flags.get("workloads"))) {
    // Image workloads scale frame count down: d = size² columns makes each
    // covariance-error power iteration much heavier than the synthetic run.
    const std::size_t rows_here =
        workload == "synthetic" ? n : std::max<std::size_t>(n / 2, 256);
    std::cerr << "[baselines] generating " << workload << " workload ("
              << rows_here << " rows)...\n";
    const linalg::Matrix a = make_workload(workload, rows_here, d, size);
    for (const std::size_t ell : {16, 32, 64}) {
      for (const std::string& name : core::registered_sketchers()) {
        const ResultRow row = run_one(workload, name, ell, a, batch);
        rows.push_back(row);
        table.add_row({row.workload, row.sketcher,
                       Table::num(static_cast<long>(row.ell)),
                       Table::num(row.runtime_s),
                       Table::num(row.cov_error_rel)});
      }
    }
  }
  bench::emit("sketcher comparison", table);

  if (const std::string& path = flags.get("json-out"); !path.empty()) {
    write_json(path, rows);
    std::cerr << "[baselines] JSON written to " << path << "\n";
  }

  std::cout << "\nexpected shape: fd/arams define the low-error frontier; "
               "projections and sampling run faster at noticeably higher "
               "error; isvd and rangefinder are fast and accurate on these "
               "decaying spectra but carry no worst-case guarantee.\n";
  return 0;
}
