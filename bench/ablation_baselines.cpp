// Ablation — FD vs the sampling / random-projection sketching families.
//
// The paper motivates ARAMS by citing Desai–Ghashami–Phillips: FD has the
// best error but the worst runtime among practical sketchers. This harness
// reproduces that landscape on the synthetic ablation data: for each
// sketcher and sketch size, runtime and relative covariance error.
//
// Expected shape: FD on (or defining) the low-error frontier at every ℓ;
// projections and sampling faster but with ~√ℓ-worse error; ARAMS (PS+FD)
// between them.

#include <iostream>

#include "bench_common.hpp"
#include "core/arams_sketch.hpp"
#include "core/baselines.hpp"
#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("n", "4000", "rows");
  flags.declare("d", "256", "columns");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("ablation_baselines");
    return 0;
  }
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto d = static_cast<std::size_t>(flags.get_int("d"));

  bench::banner("Ablation (FD vs baseline sketchers)", false,
                "runtime and relative covariance error per sketch size");

  data::SyntheticConfig dc;
  dc.n = n;
  dc.d = d;
  dc.spectrum.kind = data::DecayKind::kExponential;
  dc.spectrum.count = std::min(d, std::size_t{128});
  dc.spectrum.rate = 0.06;
  dc.noise = 1e-3;
  Rng rng(41);
  std::cerr << "[baselines] generating " << n << "x" << d << " dataset...\n";
  const linalg::Matrix a = data::make_low_rank(dc, rng);

  Table table({"sketcher", "ell", "runtime_s", "cov_error_rel"});
  const char* kinds[] = {"fd", "isvd", "gaussian-projection",
                         "count-sketch", "norm-sampling"};
  for (const std::size_t ell : {16, 32, 64}) {
    for (const char* kind : kinds) {
      const auto sketcher = core::make_sketcher(kind, ell, 7);
      Stopwatch timer;
      sketcher->append_batch(a);
      const linalg::Matrix b = sketcher->sketch();
      const double seconds = timer.seconds();
      Rng power(8);
      const double err =
          linalg::covariance_error_relative(a, b, power, 40);
      table.add_row({kind, Table::num(static_cast<long>(ell)),
                     Table::num(seconds), Table::num(err)});
    }
    // ARAMS (priority sampling + FD) at the same ℓ, for context.
    core::AramsConfig config;
    config.use_sampling = true;
    config.beta = 0.8;
    config.rank_adaptive = false;
    config.ell = ell;
    core::Arams arams(config);
    Stopwatch timer;
    const core::AramsResult result = arams.sketch_matrix(a);
    const double seconds = timer.seconds();
    Rng power(8);
    const double err =
        linalg::covariance_error_relative(a, result.sketch, power, 40);
    table.add_row({"arams(ps+fd)", Table::num(static_cast<long>(ell)),
                   Table::num(seconds), Table::num(err)});
  }
  bench::emit("sketcher comparison", table);

  std::cout << "\nexpected shape: fd/arams define the low-error frontier; "
               "projections and sampling run faster at noticeably higher "
               "error; isvd is fast and accurate here but carries no "
               "worst-case guarantee.\n";
  return 0;
}
