// Figure 2 — strong scaling: runtime vs number of cores (log-log),
// tree-merge vs serial-merge.
//
// The paper runs vanilla FD (ℓ=200) on a 2000×1,658,880 matrix with
// cubically decaying spectrum over 1–128 MPI ranks. Here the cores are
// *virtual* (DESIGN.md substitution): every core's shard is sketched and
// timed individually and the parallel makespan is reconstructed as
// max(core time) + merge critical path + modeled message costs. The
// critical-path SVD counts (the paper's actual argument) are exact.
//
// Expected shape: tree-merge makespan falls ~linearly on log-log; serial
// merge plateaus by ~16 cores.

#include <iostream>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "parallel/virtual_cores.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("n", "8192", "total rows (paper: 2000)");
  flags.declare("d", "512", "columns (paper: 1658880)");
  flags.declare("ell", "32", "sketch rows (paper: 200)");
  flags.declare("max-cores", "64", "largest core count (paper: 128)");
  flags.declare("lazy", "auto",
                "per-core lazy shard generation: auto | on | off");
  flags.declare("full", "false", "paper-scale parameters");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("fig2_scaling");
    return 0;
  }
  const bool full = flags.get_bool("full");
  const std::size_t n =
      full ? 2000 : static_cast<std::size_t>(flags.get_int("n"));
  const std::size_t d =
      full ? 1658880 : static_cast<std::size_t>(flags.get_int("d"));
  const std::size_t ell =
      full ? 200 : static_cast<std::size_t>(flags.get_int("ell"));
  const std::size_t max_cores =
      full ? 128 : static_cast<std::size_t>(flags.get_int("max-cores"));

  bench::banner("Figure 2 (strong scaling, tree vs serial merge)", full,
                "virtual-core makespan model; SVD counts are exact");

  const double gb =
      static_cast<double>(n) * static_cast<double>(d) * 8.0 / 1e9;
  if (gb > 2.0) {
    std::cerr << "[fig2] note: the full matrix would need " << gb
              << " GB; shards are generated lazily per core, so the\n"
              << "       peak is ~" << gb << "/P GB — small core counts "
              << "may still exceed this host's memory at --full scale.\n";
  }

  // Shards carry a shared low-rank structure plus a per-core perturbation
  // (Section V.1); each shard is generated lazily inside the provider so
  // only one core's rows are resident at a time.
  data::SyntheticConfig dc;
  dc.n = n;
  dc.d = d;
  dc.spectrum.kind = data::DecayKind::kCubic;
  dc.spectrum.count = std::min({n, d, std::size_t{256}});
  Rng rng(2);
  const std::string lazy_flag = flags.get("lazy");
  const bool lazy =
      lazy_flag == "on" || (lazy_flag == "auto" && gb > 2.0);
  linalg::Matrix a;
  data::SharedFactors factors;
  if (lazy) {
    std::cerr << "[fig2] drawing shared factors (lazy shard mode)...\n";
    // Factors for one shard's worth of rows; each core perturbs them.
    data::SyntheticConfig shard_dc = dc;
    shard_dc.n = std::max<std::size_t>(n / max_cores, dc.spectrum.count);
    factors = data::make_shared_factors(shard_dc, rng);
  } else {
    std::cerr << "[fig2] generating " << n << "x" << d
              << " cubic-spectrum matrix...\n";
    a = data::make_low_rank(dc, rng);
  }

  Table table({"cores", "strategy", "makespan_s", "local_phase_s",
               "merge_phase_s", "critical_path_svds", "total_svds",
               "speedup_vs_1core"});

  double baseline = 0.0;
  for (std::size_t cores = 1; cores <= max_cores; cores *= 2) {
    for (const auto strategy :
         {parallel::MergeStrategy::kTree, parallel::MergeStrategy::kSerial}) {
      parallel::ScalingConfig config;
      config.num_cores = cores;
      config.ell = ell;
      config.strategy = strategy;
      const parallel::ScalingResult r = parallel::run_sharded_sketch(
          config, [&](std::size_t core) {
            if (lazy) {
              // Strong scaling: each core owns max_cores/P base blocks so
              // the total row count is identical at every P.
              const std::size_t blocks = max_cores / cores;
              linalg::Matrix shard;
              for (std::size_t b = 0; b < blocks; ++b) {
                shard = linalg::Matrix::vstack(
                    shard, data::make_core_shard(
                               factors, core * blocks + b, 1e-3, Rng(17)));
              }
              return shard;
            }
            const std::size_t r0 = core * n / cores;
            const std::size_t r1 = (core + 1) * n / cores;
            return a.slice_rows(r0, r1);
          });
      if (cores == 1 && strategy == parallel::MergeStrategy::kTree) {
        baseline = r.makespan_seconds;
      }
      table.add_row(
          {Table::num(static_cast<long>(cores)),
           strategy == parallel::MergeStrategy::kTree ? "tree" : "serial",
           Table::num(r.makespan_seconds),
           Table::num(r.local_phase_seconds),
           Table::num(r.merge_phase_seconds),
           Table::num(r.critical_path_svds), Table::num(r.total_svds),
           Table::num(baseline > 0.0 ? baseline / r.makespan_seconds
                                     : 1.0)});
    }
  }
  bench::emit("runtime vs cores (log-log in the paper)", table);

  std::cout << "\nexpected shape: tree speedup grows ~linearly with cores; "
               "serial merge plateaus by ~16 cores (its critical path is "
               "P-1 SVDs vs log2(P) for the tree).\n";
  return 0;
}
