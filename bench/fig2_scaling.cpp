// Figure 2 — strong scaling: runtime vs number of cores (log-log),
// tree-merge vs serial-merge.
//
// The paper runs vanilla FD (ℓ=200) on a 2000×1,658,880 matrix with
// cubically decaying spectrum over 1–128 MPI ranks. This harness is the
// *measured* in-process realization: a core::ShardedSketcher round-robins
// the stream across P concurrent FD shards on the shared pool, and the
// merge phase compares serial_merge / tree_merge (serial execution) /
// parallel_tree_merge (pool-executed) by real wall time, with the modeled
// makespan reported alongside. On a single-core host the ingest columns
// are flat — the bench reports the host/pool size so that is legible —
// while the merge-strategy walls and the exact critical-path structure
// (levels, shrink counts, dispatched groups) remain meaningful anywhere.
//
// Expected shape (≥4 cores): ingest rows/s grows with shards until the
// memory bus saturates; parallel tree-merge wall beats the serial fold at
// P ≥ 4 and tracks the modeled critical path.
//
// --json-out writes BENCH_merge.json (via tools/bench_to_json.sh
// fig2_scaling); tools/check_merge_scaling.sh gates on those fields.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/fd.hpp"
#include "core/merge.hpp"
#include "core/sharded.hpp"
#include "core/sketcher.hpp"
#include "data/synthetic.hpp"
#include "parallel/thread_pool.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace arams;

struct ShardRow {
  std::size_t shards = 0;
  double ingest_seconds = 0.0;       ///< min-over-reps full-stream wall
  double ingest_rows_per_s = 0.0;
  double ingest_speedup = 0.0;       ///< vs the 1-shard row
  double serial_merge_s = 0.0;       ///< serial_merge measured wall
  double tree_merge_s = 0.0;         ///< tree_merge (serial exec) wall
  double parallel_merge_s = 0.0;     ///< parallel_tree_merge measured wall
  double parallel_modeled_s = 0.0;   ///< its modeled critical path
  long merge_levels = 0;
  long merge_ops = 0;
  long parallel_groups = 0;          ///< groups dispatched to the pool
};

/// Ingests the pre-sliced batches through a P-shard FD wrapper on the
/// shared pool; returns the min-over-reps wall of the full stream.
double time_sharded_ingest(const std::vector<linalg::Matrix>& batches,
                           std::size_t shards, std::size_t ell,
                           std::size_t reps) {
  double best = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    core::SketcherConfig inner;
    inner.backend = "fd";
    inner.ell = ell;
    inner.seed = 7;
    core::ShardedSketcher sketcher(inner, shards,
                                   &parallel::shared_pool());
    Stopwatch timer;
    for (const auto& batch : batches) {
      sketcher.push_batch(batch);
    }
    const double wall = timer.seconds();
    best = (rep == 0) ? wall : std::min(best, wall);
  }
  return best;
}

void write_json(const std::string& path, const std::vector<ShardRow>& rows,
                std::size_t n, std::size_t d, std::size_t ell,
                std::size_t batch, std::size_t reps) {
  std::ofstream out(path);
  ARAMS_CHECK(out.good(), "cannot open --json-out file: " + path);
  out << "{\n  \"name\": \"fig2_scaling\",\n"
      << "  \"host_cores\": " << std::thread::hardware_concurrency()
      << ",\n"
      << "  \"pool_threads\": " << parallel::shared_pool().thread_count()
      << ",\n"
      << "  \"n\": " << n << ", \"d\": " << d << ", \"ell\": " << ell
      << ", \"batch\": " << batch << ", \"reps\": " << reps << ",\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& r = rows[i];
    out << "    {\"shards\": " << r.shards
        << ", \"ingest_seconds\": " << r.ingest_seconds
        << ", \"ingest_rows_per_s\": " << r.ingest_rows_per_s
        << ", \"ingest_speedup\": " << r.ingest_speedup
        << ", \"serial_merge_s\": " << r.serial_merge_s
        << ", \"tree_merge_s\": " << r.tree_merge_s
        << ", \"parallel_merge_s\": " << r.parallel_merge_s
        << ", \"parallel_merge_modeled_s\": " << r.parallel_modeled_s
        << ", \"merge_levels\": " << r.merge_levels
        << ", \"merge_ops\": " << r.merge_ops
        << ", \"parallel_groups\": " << r.parallel_groups << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("n", "8192", "total rows streamed (paper: 2000)");
  flags.declare("d", "256", "columns (paper: 1658880)");
  flags.declare("ell", "32", "sketch rows per shard (paper: 200)");
  flags.declare("batch", "256", "rows per push_batch call");
  flags.declare("max-shards", "16", "largest shard count (paper: 128 ranks)");
  flags.declare("reps", "3", "repetitions per config (min wall reported)");
  flags.declare("json-out", "", "also write results as JSON (CI baseline)");
  flags.declare("full", "false", "paper-scale ell and larger matrix");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("fig2_scaling");
    return 0;
  }
  const bool full = flags.get_bool("full");
  // Paper scale means ℓ=200 and a matrix big enough that merges dominate;
  // the 1.6M-column original needs a cluster's worth of memory, so --full
  // scales rows/ell and keeps d at a single-node size.
  const std::size_t n =
      full ? 20000 : static_cast<std::size_t>(flags.get_int("n"));
  const std::size_t d =
      full ? 1024 : static_cast<std::size_t>(flags.get_int("d"));
  const std::size_t ell =
      full ? 200 : static_cast<std::size_t>(flags.get_int("ell"));
  const std::size_t batch =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   flags.get_int("batch")));
  const std::size_t max_shards =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   flags.get_int("max-shards")));
  const std::size_t reps = std::max<std::size_t>(
      1, static_cast<std::size_t>(flags.get_int("reps")));

  bench::banner("Figure 2 (strong scaling, measured sharded ingest + merge)",
                full,
                "real pool-executed shards and tree merges; modeled "
                "critical path reported alongside");
  std::cout << "host cores: " << std::thread::hardware_concurrency()
            << ", shared pool threads: "
            << parallel::shared_pool().thread_count() << "\n";

  std::cerr << "[fig2] generating " << n << "x" << d
            << " cubic-spectrum matrix...\n";
  data::SyntheticConfig dc;
  dc.n = n;
  dc.d = d;
  dc.spectrum.kind = data::DecayKind::kCubic;
  dc.spectrum.count = std::min({n, d, std::size_t{256}});
  Rng rng(2);
  const linalg::Matrix a = data::make_low_rank(dc, rng);

  // Pre-slice the stream once so batch construction never lands inside an
  // ingest timer.
  std::vector<linalg::Matrix> batches;
  for (std::size_t r0 = 0; r0 < n; r0 += batch) {
    batches.push_back(a.slice_rows(r0, std::min(n, r0 + batch)));
  }

  std::vector<ShardRow> rows;
  Table table({"shards", "ingest_rows_per_s", "ingest_speedup",
               "serial_merge_s", "tree_merge_s", "parallel_merge_s",
               "parallel_modeled_s", "parallel_vs_serial"});

  double base_rate = 0.0;
  for (std::size_t p = 1; p <= max_shards; p *= 2) {
    ShardRow row;
    row.shards = p;

    // --- ingest phase: the full stream through a P-shard wrapper ---
    row.ingest_seconds = time_sharded_ingest(batches, p, ell, reps);
    row.ingest_rows_per_s =
        row.ingest_seconds > 0.0
            ? static_cast<double>(n) / row.ingest_seconds
            : 0.0;
    if (p == 1) base_rate = row.ingest_rows_per_s;
    row.ingest_speedup =
        base_rate > 0.0 ? row.ingest_rows_per_s / base_rate : 1.0;

    // --- merge phase: P shard sketches, three reduction strategies ---
    if (p > 1) {
      std::vector<linalg::Matrix> shard_sketches(p);
      for (std::size_t c = 0; c < p; ++c) {
        core::FrequentDirections fd(core::FdConfig{ell, /*fast=*/true});
        fd.append_batch(a.slice_rows(c * n / p, (c + 1) * n / p));
        fd.compress();
        shard_sketches[c] = fd.sketch();
      }
      core::MergeStats par_stats;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        core::MergeStats serial_stats;
        core::MergeStats tree_stats;
        core::MergeStats rep_par_stats;
        auto copy = shard_sketches;
        core::serial_merge(std::move(copy), ell, &serial_stats);
        copy = shard_sketches;
        core::tree_merge(std::move(copy), ell, 2, &tree_stats);
        copy = shard_sketches;
        core::parallel_tree_merge(std::move(copy), ell, 2, &rep_par_stats,
                                  &parallel::shared_pool());
        const auto keep_min = [rep](double& slot, double wall) {
          slot = (rep == 0) ? wall : std::min(slot, wall);
        };
        keep_min(row.serial_merge_s,
                 serial_stats.critical_path_seconds_measured);
        keep_min(row.tree_merge_s,
                 tree_stats.critical_path_seconds_measured);
        keep_min(row.parallel_merge_s,
                 rep_par_stats.critical_path_seconds_measured);
        keep_min(row.parallel_modeled_s,
                 rep_par_stats.critical_path_seconds_modeled);
        par_stats = rep_par_stats;
      }
      row.merge_levels = par_stats.levels;
      row.merge_ops = par_stats.merge_ops;
      row.parallel_groups = par_stats.parallel_groups;
    }

    rows.push_back(row);
    table.add_row(
        {Table::num(static_cast<long>(p)),
         Table::num(row.ingest_rows_per_s), Table::num(row.ingest_speedup),
         Table::num(row.serial_merge_s), Table::num(row.tree_merge_s),
         Table::num(row.parallel_merge_s),
         Table::num(row.parallel_modeled_s),
         Table::num(row.parallel_merge_s > 0.0
                        ? row.serial_merge_s / row.parallel_merge_s
                        : 1.0)});
  }
  bench::emit("measured sharded ingest + merge strategies", table);

  std::cout << "\nexpected shape (>=4 cores): ingest rows/s grows with "
               "shards; parallel tree-merge wall beats the P-1-step serial "
               "fold at P >= 4. On a single-core host the ingest column is "
               "flat and only the merge structure (levels, shrinks, "
               "dispatched groups) carries the Fig. 2 argument.\n";

  const std::string json_out = flags.get("json-out");
  if (!json_out.empty()) {
    write_json(json_out, rows, n, d, ell, batch, reps);
    std::cerr << "[fig2] wrote " << json_out << "\n";
  }
  return 0;
}
