// Figure 5 — latent-space embedding of beam-profile data.
//
// The paper shows the 2-D UMAP embedding of LCLS run xppc00121 beam
// profiles organizing by center-of-mass along one axis and circularity/
// lobe-structure along the other, with exotic profiles separating readily.
// The data is private; the synthetic generator exposes exactly those
// ground-truth factors, so this harness *quantifies* the claims in the
// space where each lives:
//
//  * pointing mode (no CoM centering): the raw pointing jitter dominates —
//    report |corr(embedding axis, CoM offset)|.
//  * shape mode (paper preprocessing: threshold + center + normalize):
//    shape factors dominate — elongation at a random angle maps to
//    *distance from the embedding center* along an axis, so report
//    |corr(|axis deviation|, ellipticity)| and |corr(|axis dev|, lobes)|.
//  * exotic (donut) profiles cluster together rather than scattering, so
//    their separation is measured as the mean silhouette of exotic points
//    under the binary exotic/normal partition.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "cluster/metrics.hpp"
#include "data/beam_profile.hpp"
#include "embed/metrics.hpp"
#include "stream/pipeline.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace arams;

/// max over embedding axes of |corr(axis value, factor)|.
double best_axis_corr(const linalg::Matrix& embedding,
                      const std::vector<double>& factor) {
  double best = 0.0;
  for (std::size_t axis = 0; axis < embedding.cols(); ++axis) {
    best = std::max(best, std::abs(embed::axis_factor_correlation(
                              embedding, axis, factor)));
  }
  return best;
}

/// max over axes of |corr(|axis − mean|, factor)| — for factors that map
/// to distance-from-center (elongation at random orientation).
double best_absdev_corr(const linalg::Matrix& embedding,
                        const std::vector<double>& factor) {
  const std::size_t n = embedding.rows();
  double best = 0.0;
  for (std::size_t axis = 0; axis < embedding.cols(); ++axis) {
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) mean += embedding(i, axis);
    mean /= static_cast<double>(n);
    linalg::Matrix dev(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
      dev(i, 0) = std::abs(embedding(i, axis) - mean);
    }
    best = std::max(
        best, std::abs(embed::axis_factor_correlation(dev, 0, factor)));
  }
  return best;
}

/// Mean silhouette of the exotic points under the exotic/normal split.
double exotic_separation(const linalg::Matrix& embedding,
                         const std::vector<data::BeamProfileSample>& samples) {
  std::vector<int> labels(samples.size());
  bool any = false;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    labels[i] = samples[i].truth.exotic ? 1 : 0;
    any |= samples[i].truth.exotic;
  }
  if (!any) return 0.0;
  // silhouette() averages over all points; recompute restricted to the
  // exotic class by zeroing the normal class's contribution: easier to
  // just compute by hand here.
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (labels[i] != 1) continue;
    double a = 0.0, b = 0.0;
    std::size_t na = 0, nb = 0;
    for (std::size_t j = 0; j < samples.size(); ++j) {
      if (j == i) continue;
      const double d = std::hypot(embedding(i, 0) - embedding(j, 0),
                                  embedding(i, 1) - embedding(j, 1));
      if (labels[j] == 1) {
        a += d;
        ++na;
      } else {
        b += d;
        ++nb;
      }
    }
    if (na == 0 || nb == 0) continue;
    a /= static_cast<double>(na);
    b /= static_cast<double>(nb);
    total += (b - a) / std::max(a, b);
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("frames", "500", "beam-profile frames (paper: full run)");
  flags.declare("size", "32", "frame height/width");
  flags.declare("cores", "4", "virtual sketching cores");
  flags.declare("full", "false", "larger run (2000 frames, 64x64)");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("fig5_beam_embedding");
    return 0;
  }
  const bool full = flags.get_bool("full");
  const std::size_t frames =
      full ? 2000 : static_cast<std::size_t>(flags.get_int("frames"));
  const std::size_t size =
      full ? 64 : static_cast<std::size_t>(flags.get_int("size"));

  bench::banner("Figure 5 (beam-profile latent embedding)", full,
                "unsupervised organization by CoM / shape factors");

  data::BeamProfileConfig beam;
  beam.height = size;
  beam.width = size;
  beam.exotic_prob = 0.02;
  Rng rng(5);
  std::cerr << "[fig5] generating " << frames << " beam profiles...\n";
  const auto samples = data::generate_beam_profiles(beam, frames, rng);
  std::vector<image::ImageF> images;
  images.reserve(frames);
  for (const auto& s : samples) images.push_back(s.frame);

  std::vector<double> com_x(frames), com_y(frames), ellipticity(frames),
      lobes(frames);
  for (std::size_t i = 0; i < frames; ++i) {
    com_x[i] = samples[i].truth.com_x;
    com_y[i] = samples[i].truth.com_y;
    ellipticity[i] = samples[i].truth.ellipticity;
    lobes[i] = samples[i].truth.lobes;
  }

  stream::PipelineConfig config;
  config.sketch.ell = 24;
  config.sketch.epsilon = 0.05;
  config.num_cores = static_cast<std::size_t>(flags.get_int("cores"));
  config.pca_components = 12;
  config.umap.n_neighbors = 15;
  config.umap.n_epochs = 200;

  Table table({"mode", "metric", "value"});
  Stopwatch timer;

  // --- pointing mode: raw frames, CoM dominates ---
  {
    config.preprocess.center = false;
    const stream::MonitoringPipeline pipeline(config);
    const stream::PipelineResult result = pipeline.analyze(images);
    table.add_row({"pointing", "corr(axis, CoM x)",
                   Table::num(best_axis_corr(result.embedding, com_x))});
    table.add_row({"pointing", "corr(axis, CoM y)",
                   Table::num(best_axis_corr(result.embedding, com_y))});
    table.add_row(
        {"pointing", "trustworthiness",
         Table::num(embed::trustworthiness(result.latent, result.embedding,
                                           12))});
  }

  // --- shape mode: paper preprocessing (threshold+center+normalize) ---
  {
    config.preprocess.center = true;
    const stream::MonitoringPipeline pipeline(config);
    const stream::PipelineResult result = pipeline.analyze(images);
    table.add_row(
        {"shape", "corr(|axis dev|, ellipticity)",
         Table::num(best_absdev_corr(result.embedding, ellipticity))});
    table.add_row({"shape", "corr(|axis dev|, lobes)",
                   Table::num(best_absdev_corr(result.embedding, lobes))});
    table.add_row({"shape", "exotic separation (silhouette)",
                   Table::num(exotic_separation(result.embedding, samples))});
    table.add_row(
        {"shape", "trustworthiness",
         Table::num(embed::trustworthiness(result.latent, result.embedding,
                                           12))});
    table.add_row({"shape", "final sketch rank",
                   Table::num(static_cast<long>(result.final_ell))});
  }
  table.add_row({"both", "total seconds", Table::num(timer.seconds())});
  bench::emit("embedding organization vs ground-truth factors", table);

  std::cout << "\nexpected shape: pointing mode puts CoM on the axes "
               "(|corr| > 0.5); shape mode organizes by ellipticity and "
               "lobe count (|corr| > 0.3 each) and exotic profiles "
               "separate (positive silhouette).\n";
  return 0;
}
