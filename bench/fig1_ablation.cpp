// Figure 1 — ablation study on synthetic data.
//
// Panel 1: singular-value spectra of the three synthetic datasets
// (sub-exponential / exponential / super-exponential decay).
// Panels 2–4: reconstruction error vs runtime for the four FD variants
// ({user-specified rank, user-specified error} × {with, without priority
// sampling}), sweeping the rank (non-RA) or the error tolerance (RA).
//
// Expected shape (paper): PS variants dominate the error/time frontier;
// RA tracks fixed-rank closely; the RA gap is largest for the slowest
// (sub-exponential) decay.
//
// Default: 2000×250 dataset (seconds). --full: the paper's 15000×1000
// (hours on one core of this container).

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/arams_sketch.hpp"
#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace arams;

struct VariantResult {
  double seconds = 0.0;
  double recon_error = 0.0;  ///< relative: ‖A − A·VᵀV‖²_F / ‖A‖²_F
  std::size_t final_ell = 0;
};

/// Relative reconstruction error of data `a` against the sketch's top
/// subspace (all sketch rows).
double reconstruction_error(const linalg::Matrix& a, core::Arams& sketcher) {
  const linalg::Matrix basis = sketcher.basis(sketcher.current_ell());
  if (basis.rows() == 0) return 1.0;
  return linalg::projection_residual_exact(a, basis) /
         linalg::frobenius_norm_squared(a);
}

VariantResult run_variant(const linalg::Matrix& a, bool sampling,
                          bool adaptive, std::size_t ell, double epsilon) {
  core::AramsConfig config;
  config.use_sampling = sampling;
  config.beta = 0.8;
  config.rank_adaptive = adaptive;
  config.ell = adaptive ? std::max<std::size_t>(8, ell / 4) : ell;
  config.epsilon = epsilon;
  config.nu = 10;
  config.max_ell = a.rows() / 2;
  core::Arams sketcher(config);

  VariantResult out;
  Stopwatch timer;
  const core::AramsResult result = sketcher.sketch_matrix(a);
  out.seconds = timer.seconds();
  out.final_ell = result.final_ell;
  out.recon_error = reconstruction_error(a, sketcher);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("n", "2000", "rows (paper: 15000)");
  flags.declare("d", "250", "columns (paper: 1000)");
  flags.declare("rank", "120", "data spectrum length");
  flags.declare("full", "false", "paper-scale parameters");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("fig1_ablation");
    return 0;
  }
  const bool full = flags.get_bool("full");
  const std::size_t n =
      full ? 15000 : static_cast<std::size_t>(flags.get_int("n"));
  const std::size_t d =
      full ? 1000 : static_cast<std::size_t>(flags.get_int("d"));
  const std::size_t rank =
      full ? 500 : static_cast<std::size_t>(flags.get_int("rank"));

  bench::banner("Figure 1 (ablation: RA x PS on three spectra)", full,
                "reconstruction error vs runtime for 4 FD variants");

  const data::DecayKind kinds[] = {data::DecayKind::kSubExponential,
                                   data::DecayKind::kExponential,
                                   data::DecayKind::kSuperExponential};

  // --- Panel 1: the spectra themselves ---
  {
    Table spec({"index", "sub-exponential", "exponential",
                "super-exponential"});
    std::vector<std::vector<double>> all;
    for (const auto kind : kinds) {
      data::SpectrumConfig sc;
      sc.kind = kind;
      sc.count = rank;
      sc.rate = 0.05;
      all.push_back(data::make_spectrum(sc));
    }
    for (std::size_t i = 0; i < rank; i += std::max<std::size_t>(rank / 16, 1)) {
      spec.add_row({Table::num(static_cast<long>(i)), Table::num(all[0][i]),
                    Table::num(all[1][i]), Table::num(all[2][i])});
    }
    bench::emit("panel 1: singular-value spectra", spec);
  }

  // --- Panels 2–4: error/time sweep per dataset ---
  const std::size_t ell_sweep[] = {10, 20, 40, 60, 90, 130};
  const double eps_sweep[] = {0.30, 0.15, 0.08, 0.04, 0.02, 0.01};

  for (const auto kind : kinds) {
    data::SyntheticConfig dc;
    dc.n = n;
    dc.d = d;
    dc.spectrum.kind = kind;
    dc.spectrum.count = rank;
    dc.spectrum.rate = 0.05;
    Rng rng(static_cast<std::uint64_t>(kind) + 100);
    std::cerr << "[fig1] generating " << data::decay_name(kind)
              << " dataset (" << n << "x" << d << ", rank " << rank
              << ")...\n";
    const linalg::Matrix a = data::make_low_rank(dc, rng);

    Table panel({"variant", "sweep_param", "final_ell", "runtime_s",
                 "recon_error_rel"});
    for (std::size_t i = 0; i < std::size(ell_sweep); ++i) {
      for (const bool sampling : {false, true}) {
        // User-specified rank (non-adaptive).
        const VariantResult fixed =
            run_variant(a, sampling, false, ell_sweep[i], 0.0);
        panel.add_row({sampling ? "fixed-rank+PS" : "fixed-rank",
                       Table::num(static_cast<long>(ell_sweep[i])),
                       Table::num(static_cast<long>(fixed.final_ell)),
                       Table::num(fixed.seconds),
                       Table::num(fixed.recon_error)});
        // User-specified error (rank-adaptive).
        const VariantResult ra =
            run_variant(a, sampling, true, ell_sweep[i], eps_sweep[i]);
        panel.add_row({sampling ? "rank-adaptive+PS" : "rank-adaptive",
                       Table::num(eps_sweep[i]),
                       Table::num(static_cast<long>(ra.final_ell)),
                       Table::num(ra.seconds), Table::num(ra.recon_error)});
      }
    }
    bench::emit("panel: " + data::decay_name(kind) +
                    " — error vs runtime (4 variants)",
                panel);
  }

  std::cout << "\nexpected shape: PS rows dominate the error/time frontier; "
               "rank-adaptive tracks fixed-rank closely, with the largest "
               "gap on the sub-exponential dataset.\n";
  return 0;
}
