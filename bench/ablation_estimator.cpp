// Ablation — the Algorithm-1 randomized reconstruction-error estimator.
//
// Section IV-A2 reports "a decrease in error at roughly 10% for every 10
// multiplications" and names stochastic trace estimation and variance-
// reduced estimators as future-work upgrades. This harness sweeps the
// probe count ν for all three strategies (Gaussian probes = the paper,
// Hutchinson, Hutch++) and reports the mean relative deviation of the
// estimate from the exact residual over many repetitions.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "linalg/qr.hpp"
#include "linalg/trace_est.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("n", "200", "batch rows");
  flags.declare("d", "400", "feature dimension");
  flags.declare("k", "12", "retained subspace dimension");
  flags.declare("reps", "40", "repetitions per probe count");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("ablation_estimator");
    return 0;
  }
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto d = static_cast<std::size_t>(flags.get_int("d"));
  const auto k = static_cast<std::size_t>(flags.get_int("k"));
  const int reps = static_cast<int>(flags.get_int("reps"));

  bench::banner("Ablation (Algorithm 1 estimator accuracy vs nu)", false,
                "mean |estimate/exact - 1| over repetitions");

  // Data with genuine residual outside a k-dim subspace.
  Rng rng(31);
  linalg::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    rng.fill_normal(x.row(i));
  }
  linalg::Matrix b(d, k);
  for (std::size_t i = 0; i < d; ++i) {
    rng.fill_normal(b.row(i));
  }
  linalg::orthonormalize_columns(b);
  const linalg::Matrix basis = b.transposed();
  const double exact = linalg::projection_residual_exact(x, basis);

  Table table({"nu", "estimator", "mean_rel_error", "max_rel_error",
               "theory_1_over_sqrt_nu"});
  const linalg::ResidualEstimator strategies[] = {
      linalg::ResidualEstimator::kGaussianProbes,
      linalg::ResidualEstimator::kHutchinson,
      linalg::ResidualEstimator::kHutchPlusPlus};
  for (const int nu : {1, 2, 5, 10, 20, 40, 80}) {
    for (const auto strategy : strategies) {
      double mean = 0.0, worst = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        Rng probe(static_cast<std::uint64_t>(rep) * 97 + 13);
        const double est =
            linalg::estimate_residual(x, basis, strategy, nu, probe);
        const double rel = std::abs(est / exact - 1.0);
        mean += rel;
        worst = std::max(worst, rel);
      }
      mean /= reps;
      table.add_row({Table::num(static_cast<long>(nu)),
                     linalg::residual_estimator_name(strategy),
                     Table::num(mean), Table::num(worst),
                     Table::num(1.0 / std::sqrt(static_cast<double>(nu)))});
    }
  }
  bench::emit("estimator accuracy vs probe count", table);

  std::cout << "\nexpected shape: error falls like ~1/sqrt(nu) for the "
               "Gaussian and Hutchinson estimators (Hutchinson with lower "
               "constants); Hutch++ pulls ahead once nu is large enough "
               "to deflate the residual operator's top range.\n";
  return 0;
}
