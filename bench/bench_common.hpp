#pragma once
// Shared helpers for the figure-reproduction harnesses.

#include <iostream>
#include <string>

#include "util/cli.hpp"
#include "util/csv.hpp"

namespace arams::bench {

/// Prints the standard harness banner: which figure, which scale.
inline void banner(const std::string& figure, bool full,
                   const std::string& note) {
  std::cout << "==========================================================\n"
            << "ARAMS reproduction — " << figure << "\n"
            << "scale: " << (full ? "paper (--full)" : "scaled default")
            << "\n"
            << note << "\n"
            << "==========================================================\n";
}

/// Emits a table under a section header.
inline void emit(const std::string& title, const Table& table) {
  std::cout << "\n--- " << title << " ---\n";
  table.write_pretty(std::cout);
  std::cout << "[csv]\n";
  table.write_csv(std::cout);
}

}  // namespace arams::bench
