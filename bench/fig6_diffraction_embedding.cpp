// Figure 6 — latent-space embedding of diffraction data.
//
// The paper shows diffraction frames separating into clear clusters that
// differ by quadrant weights of the ring (run xpplx9221, private). The
// synthetic generator draws frames from K latent quadrant-weight classes,
// so cluster recovery is quantified with ARI and purity.

#include <iostream>

#include "bench_common.hpp"
#include "cluster/metrics.hpp"
#include "embed/metrics.hpp"
#include "stream/pipeline.hpp"
#include "stream/source.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("frames", "400", "diffraction frames");
  flags.declare("classes", "4", "latent quadrant-weight classes");
  flags.declare("size", "40", "frame height/width");
  flags.declare("full", "false", "larger run (1200 frames, 64x64)");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("fig6_diffraction_embedding");
    return 0;
  }
  const bool full = flags.get_bool("full");
  const std::size_t frames =
      full ? 1200 : static_cast<std::size_t>(flags.get_int("frames"));
  const std::size_t size =
      full ? 64 : static_cast<std::size_t>(flags.get_int("size"));

  bench::banner("Figure 6 (diffraction latent embedding)", full,
                "unsupervised clusters vs latent quadrant-weight classes");

  data::DiffractionConfig diff;
  diff.height = size;
  diff.width = size;
  diff.num_classes = static_cast<std::size_t>(flags.get_int("classes"));
  diff.photons_per_frame = 5e4;
  std::cerr << "[fig6] generating " << frames << " diffraction frames ("
            << diff.num_classes << " classes)...\n";
  stream::DiffractionSource source(diff, frames, 120.0, 6);
  const auto events = stream::drain(source, frames);
  std::vector<int> truth;
  truth.reserve(frames);
  for (const auto& e : events) truth.push_back(e.truth_label);

  stream::PipelineConfig config;
  config.sketch.ell = 24;
  config.num_cores = 4;
  config.pca_components = 10;
  config.umap.n_neighbors = 15;
  config.umap.n_epochs = 200;
  config.preprocess.center = false;
  const stream::MonitoringPipeline pipeline(config);

  Stopwatch timer;
  const stream::PipelineResult result = pipeline.analyze_events(events);
  const double total_s = timer.seconds();

  Table table({"metric", "value"});
  table.add_row({"clusters found",
                 Table::num(static_cast<long>(
                     cluster::cluster_count(result.labels)))});
  table.add_row({"latent classes",
                 Table::num(static_cast<long>(diff.num_classes))});
  table.add_row({"adjusted Rand index",
                 Table::num(cluster::adjusted_rand_index(result.labels,
                                                         truth))});
  table.add_row({"purity", Table::num(cluster::purity(result.labels,
                                                      truth))});
  table.add_row({"silhouette (embedding)",
                 Table::num(cluster::silhouette(result.embedding,
                                                result.labels))});
  table.add_row(
      {"trustworthiness",
       Table::num(embed::trustworthiness(result.latent, result.embedding,
                                         12))});
  table.add_row({"pipeline seconds", Table::num(total_s)});
  bench::emit("cluster recovery vs latent classes", table);

  std::cout << "\nexpected shape: clear clusters (silhouette well above 0) "
               "that align with the latent classes (ARI >> 0, ideally "
               ">0.5) without any supervision.\n";
  return 0;
}
