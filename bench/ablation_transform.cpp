// Ablation — incremental (out-of-sample) UMAP placement vs full re-embed.
//
// The streaming monitor refreshes its operator view between full snapshots
// by placing only the new shots against a frozen reference embedding. This
// harness measures what that buys: wall time per refresh and placement
// quality (do transformed points land in the same cluster neighbourhood a
// full re-embed would put them in?).

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "cluster/kmeans.hpp"
#include "cluster/metrics.hpp"
#include "data/diffraction.hpp"
#include "embed/umap.hpp"
#include "image/image.hpp"
#include "image/preprocess.hpp"
#include "stream/source.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("reference", "400", "reference points");
  flags.declare("fresh", "100", "new points to place");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("ablation_transform");
    return 0;
  }
  const auto n_ref = static_cast<std::size_t>(flags.get_int("reference"));
  const auto n_new = static_cast<std::size_t>(flags.get_int("fresh"));

  bench::banner("Ablation (incremental UMAP transform vs full re-embed)",
                false, "refresh latency and placement agreement");

  // Latent-like points from the diffraction workload (3 classes).
  data::DiffractionConfig diff;
  diff.height = 28;
  diff.width = 28;
  diff.num_classes = 3;
  diff.photons_per_frame = 4e4;
  stream::DiffractionSource source(diff, n_ref + n_new, 120.0, 51);
  const auto events = stream::drain(source, n_ref + n_new);
  std::vector<int> truth;
  std::vector<image::ImageF> frames;
  for (const auto& e : events) {
    truth.push_back(e.truth_label);
    frames.push_back(e.frame);
  }
  image::PreprocessConfig pre;
  pre.center = false;
  const linalg::Matrix rows =
      image::images_to_matrix(image::preprocess_batch(frames, pre));
  // Cheap latent: the first 10 PCA coordinates via a random projection is
  // overkill here — use the raw rows' top directions through UMAP's own
  // kNN, i.e. feed raw rows (28² dims are fine at these point counts).
  const linalg::Matrix reference = rows.slice_rows(0, n_ref);
  const linalg::Matrix fresh = rows.slice_rows(n_ref, n_ref + n_new);

  embed::UmapConfig config;
  config.n_neighbors = 15;
  config.n_epochs = 200;

  Stopwatch timer;
  const linalg::Matrix ref_embedding = embed::umap_embed(reference, config);
  const double embed_ref_s = timer.lap();

  // Incremental: place the fresh points against the frozen reference.
  const linalg::Matrix placed =
      embed::umap_transform(reference, ref_embedding, fresh, config);
  const double transform_s = timer.lap();

  // Full re-embed of everything (what the incremental path avoids).
  const linalg::Matrix full_embedding = embed::umap_embed(rows, config);
  const double full_s = timer.lap();

  // Quality: classify the fresh points by the majority truth label of
  // their nearest reference neighbours in each embedding; agreement with
  // their real label measures placement fidelity.
  const auto knn_label = [&](const linalg::Matrix& emb_ref,
                             const linalg::Matrix& emb_new,
                             std::size_t offset) {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < n_new; ++i) {
      double best = 1e300;
      int vote = -1;
      for (std::size_t j = 0; j < n_ref; ++j) {
        const double d =
            std::hypot(emb_new(i, 0) - emb_ref(j, 0),
                       emb_new(i, 1) - emb_ref(j, 1));
        if (d < best) {
          best = d;
          vote = truth[j];
        }
      }
      if (vote == truth[offset + i]) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(n_new);
  };
  const double acc_incremental = knn_label(ref_embedding, placed, n_ref);
  const linalg::Matrix full_ref = full_embedding.slice_rows(0, n_ref);
  const linalg::Matrix full_new =
      full_embedding.slice_rows(n_ref, n_ref + n_new);
  const double acc_full = knn_label(full_ref, full_new, n_ref);

  Table table({"metric", "value"});
  table.add_row({"reference embed seconds", Table::num(embed_ref_s)});
  table.add_row({"incremental transform seconds", Table::num(transform_s)});
  table.add_row({"full re-embed seconds", Table::num(full_s)});
  table.add_row({"speedup (refresh vs re-embed)",
                 Table::num(full_s / std::max(transform_s, 1e-12))});
  table.add_row({"1-NN class agreement (incremental)",
                 Table::num(acc_incremental)});
  table.add_row({"1-NN class agreement (full)", Table::num(acc_full)});
  bench::emit("incremental placement vs full re-embed", table);

  std::cout << "\nexpected shape: the transform refresh runs an order of "
               "magnitude faster than a full re-embed while placing new "
               "shots into the right neighbourhoods nearly as often.\n";
  return 0;
}
