// Telemetry hot-path overhead (google-benchmark): the cost a *recording*
// call site pays while nobody is reading. The windowed metrics are in the
// streaming ingest path (per frame at 136 Hz × many pixels of work each),
// so record() must stay within a few nanoseconds of a bare counter add —
// an idle-path regression here taxes every frame of every run.

#include <benchmark/benchmark.h>

#include "obs/flight_recorder.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"

namespace {

using namespace arams;

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& counter = obs::metrics().counter("bench.obs.counter");
  for (auto _ : state) {
    counter.add(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd)->ThreadRange(1, 4);

void BM_GaugeSet(benchmark::State& state) {
  obs::Gauge& gauge = obs::metrics().gauge("bench.obs.gauge");
  double v = 0.0;
  for (auto _ : state) {
    gauge.set(v += 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram& histogram =
      obs::metrics().histogram("bench.obs.histogram");
  for (auto _ : state) {
    histogram.observe(1e-3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve)->ThreadRange(1, 4);

void BM_EwmaRecord(benchmark::State& state) {
  obs::EwmaRate& rate = obs::metrics().ewma("bench.obs.ewma");
  for (auto _ : state) {
    rate.record(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EwmaRecord)->ThreadRange(1, 4);

void BM_SlidingHistogramRecord(benchmark::State& state) {
  // A long window: the benchmark measures the pure record() path, with no
  // reader-driven rotation racing it (as in a healthy idle system).
  obs::SlidingHistogram& sliding =
      obs::metrics().sliding_histogram("bench.obs.sliding",
                                       /*window_seconds=*/3600.0);
  for (auto _ : state) {
    sliding.record(1e-3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingHistogramRecord)->ThreadRange(1, 4);

void BM_SlidingHistogramStats(benchmark::State& state) {
  // Reader cost: merge all epochs + three interpolated quantiles. This is
  // the exporter's per-scrape price, not a hot-path one.
  obs::SlidingHistogram& sliding =
      obs::metrics().sliding_histogram("bench.obs.sliding_read",
                                       /*window_seconds=*/3600.0);
  for (int i = 0; i < 10000; ++i) sliding.record(1e-3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sliding.stats(1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingHistogramStats);

void BM_FlightRecord(benchmark::State& state) {
  // The black-box journal on the ingest path: budget is <= 50 ns per
  // record() (docs/TELEMETRY.md). Threads write disjoint rings, so the
  // multi-threaded lanes must scale near-flat.
  obs::FlightRecorder& recorder = obs::flight_recorder();
  recorder.enable(true);
  std::uint64_t shot = 0;
  for (auto _ : state) {
    recorder.record(obs::FlightCode::kCustom, ++shot, 0, 1e-3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecord)->ThreadRange(1, 4);

void BM_FlightRecordDisabled(benchmark::State& state) {
  // The disabled path is one relaxed load — what every non-monitor run
  // pays at each instrumented call site.
  obs::FlightRecorder& recorder = obs::flight_recorder();
  recorder.enable(false);
  for (auto _ : state) {
    recorder.record(obs::FlightCode::kCustom, 1, 0, 0.0);
  }
  recorder.enable(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecordDisabled);

void BM_ScopedSpanStack(benchmark::State& state) {
  // ScopedSpan with recording off: the interned-name lookup plus the two
  // span-stack stores the sampling profiler depends on.
  for (auto _ : state) {
    const obs::ScopedSpan span("bench.obs.span");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedSpanStack)->ThreadRange(1, 4);

void BM_ProfilerSampleOnce(benchmark::State& state) {
  // The sampler thread's per-sweep cost (walk every registered stack and
  // fold the chains). Runs off the hot path, at interval_ms cadence.
  obs::SamplingProfiler profiler;
  const obs::ScopedSpan outer("bench.obs.prof_outer");
  const obs::ScopedSpan inner("bench.obs.prof_inner");
  for (auto _ : state) {
    profiler.sample_once();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilerSampleOnce);

void BM_HealthObserve(benchmark::State& state) {
  // Per-batch, not per-frame — but it should still be microseconds.
  obs::HealthMonitor monitor({}, nullptr);
  obs::HealthSample sample;
  sample.sketch_error = 0.01;
  sample.orthogonality = 1e-12;
  long frames = 0;
  for (auto _ : state) {
    sample.frames_seen = ++frames;
    benchmark::DoNotOptimize(monitor.observe(sample));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HealthObserve);

}  // namespace

BENCHMARK_MAIN();
