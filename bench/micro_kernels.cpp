// Micro-kernel benchmarks (google-benchmark): the primitives that dominate
// the sketching pipeline — GEMM, row Gram, Gram-trick SVD vs Jacobi SVD,
// FD append throughput, priority-sampler push throughput.

#include <benchmark/benchmark.h>

#include "core/fd.hpp"
#include "core/priority_sampler.hpp"
#include "linalg/blas.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/svd.hpp"
#include "linalg/workspace.hpp"
#include "rng/rng.hpp"

namespace {

using namespace arams;
using linalg::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  for (std::size_t i = 0; i < r; ++i) {
    rng.fill_normal(m.row(i));
  }
  return m;
}

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 1);
  const Matrix b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmTn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 11);
  const Matrix b = random_matrix(n, n, 12);
  Matrix out;
  for (auto _ : state) {
    linalg::matmul_tn(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_GemmTn)->Arg(64)->Arg(128)->Arg(256);

void BM_GramRows(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(m, 2048, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::gram_rows(a));
  }
}
BENCHMARK(BM_GramRows)->Arg(16)->Arg(64)->Arg(128);

void BM_GramRowSvd(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(m, 2048, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::gram_row_svd(a));
  }
}
BENCHMARK(BM_GramRowSvd)->Arg(16)->Arg(64)->Arg(128);

// Same decomposition through a caller-owned Workspace: after the first
// iteration every scratch buffer is recycled, so this isolates the pure
// compute cost the FD shrink loop pays at steady state.
void BM_GramRowSvdWorkspace(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(m, 2048, 4);
  linalg::Workspace ws;
  linalg::RowSpaceSvd out;
  for (auto _ : state) {
    linalg::gram_row_svd(a, ws, out);
    benchmark::DoNotOptimize(out.w.data());
  }
}
BENCHMARK(BM_GramRowSvdWorkspace)->Arg(16)->Arg(64)->Arg(128);

void BM_JacobiSvdReference(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  // Same shape as the Gram-trick case: shows why the production kernel
  // avoids the O(m·d²) path.
  const Matrix a = random_matrix(m, 512, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::jacobi_svd(a));
  }
}
BENCHMARK(BM_JacobiSvdReference)->Arg(16)->Arg(32);

void BM_JacobiEig(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = linalg::gram_rows(random_matrix(n, 2 * n, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::jacobi_eigen_symmetric(a));
  }
}
BENCHMARK(BM_JacobiEig)->Arg(32)->Arg(64)->Arg(128);

// Head-to-head symmetric eigensolver comparison on the Gram matrices the
// FD shrink produces. Both run through the eigen_symmetric dispatch with
// a caller-owned workspace (steady-state, allocation-free), values +
// full eigenvectors — the shrink's actual request shape.
void eig_sym_method(benchmark::State& state, linalg::EigMethod method) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = linalg::gram_rows(random_matrix(n, 2 * n, 6));
  linalg::Workspace ws;
  linalg::SymmetricEig out;
  linalg::EigenConfig cfg;
  cfg.method = method;
  for (auto _ : state) {
    linalg::eigen_symmetric(linalg::MatrixView(a), ws, out, cfg);
    benchmark::DoNotOptimize(out.vectors.data());
  }
}

void BM_EigSymJacobi(benchmark::State& state) {
  eig_sym_method(state, linalg::EigMethod::kJacobi);
}
BENCHMARK(BM_EigSymJacobi)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_EigSymTridiag(benchmark::State& state) {
  eig_sym_method(state, linalg::EigMethod::kTridiag);
}
BENCHMARK(BM_EigSymTridiag)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// Eigenvalues only: the tridiagonal path drops the O(n³) rotation
// accumulation entirely (dsterf-style O(n²) iteration).
void BM_EigSymTridiagValuesOnly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = linalg::gram_rows(random_matrix(n, 2 * n, 6));
  linalg::Workspace ws;
  linalg::SymmetricEig out;
  linalg::EigenConfig cfg;
  cfg.method = linalg::EigMethod::kTridiag;
  cfg.vectors = false;
  for (auto _ : state) {
    linalg::eigen_symmetric(linalg::MatrixView(a), ws, out, cfg);
    benchmark::DoNotOptimize(out.values.data());
  }
}
BENCHMARK(BM_EigSymTridiagValuesOnly)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// End-to-end FD shrink under each eigensolver: fill the 2ℓ buffer, then
// time exactly one shrink per iteration (ℓ fresh rows re-fill the buffer
// each pass). ℓ=64 on 1024-dim rows is the paper's operating regime.
void fd_shrink_method(benchmark::State& state, const char* method) {
  ::setenv("ARAMS_EIG_METHOD", method, /*overwrite=*/1);
  constexpr std::size_t kEll = 64;
  constexpr std::size_t kDim = 1024;
  const Matrix block = random_matrix(kEll, kDim, 42);
  core::FrequentDirections fd(core::FdConfig{kEll, true});
  fd.append_batch(random_matrix(2 * kEll - 1, kDim, 43));  // buffer ~full
  for (auto _ : state) {
    fd.append_batch(block);  // crosses 2ℓ: exactly one shrink
    benchmark::DoNotOptimize(fd.occupied_rows());
  }
  ::unsetenv("ARAMS_EIG_METHOD");
}

void BM_FdShrinkJacobi(benchmark::State& state) {
  fd_shrink_method(state, "jacobi");
}
BENCHMARK(BM_FdShrinkJacobi);

void BM_FdShrinkTridiag(benchmark::State& state) {
  fd_shrink_method(state, "tridiag");
}
BENCHMARK(BM_FdShrinkTridiag);

void BM_RandomizedSvd(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(512, 256, 9);
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::randomized_svd(a, k, rng));
  }
}
BENCHMARK(BM_RandomizedSvd)->Arg(8)->Arg(16)->Arg(32);

void BM_FdAppendThroughput(benchmark::State& state) {
  const auto ell = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kDim = 1024;
  const Matrix rows = random_matrix(512, kDim, 7);
  for (auto _ : state) {
    core::FrequentDirections fd(core::FdConfig{ell, true});
    fd.append_batch(rows);
    benchmark::DoNotOptimize(fd.occupied_rows());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_FdAppendThroughput)->Arg(16)->Arg(32)->Arg(64);

void BM_PrioritySamplerPush(benchmark::State& state) {
  const Matrix rows = random_matrix(4096, 256, 8);
  for (auto _ : state) {
    core::PrioritySamplerConfig config;
    config.capacity = 1024;
    core::PrioritySampler sampler(config);
    sampler.push_batch(rows);
    benchmark::DoNotOptimize(sampler.take());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_PrioritySamplerPush);

}  // namespace

BENCHMARK_MAIN();
