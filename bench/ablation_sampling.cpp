// Ablation — priority-sampling keep fraction β.
//
// Section IV-B argues for sampling down by a significant fraction (e.g.
// keep 80%) rather than aggressively: too small a β sacrifices accuracy.
// This harness sweeps β and reports runtime and sketch error.

#include <iostream>

#include "bench_common.hpp"
#include "core/arams_sketch.hpp"
#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("n", "3000", "rows");
  flags.declare("d", "300", "columns");
  flags.declare("ell", "32", "sketch rows");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("ablation_sampling");
    return 0;
  }
  const auto n = static_cast<std::size_t>(flags.get_int("n"));
  const auto d = static_cast<std::size_t>(flags.get_int("d"));
  const auto ell = static_cast<std::size_t>(flags.get_int("ell"));

  bench::banner("Ablation (priority-sampling fraction beta)", false,
                "error/runtime across beta; beta=1 disables sampling");

  data::SyntheticConfig dc;
  dc.n = n;
  dc.d = d;
  dc.spectrum.kind = data::DecayKind::kExponential;
  dc.spectrum.count = std::min(d, std::size_t{150});
  dc.spectrum.rate = 0.05;
  Rng rng(23);
  std::cerr << "[sampling] generating " << n << "x" << d << " dataset...\n";
  const linalg::Matrix a = data::make_low_rank(dc, rng);

  Table table({"beta", "rows_kept", "runtime_s", "cov_error_rel",
               "recon_error_rel"});
  for (const double beta : {0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0}) {
    core::AramsConfig config;
    config.use_sampling = beta < 1.0;
    config.beta = beta;
    config.rank_adaptive = false;
    config.ell = ell;
    core::Arams sketcher(config);
    Stopwatch timer;
    const core::AramsResult result = sketcher.sketch_matrix(a);
    const double seconds = timer.seconds();

    Rng power(3);
    const double cov =
        linalg::covariance_error_relative(a, result.sketch, power, 25);
    const linalg::Matrix basis = sketcher.basis(ell);
    const double recon = linalg::projection_residual_exact(a, basis) /
                         linalg::frobenius_norm_squared(a);
    table.add_row({Table::num(beta),
                   Table::num(static_cast<long>(result.rows_sampled)),
                   Table::num(seconds), Table::num(cov),
                   Table::num(recon)});
  }
  bench::emit("beta sweep", table);

  std::cout << "\nexpected shape: runtime falls with beta; error stays "
               "nearly flat down to beta ~0.6-0.8 and degrades for "
               "aggressive sampling — supporting the paper's choice of a "
               "mild keep fraction like 80%.\n";
  return 0;
}
