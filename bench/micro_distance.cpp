// Downstream distance-engine benchmarks (google-benchmark): the pairwise
// block primitive, exact kNN, OPTICS core distances, and UMAP epochs —
// each engine path next to the per-pair scalar implementation it replaced,
// so BENCH_downstream.json records the before/after directly. Shapes
// follow the Section VI-B snapshot sizes (a few thousand latent points,
// d = 32 after PCA).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "cluster/optics.hpp"
#include "embed/distance.hpp"
#include "embed/knn.hpp"
#include "embed/umap.hpp"
#include "linalg/workspace.hpp"
#include "rng/rng.hpp"

namespace {

using namespace arams;
using linalg::Matrix;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix m(r, c);
  Rng rng(seed);
  for (std::size_t i = 0; i < r; ++i) {
    rng.fill_normal(m.row(i));
  }
  return m;
}

void BM_PairwiseBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_matrix(n, 32, 1);
  const Matrix y = random_matrix(n, 32, 2);
  linalg::Workspace ws;
  Matrix out;
  for (auto _ : state) {
    embed::pairwise_sq_dists(x, y, ws, out, {});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_PairwiseBlock)->Arg(256)->Arg(1024)->Arg(4096);

void BM_PairwiseBlockNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix x = random_matrix(n, 32, 1);
  const Matrix y = random_matrix(n, 32, 2);
  linalg::Workspace ws;
  Matrix out;
  for (auto _ : state) {
    embed::pairwise_sq_dists(x, y, ws, out,
                             {.use_gemm = false, .allow_parallel = false});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_PairwiseBlockNaive)->Arg(256)->Arg(1024)->Arg(4096);

// The acceptance shape: n = 4096 latent points, d = 32, k = 15.
constexpr std::size_t kKnnN = 4096;
constexpr std::size_t kKnnD = 32;
constexpr std::size_t kKnnK = 15;

void BM_ExactKnn(benchmark::State& state) {
  const Matrix pts = random_matrix(kKnnN, kKnnD, 7);
  linalg::Workspace ws;
  embed::KnnGraph g;
  for (auto _ : state) {
    embed::exact_knn(pts, kKnnK, ws, g, {});
    benchmark::DoNotOptimize(g.neighbors.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kKnnN * kKnnN));
}
BENCHMARK(BM_ExactKnn)->Unit(benchmark::kMillisecond);

/// Faithful replica of the pre-engine exact_knn: per-pair scalar distances
/// into an all-pairs row, then a build-and-partial_sort selection — the
/// "before" column of the downstream table.
void BM_ExactKnnNaive(benchmark::State& state) {
  const Matrix pts = random_matrix(kKnnN, kKnnD, 7);
  std::vector<std::size_t> neighbors(kKnnN * kKnnK);
  std::vector<double> distances(kKnnN * kKnnK);
  std::vector<std::pair<double, std::size_t>> row;
  row.reserve(kKnnN - 1);
  for (auto _ : state) {
    for (std::size_t i = 0; i < kKnnN; ++i) {
      row.clear();
      for (std::size_t j = 0; j < kKnnN; ++j) {
        if (j == i) continue;
        row.emplace_back(embed::sq_dist(pts.row(i), pts.row(j)), j);
      }
      std::partial_sort(row.begin(), row.begin() + kKnnK, row.end());
      for (std::size_t j = 0; j < kKnnK; ++j) {
        neighbors[i * kKnnK + j] = row[j].second;
        distances[i * kKnnK + j] = std::sqrt(row[j].first);
      }
    }
    benchmark::DoNotOptimize(neighbors.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kKnnN * kKnnN));
}
BENCHMARK(BM_ExactKnnNaive)->Unit(benchmark::kMillisecond);

void BM_OpticsCoreDist(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix pts = random_matrix(n, 2, 9);
  linalg::Workspace ws;
  for (auto _ : state) {
    const cluster::OpticsResult r =
        cluster::optics(pts, cluster::OpticsConfig{5}, ws, {});
    benchmark::DoNotOptimize(r.order.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_OpticsCoreDist)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_OpticsCoreDistNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix pts = random_matrix(n, 2, 9);
  linalg::Workspace ws;
  for (auto _ : state) {
    const cluster::OpticsResult r = cluster::optics(
        pts, cluster::OpticsConfig{5}, ws,
        {.use_gemm = false, .allow_parallel = false});
    benchmark::DoNotOptimize(r.order.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * n));
}
BENCHMARK(BM_OpticsCoreDistNaive)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

embed::UmapConfig umap_bench_config(embed::UmapConfig::Optimizer opt) {
  embed::UmapConfig config;
  config.n_neighbors = 12;
  config.n_epochs = 50;
  config.optimizer = opt;
  return config;
}

void BM_UmapEpochSerial(benchmark::State& state) {
  const Matrix pts = random_matrix(600, 16, 13);
  const embed::UmapConfig config =
      umap_bench_config(embed::UmapConfig::Optimizer::kSerial);
  linalg::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(embed::umap_embed(pts, config, ws).data());
  }
}
BENCHMARK(BM_UmapEpochSerial)->Unit(benchmark::kMillisecond);

void BM_UmapEpochBatch(benchmark::State& state) {
  const Matrix pts = random_matrix(600, 16, 13);
  const embed::UmapConfig config =
      umap_bench_config(embed::UmapConfig::Optimizer::kBatchParallel);
  linalg::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(embed::umap_embed(pts, config, ws).data());
  }
}
BENCHMARK(BM_UmapEpochBatch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
