// Figure 3 — error vs number of cores (log-log), tree vs serial merge.
//
// Expected shape: the tree-merge error tracks the serial-merge error
// closely across core counts — the mergeable-summary guarantee does not
// degrade in the branching scheme.

#include <iostream>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/norms.hpp"
#include "parallel/virtual_cores.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("n", "1024", "total rows (paper: 2000)");
  flags.declare("d", "1024", "columns (paper: 1658880)");
  flags.declare("ell", "32", "sketch rows (paper: 200)");
  flags.declare("max-cores", "64", "largest core count (paper: 128)");
  flags.declare("power-iters", "30", "power iterations per error estimate");
  flags.declare("full", "false", "paper-scale parameters");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("fig3_parallel_error");
    return 0;
  }
  const bool full = flags.get_bool("full");
  const std::size_t n =
      full ? 2000 : static_cast<std::size_t>(flags.get_int("n"));
  const std::size_t d =
      full ? 1658880 : static_cast<std::size_t>(flags.get_int("d"));
  const std::size_t ell =
      full ? 200 : static_cast<std::size_t>(flags.get_int("ell"));
  const std::size_t max_cores =
      full ? 128 : static_cast<std::size_t>(flags.get_int("max-cores"));
  const int power_iters = static_cast<int>(flags.get_int("power-iters"));

  bench::banner("Figure 3 (error vs cores, tree vs serial merge)", full,
                "relative covariance error of the merged global sketch");

  data::SyntheticConfig dc;
  dc.n = n;
  dc.d = d;
  dc.spectrum.kind = data::DecayKind::kCubic;
  dc.spectrum.count = std::min({n, d, std::size_t{256}});
  // A small white-noise floor keeps the sketch error non-trivial (the pure
  // cubic tail beyond ℓ is ~1e-9 relative, which would hide the tree-vs-
  // serial comparison the figure is about).
  dc.noise = 3e-3;
  Rng rng(3);
  std::cerr << "[fig3] generating " << n << "x" << d
            << " cubic-spectrum matrix...\n";
  const linalg::Matrix a = data::make_low_rank(dc, rng);
  const double fd_bound = 1.0 / static_cast<double>(ell);

  Table table({"cores", "tree_error_rel", "serial_error_rel",
               "tree/serial", "fd_bound_rel"});
  for (std::size_t cores = 1; cores <= max_cores; cores *= 2) {
    double errors[2] = {0.0, 0.0};
    int idx = 0;
    for (const auto strategy :
         {parallel::MergeStrategy::kTree, parallel::MergeStrategy::kSerial}) {
      parallel::ScalingConfig config;
      config.num_cores = cores;
      config.ell = ell;
      config.strategy = strategy;
      const parallel::ScalingResult r = parallel::run_sharded_sketch(
          config, [&](std::size_t core) {
            const std::size_t r0 = core * n / cores;
            const std::size_t r1 = (core + 1) * n / cores;
            return a.slice_rows(r0, r1);
          });
      Rng power(42);
      errors[idx++] = linalg::covariance_error_relative(a, r.sketch, power,
                                                        power_iters);
    }
    table.add_row({Table::num(static_cast<long>(cores)),
                   Table::num(errors[0]), Table::num(errors[1]),
                   Table::num(errors[1] > 0 ? errors[0] / errors[1] : 1.0),
                   Table::num(fd_bound)});
  }
  bench::emit("relative covariance error vs cores", table);

  std::cout << "\nexpected shape: tree error stays within a small factor of "
               "the serial error at every core count, and both respect the "
               "FD bound.\n";
  return 0;
}
