// Ablation — OPTICS vs HDBSCAN as the pipeline's clustering stage.
//
// The paper uses OPTICS (its artifact env also ships hdbscan). This
// harness runs the Fig. 6 diffraction workload through both backends and
// reports cluster recovery (ARI, purity, cluster count) and stage runtime
// — plus a variable-density stress case where a single ε-cut struggles.

#include <iostream>

#include "bench_common.hpp"
#include "cluster/hdbscan.hpp"
#include "cluster/metrics.hpp"
#include "cluster/optics.hpp"
#include "rng/rng.hpp"
#include "stream/pipeline.hpp"
#include "stream/source.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace arams;

  CliFlags flags;
  flags.declare("frames", "300", "diffraction frames");
  flags.declare("classes", "4", "latent classes");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("ablation_clustering");
    return 0;
  }
  const auto frames = static_cast<std::size_t>(flags.get_int("frames"));

  bench::banner("Ablation (OPTICS vs HDBSCAN clustering stage)", false,
                "Fig. 6 workload + a variable-density stress case");

  // --- part 1: the Fig. 6 diffraction workload through both backends ---
  data::DiffractionConfig diff;
  diff.height = 40;
  diff.width = 40;
  diff.num_classes = static_cast<std::size_t>(flags.get_int("classes"));
  diff.photons_per_frame = 5e4;
  stream::DiffractionSource source(diff, frames, 120.0, 9);
  const auto events = stream::drain(source, frames);
  std::vector<int> truth;
  for (const auto& e : events) truth.push_back(e.truth_label);

  Table table({"backend", "clusters", "ari", "purity", "stage_s"});
  for (const auto method :
       {stream::PipelineConfig::ClusterMethod::kOptics,
        stream::PipelineConfig::ClusterMethod::kHdbscan}) {
    stream::PipelineConfig config;
    config.sketch.ell = 24;
    config.num_cores = 4;
    config.pca_components = 10;
    config.umap.n_neighbors = 15;
    config.umap.n_epochs = 200;
    config.preprocess.center = false;
    config.cluster_method = method;
    const stream::MonitoringPipeline pipeline(config);
    const stream::PipelineResult result = pipeline.analyze_events(events);
    table.add_row(
        {method == stream::PipelineConfig::ClusterMethod::kOptics
             ? "optics"
             : "hdbscan",
         Table::num(static_cast<long>(cluster::cluster_count(result.labels))),
         Table::num(cluster::adjusted_rand_index(result.labels, truth)),
         Table::num(cluster::purity(result.labels, truth)),
         Table::num(result.cluster_seconds())});
  }
  bench::emit("Fig. 6 workload, both backends", table);

  // --- part 2: variable-density stress case ---
  Rng rng(10);
  linalg::Matrix pts(160, 2);
  std::vector<int> density_truth(160);
  for (std::size_t i = 0; i < 80; ++i) {  // tight cluster
    pts(i, 0) = 0.3 * rng.normal();
    pts(i, 1) = 0.3 * rng.normal();
    density_truth[i] = 0;
  }
  for (std::size_t i = 80; i < 160; ++i) {  // diffuse cluster
    pts(i, 0) = 40.0 + 4.0 * rng.normal();
    pts(i, 1) = 4.0 * rng.normal();
    density_truth[i] = 1;
  }
  Table stress({"backend", "clusters", "ari"});
  {
    const cluster::OpticsResult o = cluster::optics(pts, {8});
    const auto labels = cluster::extract_auto(o, 0.9);
    stress.add_row(
        {"optics(auto-eps)",
         Table::num(static_cast<long>(cluster::cluster_count(labels))),
         Table::num(cluster::adjusted_rand_index(labels, density_truth))});
  }
  {
    const auto r = cluster::hdbscan(pts, {8, 16});
    stress.add_row(
        {"hdbscan",
         Table::num(static_cast<long>(r.num_clusters)),
         Table::num(cluster::adjusted_rand_index(r.labels, density_truth))});
  }
  bench::emit("variable-density stress case", stress);

  std::cout << "\nexpected shape: comparable recovery on the Fig. 6 "
               "workload; on the variable-density case HDBSCAN keeps both "
               "clusters while a single-cut OPTICS extraction degrades.\n";
  return 0;
}
