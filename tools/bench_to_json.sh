#!/usr/bin/env bash
# Runs a google-benchmark suite and records the results as JSON at the repo
# root, so perf changes land with a checked-in before/after baseline.
#
# Usage:
#   tools/bench_to_json.sh [bench_name] [build_dir] [output.json] [extra benchmark args...]
#
# `bench_name` is a benchmark binary under <build_dir>/bench/ (default
# micro_kernels). For backwards compatibility, a first argument containing a
# '/' or naming an existing directory is treated as build_dir instead. The
# default output file is BENCH_<name-without-micro_>.json.
#
# Examples:
#   tools/bench_to_json.sh                          # micro_kernels -> BENCH_kernels.json
#   tools/bench_to_json.sh micro_distance build BENCH_downstream.json
#   tools/bench_to_json.sh build /tmp/after.json --benchmark_filter='BM_Gemm.*'
#   tools/bench_to_json.sh ablation_baselines       # -> BENCH_sketchers.json
#   tools/bench_to_json.sh fig2_scaling             # -> BENCH_merge.json
#
# `ablation_baselines` and `fig2_scaling` are not google-benchmark binaries;
# they are special-cased below onto their own --json-out flag (default
# outputs BENCH_sketchers.json and BENCH_merge.json).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

bench_name="micro_kernels"
if [[ $# -gt 0 && "$1" != */* && ! -d "$1" ]]; then
  bench_name="$1"
  shift
fi

default_out="BENCH_${bench_name#micro_}.json"
if [[ "${bench_name}" == "ablation_baselines" ]]; then
  default_out="BENCH_sketchers.json"
elif [[ "${bench_name}" == "fig2_scaling" ]]; then
  default_out="BENCH_merge.json"
fi

build_dir="${1:-${repo_root}/build}"
out_file="${2:-${repo_root}/${default_out}}"
shift $(( $# > 2 ? 2 : $# )) || true

bench_bin="${build_dir}/bench/${bench_name}"
if [[ ! -x "${bench_bin}" ]]; then
  echo "error: ${bench_bin} not found or not executable." >&2
  echo "Build it first:  cmake -B ${build_dir} -S ${repo_root} && cmake --build ${build_dir} -j" >&2
  exit 1
fi

echo "Running ${bench_bin} -> ${out_file}" >&2
if [[ "${bench_name}" == "ablation_baselines" || "${bench_name}" == "fig2_scaling" ]]; then
  # Hand-rolled harnesses: they emit their own JSON via --json-out instead
  # of the google-benchmark reporter flags.
  "${bench_bin}" --json-out="${out_file}" "$@"
  echo "Wrote ${out_file}" >&2
  exit 0
fi
"${bench_bin}" \
  --benchmark_out="${out_file}" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1 \
  "$@"
echo "Wrote ${out_file}" >&2
