#!/usr/bin/env bash
# Runs the micro_kernels benchmark suite and records the results as JSON at
# the repo root (BENCH_kernels.json by default), so kernel-perf changes land
# with a checked-in before/after baseline.
#
# Usage:
#   tools/bench_to_json.sh [build_dir] [output.json] [extra benchmark args...]
#
# Examples:
#   tools/bench_to_json.sh                          # build/, BENCH_kernels.json
#   tools/bench_to_json.sh build /tmp/after.json --benchmark_filter='BM_Gemm.*'
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_file="${2:-${repo_root}/BENCH_kernels.json}"
shift $(( $# > 2 ? 2 : $# )) || true

bench_bin="${build_dir}/bench/micro_kernels"
if [[ ! -x "${bench_bin}" ]]; then
  echo "error: ${bench_bin} not found or not executable." >&2
  echo "Build it first:  cmake -B ${build_dir} -S ${repo_root} && cmake --build ${build_dir} -j" >&2
  exit 1
fi

echo "Running ${bench_bin} -> ${out_file}" >&2
"${bench_bin}" \
  --benchmark_out="${out_file}" \
  --benchmark_out_format=json \
  --benchmark_repetitions=1 \
  "$@"
echo "Wrote ${out_file}" >&2
