#!/usr/bin/env bash
# Crash drill: prove the post-mortem path works end-to-end on a real
# process death, not just in unit tests. A monitor replay is poisoned with
# NaN frames (driving the watchdog toward CRITICAL) and then killed
# mid-run with --crash-after (std::terminate). The process must die
# non-zero, leave at least one post-mortem dump behind, and `arams
# doctor` must validate the newest dump — all four sections present,
# [end] marker intact. The binary path arrives in $ARAMS_BIN (wired by
# ctest).
set -euo pipefail

BIN="${ARAMS_BIN:?ARAMS_BIN must point at the arams binary}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$BIN" generate --kind=beam --frames=200 --size=24 --out="$DIR/run.frames"

# The replay must die by std::terminate at shot 120, after the NaN burst
# has pushed frames through the monitor (so the dump has flight events and
# a fresh metrics snapshot to show).
set +e
"$BIN" monitor --in="$DIR/run.frames" --batch=16 --ell=8 --queue=32 \
  --fps=20000 --nan-from=40 --nan-count=20 \
  --postmortem-dir="$DIR" --flight-recorder="$DIR/flight.jsonl" \
  --crash-after=120 >"$DIR/monitor.out" 2>&1
status=$?
set -e
if [ "$status" -eq 0 ]; then
  echo "monitor survived the injected crash (exit 0)" >&2
  cat "$DIR/monitor.out" >&2
  exit 1
fi
grep -q "crash-after: injecting std::terminate" "$DIR/monitor.out" || {
  echo "crash injection message missing from monitor output" >&2
  cat "$DIR/monitor.out" >&2
  exit 1
}

# At least one dump landed; the newest is the terminate dump (a CRITICAL
# autodump may precede it).
newest="$(ls -t "$DIR"/postmortem-*.txt 2>/dev/null | head -1)"
test -n "$newest" || {
  echo "no postmortem-*.txt produced in $DIR" >&2
  ls -la "$DIR" >&2
  exit 1
}

"$BIN" doctor "$newest" >"$DIR/doctor.out"
grep -q "doctor: OK" "$DIR/doctor.out"
# The dump's forensic payload is real: a backtrace and the flight tail.
grep -q "^reason=" "$newest"
grep -q "^\[backtrace\]$" "$newest"
grep -q "code=crash" "$newest"
grep -q "^\[end\]$" "$newest"

# Doctor must also flag a truncated dump (simulating a crash that died
# while writing).
head -n 8 "$newest" > "$DIR/truncated.txt"
if "$BIN" doctor "$DIR/truncated.txt" >/dev/null 2>&1; then
  echo "doctor accepted a truncated dump" >&2
  exit 1
fi

echo "crash drill OK ($(basename "$newest") validated)"
