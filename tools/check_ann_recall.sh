#!/usr/bin/env bash
# ANN recall harness: runs the micro_ann BM_AnnRecallPin benchmark (rpforest
# kNN graph at n=4096, d=32, k=15 against exhaustive exact ground truth) and
# fails when the recall counter drops below the 0.95 floor the subsystem
# promises. A regression here means a forest construction / traversal /
# refinement bug that the unit-level pins missed at their smaller shapes.
#
# Invoked by ctest as `ann_recall` with ANN_BENCH pointing at micro_ann.
set -euo pipefail

BIN="${ANN_BENCH:?ANN_BENCH must point at the micro_ann benchmark binary}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$BIN" --benchmark_filter='BM_AnnRecallPin' \
  --benchmark_out="$DIR/ann.json" --benchmark_out_format=json \
  --benchmark_repetitions=1 >/dev/null

python3 - "$DIR/ann.json" <<'EOF'
import json
import sys

floor = 0.95
with open(sys.argv[1]) as f:
    report = json.load(f)
rows = [b for b in report["benchmarks"] if "recall" in b]
if not rows:
    print("no benchmark with a recall counter in the report", file=sys.stderr)
    sys.exit(1)
status = 0
for b in rows:
    recall = float(b["recall"])
    ok = recall >= floor
    tag = "ok" if ok else "FAIL"
    print(f"[{tag}] {b['name']}: recall={recall:.4f} (floor {floor})")
    if not ok:
        status = 1
sys.exit(status)
EOF

echo "ANN recall OK"
