#!/usr/bin/env bash
# Merge-scaling gate: runs the measured fig2_scaling harness and asserts
# the sharded ingest + pool-executed tree merge actually scale —
#   * 4-shard ingest throughput >= 1.5x the single-shard rate, and
#   * parallel tree-merge wall < the serial fold wall at P >= 4 shards.
# Both claims need real cores, so on hosts with fewer than 4 the check
# SKIPS (exit 0 with a notice) instead of asserting noise: a 1-core
# container runs every shard and merge group inline, where the columns are
# flat by construction.
#
# Invoked by ctest as `merge_scaling` with FIG2_BENCH pointing at the
# fig2_scaling binary.
set -euo pipefail

BIN="${FIG2_BENCH:?FIG2_BENCH must point at the fig2_scaling bench binary}"
CORES="$(nproc 2>/dev/null || echo 1)"
if [[ "${CORES}" -lt 4 ]]; then
  echo "SKIP: merge scaling needs >= 4 cores, host has ${CORES}" \
       "(shards and merge groups run inline below that)"
  exit 0
fi

DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$BIN" --n=8192 --d=256 --ell=32 --max-shards=8 --reps=3 \
  --json-out="$DIR/merge.json" >/dev/null

python3 - "$DIR/merge.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    report = json.load(f)
rows = {b["shards"]: b for b in report["benchmarks"]}
if 1 not in rows or 4 not in rows:
    print("missing 1-shard or 4-shard row in the report", file=sys.stderr)
    sys.exit(1)

status = 0

base = float(rows[1]["ingest_rows_per_s"])
rate4 = float(rows[4]["ingest_rows_per_s"])
speedup = rate4 / base if base > 0 else 0.0
ok = speedup >= 1.5
print(f"[{'ok' if ok else 'FAIL'}] ingest: 4-shard {rate4:.0f} rows/s vs "
      f"1-shard {base:.0f} rows/s = {speedup:.2f}x (floor 1.5x)")
if not ok:
    status = 1

for shards, row in sorted(rows.items()):
    if shards < 4:
        continue
    serial = float(row["serial_merge_s"])
    par = float(row["parallel_merge_s"])
    ok = 0.0 < par < serial
    print(f"[{'ok' if ok else 'FAIL'}] merge @{shards} shards: parallel "
          f"{par:.6f}s vs serial {serial:.6f}s")
    if not ok:
        status = 1

sys.exit(status)
EOF

echo "merge scaling OK"
