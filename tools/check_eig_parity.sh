#!/usr/bin/env bash
# Eigensolver parity harness: replays the same synthetic frame stream
# through `arams sketch --report-error` under ARAMS_EIG_METHOD=jacobi and
# =tridiag and diffs the reported relative covariance error. The two
# solvers are different algorithms over the same math, so the stream-level
# sketch quality must agree far inside the FD bound; a drift here means an
# eigensolver bug that the unit-level cross-checks missed.
#
# Invoked by ctest as `eig_parity` with ARAMS_BIN pointing at arams_cli.
set -euo pipefail

BIN="${ARAMS_BIN:?ARAMS_BIN must point at the arams binary}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

error_for() {
  # $1 = eig method, $2 = workload kind, $3 = ell
  ARAMS_EIG_METHOD="$1" "$BIN" sketch --in="$DIR/$2.frames" --ell="$3" \
    --out="$DIR/sketch_$1_$2.npy" --report-error \
    | sed -n 's/.*relative covariance error: \([0-9.eE+-]*\).*/\1/p'
}

"$BIN" generate --kind=beam --frames=120 --size=24 \
  --out="$DIR/beam.frames" >/dev/null
"$BIN" generate --kind=diffraction --frames=120 --size=24 --classes=3 \
  --out="$DIR/diffraction.frames" >/dev/null

status=0
for kind in beam diffraction; do
  for ell in 8 16; do
    jac="$(error_for jacobi "$kind" "$ell")"
    tri="$(error_for tridiag "$kind" "$ell")"
    if ! python3 - "$jac" "$tri" "$kind" "$ell" <<'EOF'
import sys
jac, tri = float(sys.argv[1]), float(sys.argv[2])
kind, ell = sys.argv[3], sys.argv[4]
# The reported error is O(1/ell); the solvers may differ only at the
# level of eigensolver roundoff propagated through the stream.
tol = 1e-8
drift = abs(jac - tri)
ok = drift <= tol
tag = "ok" if ok else "FAIL"
print(f"[{tag}] {kind} ell={ell}: jacobi={jac:.12g} tridiag={tri:.12g} "
      f"drift={drift:.3g} (tol {tol:g})")
sys.exit(0 if ok else 1)
EOF
    then
      status=1
    fi
  done
done

if [ "$status" -ne 0 ]; then
  echo "eigensolver parity FAILED"
  exit 1
fi
echo "eigensolver parity OK"
