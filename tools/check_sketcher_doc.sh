#!/usr/bin/env bash
# Doc lint: every factory-registered sketcher backend must be documented in
# docs/ALGORITHMS.md, so the backend catalogue cannot silently rot when a
# new sketcher lands.
#
# The registry is read from the binary itself (`arams backends`, one
# "name<TAB>description" line per canonical backend) rather than greped out
# of the source, so the lint can never disagree with what the factory
# actually builds. The binary path arrives in $ARAMS_BIN (wired by ctest).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BIN="${ARAMS_BIN:?ARAMS_BIN must point at the arams binary}"
DOC="$ROOT/docs/ALGORITHMS.md"
test -r "$DOC" || { echo "missing $DOC" >&2; exit 1; }

# The leading '#'-prefixed line is the build-info stamp, not a backend.
names="$("$BIN" backends | grep -v '^#' | cut -f1)"
test -n "$names" || { echo "'arams backends' listed no backends" >&2; exit 1; }

missing=0
count=0
while IFS= read -r name; do
  [ -n "$name" ] || continue
  count=$((count + 1))
  if ! grep -qF "\`$name\`" "$DOC"; then
    echo "undocumented sketcher backend: \`$name\` — add it to docs/ALGORITHMS.md" >&2
    missing=1
  fi
done <<< "$names"

if [ "$missing" -ne 0 ]; then
  exit 1
fi
echo "sketcher doc lint OK ($count registered backends documented)"
