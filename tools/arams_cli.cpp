// arams — command-line front end for the ARAMS monitoring library.
//
// Subcommands:
//   generate   synthesize a detector run into a .frames bundle
//   sketch     ARAMS-sketch a .frames bundle or .npy matrix into a .npy
//   pipeline   run the full monitoring pipeline; emit CSV and/or HTML
//   info       describe a .frames or .npy file
//
// Examples:
//   arams generate --kind=beam --frames=500 --size=48 --out=run.frames
//   arams sketch --in=run.frames --ell=32 --epsilon=0.05 --out=sketch.npy
//   arams pipeline --in=run.frames --html=run.html --csv=run.csv
//   arams pipeline --in=run.frames --trace-out=trace.json \
//       --metrics-out=metrics.jsonl
//   arams info --in=sketch.npy

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "arams.hpp"

namespace {

using namespace arams;

void print_usage() {
  std::cout <<
      "usage: arams <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate   synthesize a run (--kind=beam|diffraction|speckle)\n"
      "  sketch     ARAMS-sketch frames/matrix into a .npy sketch\n"
      "  pipeline   full monitoring pipeline -> labels, CSV, HTML\n"
      "  compare    covariance error of a sketch against its data\n"
      "  diag       beam diagnostics over a run: CUSUM alarms, frame\n"
      "             statistics, dead/hot pixel mask\n"
      "  info       describe a .frames or .npy file\n"
      "\n"
      "run `arams <command> --help` for the command's flags.\n";
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Loads rows either from a .frames bundle (flattened) or a .npy matrix.
linalg::Matrix load_rows(const std::string& path) {
  if (ends_with(path, ".frames")) {
    return image::images_to_matrix(io::load_frames(path));
  }
  return io::load_npy(path);
}

void declare_telemetry_flags(CliFlags& flags) {
  flags.declare("trace-out", "",
                "write a Chrome trace_event JSON of pipeline spans");
  flags.declare("metrics-out", "", "write telemetry metrics as JSON lines");
}

/// Span recording costs a little per stage, so it stays off unless the run
/// actually asked for a trace file.
void arm_telemetry(const CliFlags& flags) {
  if (!flags.get("trace-out").empty()) {
    obs::tracer().enable(true);
  }
}

void write_telemetry(const CliFlags& flags) {
  if (const std::string& path = flags.get("trace-out"); !path.empty()) {
    std::ofstream out(path);
    ARAMS_CHECK(out.good(), "cannot open --trace-out file: " + path);
    obs::tracer().write_chrome_trace(out);
    std::cout << "Chrome trace written to " << path << "\n";
  }
  if (const std::string& path = flags.get("metrics-out"); !path.empty()) {
    std::ofstream out(path);
    ARAMS_CHECK(out.good(), "cannot open --metrics-out file: " + path);
    obs::metrics().write_json_lines(out);
    std::cout << "metrics written to " << path << "\n";
  }
}

int cmd_generate(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("kind", "beam", "beam | diffraction | speckle");
  flags.declare("frames", "500", "number of frames");
  flags.declare("size", "48", "frame height/width");
  flags.declare("classes", "4", "diffraction: latent classes");
  flags.declare("seed", "7", "generator seed");
  flags.declare("out", "run.frames", "output .frames bundle");
  flags.declare("truth", "", "optional CSV of generative ground truth");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams generate");
    return 0;
  }
  const auto count = static_cast<std::size_t>(flags.get_int("frames"));
  const auto size = static_cast<std::size_t>(flags.get_int("size"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const std::string kind = flags.get("kind");

  std::vector<image::ImageF> frames;
  frames.reserve(count);
  Table truth_table({"index", "factor1", "factor2", "label"});

  if (kind == "beam") {
    data::BeamProfileConfig config;
    config.height = size;
    config.width = size;
    Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
      auto sample = data::generate_beam_profile(config, rng);
      truth_table.add_row(
          {Table::num(static_cast<long>(i)),
           Table::num(sample.truth.com_x),
           Table::num(sample.truth.ellipticity),
           sample.truth.exotic ? "exotic" : "normal"});
      frames.push_back(std::move(sample.frame));
    }
  } else if (kind == "diffraction") {
    data::DiffractionConfig config;
    config.height = size;
    config.width = size;
    config.num_classes =
        static_cast<std::size_t>(flags.get_int("classes"));
    const data::DiffractionGenerator generator(config);
    Rng rng(seed);
    for (std::size_t i = 0; i < count; ++i) {
      auto sample = generator.generate(rng);
      truth_table.add_row(
          {Table::num(static_cast<long>(i)),
           Table::num(sample.truth.quadrant_weights[0]),
           Table::num(sample.truth.quadrant_weights[1]),
           Table::num(static_cast<long>(sample.truth.class_label))});
      frames.push_back(std::move(sample.frame));
    }
  } else if (kind == "speckle") {
    data::SpeckleConfig config;
    config.height = size;
    config.width = size;
    data::SpeckleGenerator generator(config, seed);
    for (std::size_t i = 0; i < count; ++i) {
      auto sample = generator.next();
      truth_table.add_row({Table::num(static_cast<long>(i)),
                           Table::num(sample.truth.realized_contrast),
                           Table::num(config.coherence_length), "speckle"});
      frames.push_back(std::move(sample.frame));
    }
  } else {
    ARAMS_CHECK(false, "unknown --kind: " + kind);
  }

  io::save_frames(flags.get("out"), frames);
  std::cout << "wrote " << count << " " << size << "x" << size << " "
            << kind << " frames to " << flags.get("out") << "\n";
  if (const std::string& truth = flags.get("truth"); !truth.empty()) {
    truth_table.save_csv(truth);
    std::cout << "ground truth written to " << truth << "\n";
  }
  return 0;
}

int cmd_sketch(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("in", "", ".frames bundle or .npy matrix (required)");
  flags.declare("out", "sketch.npy", "output sketch .npy");
  flags.declare("ell", "32", "initial/fixed sketch rank");
  flags.declare("beta", "0.8", "priority-sampling keep fraction");
  flags.declare("epsilon", "0.05", "rank-adaptation target (0 disables RA)");
  flags.declare("estimator", "gaussian",
                "RA residual estimator: gaussian | hutchinson | hutchpp");
  flags.declare("report-error", "false",
                "also print the relative covariance error (costs extra)");
  declare_telemetry_flags(flags);
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams sketch");
    return 0;
  }
  ARAMS_CHECK(!flags.get("in").empty(), "--in is required");
  arm_telemetry(flags);
  const linalg::Matrix rows = load_rows(flags.get("in"));
  std::cout << "loaded " << rows.rows() << " x " << rows.cols()
            << " from " << flags.get("in") << "\n";

  core::AramsConfig config;
  config.ell = static_cast<std::size_t>(flags.get_int("ell"));
  config.beta = flags.get_double("beta");
  config.use_sampling = config.beta < 1.0;
  const double epsilon = flags.get_double("epsilon");
  config.rank_adaptive = epsilon > 0.0;
  config.epsilon = epsilon;
  config.estimator =
      linalg::parse_residual_estimator(flags.get("estimator"));

  core::Arams sketcher(config);
  Stopwatch timer;
  const core::AramsResult result = sketcher.sketch_matrix(rows);
  std::cout << "sketched to " << result.sketch.rows() << " x "
            << result.sketch.cols() << " in " << timer.seconds() << " s ("
            << result.stats().svd_count << " rotations, final ell "
            << result.final_ell << ")\n";
  io::save_npy(flags.get("out"), result.sketch);
  std::cout << "sketch written to " << flags.get("out") << "\n";
  write_telemetry(flags);

  if (flags.get_bool("report-error")) {
    Rng power(1);
    std::cout << "relative covariance error: "
              << linalg::covariance_error_relative(rows, result.sketch,
                                                   power, 60)
              << " (FD bound "
              << 1.0 / static_cast<double>(result.final_ell) << ")\n";
  }
  return 0;
}

int cmd_pipeline(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("in", "", ".frames bundle or .npy matrix (required)");
  flags.declare("ell", "24", "sketch rank");
  flags.declare("cores", "4", "virtual sketching cores");
  flags.declare("components", "12", "PCA latent dimension");
  flags.declare("neighbors", "15", "UMAP n_neighbors");
  flags.declare("epochs", "200", "UMAP epochs");
  flags.declare("clusterer", "optics", "optics | hdbscan | kmeans");
  flags.declare("k", "4", "kmeans: number of clusters");
  flags.declare("center", "true", "CoM-center frames before sketching");
  flags.declare("csv", "", "output CSV (x,y,label per shot)");
  flags.declare("html", "", "output interactive HTML scatter");
  flags.declare("latent", "", "output latent matrix .npy");
  declare_telemetry_flags(flags);
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams pipeline");
    return 0;
  }
  ARAMS_CHECK(!flags.get("in").empty(), "--in is required");
  arm_telemetry(flags);

  stream::PipelineConfig config;
  config.sketch.ell = static_cast<std::size_t>(flags.get_int("ell"));
  config.num_cores = static_cast<std::size_t>(flags.get_int("cores"));
  config.pca_components =
      static_cast<std::size_t>(flags.get_int("components"));
  config.umap.n_neighbors =
      static_cast<std::size_t>(flags.get_int("neighbors"));
  config.umap.n_epochs = static_cast<int>(flags.get_int("epochs"));
  config.preprocess.center = flags.get_bool("center");
  const std::string clusterer = flags.get("clusterer");
  if (clusterer == "hdbscan") {
    config.cluster_method =
        stream::PipelineConfig::ClusterMethod::kHdbscan;
  } else if (clusterer == "kmeans") {
    config.cluster_method = stream::PipelineConfig::ClusterMethod::kKmeans;
    config.kmeans.k = static_cast<std::size_t>(flags.get_int("k"));
  } else {
    ARAMS_CHECK(clusterer == "optics",
                "unknown --clusterer: " + clusterer);
  }
  const stream::MonitoringPipeline pipeline(config);

  const std::string in = flags.get("in");
  Stopwatch timer;
  stream::PipelineResult result;
  if (ends_with(in, ".frames")) {
    result = pipeline.analyze(io::load_frames(in));
  } else {
    result = pipeline.analyze_matrix(io::load_npy(in));
  }
  const std::size_t n = result.embedding.rows();
  std::cout << "pipeline over " << n << " shots in " << timer.seconds()
            << " s: sketch " << result.sketch_seconds() << " s, UMAP "
            << result.embed_seconds() << " s, cluster "
            << result.cluster_seconds() << " s\n"
            << cluster::cluster_count(result.labels)
            << " clusters, final sketch rank " << result.final_ell << "\n";

  if (const std::string& csv = flags.get("csv"); !csv.empty()) {
    Table table({"shot", "x", "y", "label"});
    for (std::size_t i = 0; i < n; ++i) {
      table.add_row({Table::num(static_cast<long>(i)),
                     Table::num(result.embedding(i, 0)),
                     Table::num(result.embedding(i, 1)),
                     Table::num(static_cast<long>(result.labels[i]))});
    }
    table.save_csv(csv);
    std::cout << "embedding CSV written to " << csv << "\n";
  }
  if (const std::string& html = flags.get("html"); !html.empty()) {
    embed::ScatterConfig scatter;
    scatter.title = "ARAMS pipeline — " + in;
    embed::write_scatter_html(html, result.embedding, result.labels, {},
                              scatter);
    std::cout << "interactive scatter written to " << html << "\n";
  }
  if (const std::string& latent = flags.get("latent"); !latent.empty()) {
    io::save_npy(latent, result.latent);
    std::cout << "latent matrix written to " << latent << "\n";
  }
  write_telemetry(flags);
  return 0;
}

int cmd_compare(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("data", "", "original data (.frames or .npy, required)");
  flags.declare("sketch", "", "sketch .npy (required)");
  flags.declare("power-iters", "60", "power iterations for the error");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams compare");
    return 0;
  }
  ARAMS_CHECK(!flags.get("data").empty() && !flags.get("sketch").empty(),
              "--data and --sketch are required");
  const linalg::Matrix rows = load_rows(flags.get("data"));
  const linalg::Matrix sketch = io::load_npy(flags.get("sketch"));
  ARAMS_CHECK(rows.cols() == sketch.cols(),
              "data and sketch have different column counts");
  Rng power(1);
  const int iters = static_cast<int>(flags.get_int("power-iters"));
  const double abs_err =
      linalg::covariance_error(rows, sketch, power, iters);
  const double rel = abs_err / linalg::frobenius_norm_squared(rows);
  std::cout << "data:   " << rows.rows() << " x " << rows.cols() << "\n"
            << "sketch: " << sketch.rows() << " x " << sketch.cols() << "\n"
            << "covariance error |AtA - BtB|_2: " << abs_err << "\n"
            << "relative (vs |A|_F^2):          " << rel << "\n"
            << "FD bound at ell=" << sketch.rows() << ":          "
            << 1.0 / static_cast<double>(sketch.rows()) << "\n";
  return 0;
}

int cmd_diag(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("in", "", ".frames bundle (required)");
  flags.declare("warmup", "120", "CUSUM calibration shots");
  flags.declare("mean", "", "optional PGM path for the mean frame");
  flags.declare("variance", "", "optional PGM path for the variance frame");
  flags.declare("mask-report", "false",
                "derive a dead/hot pixel mask and report its size");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams diag");
    return 0;
  }
  ARAMS_CHECK(!flags.get("in").empty(), "--in is required");
  const auto frames = io::load_frames(flags.get("in"));

  stream::BeamDiagnostics diagnostics(
      static_cast<std::size_t>(flags.get_int("warmup")));
  long alarm_shots = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    stream::ShotEvent event;
    event.shot_id = i;
    event.frame = frames[i];
    const auto alarms = diagnostics.update(event);
    if (!alarms.empty()) {
      ++alarm_shots;
      if (alarm_shots <= 10) {
        std::cout << "shot " << i << ":";
        for (const auto& a : alarms) std::cout << " [" << a << "]";
        std::cout << "\n";
      }
    }
  }
  std::cout << "monitored " << diagnostics.shots_seen() << " shots: "
            << diagnostics.total_alarms() << " alarms across "
            << alarm_shots << " shots\n";

  if (const std::string& mean = flags.get("mean"); !mean.empty()) {
    diagnostics.frame_stats().mean().save_pgm(mean);
    std::cout << "mean frame written to " << mean << "\n";
  }
  if (const std::string& var = flags.get("variance"); !var.empty()) {
    diagnostics.frame_stats().variance().save_pgm(var);
    std::cout << "variance frame written to " << var << "\n";
  }
  if (flags.get_bool("mask-report")) {
    const image::PixelMask mask =
        image::mask_from_stats(diagnostics.frame_stats());
    std::cout << "pixel mask: " << mask.bad_count() << " of "
              << mask.good.size() << " pixels flagged dead/hot\n";
  }
  return 0;
}

int cmd_info(int argc, const char* const* argv) {
  CliFlags flags;
  flags.declare("in", "", "file to describe (required)");
  flags.declare("help", "false", "print usage");
  flags.parse(argc, argv);
  if (flags.get_bool("help")) {
    std::cout << flags.usage("arams info");
    return 0;
  }
  const std::string in = flags.get("in");
  ARAMS_CHECK(!in.empty(), "--in is required");
  if (ends_with(in, ".frames")) {
    const auto frames = io::load_frames(in);
    double total = 0.0;
    for (const auto& f : frames) total += f.total_intensity();
    std::cout << in << ": frame bundle, " << frames.size() << " frames of "
              << frames.front().height() << "x" << frames.front().width()
              << ", mean intensity "
              << total / static_cast<double>(frames.size()) << "\n";
  } else {
    const linalg::Matrix m = io::load_npy(in);
    std::cout << in << ": float64 matrix, " << m.rows() << " x "
              << m.cols() << ", Frobenius norm "
              << linalg::frobenius_norm(m) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(argc - 1, argv + 1);
    if (command == "sketch") return cmd_sketch(argc - 1, argv + 1);
    if (command == "pipeline") return cmd_pipeline(argc - 1, argv + 1);
    if (command == "compare") return cmd_compare(argc - 1, argv + 1);
    if (command == "diag") return cmd_diag(argc - 1, argv + 1);
    if (command == "info") return cmd_info(argc - 1, argv + 1);
    if (command == "--help" || command == "help") {
      print_usage();
      return 0;
    }
    std::cerr << "unknown command: " << command << "\n";
    print_usage();
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
